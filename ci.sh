#!/usr/bin/env bash
# Local CI: the exact gate the GitHub workflow runs.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> fault injection: recovery invariant"
cargo test -q -p slider-bench --test integration_fault_recovery --test proptest_recovery

echo "==> cache unit + property tests"
cargo test -q -p slider-dcache

echo "==> self-healing: repair, scrub, and master-rebuild scenarios"
cargo test -q -p slider-bench --test integration_self_healing

echo "==> trace: reconciliation + determinism tests"
cargo test -q -p slider-bench --test integration_trace

echo "==> event time: disordered streams are bit-identical to their sorted twins"
cargo test -q -p slider-bench --test integration_event_time

echo "==> serve: multi-tenant service determinism + standalone-twin equality"
cargo test -q -p slider-bench --test integration_serve

echo "==> resilience: crash/restore, breaker quarantine, overload shedding"
cargo test -q -p slider-bench --test integration_resilience

echo "==> resilience: chaos_restore output is byte-identical across runs and thread counts"
chaos_tmp="$(mktemp -d)"
cargo run -q --release -p slider-bench --example chaos_restore > "$chaos_tmp/a.txt"
SLIDER_THREADS=1 cargo run -q --release -p slider-bench --example chaos_restore > "$chaos_tmp/b.txt"
cmp "$chaos_tmp/a.txt" "$chaos_tmp/b.txt"
rm -rf "$chaos_tmp"

echo "==> serve: dashboard output is byte-identical across runs and thread counts"
serve_tmp="$(mktemp -d)"
cargo run -q --release -p slider-bench --example serve_dashboard > "$serve_tmp/a.txt"
SLIDER_THREADS=1 cargo run -q --release -p slider-bench --example serve_dashboard > "$serve_tmp/b.txt"
cmp "$serve_tmp/a.txt" "$serve_tmp/b.txt"
rm -rf "$serve_tmp"

echo "==> join: incremental view == brute force across threads, faults, disorder"
cargo test -q -p slider-bench --test integration_join

echo "==> join: property tests vs the brute-force reference"
cargo test -q -p slider-join --test proptest_join

echo "==> join: join_feed output is byte-identical across runs and thread counts"
join_tmp="$(mktemp -d)"
cargo run -q --release -p slider-bench --example join_feed > "$join_tmp/a.txt"
SLIDER_THREADS=1 cargo run -q --release -p slider-bench --example join_feed > "$join_tmp/b.txt"
cmp "$join_tmp/a.txt" "$join_tmp/b.txt"
rm -rf "$join_tmp"

echo "==> trace: same-seed exports are byte-identical"
trace_tmp="$(mktemp -d)"
shootout_tmp="$(mktemp -d)"
trap 'rm -rf "$trace_tmp" "$shootout_tmp"' EXIT
# trace_viewer validates the Chrome trace JSON before writing it.
cargo run -q --release -p slider-bench --example trace_viewer -- "$trace_tmp/a"
SLIDER_THREADS=1 cargo run -q --release -p slider-bench --example trace_viewer -- "$trace_tmp/b"
for f in chrome_trace.json flame.folded metrics.json; do
  cmp "$trace_tmp/a/$f" "$trace_tmp/b/$f"
done

echo "==> shootout: regenerate and gate against the checked-in baseline"
BENCH_JSON_DIR="$shootout_tmp" cargo bench -q -p slider-bench --bench shootout > /dev/null
cargo run -q --release -p slider-bench --example shootout_viewer -- \
  --check BENCH_shootout.json "$shootout_tmp/BENCH_shootout.json"
cargo run -q --release -p slider-bench --example shootout_viewer -- \
  BENCH_shootout.json > "$shootout_tmp/view_a.txt"
SLIDER_THREADS=1 cargo run -q --release -p slider-bench --example shootout_viewer -- \
  BENCH_shootout.json > "$shootout_tmp/view_b.txt"
cmp "$shootout_tmp/view_a.txt" "$shootout_tmp/view_b.txt"

echo "==> join bench: regenerate and gate against the checked-in baseline"
BENCH_JSON_DIR="$shootout_tmp" cargo bench -q -p slider-bench --bench join > /dev/null
cargo run -q --release -p slider-bench --example join_viewer -- \
  --check BENCH_join.json "$shootout_tmp/BENCH_join.json"
cargo run -q --release -p slider-bench --example join_viewer -- \
  BENCH_join.json > "$shootout_tmp/join_a.txt"
SLIDER_THREADS=1 cargo run -q --release -p slider-bench --example join_viewer -- \
  BENCH_join.json > "$shootout_tmp/join_b.txt"
cmp "$shootout_tmp/join_a.txt" "$shootout_tmp/join_b.txt"

echo "CI OK"
