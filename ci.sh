#!/usr/bin/env bash
# Local CI: the exact gate the GitHub workflow runs.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> fault injection: recovery invariant"
cargo test -q -p slider-bench --test integration_fault_recovery --test proptest_recovery

echo "==> cache unit + property tests"
cargo test -q -p slider-dcache

echo "==> self-healing: repair, scrub, and master-rebuild scenarios"
cargo test -q -p slider-bench --test integration_self_healing

echo "CI OK"
