/root/repo/target/debug/deps/tab4_twitter-0d295e4c7e3f0144.d: crates/bench/benches/tab4_twitter.rs Cargo.toml

/root/repo/target/debug/deps/libtab4_twitter-0d295e4c7e3f0144.rmeta: crates/bench/benches/tab4_twitter.rs Cargo.toml

crates/bench/benches/tab4_twitter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
