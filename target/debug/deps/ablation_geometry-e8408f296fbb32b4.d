/root/repo/target/debug/deps/ablation_geometry-e8408f296fbb32b4.d: crates/bench/benches/ablation_geometry.rs Cargo.toml

/root/repo/target/debug/deps/libablation_geometry-e8408f296fbb32b4.rmeta: crates/bench/benches/ablation_geometry.rs Cargo.toml

crates/bench/benches/ablation_geometry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
