/root/repo/target/debug/deps/integration_pipeline-89e43244ad64586d.d: crates/bench/../../tests/integration_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_pipeline-89e43244ad64586d.rmeta: crates/bench/../../tests/integration_pipeline.rs Cargo.toml

crates/bench/../../tests/integration_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
