/root/repo/target/debug/deps/proptest_sim-bfb3e1ce22bc459a.d: crates/cluster/tests/proptest_sim.rs

/root/repo/target/debug/deps/proptest_sim-bfb3e1ce22bc459a: crates/cluster/tests/proptest_sim.rs

crates/cluster/tests/proptest_sim.rs:
