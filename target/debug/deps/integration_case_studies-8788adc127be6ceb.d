/root/repo/target/debug/deps/integration_case_studies-8788adc127be6ceb.d: crates/bench/../../tests/integration_case_studies.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_case_studies-8788adc127be6ceb.rmeta: crates/bench/../../tests/integration_case_studies.rs Cargo.toml

crates/bench/../../tests/integration_case_studies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
