/root/repo/target/debug/deps/tab5_netsession-4087932a5a25bd90.d: crates/bench/benches/tab5_netsession.rs Cargo.toml

/root/repo/target/debug/deps/libtab5_netsession-4087932a5a25bd90.rmeta: crates/bench/benches/tab5_netsession.rs Cargo.toml

crates/bench/benches/tab5_netsession.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
