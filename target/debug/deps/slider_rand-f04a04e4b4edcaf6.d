/root/repo/target/debug/deps/slider_rand-f04a04e4b4edcaf6.d: shims/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libslider_rand-f04a04e4b4edcaf6.rmeta: shims/rand/src/lib.rs Cargo.toml

shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
