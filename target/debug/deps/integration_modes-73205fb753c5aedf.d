/root/repo/target/debug/deps/integration_modes-73205fb753c5aedf.d: crates/bench/../../tests/integration_modes.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_modes-73205fb753c5aedf.rmeta: crates/bench/../../tests/integration_modes.rs Cargo.toml

crates/bench/../../tests/integration_modes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
