/root/repo/target/debug/deps/slider_rand-7fda9417ff767017.d: shims/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libslider_rand-7fda9417ff767017.rmeta: shims/rand/src/lib.rs Cargo.toml

shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
