/root/repo/target/debug/deps/slider_bench-dc4fd983718ddd31.d: crates/bench/src/lib.rs crates/bench/src/datasets.rs crates/bench/src/driver.rs crates/bench/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libslider_bench-dc4fd983718ddd31.rmeta: crates/bench/src/lib.rs crates/bench/src/datasets.rs crates/bench/src/driver.rs crates/bench/src/report.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/datasets.rs:
crates/bench/src/driver.rs:
crates/bench/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
