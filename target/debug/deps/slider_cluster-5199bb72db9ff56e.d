/root/repo/target/debug/deps/slider_cluster-5199bb72db9ff56e.d: crates/cluster/src/lib.rs crates/cluster/src/machine.rs crates/cluster/src/scheduler.rs crates/cluster/src/simulator.rs crates/cluster/src/task.rs crates/cluster/src/topology.rs

/root/repo/target/debug/deps/libslider_cluster-5199bb72db9ff56e.rlib: crates/cluster/src/lib.rs crates/cluster/src/machine.rs crates/cluster/src/scheduler.rs crates/cluster/src/simulator.rs crates/cluster/src/task.rs crates/cluster/src/topology.rs

/root/repo/target/debug/deps/libslider_cluster-5199bb72db9ff56e.rmeta: crates/cluster/src/lib.rs crates/cluster/src/machine.rs crates/cluster/src/scheduler.rs crates/cluster/src/simulator.rs crates/cluster/src/task.rs crates/cluster/src/topology.rs

crates/cluster/src/lib.rs:
crates/cluster/src/machine.rs:
crates/cluster/src/scheduler.rs:
crates/cluster/src/simulator.rs:
crates/cluster/src/task.rs:
crates/cluster/src/topology.rs:
