/root/repo/target/debug/deps/slider_query-e38cb33056fb8eb7.d: crates/query/src/lib.rs crates/query/src/exec.rs crates/query/src/parser.rs crates/query/src/pigmix.rs crates/query/src/plan.rs crates/query/src/stage.rs Cargo.toml

/root/repo/target/debug/deps/libslider_query-e38cb33056fb8eb7.rmeta: crates/query/src/lib.rs crates/query/src/exec.rs crates/query/src/parser.rs crates/query/src/pigmix.rs crates/query/src/plan.rs crates/query/src/stage.rs Cargo.toml

crates/query/src/lib.rs:
crates/query/src/exec.rs:
crates/query/src/parser.rs:
crates/query/src/pigmix.rs:
crates/query/src/plan.rs:
crates/query/src/stage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
