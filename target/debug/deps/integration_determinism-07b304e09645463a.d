/root/repo/target/debug/deps/integration_determinism-07b304e09645463a.d: crates/bench/../../tests/integration_determinism.rs

/root/repo/target/debug/deps/integration_determinism-07b304e09645463a: crates/bench/../../tests/integration_determinism.rs

crates/bench/../../tests/integration_determinism.rs:
