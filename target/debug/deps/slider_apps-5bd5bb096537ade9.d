/root/repo/target/debug/deps/slider_apps-5bd5bb096537ade9.d: crates/apps/src/lib.rs crates/apps/src/glasnost.rs crates/apps/src/hct.rs crates/apps/src/kmeans.rs crates/apps/src/knn.rs crates/apps/src/matrix.rs crates/apps/src/netsession.rs crates/apps/src/substr.rs crates/apps/src/twitter.rs

/root/repo/target/debug/deps/slider_apps-5bd5bb096537ade9: crates/apps/src/lib.rs crates/apps/src/glasnost.rs crates/apps/src/hct.rs crates/apps/src/kmeans.rs crates/apps/src/knn.rs crates/apps/src/matrix.rs crates/apps/src/netsession.rs crates/apps/src/substr.rs crates/apps/src/twitter.rs

crates/apps/src/lib.rs:
crates/apps/src/glasnost.rs:
crates/apps/src/hct.rs:
crates/apps/src/kmeans.rs:
crates/apps/src/knn.rs:
crates/apps/src/matrix.rs:
crates/apps/src/netsession.rs:
crates/apps/src/substr.rs:
crates/apps/src/twitter.rs:
