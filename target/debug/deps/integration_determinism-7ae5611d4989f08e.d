/root/repo/target/debug/deps/integration_determinism-7ae5611d4989f08e.d: crates/bench/../../tests/integration_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_determinism-7ae5611d4989f08e.rmeta: crates/bench/../../tests/integration_determinism.rs Cargo.toml

crates/bench/../../tests/integration_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
