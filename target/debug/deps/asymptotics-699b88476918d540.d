/root/repo/target/debug/deps/asymptotics-699b88476918d540.d: crates/core/tests/asymptotics.rs Cargo.toml

/root/repo/target/debug/deps/libasymptotics-699b88476918d540.rmeta: crates/core/tests/asymptotics.rs Cargo.toml

crates/core/tests/asymptotics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
