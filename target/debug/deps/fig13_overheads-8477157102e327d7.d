/root/repo/target/debug/deps/fig13_overheads-8477157102e327d7.d: crates/bench/benches/fig13_overheads.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_overheads-8477157102e327d7.rmeta: crates/bench/benches/fig13_overheads.rs Cargo.toml

crates/bench/benches/fig13_overheads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
