/root/repo/target/debug/deps/integration_case_studies-f8cc1131c5f60de4.d: crates/bench/../../tests/integration_case_studies.rs

/root/repo/target/debug/deps/integration_case_studies-f8cc1131c5f60de4: crates/bench/../../tests/integration_case_studies.rs

crates/bench/../../tests/integration_case_studies.rs:
