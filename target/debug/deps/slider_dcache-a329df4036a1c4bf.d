/root/repo/target/debug/deps/slider_dcache-a329df4036a1c4bf.d: crates/dcache/src/lib.rs crates/dcache/src/gc.rs crates/dcache/src/master.rs crates/dcache/src/store.rs

/root/repo/target/debug/deps/slider_dcache-a329df4036a1c4bf: crates/dcache/src/lib.rs crates/dcache/src/gc.rs crates/dcache/src/master.rs crates/dcache/src/store.rs

crates/dcache/src/lib.rs:
crates/dcache/src/gc.rs:
crates/dcache/src/master.rs:
crates/dcache/src/store.rs:
