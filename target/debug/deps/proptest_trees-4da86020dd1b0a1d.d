/root/repo/target/debug/deps/proptest_trees-4da86020dd1b0a1d.d: crates/core/tests/proptest_trees.rs

/root/repo/target/debug/deps/proptest_trees-4da86020dd1b0a1d: crates/core/tests/proptest_trees.rs

crates/core/tests/proptest_trees.rs:
