/root/repo/target/debug/deps/slider_core-344b2fafb2872813.d: crates/core/src/lib.rs crates/core/src/coalescing.rs crates/core/src/combiner.rs crates/core/src/error.rs crates/core/src/folding.rs crates/core/src/hash.rs crates/core/src/memo.rs crates/core/src/multilevel.rs crates/core/src/randomized.rs crates/core/src/rotating.rs crates/core/src/stats.rs crates/core/src/strawman.rs crates/core/src/tree.rs

/root/repo/target/debug/deps/libslider_core-344b2fafb2872813.rlib: crates/core/src/lib.rs crates/core/src/coalescing.rs crates/core/src/combiner.rs crates/core/src/error.rs crates/core/src/folding.rs crates/core/src/hash.rs crates/core/src/memo.rs crates/core/src/multilevel.rs crates/core/src/randomized.rs crates/core/src/rotating.rs crates/core/src/stats.rs crates/core/src/strawman.rs crates/core/src/tree.rs

/root/repo/target/debug/deps/libslider_core-344b2fafb2872813.rmeta: crates/core/src/lib.rs crates/core/src/coalescing.rs crates/core/src/combiner.rs crates/core/src/error.rs crates/core/src/folding.rs crates/core/src/hash.rs crates/core/src/memo.rs crates/core/src/multilevel.rs crates/core/src/randomized.rs crates/core/src/rotating.rs crates/core/src/stats.rs crates/core/src/strawman.rs crates/core/src/tree.rs

crates/core/src/lib.rs:
crates/core/src/coalescing.rs:
crates/core/src/combiner.rs:
crates/core/src/error.rs:
crates/core/src/folding.rs:
crates/core/src/hash.rs:
crates/core/src/memo.rs:
crates/core/src/multilevel.rs:
crates/core/src/randomized.rs:
crates/core/src/rotating.rs:
crates/core/src/stats.rs:
crates/core/src/strawman.rs:
crates/core/src/tree.rs:
