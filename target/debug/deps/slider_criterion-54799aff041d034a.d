/root/repo/target/debug/deps/slider_criterion-54799aff041d034a.d: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libslider_criterion-54799aff041d034a.rlib: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libslider_criterion-54799aff041d034a.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
