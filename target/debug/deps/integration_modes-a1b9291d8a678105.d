/root/repo/target/debug/deps/integration_modes-a1b9291d8a678105.d: crates/bench/../../tests/integration_modes.rs

/root/repo/target/debug/deps/integration_modes-a1b9291d8a678105: crates/bench/../../tests/integration_modes.rs

crates/bench/../../tests/integration_modes.rs:
