/root/repo/target/debug/deps/ablation_parallelism-b3c5e040534c80df.d: crates/bench/benches/ablation_parallelism.rs Cargo.toml

/root/repo/target/debug/deps/libablation_parallelism-b3c5e040534c80df.rmeta: crates/bench/benches/ablation_parallelism.rs Cargo.toml

crates/bench/benches/ablation_parallelism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
