/root/repo/target/debug/deps/slider_dcache-935a7ac4cfe41662.d: crates/dcache/src/lib.rs crates/dcache/src/gc.rs crates/dcache/src/master.rs crates/dcache/src/store.rs

/root/repo/target/debug/deps/libslider_dcache-935a7ac4cfe41662.rlib: crates/dcache/src/lib.rs crates/dcache/src/gc.rs crates/dcache/src/master.rs crates/dcache/src/store.rs

/root/repo/target/debug/deps/libslider_dcache-935a7ac4cfe41662.rmeta: crates/dcache/src/lib.rs crates/dcache/src/gc.rs crates/dcache/src/master.rs crates/dcache/src/store.rs

crates/dcache/src/lib.rs:
crates/dcache/src/gc.rs:
crates/dcache/src/master.rs:
crates/dcache/src/store.rs:
