/root/repo/target/debug/deps/slider_mapreduce-85d10526f1b84541.d: crates/mapreduce/src/lib.rs crates/mapreduce/src/app.rs crates/mapreduce/src/error.rs crates/mapreduce/src/feeder.rs crates/mapreduce/src/pipeline.rs crates/mapreduce/src/runtime.rs crates/mapreduce/src/shuffle.rs crates/mapreduce/src/split.rs crates/mapreduce/src/stats.rs crates/mapreduce/src/windowed.rs Cargo.toml

/root/repo/target/debug/deps/libslider_mapreduce-85d10526f1b84541.rmeta: crates/mapreduce/src/lib.rs crates/mapreduce/src/app.rs crates/mapreduce/src/error.rs crates/mapreduce/src/feeder.rs crates/mapreduce/src/pipeline.rs crates/mapreduce/src/runtime.rs crates/mapreduce/src/shuffle.rs crates/mapreduce/src/split.rs crates/mapreduce/src/stats.rs crates/mapreduce/src/windowed.rs Cargo.toml

crates/mapreduce/src/lib.rs:
crates/mapreduce/src/app.rs:
crates/mapreduce/src/error.rs:
crates/mapreduce/src/feeder.rs:
crates/mapreduce/src/pipeline.rs:
crates/mapreduce/src/runtime.rs:
crates/mapreduce/src/shuffle.rs:
crates/mapreduce/src/split.rs:
crates/mapreduce/src/stats.rs:
crates/mapreduce/src/windowed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
