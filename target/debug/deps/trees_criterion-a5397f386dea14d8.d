/root/repo/target/debug/deps/trees_criterion-a5397f386dea14d8.d: crates/bench/benches/trees_criterion.rs Cargo.toml

/root/repo/target/debug/deps/libtrees_criterion-a5397f386dea14d8.rmeta: crates/bench/benches/trees_criterion.rs Cargo.toml

crates/bench/benches/trees_criterion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
