/root/repo/target/debug/deps/tab3_glasnost-824dd93c72daf7e3.d: crates/bench/benches/tab3_glasnost.rs Cargo.toml

/root/repo/target/debug/deps/libtab3_glasnost-824dd93c72daf7e3.rmeta: crates/bench/benches/tab3_glasnost.rs Cargo.toml

crates/bench/benches/tab3_glasnost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
