/root/repo/target/debug/deps/fig11_split_processing-776bd0f1448e0722.d: crates/bench/benches/fig11_split_processing.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_split_processing-776bd0f1448e0722.rmeta: crates/bench/benches/fig11_split_processing.rs Cargo.toml

crates/bench/benches/fig11_split_processing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
