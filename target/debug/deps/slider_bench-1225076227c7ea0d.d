/root/repo/target/debug/deps/slider_bench-1225076227c7ea0d.d: crates/bench/src/lib.rs crates/bench/src/datasets.rs crates/bench/src/driver.rs crates/bench/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libslider_bench-1225076227c7ea0d.rmeta: crates/bench/src/lib.rs crates/bench/src/datasets.rs crates/bench/src/driver.rs crates/bench/src/report.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/datasets.rs:
crates/bench/src/driver.rs:
crates/bench/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
