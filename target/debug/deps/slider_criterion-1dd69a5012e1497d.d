/root/repo/target/debug/deps/slider_criterion-1dd69a5012e1497d.d: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/slider_criterion-1dd69a5012e1497d: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
