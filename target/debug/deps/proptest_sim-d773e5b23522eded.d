/root/repo/target/debug/deps/proptest_sim-d773e5b23522eded.d: crates/cluster/tests/proptest_sim.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_sim-d773e5b23522eded.rmeta: crates/cluster/tests/proptest_sim.rs Cargo.toml

crates/cluster/tests/proptest_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
