/root/repo/target/debug/deps/fig7_speedup_vs_recompute-c9cc25a0b1116f00.d: crates/bench/benches/fig7_speedup_vs_recompute.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_speedup_vs_recompute-c9cc25a0b1116f00.rmeta: crates/bench/benches/fig7_speedup_vs_recompute.rs Cargo.toml

crates/bench/benches/fig7_speedup_vs_recompute.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
