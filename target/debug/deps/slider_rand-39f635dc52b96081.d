/root/repo/target/debug/deps/slider_rand-39f635dc52b96081.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/slider_rand-39f635dc52b96081: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
