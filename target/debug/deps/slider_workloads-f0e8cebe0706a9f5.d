/root/repo/target/debug/deps/slider_workloads-f0e8cebe0706a9f5.d: crates/workloads/src/lib.rs crates/workloads/src/glasnost.rs crates/workloads/src/netsession.rs crates/workloads/src/pageviews.rs crates/workloads/src/points.rs crates/workloads/src/text.rs crates/workloads/src/twitter.rs

/root/repo/target/debug/deps/slider_workloads-f0e8cebe0706a9f5: crates/workloads/src/lib.rs crates/workloads/src/glasnost.rs crates/workloads/src/netsession.rs crates/workloads/src/pageviews.rs crates/workloads/src/points.rs crates/workloads/src/text.rs crates/workloads/src/twitter.rs

crates/workloads/src/lib.rs:
crates/workloads/src/glasnost.rs:
crates/workloads/src/netsession.rs:
crates/workloads/src/pageviews.rs:
crates/workloads/src/points.rs:
crates/workloads/src/text.rs:
crates/workloads/src/twitter.rs:
