/root/repo/target/debug/deps/proptest_engine-ae153aa9aad402b4.d: crates/bench/../../tests/proptest_engine.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_engine-ae153aa9aad402b4.rmeta: crates/bench/../../tests/proptest_engine.rs Cargo.toml

crates/bench/../../tests/proptest_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
