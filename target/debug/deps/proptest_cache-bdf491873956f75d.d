/root/repo/target/debug/deps/proptest_cache-bdf491873956f75d.d: crates/dcache/tests/proptest_cache.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_cache-bdf491873956f75d.rmeta: crates/dcache/tests/proptest_cache.rs Cargo.toml

crates/dcache/tests/proptest_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
