/root/repo/target/debug/deps/slider_workloads-d22d607ae539937f.d: crates/workloads/src/lib.rs crates/workloads/src/glasnost.rs crates/workloads/src/netsession.rs crates/workloads/src/pageviews.rs crates/workloads/src/points.rs crates/workloads/src/text.rs crates/workloads/src/twitter.rs Cargo.toml

/root/repo/target/debug/deps/libslider_workloads-d22d607ae539937f.rmeta: crates/workloads/src/lib.rs crates/workloads/src/glasnost.rs crates/workloads/src/netsession.rs crates/workloads/src/pageviews.rs crates/workloads/src/points.rs crates/workloads/src/text.rs crates/workloads/src/twitter.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/glasnost.rs:
crates/workloads/src/netsession.rs:
crates/workloads/src/pageviews.rs:
crates/workloads/src/points.rs:
crates/workloads/src/text.rs:
crates/workloads/src/twitter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
