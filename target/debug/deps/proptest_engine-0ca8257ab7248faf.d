/root/repo/target/debug/deps/proptest_engine-0ca8257ab7248faf.d: crates/bench/../../tests/proptest_engine.rs

/root/repo/target/debug/deps/proptest_engine-0ca8257ab7248faf: crates/bench/../../tests/proptest_engine.rs

crates/bench/../../tests/proptest_engine.rs:
