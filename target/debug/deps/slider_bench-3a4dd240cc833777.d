/root/repo/target/debug/deps/slider_bench-3a4dd240cc833777.d: crates/bench/src/lib.rs crates/bench/src/datasets.rs crates/bench/src/driver.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libslider_bench-3a4dd240cc833777.rlib: crates/bench/src/lib.rs crates/bench/src/datasets.rs crates/bench/src/driver.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libslider_bench-3a4dd240cc833777.rmeta: crates/bench/src/lib.rs crates/bench/src/datasets.rs crates/bench/src/driver.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/datasets.rs:
crates/bench/src/driver.rs:
crates/bench/src/report.rs:
