/root/repo/target/debug/deps/slider_criterion-44a429c89259271f.d: shims/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libslider_criterion-44a429c89259271f.rmeta: shims/criterion/src/lib.rs Cargo.toml

shims/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
