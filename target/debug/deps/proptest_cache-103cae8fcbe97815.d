/root/repo/target/debug/deps/proptest_cache-103cae8fcbe97815.d: crates/dcache/tests/proptest_cache.rs

/root/repo/target/debug/deps/proptest_cache-103cae8fcbe97815: crates/dcache/tests/proptest_cache.rs

crates/dcache/tests/proptest_cache.rs:
