/root/repo/target/debug/deps/slider_apps-ca9c03d61124cd2a.d: crates/apps/src/lib.rs crates/apps/src/glasnost.rs crates/apps/src/hct.rs crates/apps/src/kmeans.rs crates/apps/src/knn.rs crates/apps/src/matrix.rs crates/apps/src/netsession.rs crates/apps/src/substr.rs crates/apps/src/twitter.rs Cargo.toml

/root/repo/target/debug/deps/libslider_apps-ca9c03d61124cd2a.rmeta: crates/apps/src/lib.rs crates/apps/src/glasnost.rs crates/apps/src/hct.rs crates/apps/src/kmeans.rs crates/apps/src/knn.rs crates/apps/src/matrix.rs crates/apps/src/netsession.rs crates/apps/src/substr.rs crates/apps/src/twitter.rs Cargo.toml

crates/apps/src/lib.rs:
crates/apps/src/glasnost.rs:
crates/apps/src/hct.rs:
crates/apps/src/kmeans.rs:
crates/apps/src/knn.rs:
crates/apps/src/matrix.rs:
crates/apps/src/netsession.rs:
crates/apps/src/substr.rs:
crates/apps/src/twitter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
