/root/repo/target/debug/deps/proptest_trees-4e1bdd6173c6e1d1.d: crates/core/tests/proptest_trees.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_trees-4e1bdd6173c6e1d1.rmeta: crates/core/tests/proptest_trees.rs Cargo.toml

crates/core/tests/proptest_trees.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
