/root/repo/target/debug/deps/fig8_speedup_vs_strawman-e931205ff898e16e.d: crates/bench/benches/fig8_speedup_vs_strawman.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_speedup_vs_strawman-e931205ff898e16e.rmeta: crates/bench/benches/fig8_speedup_vs_strawman.rs Cargo.toml

crates/bench/benches/fig8_speedup_vs_strawman.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
