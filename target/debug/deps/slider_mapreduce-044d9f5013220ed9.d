/root/repo/target/debug/deps/slider_mapreduce-044d9f5013220ed9.d: crates/mapreduce/src/lib.rs crates/mapreduce/src/app.rs crates/mapreduce/src/error.rs crates/mapreduce/src/feeder.rs crates/mapreduce/src/pipeline.rs crates/mapreduce/src/runtime.rs crates/mapreduce/src/shuffle.rs crates/mapreduce/src/split.rs crates/mapreduce/src/stats.rs crates/mapreduce/src/windowed.rs

/root/repo/target/debug/deps/libslider_mapreduce-044d9f5013220ed9.rlib: crates/mapreduce/src/lib.rs crates/mapreduce/src/app.rs crates/mapreduce/src/error.rs crates/mapreduce/src/feeder.rs crates/mapreduce/src/pipeline.rs crates/mapreduce/src/runtime.rs crates/mapreduce/src/shuffle.rs crates/mapreduce/src/split.rs crates/mapreduce/src/stats.rs crates/mapreduce/src/windowed.rs

/root/repo/target/debug/deps/libslider_mapreduce-044d9f5013220ed9.rmeta: crates/mapreduce/src/lib.rs crates/mapreduce/src/app.rs crates/mapreduce/src/error.rs crates/mapreduce/src/feeder.rs crates/mapreduce/src/pipeline.rs crates/mapreduce/src/runtime.rs crates/mapreduce/src/shuffle.rs crates/mapreduce/src/split.rs crates/mapreduce/src/stats.rs crates/mapreduce/src/windowed.rs

crates/mapreduce/src/lib.rs:
crates/mapreduce/src/app.rs:
crates/mapreduce/src/error.rs:
crates/mapreduce/src/feeder.rs:
crates/mapreduce/src/pipeline.rs:
crates/mapreduce/src/runtime.rs:
crates/mapreduce/src/shuffle.rs:
crates/mapreduce/src/split.rs:
crates/mapreduce/src/stats.rs:
crates/mapreduce/src/windowed.rs:
