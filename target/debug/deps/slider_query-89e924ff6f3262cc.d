/root/repo/target/debug/deps/slider_query-89e924ff6f3262cc.d: crates/query/src/lib.rs crates/query/src/exec.rs crates/query/src/parser.rs crates/query/src/pigmix.rs crates/query/src/plan.rs crates/query/src/stage.rs

/root/repo/target/debug/deps/libslider_query-89e924ff6f3262cc.rlib: crates/query/src/lib.rs crates/query/src/exec.rs crates/query/src/parser.rs crates/query/src/pigmix.rs crates/query/src/plan.rs crates/query/src/stage.rs

/root/repo/target/debug/deps/libslider_query-89e924ff6f3262cc.rmeta: crates/query/src/lib.rs crates/query/src/exec.rs crates/query/src/parser.rs crates/query/src/pigmix.rs crates/query/src/plan.rs crates/query/src/stage.rs

crates/query/src/lib.rs:
crates/query/src/exec.rs:
crates/query/src/parser.rs:
crates/query/src/pigmix.rs:
crates/query/src/plan.rs:
crates/query/src/stage.rs:
