/root/repo/target/debug/deps/slider_mapreduce-79c2d54cd7e79213.d: crates/mapreduce/src/lib.rs crates/mapreduce/src/app.rs crates/mapreduce/src/error.rs crates/mapreduce/src/feeder.rs crates/mapreduce/src/pipeline.rs crates/mapreduce/src/runtime.rs crates/mapreduce/src/shuffle.rs crates/mapreduce/src/split.rs crates/mapreduce/src/stats.rs crates/mapreduce/src/windowed.rs

/root/repo/target/debug/deps/slider_mapreduce-79c2d54cd7e79213: crates/mapreduce/src/lib.rs crates/mapreduce/src/app.rs crates/mapreduce/src/error.rs crates/mapreduce/src/feeder.rs crates/mapreduce/src/pipeline.rs crates/mapreduce/src/runtime.rs crates/mapreduce/src/shuffle.rs crates/mapreduce/src/split.rs crates/mapreduce/src/stats.rs crates/mapreduce/src/windowed.rs

crates/mapreduce/src/lib.rs:
crates/mapreduce/src/app.rs:
crates/mapreduce/src/error.rs:
crates/mapreduce/src/feeder.rs:
crates/mapreduce/src/pipeline.rs:
crates/mapreduce/src/runtime.rs:
crates/mapreduce/src/shuffle.rs:
crates/mapreduce/src/split.rs:
crates/mapreduce/src/stats.rs:
crates/mapreduce/src/windowed.rs:
