/root/repo/target/debug/deps/slider_cluster-c83083fd0423ff10.d: crates/cluster/src/lib.rs crates/cluster/src/machine.rs crates/cluster/src/scheduler.rs crates/cluster/src/simulator.rs crates/cluster/src/task.rs crates/cluster/src/topology.rs

/root/repo/target/debug/deps/slider_cluster-c83083fd0423ff10: crates/cluster/src/lib.rs crates/cluster/src/machine.rs crates/cluster/src/scheduler.rs crates/cluster/src/simulator.rs crates/cluster/src/task.rs crates/cluster/src/topology.rs

crates/cluster/src/lib.rs:
crates/cluster/src/machine.rs:
crates/cluster/src/scheduler.rs:
crates/cluster/src/simulator.rs:
crates/cluster/src/task.rs:
crates/cluster/src/topology.rs:
