/root/repo/target/debug/deps/slider_workloads-97441763693609ae.d: crates/workloads/src/lib.rs crates/workloads/src/glasnost.rs crates/workloads/src/netsession.rs crates/workloads/src/pageviews.rs crates/workloads/src/points.rs crates/workloads/src/text.rs crates/workloads/src/twitter.rs

/root/repo/target/debug/deps/libslider_workloads-97441763693609ae.rlib: crates/workloads/src/lib.rs crates/workloads/src/glasnost.rs crates/workloads/src/netsession.rs crates/workloads/src/pageviews.rs crates/workloads/src/points.rs crates/workloads/src/text.rs crates/workloads/src/twitter.rs

/root/repo/target/debug/deps/libslider_workloads-97441763693609ae.rmeta: crates/workloads/src/lib.rs crates/workloads/src/glasnost.rs crates/workloads/src/netsession.rs crates/workloads/src/pageviews.rs crates/workloads/src/points.rs crates/workloads/src/text.rs crates/workloads/src/twitter.rs

crates/workloads/src/lib.rs:
crates/workloads/src/glasnost.rs:
crates/workloads/src/netsession.rs:
crates/workloads/src/pageviews.rs:
crates/workloads/src/points.rs:
crates/workloads/src/text.rs:
crates/workloads/src/twitter.rs:
