/root/repo/target/debug/deps/slider_dcache-62682d07e5236ccd.d: crates/dcache/src/lib.rs crates/dcache/src/gc.rs crates/dcache/src/master.rs crates/dcache/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libslider_dcache-62682d07e5236ccd.rmeta: crates/dcache/src/lib.rs crates/dcache/src/gc.rs crates/dcache/src/master.rs crates/dcache/src/store.rs Cargo.toml

crates/dcache/src/lib.rs:
crates/dcache/src/gc.rs:
crates/dcache/src/master.rs:
crates/dcache/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
