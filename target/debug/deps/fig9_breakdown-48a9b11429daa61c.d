/root/repo/target/debug/deps/fig9_breakdown-48a9b11429daa61c.d: crates/bench/benches/fig9_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_breakdown-48a9b11429daa61c.rmeta: crates/bench/benches/fig9_breakdown.rs Cargo.toml

crates/bench/benches/fig9_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
