/root/repo/target/debug/deps/integration_failures-309b2731a3f5482d.d: crates/bench/../../tests/integration_failures.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_failures-309b2731a3f5482d.rmeta: crates/bench/../../tests/integration_failures.rs Cargo.toml

crates/bench/../../tests/integration_failures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
