/root/repo/target/debug/deps/slider_query-bf62dd95317beb44.d: crates/query/src/lib.rs crates/query/src/exec.rs crates/query/src/parser.rs crates/query/src/pigmix.rs crates/query/src/plan.rs crates/query/src/stage.rs Cargo.toml

/root/repo/target/debug/deps/libslider_query-bf62dd95317beb44.rmeta: crates/query/src/lib.rs crates/query/src/exec.rs crates/query/src/parser.rs crates/query/src/pigmix.rs crates/query/src/plan.rs crates/query/src/stage.rs Cargo.toml

crates/query/src/lib.rs:
crates/query/src/exec.rs:
crates/query/src/parser.rs:
crates/query/src/pigmix.rs:
crates/query/src/plan.rs:
crates/query/src/stage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
