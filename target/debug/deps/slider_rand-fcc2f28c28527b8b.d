/root/repo/target/debug/deps/slider_rand-fcc2f28c28527b8b.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/libslider_rand-fcc2f28c28527b8b.rlib: shims/rand/src/lib.rs

/root/repo/target/debug/deps/libslider_rand-fcc2f28c28527b8b.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
