/root/repo/target/debug/deps/slider_proptest-ff3903164340fe18.d: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libslider_proptest-ff3903164340fe18.rlib: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libslider_proptest-ff3903164340fe18.rmeta: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

shims/proptest/src/lib.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/test_runner.rs:
