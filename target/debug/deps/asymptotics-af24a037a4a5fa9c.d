/root/repo/target/debug/deps/asymptotics-af24a037a4a5fa9c.d: crates/core/tests/asymptotics.rs

/root/repo/target/debug/deps/asymptotics-af24a037a4a5fa9c: crates/core/tests/asymptotics.rs

crates/core/tests/asymptotics.rs:
