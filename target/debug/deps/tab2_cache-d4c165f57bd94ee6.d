/root/repo/target/debug/deps/tab2_cache-d4c165f57bd94ee6.d: crates/bench/benches/tab2_cache.rs Cargo.toml

/root/repo/target/debug/deps/libtab2_cache-d4c165f57bd94ee6.rmeta: crates/bench/benches/tab2_cache.rs Cargo.toml

crates/bench/benches/tab2_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
