/root/repo/target/debug/deps/integration_pipeline-dc5304745728f7b5.d: crates/bench/../../tests/integration_pipeline.rs

/root/repo/target/debug/deps/integration_pipeline-dc5304745728f7b5: crates/bench/../../tests/integration_pipeline.rs

crates/bench/../../tests/integration_pipeline.rs:
