/root/repo/target/debug/deps/slider_cluster-3f5f72ef04935160.d: crates/cluster/src/lib.rs crates/cluster/src/machine.rs crates/cluster/src/scheduler.rs crates/cluster/src/simulator.rs crates/cluster/src/task.rs crates/cluster/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libslider_cluster-3f5f72ef04935160.rmeta: crates/cluster/src/lib.rs crates/cluster/src/machine.rs crates/cluster/src/scheduler.rs crates/cluster/src/simulator.rs crates/cluster/src/task.rs crates/cluster/src/topology.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/machine.rs:
crates/cluster/src/scheduler.rs:
crates/cluster/src/simulator.rs:
crates/cluster/src/task.rs:
crates/cluster/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
