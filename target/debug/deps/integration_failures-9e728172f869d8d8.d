/root/repo/target/debug/deps/integration_failures-9e728172f869d8d8.d: crates/bench/../../tests/integration_failures.rs

/root/repo/target/debug/deps/integration_failures-9e728172f869d8d8: crates/bench/../../tests/integration_failures.rs

crates/bench/../../tests/integration_failures.rs:
