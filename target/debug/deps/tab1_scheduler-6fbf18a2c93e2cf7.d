/root/repo/target/debug/deps/tab1_scheduler-6fbf18a2c93e2cf7.d: crates/bench/benches/tab1_scheduler.rs Cargo.toml

/root/repo/target/debug/deps/libtab1_scheduler-6fbf18a2c93e2cf7.rmeta: crates/bench/benches/tab1_scheduler.rs Cargo.toml

crates/bench/benches/tab1_scheduler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
