/root/repo/target/debug/deps/parallel_determinism-c2c176c7294ca947.d: crates/bench/../../tests/parallel_determinism.rs

/root/repo/target/debug/deps/parallel_determinism-c2c176c7294ca947: crates/bench/../../tests/parallel_determinism.rs

crates/bench/../../tests/parallel_determinism.rs:
