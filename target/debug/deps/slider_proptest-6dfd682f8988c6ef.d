/root/repo/target/debug/deps/slider_proptest-6dfd682f8988c6ef.d: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

/root/repo/target/debug/deps/slider_proptest-6dfd682f8988c6ef: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

shims/proptest/src/lib.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/test_runner.rs:
