/root/repo/target/debug/deps/slider_core-8694084f29491d4d.d: crates/core/src/lib.rs crates/core/src/coalescing.rs crates/core/src/combiner.rs crates/core/src/error.rs crates/core/src/folding.rs crates/core/src/hash.rs crates/core/src/memo.rs crates/core/src/multilevel.rs crates/core/src/randomized.rs crates/core/src/rotating.rs crates/core/src/stats.rs crates/core/src/strawman.rs crates/core/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libslider_core-8694084f29491d4d.rmeta: crates/core/src/lib.rs crates/core/src/coalescing.rs crates/core/src/combiner.rs crates/core/src/error.rs crates/core/src/folding.rs crates/core/src/hash.rs crates/core/src/memo.rs crates/core/src/multilevel.rs crates/core/src/randomized.rs crates/core/src/rotating.rs crates/core/src/stats.rs crates/core/src/strawman.rs crates/core/src/tree.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/coalescing.rs:
crates/core/src/combiner.rs:
crates/core/src/error.rs:
crates/core/src/folding.rs:
crates/core/src/hash.rs:
crates/core/src/memo.rs:
crates/core/src/multilevel.rs:
crates/core/src/randomized.rs:
crates/core/src/rotating.rs:
crates/core/src/stats.rs:
crates/core/src/strawman.rs:
crates/core/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
