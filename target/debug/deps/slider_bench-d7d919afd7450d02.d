/root/repo/target/debug/deps/slider_bench-d7d919afd7450d02.d: crates/bench/src/lib.rs crates/bench/src/datasets.rs crates/bench/src/driver.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/slider_bench-d7d919afd7450d02: crates/bench/src/lib.rs crates/bench/src/datasets.rs crates/bench/src/driver.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/datasets.rs:
crates/bench/src/driver.rs:
crates/bench/src/report.rs:
