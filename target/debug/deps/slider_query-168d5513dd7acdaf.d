/root/repo/target/debug/deps/slider_query-168d5513dd7acdaf.d: crates/query/src/lib.rs crates/query/src/exec.rs crates/query/src/parser.rs crates/query/src/pigmix.rs crates/query/src/plan.rs crates/query/src/stage.rs

/root/repo/target/debug/deps/slider_query-168d5513dd7acdaf: crates/query/src/lib.rs crates/query/src/exec.rs crates/query/src/parser.rs crates/query/src/pigmix.rs crates/query/src/plan.rs crates/query/src/stage.rs

crates/query/src/lib.rs:
crates/query/src/exec.rs:
crates/query/src/parser.rs:
crates/query/src/pigmix.rs:
crates/query/src/plan.rs:
crates/query/src/stage.rs:
