/root/repo/target/debug/deps/fig12_randomized-33c85f687f9e7234.d: crates/bench/benches/fig12_randomized.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_randomized-33c85f687f9e7234.rmeta: crates/bench/benches/fig12_randomized.rs Cargo.toml

crates/bench/benches/fig12_randomized.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
