/root/repo/target/debug/examples/netsession_audit-fc08fb11a520b74e.d: crates/apps/../../examples/netsession_audit.rs Cargo.toml

/root/repo/target/debug/examples/libnetsession_audit-fc08fb11a520b74e.rmeta: crates/apps/../../examples/netsession_audit.rs Cargo.toml

crates/apps/../../examples/netsession_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
