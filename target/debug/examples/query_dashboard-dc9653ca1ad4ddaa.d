/root/repo/target/debug/examples/query_dashboard-dc9653ca1ad4ddaa.d: crates/query/../../examples/query_dashboard.rs

/root/repo/target/debug/examples/query_dashboard-dc9653ca1ad4ddaa: crates/query/../../examples/query_dashboard.rs

crates/query/../../examples/query_dashboard.rs:
