/root/repo/target/debug/examples/glasnost_monitoring-8b0348f9716fc3e8.d: crates/apps/../../examples/glasnost_monitoring.rs

/root/repo/target/debug/examples/glasnost_monitoring-8b0348f9716fc3e8: crates/apps/../../examples/glasnost_monitoring.rs

crates/apps/../../examples/glasnost_monitoring.rs:
