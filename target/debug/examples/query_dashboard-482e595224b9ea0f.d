/root/repo/target/debug/examples/query_dashboard-482e595224b9ea0f.d: crates/query/../../examples/query_dashboard.rs Cargo.toml

/root/repo/target/debug/examples/libquery_dashboard-482e595224b9ea0f.rmeta: crates/query/../../examples/query_dashboard.rs Cargo.toml

crates/query/../../examples/query_dashboard.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
