/root/repo/target/debug/examples/glasnost_monitoring-413372784892c026.d: crates/apps/../../examples/glasnost_monitoring.rs Cargo.toml

/root/repo/target/debug/examples/libglasnost_monitoring-413372784892c026.rmeta: crates/apps/../../examples/glasnost_monitoring.rs Cargo.toml

crates/apps/../../examples/glasnost_monitoring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
