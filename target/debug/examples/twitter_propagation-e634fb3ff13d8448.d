/root/repo/target/debug/examples/twitter_propagation-e634fb3ff13d8448.d: crates/apps/../../examples/twitter_propagation.rs Cargo.toml

/root/repo/target/debug/examples/libtwitter_propagation-e634fb3ff13d8448.rmeta: crates/apps/../../examples/twitter_propagation.rs Cargo.toml

crates/apps/../../examples/twitter_propagation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
