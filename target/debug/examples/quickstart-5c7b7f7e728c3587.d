/root/repo/target/debug/examples/quickstart-5c7b7f7e728c3587.d: crates/apps/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-5c7b7f7e728c3587: crates/apps/../../examples/quickstart.rs

crates/apps/../../examples/quickstart.rs:
