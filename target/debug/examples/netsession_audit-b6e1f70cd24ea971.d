/root/repo/target/debug/examples/netsession_audit-b6e1f70cd24ea971.d: crates/apps/../../examples/netsession_audit.rs

/root/repo/target/debug/examples/netsession_audit-b6e1f70cd24ea971: crates/apps/../../examples/netsession_audit.rs

crates/apps/../../examples/netsession_audit.rs:
