/root/repo/target/debug/examples/quickstart-a7c79fc3d765744c.d: crates/apps/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-a7c79fc3d765744c.rmeta: crates/apps/../../examples/quickstart.rs Cargo.toml

crates/apps/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
