/root/repo/target/debug/examples/twitter_propagation-ffea6c85bca2b9bd.d: crates/apps/../../examples/twitter_propagation.rs

/root/repo/target/debug/examples/twitter_propagation-ffea6c85bca2b9bd: crates/apps/../../examples/twitter_propagation.rs

crates/apps/../../examples/twitter_propagation.rs:
