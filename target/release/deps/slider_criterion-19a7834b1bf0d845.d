/root/repo/target/release/deps/slider_criterion-19a7834b1bf0d845.d: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libslider_criterion-19a7834b1bf0d845.rlib: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libslider_criterion-19a7834b1bf0d845.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
