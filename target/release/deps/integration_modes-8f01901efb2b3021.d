/root/repo/target/release/deps/integration_modes-8f01901efb2b3021.d: crates/bench/../../tests/integration_modes.rs

/root/repo/target/release/deps/integration_modes-8f01901efb2b3021: crates/bench/../../tests/integration_modes.rs

crates/bench/../../tests/integration_modes.rs:
