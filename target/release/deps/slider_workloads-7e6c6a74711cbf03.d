/root/repo/target/release/deps/slider_workloads-7e6c6a74711cbf03.d: crates/workloads/src/lib.rs crates/workloads/src/glasnost.rs crates/workloads/src/netsession.rs crates/workloads/src/pageviews.rs crates/workloads/src/points.rs crates/workloads/src/text.rs crates/workloads/src/twitter.rs

/root/repo/target/release/deps/libslider_workloads-7e6c6a74711cbf03.rlib: crates/workloads/src/lib.rs crates/workloads/src/glasnost.rs crates/workloads/src/netsession.rs crates/workloads/src/pageviews.rs crates/workloads/src/points.rs crates/workloads/src/text.rs crates/workloads/src/twitter.rs

/root/repo/target/release/deps/libslider_workloads-7e6c6a74711cbf03.rmeta: crates/workloads/src/lib.rs crates/workloads/src/glasnost.rs crates/workloads/src/netsession.rs crates/workloads/src/pageviews.rs crates/workloads/src/points.rs crates/workloads/src/text.rs crates/workloads/src/twitter.rs

crates/workloads/src/lib.rs:
crates/workloads/src/glasnost.rs:
crates/workloads/src/netsession.rs:
crates/workloads/src/pageviews.rs:
crates/workloads/src/points.rs:
crates/workloads/src/text.rs:
crates/workloads/src/twitter.rs:
