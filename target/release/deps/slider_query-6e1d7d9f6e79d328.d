/root/repo/target/release/deps/slider_query-6e1d7d9f6e79d328.d: crates/query/src/lib.rs crates/query/src/exec.rs crates/query/src/parser.rs crates/query/src/pigmix.rs crates/query/src/plan.rs crates/query/src/stage.rs

/root/repo/target/release/deps/libslider_query-6e1d7d9f6e79d328.rlib: crates/query/src/lib.rs crates/query/src/exec.rs crates/query/src/parser.rs crates/query/src/pigmix.rs crates/query/src/plan.rs crates/query/src/stage.rs

/root/repo/target/release/deps/libslider_query-6e1d7d9f6e79d328.rmeta: crates/query/src/lib.rs crates/query/src/exec.rs crates/query/src/parser.rs crates/query/src/pigmix.rs crates/query/src/plan.rs crates/query/src/stage.rs

crates/query/src/lib.rs:
crates/query/src/exec.rs:
crates/query/src/parser.rs:
crates/query/src/pigmix.rs:
crates/query/src/plan.rs:
crates/query/src/stage.rs:
