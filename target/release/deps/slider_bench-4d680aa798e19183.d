/root/repo/target/release/deps/slider_bench-4d680aa798e19183.d: crates/bench/src/lib.rs crates/bench/src/datasets.rs crates/bench/src/driver.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libslider_bench-4d680aa798e19183.rlib: crates/bench/src/lib.rs crates/bench/src/datasets.rs crates/bench/src/driver.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libslider_bench-4d680aa798e19183.rmeta: crates/bench/src/lib.rs crates/bench/src/datasets.rs crates/bench/src/driver.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/datasets.rs:
crates/bench/src/driver.rs:
crates/bench/src/report.rs:
