/root/repo/target/release/deps/integration_pipeline-93d30b1e6ba741de.d: crates/bench/../../tests/integration_pipeline.rs

/root/repo/target/release/deps/integration_pipeline-93d30b1e6ba741de: crates/bench/../../tests/integration_pipeline.rs

crates/bench/../../tests/integration_pipeline.rs:
