/root/repo/target/release/deps/ablation_parallelism-8fc66f23c091cb13.d: crates/bench/benches/ablation_parallelism.rs

/root/repo/target/release/deps/ablation_parallelism-8fc66f23c091cb13: crates/bench/benches/ablation_parallelism.rs

crates/bench/benches/ablation_parallelism.rs:
