/root/repo/target/release/deps/slider_proptest-c3b944de62df4654.d: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

/root/repo/target/release/deps/libslider_proptest-c3b944de62df4654.rlib: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

/root/repo/target/release/deps/libslider_proptest-c3b944de62df4654.rmeta: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

shims/proptest/src/lib.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/test_runner.rs:
