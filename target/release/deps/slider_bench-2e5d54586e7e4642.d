/root/repo/target/release/deps/slider_bench-2e5d54586e7e4642.d: crates/bench/src/lib.rs crates/bench/src/datasets.rs crates/bench/src/driver.rs crates/bench/src/report.rs

/root/repo/target/release/deps/slider_bench-2e5d54586e7e4642: crates/bench/src/lib.rs crates/bench/src/datasets.rs crates/bench/src/driver.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/datasets.rs:
crates/bench/src/driver.rs:
crates/bench/src/report.rs:
