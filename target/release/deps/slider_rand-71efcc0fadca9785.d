/root/repo/target/release/deps/slider_rand-71efcc0fadca9785.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/libslider_rand-71efcc0fadca9785.rlib: shims/rand/src/lib.rs

/root/repo/target/release/deps/libslider_rand-71efcc0fadca9785.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
