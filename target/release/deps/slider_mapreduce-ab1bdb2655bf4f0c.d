/root/repo/target/release/deps/slider_mapreduce-ab1bdb2655bf4f0c.d: crates/mapreduce/src/lib.rs crates/mapreduce/src/app.rs crates/mapreduce/src/error.rs crates/mapreduce/src/feeder.rs crates/mapreduce/src/pipeline.rs crates/mapreduce/src/runtime.rs crates/mapreduce/src/shuffle.rs crates/mapreduce/src/split.rs crates/mapreduce/src/stats.rs crates/mapreduce/src/windowed.rs

/root/repo/target/release/deps/slider_mapreduce-ab1bdb2655bf4f0c: crates/mapreduce/src/lib.rs crates/mapreduce/src/app.rs crates/mapreduce/src/error.rs crates/mapreduce/src/feeder.rs crates/mapreduce/src/pipeline.rs crates/mapreduce/src/runtime.rs crates/mapreduce/src/shuffle.rs crates/mapreduce/src/split.rs crates/mapreduce/src/stats.rs crates/mapreduce/src/windowed.rs

crates/mapreduce/src/lib.rs:
crates/mapreduce/src/app.rs:
crates/mapreduce/src/error.rs:
crates/mapreduce/src/feeder.rs:
crates/mapreduce/src/pipeline.rs:
crates/mapreduce/src/runtime.rs:
crates/mapreduce/src/shuffle.rs:
crates/mapreduce/src/split.rs:
crates/mapreduce/src/stats.rs:
crates/mapreduce/src/windowed.rs:
