/root/repo/target/release/deps/slider_dcache-2c3935cbf31c75ec.d: crates/dcache/src/lib.rs crates/dcache/src/gc.rs crates/dcache/src/master.rs crates/dcache/src/store.rs

/root/repo/target/release/deps/slider_dcache-2c3935cbf31c75ec: crates/dcache/src/lib.rs crates/dcache/src/gc.rs crates/dcache/src/master.rs crates/dcache/src/store.rs

crates/dcache/src/lib.rs:
crates/dcache/src/gc.rs:
crates/dcache/src/master.rs:
crates/dcache/src/store.rs:
