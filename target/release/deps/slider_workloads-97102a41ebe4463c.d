/root/repo/target/release/deps/slider_workloads-97102a41ebe4463c.d: crates/workloads/src/lib.rs crates/workloads/src/glasnost.rs crates/workloads/src/netsession.rs crates/workloads/src/pageviews.rs crates/workloads/src/points.rs crates/workloads/src/text.rs crates/workloads/src/twitter.rs

/root/repo/target/release/deps/slider_workloads-97102a41ebe4463c: crates/workloads/src/lib.rs crates/workloads/src/glasnost.rs crates/workloads/src/netsession.rs crates/workloads/src/pageviews.rs crates/workloads/src/points.rs crates/workloads/src/text.rs crates/workloads/src/twitter.rs

crates/workloads/src/lib.rs:
crates/workloads/src/glasnost.rs:
crates/workloads/src/netsession.rs:
crates/workloads/src/pageviews.rs:
crates/workloads/src/points.rs:
crates/workloads/src/text.rs:
crates/workloads/src/twitter.rs:
