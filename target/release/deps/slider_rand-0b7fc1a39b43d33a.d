/root/repo/target/release/deps/slider_rand-0b7fc1a39b43d33a.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/slider_rand-0b7fc1a39b43d33a: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
