/root/repo/target/release/deps/slider_cluster-05bfdc74c73892fa.d: crates/cluster/src/lib.rs crates/cluster/src/machine.rs crates/cluster/src/scheduler.rs crates/cluster/src/simulator.rs crates/cluster/src/task.rs crates/cluster/src/topology.rs

/root/repo/target/release/deps/libslider_cluster-05bfdc74c73892fa.rlib: crates/cluster/src/lib.rs crates/cluster/src/machine.rs crates/cluster/src/scheduler.rs crates/cluster/src/simulator.rs crates/cluster/src/task.rs crates/cluster/src/topology.rs

/root/repo/target/release/deps/libslider_cluster-05bfdc74c73892fa.rmeta: crates/cluster/src/lib.rs crates/cluster/src/machine.rs crates/cluster/src/scheduler.rs crates/cluster/src/simulator.rs crates/cluster/src/task.rs crates/cluster/src/topology.rs

crates/cluster/src/lib.rs:
crates/cluster/src/machine.rs:
crates/cluster/src/scheduler.rs:
crates/cluster/src/simulator.rs:
crates/cluster/src/task.rs:
crates/cluster/src/topology.rs:
