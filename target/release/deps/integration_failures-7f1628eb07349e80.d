/root/repo/target/release/deps/integration_failures-7f1628eb07349e80.d: crates/bench/../../tests/integration_failures.rs

/root/repo/target/release/deps/integration_failures-7f1628eb07349e80: crates/bench/../../tests/integration_failures.rs

crates/bench/../../tests/integration_failures.rs:
