/root/repo/target/release/deps/slider_core-af94c51ca1fa1d9e.d: crates/core/src/lib.rs crates/core/src/coalescing.rs crates/core/src/combiner.rs crates/core/src/error.rs crates/core/src/folding.rs crates/core/src/hash.rs crates/core/src/memo.rs crates/core/src/multilevel.rs crates/core/src/randomized.rs crates/core/src/rotating.rs crates/core/src/stats.rs crates/core/src/strawman.rs crates/core/src/tree.rs

/root/repo/target/release/deps/slider_core-af94c51ca1fa1d9e: crates/core/src/lib.rs crates/core/src/coalescing.rs crates/core/src/combiner.rs crates/core/src/error.rs crates/core/src/folding.rs crates/core/src/hash.rs crates/core/src/memo.rs crates/core/src/multilevel.rs crates/core/src/randomized.rs crates/core/src/rotating.rs crates/core/src/stats.rs crates/core/src/strawman.rs crates/core/src/tree.rs

crates/core/src/lib.rs:
crates/core/src/coalescing.rs:
crates/core/src/combiner.rs:
crates/core/src/error.rs:
crates/core/src/folding.rs:
crates/core/src/hash.rs:
crates/core/src/memo.rs:
crates/core/src/multilevel.rs:
crates/core/src/randomized.rs:
crates/core/src/rotating.rs:
crates/core/src/stats.rs:
crates/core/src/strawman.rs:
crates/core/src/tree.rs:
