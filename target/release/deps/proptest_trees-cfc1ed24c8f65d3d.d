/root/repo/target/release/deps/proptest_trees-cfc1ed24c8f65d3d.d: crates/core/tests/proptest_trees.rs

/root/repo/target/release/deps/proptest_trees-cfc1ed24c8f65d3d: crates/core/tests/proptest_trees.rs

crates/core/tests/proptest_trees.rs:
