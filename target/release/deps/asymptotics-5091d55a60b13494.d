/root/repo/target/release/deps/asymptotics-5091d55a60b13494.d: crates/core/tests/asymptotics.rs

/root/repo/target/release/deps/asymptotics-5091d55a60b13494: crates/core/tests/asymptotics.rs

crates/core/tests/asymptotics.rs:
