/root/repo/target/release/deps/slider_apps-c2a70fef71dcd2d1.d: crates/apps/src/lib.rs crates/apps/src/glasnost.rs crates/apps/src/hct.rs crates/apps/src/kmeans.rs crates/apps/src/knn.rs crates/apps/src/matrix.rs crates/apps/src/netsession.rs crates/apps/src/substr.rs crates/apps/src/twitter.rs

/root/repo/target/release/deps/slider_apps-c2a70fef71dcd2d1: crates/apps/src/lib.rs crates/apps/src/glasnost.rs crates/apps/src/hct.rs crates/apps/src/kmeans.rs crates/apps/src/knn.rs crates/apps/src/matrix.rs crates/apps/src/netsession.rs crates/apps/src/substr.rs crates/apps/src/twitter.rs

crates/apps/src/lib.rs:
crates/apps/src/glasnost.rs:
crates/apps/src/hct.rs:
crates/apps/src/kmeans.rs:
crates/apps/src/knn.rs:
crates/apps/src/matrix.rs:
crates/apps/src/netsession.rs:
crates/apps/src/substr.rs:
crates/apps/src/twitter.rs:
