/root/repo/target/release/deps/slider_cluster-28d36859dd272663.d: crates/cluster/src/lib.rs crates/cluster/src/machine.rs crates/cluster/src/scheduler.rs crates/cluster/src/simulator.rs crates/cluster/src/task.rs crates/cluster/src/topology.rs

/root/repo/target/release/deps/slider_cluster-28d36859dd272663: crates/cluster/src/lib.rs crates/cluster/src/machine.rs crates/cluster/src/scheduler.rs crates/cluster/src/simulator.rs crates/cluster/src/task.rs crates/cluster/src/topology.rs

crates/cluster/src/lib.rs:
crates/cluster/src/machine.rs:
crates/cluster/src/scheduler.rs:
crates/cluster/src/simulator.rs:
crates/cluster/src/task.rs:
crates/cluster/src/topology.rs:
