/root/repo/target/release/deps/slider_dcache-f283f849237bf36a.d: crates/dcache/src/lib.rs crates/dcache/src/gc.rs crates/dcache/src/master.rs crates/dcache/src/store.rs

/root/repo/target/release/deps/libslider_dcache-f283f849237bf36a.rlib: crates/dcache/src/lib.rs crates/dcache/src/gc.rs crates/dcache/src/master.rs crates/dcache/src/store.rs

/root/repo/target/release/deps/libslider_dcache-f283f849237bf36a.rmeta: crates/dcache/src/lib.rs crates/dcache/src/gc.rs crates/dcache/src/master.rs crates/dcache/src/store.rs

crates/dcache/src/lib.rs:
crates/dcache/src/gc.rs:
crates/dcache/src/master.rs:
crates/dcache/src/store.rs:
