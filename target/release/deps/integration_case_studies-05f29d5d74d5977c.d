/root/repo/target/release/deps/integration_case_studies-05f29d5d74d5977c.d: crates/bench/../../tests/integration_case_studies.rs

/root/repo/target/release/deps/integration_case_studies-05f29d5d74d5977c: crates/bench/../../tests/integration_case_studies.rs

crates/bench/../../tests/integration_case_studies.rs:
