/root/repo/target/release/deps/slider_criterion-050f44053a3eaa33.d: shims/criterion/src/lib.rs

/root/repo/target/release/deps/slider_criterion-050f44053a3eaa33: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
