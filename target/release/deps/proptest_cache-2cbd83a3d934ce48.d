/root/repo/target/release/deps/proptest_cache-2cbd83a3d934ce48.d: crates/dcache/tests/proptest_cache.rs

/root/repo/target/release/deps/proptest_cache-2cbd83a3d934ce48: crates/dcache/tests/proptest_cache.rs

crates/dcache/tests/proptest_cache.rs:
