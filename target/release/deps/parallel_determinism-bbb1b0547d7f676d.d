/root/repo/target/release/deps/parallel_determinism-bbb1b0547d7f676d.d: crates/bench/../../tests/parallel_determinism.rs

/root/repo/target/release/deps/parallel_determinism-bbb1b0547d7f676d: crates/bench/../../tests/parallel_determinism.rs

crates/bench/../../tests/parallel_determinism.rs:
