/root/repo/target/release/deps/integration_determinism-3279bb410430aedf.d: crates/bench/../../tests/integration_determinism.rs

/root/repo/target/release/deps/integration_determinism-3279bb410430aedf: crates/bench/../../tests/integration_determinism.rs

crates/bench/../../tests/integration_determinism.rs:
