/root/repo/target/release/deps/slider_query-0eb149c0d8591433.d: crates/query/src/lib.rs crates/query/src/exec.rs crates/query/src/parser.rs crates/query/src/pigmix.rs crates/query/src/plan.rs crates/query/src/stage.rs

/root/repo/target/release/deps/slider_query-0eb149c0d8591433: crates/query/src/lib.rs crates/query/src/exec.rs crates/query/src/parser.rs crates/query/src/pigmix.rs crates/query/src/plan.rs crates/query/src/stage.rs

crates/query/src/lib.rs:
crates/query/src/exec.rs:
crates/query/src/parser.rs:
crates/query/src/pigmix.rs:
crates/query/src/plan.rs:
crates/query/src/stage.rs:
