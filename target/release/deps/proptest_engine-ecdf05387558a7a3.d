/root/repo/target/release/deps/proptest_engine-ecdf05387558a7a3.d: crates/bench/../../tests/proptest_engine.rs

/root/repo/target/release/deps/proptest_engine-ecdf05387558a7a3: crates/bench/../../tests/proptest_engine.rs

crates/bench/../../tests/proptest_engine.rs:
