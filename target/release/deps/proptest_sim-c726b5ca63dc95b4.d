/root/repo/target/release/deps/proptest_sim-c726b5ca63dc95b4.d: crates/cluster/tests/proptest_sim.rs

/root/repo/target/release/deps/proptest_sim-c726b5ca63dc95b4: crates/cluster/tests/proptest_sim.rs

crates/cluster/tests/proptest_sim.rs:
