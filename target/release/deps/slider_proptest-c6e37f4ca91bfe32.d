/root/repo/target/release/deps/slider_proptest-c6e37f4ca91bfe32.d: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

/root/repo/target/release/deps/slider_proptest-c6e37f4ca91bfe32: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

shims/proptest/src/lib.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/test_runner.rs:
