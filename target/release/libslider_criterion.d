/root/repo/target/release/libslider_criterion.rlib: /root/repo/shims/criterion/src/lib.rs
