/root/repo/target/release/libslider_rand.rlib: /root/repo/shims/rand/src/lib.rs
