/root/repo/target/release/examples/query_dashboard-cd013b2caab873cb.d: crates/query/../../examples/query_dashboard.rs

/root/repo/target/release/examples/query_dashboard-cd013b2caab873cb: crates/query/../../examples/query_dashboard.rs

crates/query/../../examples/query_dashboard.rs:
