/root/repo/target/release/examples/glasnost_monitoring-60b83f75a6c4dfba.d: crates/apps/../../examples/glasnost_monitoring.rs

/root/repo/target/release/examples/glasnost_monitoring-60b83f75a6c4dfba: crates/apps/../../examples/glasnost_monitoring.rs

crates/apps/../../examples/glasnost_monitoring.rs:
