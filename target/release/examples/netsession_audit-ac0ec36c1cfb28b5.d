/root/repo/target/release/examples/netsession_audit-ac0ec36c1cfb28b5.d: crates/apps/../../examples/netsession_audit.rs

/root/repo/target/release/examples/netsession_audit-ac0ec36c1cfb28b5: crates/apps/../../examples/netsession_audit.rs

crates/apps/../../examples/netsession_audit.rs:
