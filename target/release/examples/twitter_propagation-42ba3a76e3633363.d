/root/repo/target/release/examples/twitter_propagation-42ba3a76e3633363.d: crates/apps/../../examples/twitter_propagation.rs

/root/repo/target/release/examples/twitter_propagation-42ba3a76e3633363: crates/apps/../../examples/twitter_propagation.rs

crates/apps/../../examples/twitter_propagation.rs:
