/root/repo/target/release/examples/quickstart-c0416be69f89e76e.d: crates/apps/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-c0416be69f89e76e: crates/apps/../../examples/quickstart.rs

crates/apps/../../examples/quickstart.rs:
