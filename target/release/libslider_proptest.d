/root/repo/target/release/libslider_proptest.rlib: /root/repo/shims/proptest/src/lib.rs /root/repo/shims/proptest/src/strategy.rs /root/repo/shims/proptest/src/test_runner.rs
