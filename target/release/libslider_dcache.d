/root/repo/target/release/libslider_dcache.rlib: /root/repo/crates/dcache/src/gc.rs /root/repo/crates/dcache/src/lib.rs /root/repo/crates/dcache/src/master.rs /root/repo/crates/dcache/src/store.rs
