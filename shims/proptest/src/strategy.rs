//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real crate there is no value-tree / shrinking machinery: a
/// strategy simply produces a fresh value from the deterministic test
/// generator.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
}

/// Erases a strategy's concrete type, so heterogeneous strategies producing
/// the same value type can share a `Vec` (used by [`prop_oneof!`]).
///
/// [`prop_oneof!`]: crate::prop_oneof
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Picks one of several boxed strategies uniformly per case. Built by the
/// [`prop_oneof!`] macro.
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct OneOf<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> OneOf<V> {
    /// Builds the union; `arms` must be non-empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        let pick = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[pick].new_value(rng)
    }
}

macro_rules! int_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategies!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
);
