//! Std-only stand-in for the subset of the [`proptest`] crate API this
//! workspace uses, so the repository builds and tests without network
//! access.
//!
//! The workspace consumes it under the dependency name `proptest` (see the
//! root `Cargo.toml`), so property tests read exactly like the real crate:
//! the [`proptest!`] macro, [`prop_assert!`]/[`prop_assert_eq!`],
//! [`prop_oneof!`], `collection::vec`, `option::of`, `bool::ANY`, integer
//! range strategies, tuple strategies and `prop_map`.
//!
//! Differences from the real crate, deliberate for a zero-dependency shim:
//!
//! * **No shrinking.** A failing case reports the case number and message
//!   and panics immediately. Reproduction is still exact because the
//!   generator is seeded deterministically from the test name.
//! * **No persistence files.** Every run replays the same deterministic
//!   case sequence.
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive-exclusive (or inclusive-inclusive) length range for
    /// [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec length range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// A strategy producing `Vec`s whose elements come from `element` and
    /// whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates `true` and `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// `Option` strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Wraps `inner`'s values in `Some` most of the time, `None` otherwise
    /// (the real crate defaults to 90% `Some`; this shim uses 75%).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone, Copy)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.new_value(rng))
            }
        }
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs one test-case body, converting a failed `prop_assert*` into an
/// error. Used by the [`proptest!`] expansion; not public API.
#[doc(hidden)]
pub fn __run_case(
    body: impl FnOnce() -> Result<(), test_runner::TestCaseError>,
) -> Result<(), test_runner::TestCaseError> {
    body()
}

/// The macro behind `proptest! { ... }`: expands each `fn name(arg in
/// strategy, ...) { body }` into a `#[test]` that draws `cases` inputs from
/// a deterministic generator and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strategy), &mut rng);)*
                    let outcome = $crate::__run_case(move || {
                        $body
                        ::std::result::Result::Ok(())
                    });
                    if let ::std::result::Result::Err(e) = outcome {
                        ::std::panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name), case + 1, config.cases, e
                        );
                    }
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strategy),*) $body)*
        }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// aborting the process) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {:?} != {:?}", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "{}: {:?} != {:?}", ::std::format!($($fmt)*), left, right
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: both sides equal {:?}",
            left
        );
    }};
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $($crate::strategy::boxed($strategy)),+
        ])
    };
}
