//! Configuration, the deterministic generator, and case failure reporting.

use std::fmt;

/// Per-test configuration; only `cases` is honoured by this shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each `proptest!` test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic SplitMix64 generator seeded from the test's name, so every
/// run of a given test replays the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from `name` (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// The next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from the inclusive range `[lo, hi]`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as usize
    }
}

/// A failed `prop_assert!`/`prop_assert_eq!` inside a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}
