//! Std-only stand-in for the subset of the [`criterion`] crate API this
//! workspace uses, so benchmarks build and run without network access.
//!
//! The workspace consumes it under the dependency name `criterion` (see the
//! root `Cargo.toml`), so bench targets read exactly like the real crate:
//! [`Criterion`], [`BenchmarkId`], benchmark groups, `bench_with_input`,
//! `b.iter(..)`, [`criterion_group!`] and [`criterion_main!`].
//!
//! Measurement is deliberately simple — a warm-up loop followed by a timed
//! loop sized by `measurement_time`, reporting the mean wall-clock time per
//! iteration. There is no statistical analysis, outlier rejection, or HTML
//! report; results print one line per benchmark.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver; holds the timing configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Sets how many samples each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the time budget for the timed phase of each benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the time budget for the warm-up phase of each benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        self.run_one(&id, f);
    }

    fn run_one(&self, label: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            warm_up: self.warm_up_time,
            measurement: self.measurement_time,
            samples: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut bencher);
        println!("bench {label:<56} {:>14.1} ns/iter", bencher.mean_ns);
    }
}

/// Identifies one benchmark within a group: a function name plus a
/// parameter rendered with `Display`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// A named collection of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        self.criterion.run_one(&label, |b| f(b, input));
        self
    }

    /// Runs a benchmark without a parameter.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(&label, |b| f(b));
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine`, first warming up, then sampling until the
    /// measurement budget is spent, and records the mean ns/iteration.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        // Size each sample so `samples` of them roughly fill the budget.
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let budget = self.measurement.as_secs_f64();
        let iters_per_sample =
            ((budget / self.samples as f64 / per_iter.max(1e-9)).ceil() as u64).max(1);

        let mut total = Duration::ZERO;
        let mut total_iters: u64 = 0;
        let bench_start = Instant::now();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            total += t0.elapsed();
            total_iters += iters_per_sample;
            if bench_start.elapsed() > self.measurement * 2 {
                break; // don't let a mis-estimated sample size run away
            }
        }
        self.mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    }
}

/// Bundles benchmark functions into a runner, mirroring the real crate's
/// two forms (`name/config/targets` and the positional short form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates `main` running each group, mirroring the real crate.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
