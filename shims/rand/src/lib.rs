//! Std-only stand-in for the subset of the [`rand`] crate API this
//! workspace uses, so the repository builds without network access.
//!
//! The workspace consumes it under the dependency name `rand` (see the
//! root `Cargo.toml`), so call sites read exactly like the real crate:
//! `SmallRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range`,
//! `Rng::gen_bool`, and `distributions::Distribution`.
//!
//! The generator is SplitMix64 — deterministic, seedable, and plenty for
//! synthetic workload generation and tests. Sequences differ from the real
//! `rand` crate's `SmallRng`; nothing in this repository depends on the
//! specific values, only on determinism and a reasonable distribution.
//!
//! [`rand`]: https://crates.io/crates/rand

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Random number generators.
pub mod rngs {
    /// A small, fast, seedable generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SmallRng {
        pub(crate) fn from_state(state: u64) -> Self {
            SmallRng { state }
        }

        pub(crate) fn next(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sampling values from a distribution object.
pub mod distributions {
    /// A distribution that can produce values of type `T` given a source of
    /// randomness.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

/// A generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::SmallRng::from_state(seed)
    }
}

/// Types that [`Rng::gen`] can produce from one 64-bit draw.
pub trait StandardSample {
    /// Converts one uniform 64-bit draw into a value.
    fn from_u64(raw: u64) -> Self;
}

impl StandardSample for u64 {
    fn from_u64(raw: u64) -> Self {
        raw
    }
}

impl StandardSample for u32 {
    fn from_u64(raw: u64) -> Self {
        (raw >> 32) as u32
    }
}

impl StandardSample for f64 {
    fn from_u64(raw: u64) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn from_u64(raw: u64) -> Self {
        raw & 1 == 1
    }
}

/// A range that [`Rng::gen_range`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one value in the range.
    fn sample_one<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_ranges {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample an empty range");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing generator interface.
pub trait Rng {
    /// The next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Draws one value of `T` from the standard (uniform) distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl Rng for rngs::SmallRng {
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_hit_their_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets of 0..5 hit");
        for _ in 0..100 {
            let v = rng.gen_range(3u64..=4);
            assert!(v == 3 || v == 4);
        }
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn works_through_mut_references() {
        fn draw(rng: &mut impl Rng) -> u64 {
            rng.gen()
        }
        let mut rng = SmallRng::seed_from_u64(3);
        let _ = draw(&mut rng);
        let by_ref: &mut SmallRng = &mut rng;
        let _ = draw(&mut &mut *by_ref);
    }
}
