//! slider-join integration: the incremental windowed join must be
//! indistinguishable — in outputs AND stats — from brute force, from its
//! recompute twin, across thread counts, under disorder within the
//! lateness bound, and under seeded index-shard faults.

use slider_apps::FollowPostJoin;
use slider_join::{JoinConfig, JoinMode, JoinStats, JoinedJob};
use slider_mapreduce::{EngineShared, EventTimeConfig, JobFaultPlan, SpanKind, Stamped, TraceSink};
use slider_workloads::twitter::{follow_stream, generate, FollowEvent, Tweet, TwitterConfig};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const LATENESS: u64 = 12;
/// Chunk size chosen to not divide the stream evenly, so poll boundaries
/// land at awkward places.
const CHUNK: usize = 17;

fn event_config() -> EventTimeConfig {
    EventTimeConfig {
        epoch_len: 16,
        records_per_split: 8,
        window_epochs: Some(5),
        lateness: LATENESS,
    }
}

fn streams(total_time: u64) -> (Vec<Stamped<FollowEvent>>, Vec<Stamped<Tweet>>) {
    let config = TwitterConfig {
        users: 48,
        avg_follows: 5,
        urls: 24,
        repost_probability: 0.3,
    };
    let dataset = generate(0x901d, &config, usize::try_from(total_time).unwrap());
    let follows = follow_stream(0xf011, &dataset.graph, dataset.tweets.len(), total_time);
    let left = follows
        .into_iter()
        .enumerate()
        .map(|(i, ev)| Stamped::new(ev.time, u64::try_from(i).unwrap(), ev))
        .collect();
    let right = dataset
        .tweets
        .iter()
        .enumerate()
        .map(|(i, tw)| Stamped::new(tw.time, u64::try_from(i).unwrap(), tw.clone()))
        .collect();
    (left, right)
}

/// Shuffles a stamped stream so no record is displaced past the lateness
/// bound: deterministic bounded disorder, same multiset.
fn jumble<R: Clone>(stream: &[Stamped<R>], seed: u64) -> Vec<Stamped<R>> {
    let mut out = stream.to_vec();
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in 0..out.len() {
        let j = i + rng.gen_range(0..4usize.min(out.len() - i));
        if out[j].time.abs_diff(out[i].time) <= LATENESS / 2 {
            out.swap(i, j);
        }
    }
    out
}

fn build(shared: &EngineShared, config: JoinConfig) -> JoinedJob<FollowPostJoin> {
    JoinedJob::new(FollowPostJoin, config, shared).expect("join job builds")
}

/// Drives both streams through the job in awkward interleaved chunks,
/// checking the view against brute force after every poll. Returns the
/// run fingerprint: every delta's Debug rendering in emission order
/// (poll boundaries marked, so grouping is part of the fingerprint), the
/// final view, and the cumulative join stats.
fn drive(
    job: &mut JoinedJob<FollowPostJoin>,
    left: &[Stamped<FollowEvent>],
    right: &[Stamped<Tweet>],
) -> (Vec<String>, String, JoinStats) {
    let mut deltas = Vec::new();
    let mut record = |run: &slider_join::JoinRunOf<FollowPostJoin>| {
        deltas.extend(run.deltas.iter().map(|d| format!("{d:?}")));
        if !run.deltas.is_empty() {
            deltas.push("|".into());
        }
    };
    let (mut li, mut ri) = (0usize, 0usize);
    while li < left.len() || ri < right.len() {
        let lend = (li + CHUNK).min(left.len());
        job.ingest_left(left[li..lend].iter().cloned());
        li = lend;
        let rend = (ri + CHUNK).min(right.len());
        job.ingest_right(right[ri..rend].iter().cloned());
        ri = rend;
        let run = job.poll().expect("poll");
        record(&run);
        assert_eq!(
            job.view(),
            &job.reference_view(),
            "view drifted from brute force"
        );
    }
    let run = job.close_all().expect("close_all");
    record(&run);
    assert_eq!(job.view(), &job.reference_view());
    (deltas, format!("{:?}", job.view()), job.stats())
}

#[test]
fn incremental_view_equals_brute_force_and_recompute_twin() {
    let (left, right) = streams(400);
    let shared = EngineShared::builder().threads(2).build();
    let mut inc = build(&shared, JoinConfig::new(event_config()));
    let mut rec = build(
        &shared,
        JoinConfig::new(event_config()).with_mode(JoinMode::Recompute),
    );
    let (_, inc_view, inc_stats) = drive(&mut inc, &left, &right);
    let (_, rec_view, rec_stats) = drive(&mut rec, &left, &right);
    assert_eq!(inc_view, rec_view, "maintenance strategy must be invisible");
    assert!(inc_stats.pairs_added > 0);
    assert!(
        inc_stats.pairs_removed > 0,
        "window evictions retracted pairs"
    );
    assert_eq!(rec_stats.probe_work, 0);
    assert_eq!(inc_stats.recompute_work, 0);
}

#[test]
fn join_is_bit_identical_across_thread_counts() {
    let (left, right) = streams(300);
    let mut fingerprints = Vec::new();
    for threads in [1usize, 2, 4] {
        let shared = EngineShared::builder().threads(threads).build();
        let mut job = build(&shared, JoinConfig::new(event_config()));
        fingerprints.push(drive(&mut job, &left, &right));
    }
    assert_eq!(fingerprints[0], fingerprints[1], "1 vs 2 threads");
    assert_eq!(fingerprints[1], fingerprints[2], "2 vs 4 threads");
}

#[test]
fn disorder_within_lateness_is_invisible() {
    let (left, right) = streams(300);
    let shared = EngineShared::builder().threads(2).build();
    let mut sorted = build(&shared, JoinConfig::new(event_config()));
    let reference = drive(&mut sorted, &left, &right);
    // Both sides late within the bound, jumbled differently. Jumbling can
    // nudge a chunk-boundary watermark across an epoch edge, regrouping
    // epoch closes across polls — which may create *transient* pairs (an
    // insertion seeing a record the sorted schedule evicted one poll
    // earlier, retracted again within the same poll). The invariants are
    // the NET signed delta multiset, the view (checked against brute
    // force after every poll inside `drive`), and the per-record
    // counters; transient pair churn is schedule-dependent by design.
    let jl = jumble(&left, 0xa);
    let jr = jumble(&right, 0xb);
    assert!(
        jl != left || jr != right,
        "streams must actually be disordered"
    );
    assert!(
        max_time_displacement(&jl) <= LATENESS,
        "left jumble out of bound"
    );
    assert!(
        max_time_displacement(&jr) <= LATENESS,
        "right jumble out of bound"
    );
    let mut jumbled = build(&shared, JoinConfig::new(event_config()));
    let got = drive(&mut jumbled, &jl, &jr);
    assert_eq!(
        net_deltas(&got.0),
        net_deltas(&reference.0),
        "net delta multiset"
    );
    assert_eq!(got.1, reference.1, "views must match the sorted twin");
    let (a, b) = (got.2, reference.2);
    assert_eq!(a.steps, b.steps, "same feeder events either way");
    assert_eq!(a.probes, b.probes, "same delta records probed");
    assert_eq!(
        a.pairs_added - a.pairs_removed,
        b.pairs_added - b.pairs_removed,
        "net pair flow must match the sorted twin"
    );
}

/// Largest gap by which a record trails an earlier-arriving, later-stamped
/// record — the quantity the lateness bound is stated over.
fn max_time_displacement<R>(stream: &[Stamped<R>]) -> u64 {
    let mut max_seen = 0u64;
    let mut worst = 0u64;
    for s in stream {
        worst = worst.max(max_seen.saturating_sub(s.time));
        max_seen = max_seen.max(s.time);
    }
    worst
}

/// Collapses a delta sequence to its net effect: +1 for an add, -1 for a
/// retract of the same (key, left, right) pair, zero entries dropped.
fn net_deltas(deltas: &[String]) -> std::collections::BTreeMap<String, i64> {
    let mut net = std::collections::BTreeMap::new();
    for d in deltas.iter().filter(|s| *s != "|") {
        let (pair, sign) = if d.contains("added: true") {
            (d.replace("added: true", "added: _"), 1)
        } else {
            (d.replace("added: false", "added: _"), -1)
        };
        *net.entry(pair).or_insert(0) += sign;
    }
    net.retain(|_, v| *v != 0);
    net
}

#[test]
fn seeded_index_faults_are_invisible_to_the_join() {
    let (left, right) = streams(300);
    let shared = EngineShared::builder().threads(2).build();
    let mut clean = build(&shared, JoinConfig::new(event_config()));
    let reference = drive(&mut clean, &left, &right);
    // Lose memoized index shards on both sides at several runs: recovery
    // must rebuild them with no effect on join outputs or join-layer
    // stats (rebuilds are metered as recovery, so side work may only
    // grow, never change the probe layer).
    let left_plan = JobFaultPlan::none()
        .lose_memo(2, vec![0, 2])
        .lose_memo(7, vec![1, 3]);
    let right_plan = JobFaultPlan::none()
        .lose_memo(3, vec![1])
        .lose_memo(6, vec![0, 3]);
    let mut faulty = build(
        &shared,
        JoinConfig::new(event_config())
            .with_left_faults(left_plan)
            .with_right_faults(right_plan),
    );
    let got = drive(&mut faulty, &left, &right);
    assert_eq!(got.0, reference.0, "deltas must survive index-shard loss");
    assert_eq!(got.1, reference.1, "view must survive index-shard loss");
    let (a, b) = (got.2, reference.2);
    assert_eq!(
        (
            a.advances,
            a.steps,
            a.probes,
            a.pairs_added,
            a.pairs_removed,
            a.probe_work
        ),
        (
            b.advances,
            b.steps,
            b.probes,
            b.pairs_added,
            b.pairs_removed,
            b.probe_work
        ),
        "probe-layer stats must be untouched by recovery"
    );
    assert!(
        a.side_work >= b.side_work,
        "recovery cannot reduce side work"
    );
}

#[test]
fn one_idle_side_holds_the_joint_watermark() {
    let (left, right) = streams(200);
    let shared = EngineShared::builder().build();
    let mut job = build(&shared, JoinConfig::new(event_config()));
    job.ingest_left(left.iter().cloned());
    let run = job.poll().expect("poll");
    assert!(
        run.is_empty(),
        "nothing may close while the right side is idle"
    );
    assert_eq!(job.joint_watermark(), None);
    assert!(job.view().is_empty());
    job.ingest_right(right.iter().cloned());
    job.poll().expect("poll");
    assert!(job.joint_watermark().is_some());
    assert_eq!(job.view(), &job.reference_view());
    assert!(
        !job.view().is_empty(),
        "streams share users, so pairs exist"
    );
}

#[test]
fn retracting_an_epoch_matches_a_twin_that_never_saw_it() {
    let (left, right) = streams(64);
    let shared = EngineShared::builder().build();
    // Window of 5 epochs x 16 ticks over 64 ticks: nothing evicts, so a
    // twin that never ingests left epoch 1 holds exactly the records the
    // retracting job holds after the retraction.
    let mut job = build(&shared, JoinConfig::new(event_config()));
    job.ingest_left(left.iter().cloned());
    job.ingest_right(right.iter().cloned());
    job.close_all().expect("close_all");
    let run = job.retract_left(1).expect("retract epoch 1");
    assert!(run.stats.pairs_removed > 0, "epoch 1's pairs must retract");
    assert_eq!(job.view(), &job.reference_view());

    let mut twin = build(&shared, JoinConfig::new(event_config()));
    twin.ingest_left(left.iter().filter(|s| !(16..32).contains(&s.time)).cloned());
    twin.ingest_right(right.iter().cloned());
    twin.close_all().expect("close_all");
    assert_eq!(
        job.view(),
        twin.view(),
        "retraction must equal the never-saw-it twin"
    );
}

#[test]
fn join_trace_reconciles_with_stats_end_to_end() {
    let (left, right) = streams(300);
    let trace = TraceSink::enabled();
    let shared = EngineShared::builder()
        .threads(2)
        .trace(trace.clone())
        .build();
    let mut job = build(&shared, JoinConfig::new(event_config()));
    let (_, _, stats) = drive(&mut job, &left, &right);
    let snap = trace.snapshot().expect("trace enabled");
    assert_eq!(snap.counter("join.probe_work"), stats.probe_work);
    assert_eq!(snap.counter("join.pairs_added"), stats.pairs_added);
    assert_eq!(snap.counter("join.pairs_removed"), stats.pairs_removed);
    assert_eq!(snap.counter("join.steps"), stats.steps);
    assert_eq!(snap.counter("join.probes"), stats.probes);
    assert_eq!(snap.counter("join.advances"), stats.advances);
    assert_eq!(
        snap.work_total("join", SpanKind::Join, None),
        stats.probe_work,
        "join-track span leaves must sum to the modeled probe work"
    );
}

#[test]
fn sides_share_the_engine_but_not_a_cache_namespace() {
    let shared = EngineShared::builder()
        .cache(slider_dcache::CacheConfig::paper_defaults(4))
        .build();
    let a = build(&shared, JoinConfig::new(event_config()));
    let b = build(&shared, JoinConfig::new(event_config()));
    let namespaces = [
        a.left_job().cache_namespace(),
        a.right_job().cache_namespace(),
        b.left_job().cache_namespace(),
        b.right_job().cache_namespace(),
    ];
    for (i, x) in namespaces.iter().enumerate() {
        for y in &namespaces[i + 1..] {
            assert_ne!(x, y, "every side of every join owns its own namespace");
        }
    }
}
