//! Service-layer integration: many tenants, one engine, zero surprises.
//!
//! A [`ServiceRuntime`] multiplexing three tenants with different
//! execution modes over one shared runtime, memoization cache and
//! simulated clock must be a *perfect multiplexer*: per-tenant outputs
//! and run histories bit-identical at every worker-thread count, each
//! tenant indistinguishable from a standalone single-job run over its
//! own records, admission rejections deterministic, and a tenant
//! deregistering mid-stream (with a seeded fault plan running
//! underneath) invisible to everyone else.

use std::collections::BTreeMap;

use slider_apps::Hct;
use slider_dcache::CacheConfig;
use slider_mapreduce::{
    EngineShared, EventFeeder, EventTimeConfig, ExecMode, JobConfig, JobFaultPlan,
    SimulationConfig, Stamped, WindowedJob,
};
use slider_serve::{Decision, RateLimit, ServeStats, ServiceRuntime, TenantId, TenantSpec};
use slider_workloads::disorder::DisorderConfig;
use slider_workloads::multitenant::{
    multitenant_stream, tenant_records, MultiTenantConfig, TenantRequest,
};

const PARTITIONS: usize = 4;
const TENANTS: usize = 3;
const SEED: u64 = 0x5e21;

fn traffic_config() -> MultiTenantConfig {
    MultiTenantConfig {
        tenants: TENANTS,
        requests_per_tenant: 10,
        records_per_request: 6,
        stream: DisorderConfig {
            records: 0, // per-tenant sizes decide
            mean_step: 2,
            lateness: 12,
            vocabulary: 30,
        },
        hot_tenant: Some(1),
        hot_factor: 2,
        mean_arrival_gap: 4,
    }
}

fn traffic() -> Vec<TenantRequest> {
    multitenant_stream(SEED, &traffic_config())
}

fn event() -> EventTimeConfig {
    EventTimeConfig {
        epoch_len: 24,
        records_per_split: 4,
        window_epochs: Some(3),
        lateness: 12,
    }
}

/// One mode per tenant — a genuinely mixed service.
fn mode_of(tenant: usize) -> ExecMode {
    [
        ExecMode::slider_folding(),
        ExecMode::slider_daba(),
        ExecMode::Recompute,
    ][tenant]
}

fn name_of(tenant: usize) -> String {
    format!("tenant{tenant}")
}

fn spec_of(tenant: usize, simulate: bool) -> TenantSpec {
    let mut spec =
        TenantSpec::new(name_of(tenant), mode_of(tenant), event()).with_partitions(PARTITIONS);
    if simulate {
        spec = spec.with_simulation(SimulationConfig::paper_defaults());
    }
    spec
}

fn engine(threads: usize, faults: Option<u64>) -> EngineShared {
    let mut builder = EngineShared::builder()
        .threads(threads)
        .cache(CacheConfig::paper_defaults(PARTITIONS))
        .clock();
    if let Some(seed) = faults {
        builder = builder.faults(JobFaultPlan::seeded(seed, 24, 24, PARTITIONS));
    }
    builder.build()
}

fn stamp(records: &[(u64, u64, String)]) -> Vec<Stamped<String>> {
    records
        .iter()
        .map(|(t, s, line)| Stamped::new(*t, *s, line.clone()))
        .collect()
}

/// The full per-tenant fingerprint of one service run plus the service
/// surfaces, everything a determinism assertion could want.
struct ServiceOutcome {
    /// Per tenant: every run's Debug rendering, in dispatch order
    /// (including the drain at deregistration).
    run_logs: BTreeMap<usize, String>,
    /// Per tenant: point-in-time query fingerprints taken mid-stream.
    query_logs: BTreeMap<usize, String>,
    /// Per tenant: final output + event counters + folded stats.
    finals: BTreeMap<usize, String>,
    /// The metrics endpoint, rendered while all surviving tenants were
    /// still registered.
    metrics: String,
    /// The metrics endpoint again, after every tenant drained.
    final_metrics: String,
    /// Service-wide roll-up after every tenant drained.
    serve_stats: ServeStats,
}

/// Strips every `cache: ...` field from a RunStats Debug rendering. The
/// distributed cache meters read latency in one global float accumulator,
/// so a run's `read_seconds` delta can differ in the last ulps depending
/// on what other tenants did before it — the only field where sharing the
/// engine is observable at all.
fn strip_cache(log: &str) -> String {
    let mut out = String::new();
    let mut rest = log;
    while let Some(start) = rest.find(", cache: ") {
        out.push_str(&rest[..start]);
        let tail = &rest[start..];
        let end = tail.find(", recovery:").expect("recovery follows cache");
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

/// Drives the full traffic mix through a fresh service. When
/// `deregister_mid` names a tenant, that tenant is deregistered after
/// half its requests and the rest of its traffic is dropped on the
/// floor.
fn run_service(
    threads: usize,
    faults: Option<u64>,
    deregister_mid: Option<usize>,
) -> ServiceOutcome {
    let traffic = traffic();
    let mut service: ServiceRuntime<Hct> = ServiceRuntime::new(engine(threads, faults));
    let ids: Vec<TenantId> = (0..TENANTS)
        .map(|i| {
            service
                .register(Hct::new(), spec_of(i, faults.is_some()))
                .expect("register")
        })
        .collect();

    let totals: Vec<usize> = (0..TENANTS)
        .map(|t| traffic.iter().filter(|r| r.tenant == t).count())
        .collect();
    let mut seen = [0usize; TENANTS];
    let mut run_logs: BTreeMap<usize, String> = (0..TENANTS).map(|t| (t, String::new())).collect();
    let mut query_logs: BTreeMap<usize, String> =
        (0..TENANTS).map(|t| (t, String::new())).collect();
    let mut finals: BTreeMap<usize, String> = BTreeMap::new();

    for request in &traffic {
        let tenant = request.tenant;
        seen[tenant] += 1;
        if deregister_mid == Some(tenant) && seen[tenant] * 2 > totals[tenant] {
            if service.tenant_id(&name_of(tenant)).is_some() {
                let report = service.deregister(ids[tenant]).expect("deregister");
                run_logs
                    .get_mut(&tenant)
                    .unwrap()
                    .push_str(&format!("drain:{:?};", report.final_runs));
                finals.insert(
                    tenant,
                    format!("{:?}|{:?}|{:?}", report.output, report.event, report.stats),
                );
            }
            continue; // the rest of this tenant's traffic is dropped
        }
        let outcome = service
            .ingest(ids[tenant], request.arrival, stamp(&request.records))
            .expect("ingest");
        assert!(outcome.decision.is_admitted(), "no limits configured");
        run_logs
            .get_mut(&tenant)
            .unwrap()
            .push_str(&format!("{:?};", outcome.runs));
        // Point-in-time query while every other tenant's stream is
        // mid-flight: must never disturb anything, must be consistent.
        let view = service.query(ids[tenant]).expect("query");
        query_logs.get_mut(&tenant).unwrap().push_str(&format!(
            "w={:?},keys={},buf={};",
            view.watermark,
            view.output.len(),
            view.buffered_records
        ));
    }

    let metrics = service.metrics();
    for (tenant, id) in ids.iter().enumerate() {
        if service.tenant_id(&name_of(tenant)).is_none() {
            continue;
        }
        let report = service.deregister(*id).expect("final deregister");
        run_logs
            .get_mut(&tenant)
            .unwrap()
            .push_str(&format!("drain:{:?};", report.final_runs));
        finals.insert(
            tenant,
            format!("{:?}|{:?}|{:?}", report.output, report.event, report.stats),
        );
    }
    ServiceOutcome {
        run_logs,
        query_logs,
        finals,
        metrics,
        final_metrics: service.metrics(),
        serve_stats: *service.serve_stats(),
    }
}

/// The tentpole: the whole multi-tenant service — outputs, run
/// histories, mid-stream queries, the metrics endpoint and the
/// service-wide roll-up — is bit-identical at 1, 2 and 4 worker
/// threads.
#[test]
fn service_is_bit_identical_across_thread_counts() {
    let reference = run_service(1, None, None);
    for threads in [2, 4] {
        let got = run_service(threads, None, None);
        assert_eq!(got.run_logs, reference.run_logs, "threads={threads}");
        assert_eq!(got.query_logs, reference.query_logs, "threads={threads}");
        assert_eq!(got.finals, reference.finals, "threads={threads}");
        assert_eq!(got.metrics, reference.metrics, "threads={threads}");
        assert_eq!(
            got.final_metrics, reference.final_metrics,
            "threads={threads}"
        );
        assert_eq!(got.serve_stats, reference.serve_stats, "threads={threads}");
    }
    assert_eq!(
        reference.serve_stats.admitted,
        reference.serve_stats.requests
    );
    assert!(reference.serve_stats.runs > 0);
}

/// Each tenant behaves exactly like a standalone single-job run fed the
/// same records in the same request chunks: same run-by-run stats, same
/// final output. Sharing the engine is observationally free.
#[test]
fn tenants_match_their_standalone_twins() {
    let multi = run_service(1, None, None);
    let traffic = traffic();

    for tenant in 0..TENANTS {
        let config = JobConfig::new(mode_of(tenant))
            .with_partitions(PARTITIONS)
            .with_cache(CacheConfig::paper_defaults(PARTITIONS))
            .with_threads(1);
        let job = WindowedJob::new(Hct::new(), config).expect("twin job");
        let mut feeder = EventFeeder::new(job, event()).expect("twin feeder");
        let mut log = String::new();
        for request in traffic.iter().filter(|r| r.tenant == tenant) {
            feeder.ingest(stamp(&request.records));
            log.push_str(&format!("{:?};", feeder.flush().expect("twin flush")));
        }
        log.push_str(&format!(
            "drain:{:?};",
            feeder.close_all().expect("twin drain")
        ));

        assert_eq!(
            strip_cache(&log),
            strip_cache(&multi.run_logs[&tenant]),
            "tenant {tenant}: served run history must equal the standalone twin's"
        );
        let twin_final = format!("{:?}", feeder.output());
        assert!(
            multi.finals[&tenant].starts_with(&twin_final),
            "tenant {tenant}: served output must equal the standalone twin's"
        );
        // Sanity: the twin really ingested the same records the traffic
        // generator promises for this tenant.
        let records = tenant_records(&traffic, tenant);
        assert_eq!(
            records.len() as u64,
            feeder.stats().ingested,
            "tenant {tenant}: twin saw all its records"
        );
    }
}

/// The service-wide roll-up is the exact fold of every run the engine
/// reported — re-derived here from the run logs' counted runs.
#[test]
fn serve_stats_reconcile_with_the_run_history() {
    let outcome = run_service(1, None, None);
    let runs_in_logs: u64 = outcome
        .run_logs
        .values()
        .map(|log| log.matches("RunStats").count() as u64)
        .sum();
    assert_eq!(outcome.serve_stats.runs, runs_in_logs);
    assert!(outcome.final_metrics.contains(&format!(
        "engine runs={} work_fg={} work_grand={}",
        outcome.serve_stats.runs,
        outcome.serve_stats.work_foreground,
        outcome.serve_stats.work_grand
    )));
}

/// Admission is deterministic: the same request sequence produces the
/// identical decision sequence — including DGIM rate-limit bounces,
/// quota exhaustion and per-request caps — on every run.
#[test]
fn rejections_are_deterministic() {
    let run = || {
        let mut service: ServiceRuntime<Hct> = ServiceRuntime::new(engine(1, None));
        let id = service
            .register(
                Hct::new(),
                spec_of(0, false)
                    .with_rate_limit(RateLimit::new(3, 8))
                    .with_record_quota(24)
                    .with_max_request_records(5),
            )
            .expect("register");
        let mut decisions = Vec::new();
        for i in 0u64..20 {
            // Two requests per tick burst past the rate limit; request 7
            // is oversized; the quota runs dry toward the end.
            let arrival = i / 2 * 3;
            let count = if i == 7 { 6 } else { 3 };
            let records: Vec<Stamped<String>> = (0..count)
                .map(|j| Stamped::new(i * 10 + j, i * 10 + j, format!("w{} w{}", j, (i + j) % 5)))
                .collect();
            decisions.push(
                service
                    .ingest(id, arrival, records)
                    .expect("ingest")
                    .decision,
            );
        }
        (decisions, *service.serve_stats())
    };
    let (decisions, stats) = run();
    let (again, stats_again) = run();
    assert_eq!(decisions, again, "decision sequence must be reproducible");
    assert_eq!(stats, stats_again);
    assert!(decisions
        .iter()
        .any(|d| matches!(d, Decision::RateLimited { .. })));
    assert!(decisions
        .iter()
        .any(|d| matches!(d, Decision::OverQuota { .. })));
    assert!(decisions
        .iter()
        .any(|d| matches!(d, Decision::TooLarge { .. })));
    assert_eq!(
        stats.requests,
        stats.admitted + stats.rate_limited + stats.over_quota + stats.too_large
    );
    assert_eq!(
        stats.records_admitted,
        stats.admitted * 3,
        "only 3-record requests pass"
    );
    assert!(stats.records_admitted <= 24, "quota is a hard budget");
}

/// With a seeded fault plan running underneath, the service is still
/// thread-invariant — and one tenant deregistering mid-stream leaves
/// every other tenant's runs, outputs and queries bit-identical to the
/// run where it stayed.
#[test]
fn faults_and_mid_stream_deregistration_leave_others_unchanged() {
    const FAULT_SEED: u64 = 0xfa17;
    let stayed = run_service(1, Some(FAULT_SEED), None);
    for threads in [2, 4] {
        let got = run_service(threads, Some(FAULT_SEED), None);
        assert_eq!(got.run_logs, stayed.run_logs, "faulty, threads={threads}");
        assert_eq!(got.finals, stayed.finals, "faulty, threads={threads}");
        assert_eq!(got.metrics, stayed.metrics, "faulty, threads={threads}");
    }

    let departed = run_service(1, Some(FAULT_SEED), Some(1));
    for tenant in [0, 2] {
        assert_eq!(
            departed.run_logs[&tenant], stayed.run_logs[&tenant],
            "tenant {tenant}'s run history must not see tenant 1 leave"
        );
        assert_eq!(
            departed.query_logs[&tenant], stayed.query_logs[&tenant],
            "tenant {tenant}'s queries must not see tenant 1 leave"
        );
        assert_eq!(
            departed.finals[&tenant], stayed.finals[&tenant],
            "tenant {tenant}'s final state must not see tenant 1 leave"
        );
    }
    // Tenant 1 really did leave early and dropped traffic on the floor.
    assert!(departed.serve_stats.requests < stayed.serve_stats.requests);
    assert_eq!(departed.serve_stats.tenants_deregistered, 3);
}
