//! Property test across the whole stack: for arbitrary slide histories,
//! every incremental execution mode must agree with a plain in-memory
//! reference model of windowed word count.

use std::collections::{BTreeMap, VecDeque};

use proptest::prelude::*;
use slider_mapreduce::{ExecMode, JobConfig, MapReduceApp, WindowedJob};

#[derive(Clone)]
struct WordCount;
impl MapReduceApp for WordCount {
    type Input = String;
    type Key = String;
    type Value = u64;
    type Output = u64;
    fn map(&self, line: &String, emit: &mut dyn FnMut(String, u64)) {
        for word in line.split_whitespace() {
            emit(word.to_string(), 1);
        }
    }
    fn combine(&self, _k: &String, a: &u64, b: &u64) -> u64 {
        a + b
    }
    fn reduce(&self, _k: &String, parts: &[&u64]) -> u64 {
        parts.iter().copied().sum()
    }
}

fn reference(window: &VecDeque<Vec<String>>) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for split in window {
        for line in split {
            for word in line.split_whitespace() {
                *out.entry(word.to_string()).or_insert(0) += 1;
            }
        }
    }
    out
}

/// A split is 1–3 lines of 0–4 words over a 6-word vocabulary.
fn split_strategy() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(
        proptest::collection::vec(0u8..6, 0..4).prop_map(|ws| {
            ws.iter()
                .map(|w| format!("w{w}"))
                .collect::<Vec<_>>()
                .join(" ")
        }),
        1..3,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_modes_agree_with_reference(
        initial in proptest::collection::vec(split_strategy(), 1..6),
        slides in proptest::collection::vec(
            (0usize..4, proptest::collection::vec(split_strategy(), 0..3)), 0..6),
    ) {
        for mode in [
            ExecMode::Recompute,
            ExecMode::Strawman,
            ExecMode::slider_folding(),
            ExecMode::slider_randomized(),
        ] {
            let mut job = WindowedJob::new(
                WordCount,
                JobConfig::new(mode).with_partitions(2),
            ).unwrap();
            let mut window: VecDeque<Vec<String>> = initial.iter().cloned().collect();
            let mut next_id = 0u64;
            let mut mk = |splits: &[Vec<String>]| {
                let out: Vec<_> = splits
                    .iter()
                    .enumerate()
                    .map(|(i, lines)| {
                        slider_mapreduce::Split::from_records(next_id + i as u64, lines.clone())
                    })
                    .collect();
                next_id += splits.len() as u64;
                out
            };

            job.initial_run(mk(&initial)).unwrap();
            prop_assert_eq!(job.output(), &reference(&window), "{}: initial", mode);

            for (remove, added) in &slides {
                let remove = (*remove).min(window.len());
                for _ in 0..remove {
                    window.pop_front();
                }
                window.extend(added.iter().cloned());
                job.advance(remove, mk(added)).unwrap();
                prop_assert_eq!(job.output(), &reference(&window), "{}: slide", mode);
            }
        }
    }

    #[test]
    fn append_only_agrees_with_reference(
        initial in proptest::collection::vec(split_strategy(), 0..5),
        appends in proptest::collection::vec(
            proptest::collection::vec(split_strategy(), 0..3), 0..5),
        split in proptest::bool::ANY,
    ) {
        let mut job = WindowedJob::new(
            WordCount,
            JobConfig::new(ExecMode::slider_coalescing(split)).with_partitions(2),
        ).unwrap();
        let mut window: VecDeque<Vec<String>> = initial.iter().cloned().collect();
        let mut next_id = 0u64;
        let mut mk = |splits: &[Vec<String>]| {
            let out: Vec<_> = splits
                .iter()
                .enumerate()
                .map(|(i, lines)| {
                    slider_mapreduce::Split::from_records(next_id + i as u64, lines.clone())
                })
                .collect();
            next_id += splits.len() as u64;
            out
        };
        job.initial_run(mk(&initial)).unwrap();
        for added in &appends {
            window.extend(added.iter().cloned());
            job.advance(0, mk(added)).unwrap();
            prop_assert_eq!(job.output(), &reference(&window));
        }
    }

    #[test]
    fn fixed_width_rotation_agrees_with_reference(
        buckets in 2usize..5,
        fills in proptest::collection::vec(split_strategy(), 0..4),
        rotations in proptest::collection::vec(split_strategy(), 0..8),
    ) {
        let mut job = WindowedJob::new(
            WordCount,
            JobConfig::new(ExecMode::slider_rotating(true))
                .with_partitions(2)
                .with_buckets(buckets, 1),
        ).unwrap();
        let fills: Vec<_> = fills.into_iter().take(buckets).collect();
        let mut window: VecDeque<Vec<String>> = fills.iter().cloned().collect();
        let mut next_id = 0u64;
        let mut mk = |splits: &[Vec<String>]| {
            let out: Vec<_> = splits
                .iter()
                .enumerate()
                .map(|(i, lines)| {
                    slider_mapreduce::Split::from_records(next_id + i as u64, lines.clone())
                })
                .collect();
            next_id += splits.len() as u64;
            out
        };
        job.initial_run(mk(&fills)).unwrap();
        for split in &rotations {
            let added = mk(std::slice::from_ref(split));
            if window.len() == buckets {
                window.pop_front();
                job.advance(1, added).unwrap();
            } else {
                job.advance(0, added).unwrap();
            }
            window.push_back(split.clone());
            prop_assert_eq!(job.output(), &reference(&window));
        }
    }
}
