//! Cross-crate integration of §5: declarative queries compiled to
//! incremental multi-job pipelines must track a reference evaluation over
//! long slide histories.

use std::collections::BTreeMap;

use slider_mapreduce::{make_splits, ExecMode, JobConfig};
use slider_query::{
    pageview_row, pigmix_queries, user_table, AggFn, CmpOp, Expr, Field, Predicate, Query, Row,
};
use slider_workloads::pageviews::{generate_users, generate_views, PageViewConfig};

fn dataset() -> (Vec<slider_workloads::pageviews::UserRow>, Vec<Row>) {
    let cfg = PageViewConfig {
        users: 60,
        pages: 40,
        skew: 1.0,
    };
    let users = generate_users(0, &cfg);
    let views = generate_views(2, &cfg, 0, 600)
        .iter()
        .map(pageview_row)
        .collect();
    (users, views)
}

#[test]
fn pigmix_suite_tracks_recompute_over_slides() {
    let (users, views) = dataset();
    for pq in pigmix_queries(&users) {
        let run = |mode| {
            let mut exec = pq
                .query
                .compile(JobConfig::new(mode).with_partitions(2), 8)
                .unwrap();
            let mut outs = Vec::new();
            exec.initial_run(make_splits(0, views[..300].to_vec(), 30))
                .unwrap();
            outs.push(exec.rows());
            for i in 0..5 {
                let lo = 300 + i * 60;
                exec.advance(
                    2,
                    make_splits(1000 + i as u64 * 10, views[lo..lo + 60].to_vec(), 30),
                )
                .unwrap();
                outs.push(exec.rows());
            }
            outs
        };
        let vanilla = run(ExecMode::Recompute);
        let strawman = run(ExecMode::Strawman);
        let folding = run(ExecMode::slider_folding());
        for (i, ((v, s), f)) in vanilla.iter().zip(&strawman).zip(&folding).enumerate() {
            assert_eq!(v, s, "{}: strawman diverged at step {i}", pq.name);
            assert_eq!(v, f, "{}: folding diverged at step {i}", pq.name);
        }
    }
}

#[test]
fn group_by_sum_matches_manual_reference() {
    let (_, views) = dataset();
    let query = Query::load().group_by(vec![1], vec![AggFn::Sum(4), AggFn::Count]);
    let mut exec = query
        .compile(
            JobConfig::new(ExecMode::slider_folding()).with_partitions(2),
            4,
        )
        .unwrap();
    exec.initial_run(make_splits(0, views[..200].to_vec(), 20))
        .unwrap();
    exec.advance(3, make_splits(100, views[200..260].to_vec(), 20))
        .unwrap();

    // Reference over the live window: splits 3..13 of the first 200 rows
    // plus the 60 appended.
    let mut expected: BTreeMap<i64, (i64, i64)> = BTreeMap::new();
    for row in views[60..260].iter() {
        let e = expected.entry(row[1].as_int().unwrap()).or_insert((0, 0));
        e.0 += row[4].as_int().unwrap();
        e.1 += 1;
    }
    let got: BTreeMap<i64, (i64, i64)> = exec
        .rows()
        .into_iter()
        .map(|r| {
            (
                r[0].as_int().unwrap(),
                (r[1].as_int().unwrap(), r[2].as_int().unwrap()),
            )
        })
        .collect();
    assert_eq!(got, expected);
}

#[test]
fn filter_join_topk_pipeline_is_consistent() {
    let (users, views) = dataset();
    let query = Query::load()
        .filter(Predicate::Cmp {
            left: Expr::Col(3),
            op: CmpOp::Gt,
            right: Expr::Lit(Field::Int(1_000)),
        })
        .join_static(user_table(&users), 0)
        .group_by(vec![6], vec![AggFn::Sum(3)])
        .top_k(1, 3, true);
    let mut exec = query
        .compile(
            JobConfig::new(ExecMode::slider_folding()).with_partitions(2),
            8,
        )
        .unwrap();
    exec.initial_run(make_splits(0, views[..300].to_vec(), 30))
        .unwrap();
    let before = exec.rows();
    assert!(before.len() <= 3);
    // Top-k output must be sorted descending by the sum column.
    let sums: Vec<i64> = before.iter().map(|r| r[1].as_int().unwrap()).collect();
    assert!(
        sums.windows(2).all(|w| w[0] >= w[1]),
        "not sorted: {sums:?}"
    );

    // A no-op slide (remove nothing, add nothing) must not change results.
    exec.advance(0, vec![]).unwrap();
    assert_eq!(exec.rows(), before);
}

#[test]
fn inner_stages_reuse_untouched_buckets_across_many_slides() {
    let (_, views) = dataset();
    let query = Query::load()
        .group_by(vec![0], vec![AggFn::Count])
        .group_by(vec![1], vec![AggFn::Count]);
    let mut exec = query
        .compile(
            JobConfig::new(ExecMode::slider_folding()).with_partitions(2),
            16,
        )
        .unwrap();
    exec.initial_run(make_splits(0, views[..300].to_vec(), 30))
        .unwrap();

    let mut changed = 0usize;
    let mut total = 0usize;
    for i in 0..5 {
        let lo = 300 + i * 30;
        let r = exec
            .advance(
                1,
                make_splits(500 + i as u64, views[lo..lo + 30].to_vec(), 30),
            )
            .unwrap();
        changed += r.inner[0].buckets_changed;
        total += r.inner[0].buckets_total;
    }
    assert!(
        changed < total,
        "inner stage re-mapped every bucket on every slide ({changed}/{total})"
    );
}
