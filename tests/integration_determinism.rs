//! Determinism: the whole stack — generators, engine, trees, simulator,
//! cache model — must produce bit-identical results across repeated runs.
//! Every reported number in EXPERIMENTS.md relies on this.

use slider_apps::{Hct, KMeans};
use slider_cluster::SchedulerPolicy;
use slider_dcache::CacheConfig;
use slider_mapreduce::{make_splits, ExecMode, JobConfig, RunStats, SimulationConfig, WindowedJob};
use slider_workloads::points::{generate_points, initial_centroids};
use slider_workloads::text::{generate_documents, TextConfig};

fn fingerprint(stats: &RunStats) -> (u64, u64, u64, String, u64) {
    (
        stats.work.foreground_total(),
        stats.work.contraction_bg.work,
        stats.memo_footprint_bytes,
        format!("{:.9}", stats.time_seconds().unwrap_or(0.0)),
        stats.memo_read_bytes,
    )
}

#[test]
fn text_pipeline_is_bit_deterministic() {
    let run = || {
        let docs = generate_documents(
            7,
            150,
            &TextConfig {
                vocabulary: 120,
                zipf_exponent: 1.05,
                words_per_doc: 10,
            },
        );
        let splits = make_splits(0, docs, 5);
        let mut job = WindowedJob::new(
            Hct::new(),
            JobConfig::new(ExecMode::slider_folding())
                .with_partitions(4)
                .with_simulation(SimulationConfig {
                    cluster: slider_cluster::ClusterSpec::paper_cluster(),
                    policy: SchedulerPolicy::hybrid_default(),
                })
                .with_cache(CacheConfig::paper_defaults(8)),
        )
        .unwrap();
        let mut prints = vec![fingerprint(
            &job.initial_run(splits[..20].to_vec()).unwrap(),
        )];
        for i in 0..5 {
            let stats = job
                .advance(2, splits[20 + 2 * i..22 + 2 * i].to_vec())
                .unwrap();
            prints.push(fingerprint(&stats));
        }
        (prints, job.output().clone())
    };
    let (a_prints, a_out) = run();
    let (b_prints, b_out) = run();
    assert_eq!(
        a_prints, b_prints,
        "work/time/footprint must be reproducible"
    );
    assert_eq!(a_out, b_out);
}

#[test]
fn randomized_tree_engine_runs_are_deterministic() {
    // The randomized folding tree derives its coin flips from stable
    // hashes, so even it must reproduce exactly.
    let run = || {
        let points = generate_points(3, 120, 8);
        let splits = make_splits(0, points, 6);
        let mut job = WindowedJob::new(
            KMeans::new(initial_centroids(3, 4, 8)),
            JobConfig::new(ExecMode::slider_randomized()).with_partitions(3),
        )
        .unwrap();
        job.initial_run(splits[..15].to_vec()).unwrap();
        let stats = job.advance(3, splits[15..18].to_vec()).unwrap();
        (
            stats.work.foreground_total(),
            stats.nodes_reused,
            format!("{:?}", job.output()),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn parallel_map_phase_is_order_deterministic() {
    // The map phase runs multi-threaded for larger batches; assembly must
    // be input-ordered regardless of thread interleaving.
    let docs = generate_documents(
        11,
        400,
        &TextConfig {
            vocabulary: 200,
            zipf_exponent: 1.0,
            words_per_doc: 8,
        },
    );
    let run = || {
        let mut job = WindowedJob::new(
            Hct::new(),
            JobConfig::new(ExecMode::slider_folding()).with_partitions(4),
        )
        .unwrap();
        // 80 splits at once spread across the runtime's worker threads.
        let stats = job.initial_run(make_splits(0, docs.clone(), 5)).unwrap();
        (stats.work.map, stats.shuffle_bytes, job.output().clone())
    };
    let first = run();
    for _ in 0..3 {
        assert_eq!(run(), first);
    }
}
