//! Event-time integration: disordered streams must be invisible.
//!
//! The in-order assumption is gone: a stream shuffled within the lateness
//! bound — including bursty time gaps that age out whole windows, and with
//! a seeded fault plan running underneath — must produce outputs AND
//! RunStats bit-identical to its sorted twin at every thread count, for
//! every execution mode. Stragglers beyond the bound take the late-splice
//! path and must still converge to the sorted stream's output when their
//! epoch is reachable.

use slider_apps::Hct;
use slider_dcache::CacheConfig;
use slider_mapreduce::{
    EventFeeder, EventTimeConfig, EventTimeStats, ExecMode, JobConfig, JobFaultPlan,
    SimulationConfig, WindowedJob,
};
use slider_workloads::disorder::{
    bursty_stream, max_displacement, sorted_twin, straggler_stream, DisorderConfig, TimedLine,
};

const PARTITIONS: usize = 4;
/// Ingest chunk size: chosen to not divide the stream evenly, so flush
/// boundaries land at awkward places (the run sequence must not care).
const CHUNK: usize = 17;

fn disorder_config() -> DisorderConfig {
    DisorderConfig {
        records: 192,
        mean_step: 2,
        lateness: 16,
        vocabulary: 40,
    }
}

fn event_config(window_epochs: Option<usize>) -> EventTimeConfig {
    EventTimeConfig {
        epoch_len: 32,
        records_per_split: 4,
        window_epochs,
        lateness: 16,
    }
}

/// Every execution mode under its supported event-time window discipline
/// (fixed-width rotating needs uniform epochs — covered separately).
fn variable_width_modes() -> Vec<(ExecMode, Option<usize>)> {
    vec![
        (ExecMode::Recompute, Some(3)),
        (ExecMode::Strawman, Some(3)),
        (ExecMode::slider_folding(), Some(3)),
        (ExecMode::slider_randomized(), Some(3)),
        (ExecMode::slider_two_stack(), Some(3)),
        (ExecMode::slider_daba(), Some(3)),
        (ExecMode::slider_daba_lite(), Some(3)),
        (ExecMode::slider_coalescing(false), None),
        (ExecMode::slider_coalescing(true), None),
    ]
}

/// Feeds `stream` through an event-time window in awkward chunks and
/// returns the full fingerprint: final output, the Debug rendering of
/// every run's stats (flattened across flushes), and the feeder counters.
fn run_stream(
    mode: ExecMode,
    stream: &[TimedLine],
    event: EventTimeConfig,
    threads: usize,
    faults: Option<u64>,
    buckets: Option<(usize, usize)>,
) -> (String, String, EventTimeStats) {
    let mut config = JobConfig::new(mode)
        .with_partitions(PARTITIONS)
        .with_threads(threads);
    if let Some((n, w)) = buckets {
        config = config.with_buckets(n, w);
    }
    if let Some(seed) = faults {
        config = config
            .with_simulation(SimulationConfig::paper_defaults())
            .with_cache(CacheConfig::paper_defaults(PARTITIONS))
            .with_faults(JobFaultPlan::seeded(seed, 24, 24, PARTITIONS));
    }
    let job = WindowedJob::new(Hct::new(), config).expect("valid config");
    let mut feeder = EventFeeder::new(job, event).expect("valid event config");
    let mut runs = Vec::new();
    for chunk in stream.chunks(CHUNK) {
        feeder.ingest(
            chunk
                .iter()
                .map(|(t, s, line)| slider_mapreduce::Stamped::new(*t, *s, line.clone())),
        );
        runs.extend(feeder.flush().expect("flush"));
    }
    runs.extend(feeder.close_all().expect("close_all"));
    (
        format!("{:?}", feeder.output()),
        format!("{runs:?}"),
        feeder.stats(),
    )
}

/// The tentpole guarantee: a bursty, disordered stream is indistinguishable
/// from its sorted twin — outputs and the complete metered run history are
/// bit-identical for every mode, at 1/2/4 threads, with and without a
/// seeded fault plan.
#[test]
fn disordered_stream_is_bit_identical_to_its_sorted_twin() {
    let cfg = disorder_config();
    let stream = bursty_stream(0xd150, &cfg, 48, 1_000);
    let twin = sorted_twin(&stream);
    assert_ne!(stream, twin, "the stream must actually be disordered");
    assert!(max_displacement(&stream) <= cfg.lateness);

    for (mode, window) in variable_width_modes() {
        for faults in [None, Some(0x5eed)] {
            let event = event_config(window);
            let reference = run_stream(mode, &twin, event, 1, faults, None);
            for threads in [1, 2, 4] {
                let got = run_stream(mode, &stream, event, threads, faults, None);
                assert_eq!(
                    got.0, reference.0,
                    "{mode:?} outputs diverged (threads={threads}, faults={faults:?})"
                );
                assert_eq!(
                    got.1, reference.1,
                    "{mode:?} RunStats diverged (threads={threads}, faults={faults:?})"
                );
                assert_eq!(got.2, reference.2, "{mode:?} feeder counters diverged");
                assert_eq!(
                    got.2.late_admitted, 0,
                    "in-bound disorder must never take the late path"
                );
            }
        }
    }
}

/// The same guarantee for fixed-width rotating windows, which additionally
/// require uniform epochs: every epoch carries exactly one bucket of
/// splits. In-bound disorder never splices (rotating forbids it), so the
/// reorder buffer alone must absorb the shuffle.
#[test]
fn rotating_windows_absorb_in_bound_disorder() {
    let event = EventTimeConfig {
        epoch_len: 100,
        records_per_split: 4,
        window_epochs: Some(3),
        lateness: 20,
    };
    let bucket_width = 3; // splits per epoch => 12 records per epoch
    let records_per_epoch = bucket_width * event.records_per_split;

    // Uniform epochs with an in-epoch spread, then a bounded arrival
    // shuffle (sort by time + deterministic jitter <= lateness).
    let mut stream: Vec<TimedLine> = (0..8 * records_per_epoch as u64)
        .map(|seq| {
            let epoch = seq / records_per_epoch as u64;
            let slot = seq % records_per_epoch as u64;
            let time = epoch * event.epoch_len + slot * 8;
            (time, seq, format!("w{} w{}", seq % 7, seq % 11))
        })
        .collect();
    let twin = stream.clone();
    stream.sort_by_key(|&(t, s, _)| (t + (s.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % 21, s));
    assert_ne!(stream, twin);
    assert!(max_displacement(&stream) <= event.lateness);

    for cheap in [false, true] {
        let mode = ExecMode::slider_rotating(cheap);
        let buckets = Some((3, bucket_width));
        let reference = run_stream(mode, &twin, event, 1, None, buckets);
        for threads in [1, 2, 4] {
            let got = run_stream(mode, &stream, event, threads, None, buckets);
            assert_eq!(got.0, reference.0, "{mode:?} outputs diverged");
            assert_eq!(got.1, reference.1, "{mode:?} RunStats diverged");
        }
        assert_eq!(reference.2.late_admitted, 0);
        assert_eq!(
            reference.2.epochs_evicted, 5,
            "8 epochs through a window of 3"
        );
    }
}

/// Stragglers beyond the lateness bound take the interior-splice path.
/// With a window wide enough that their epochs are still live, the final
/// output must still equal the sorted stream's — and the whole run history
/// must stay thread-count invariant.
#[test]
fn stragglers_splice_back_in_and_converge_to_the_sorted_output() {
    let cfg = disorder_config();
    let stragglers = 5;
    let stream = straggler_stream(0x57a9, &cfg, stragglers);
    assert!(max_displacement(&stream) > cfg.lateness);

    for (mode, _) in variable_width_modes() {
        // A window no epoch ever leaves: every straggler's epoch is live.
        let event = event_config(None);
        let reference = run_stream(mode, &sorted_twin(&stream), event, 1, None, None);
        let sequential = run_stream(mode, &stream, event, 1, None, None);
        assert_eq!(
            sequential.0, reference.0,
            "{mode:?}: late splices must converge to the sorted output"
        );
        assert!(
            sequential.2.late_admitted > 0,
            "{mode:?}: stragglers must have taken the late path"
        );
        assert_eq!(sequential.2.late_dropped, 0);
        assert!(sequential.2.splice_runs > 0);
        for threads in [2, 4] {
            let parallel = run_stream(mode, &stream, event, threads, None, None);
            assert_eq!(parallel.0, sequential.0, "{mode:?} outputs at {threads}t");
            assert_eq!(parallel.1, sequential.1, "{mode:?} stats at {threads}t");
            assert_eq!(parallel.2, sequential.2);
        }
    }
}

/// With a bounded window, a straggler whose epoch already slid out is
/// dropped and counted — never spliced into the wrong position.
#[test]
fn stragglers_past_the_window_are_dropped_and_counted() {
    let cfg = disorder_config();
    let stream = straggler_stream(0x0dd, &cfg, 4);
    let event = event_config(Some(2)); // tight window: early epochs die fast
    let (_, _, stats) = run_stream(ExecMode::slider_folding(), &stream, event, 1, None, None);
    assert!(
        stats.late_dropped > 0,
        "a 2-epoch window must have outlived the stragglers' epochs: {stats:?}"
    );
    assert_eq!(
        stats.ingested, cfg.records as u64,
        "every record is accounted for"
    );
}

/// Bursty gaps age out whole windows between bursts; the feeder's counters
/// must reconcile exactly with what the stream contains.
#[test]
fn bursty_gaps_evict_whole_windows() {
    let cfg = disorder_config();
    let stream = bursty_stream(0xb57, &cfg, 48, 10_000);
    let event = event_config(Some(3));
    let (output, _, stats) = run_stream(ExecMode::slider_folding(), &stream, event, 1, None, None);
    assert!(stats.epochs_evicted >= 3, "gaps must evict: {stats:?}");
    assert!(
        stats.epochs_closed > 100,
        "gap epochs close in bulk (fast-forwarded): {stats:?}"
    );
    assert_eq!(stats.ingested, cfg.records as u64);
    assert_eq!(stats.late_dropped + stats.late_admitted, 0);
    // The final window holds only the last burst's tail.
    assert!(!output.is_empty());
}

/// Fixed-width rotating windows refuse interior splices (they are
/// positional); the feeder surfaces that as a mode violation rather than
/// corrupting the bucket grid.
#[test]
fn rotating_retraction_is_a_mode_violation() {
    let event = EventTimeConfig {
        epoch_len: 100,
        records_per_split: 4,
        window_epochs: Some(3),
        lateness: 0,
    };
    // Two uniform epochs of 12 records = 3 splits (one bucket) each.
    let stream: Vec<TimedLine> = (0..24u64)
        .map(|seq| {
            (
                (seq / 12) * 100 + (seq % 12) * 8,
                seq,
                format!("w{}", seq % 5),
            )
        })
        .collect();
    let config = JobConfig::new(ExecMode::slider_rotating(false))
        .with_partitions(PARTITIONS)
        .with_buckets(3, 3);
    let job = WindowedJob::new(Hct::new(), config).unwrap();
    let mut feeder = EventFeeder::new(job, event).unwrap();
    feeder.ingest(
        stream
            .iter()
            .map(|(t, s, line)| slider_mapreduce::Stamped::new(*t, *s, line.clone())),
    );
    feeder.close_all().unwrap();
    let err = feeder.retract_epoch(0).unwrap_err();
    assert!(matches!(err, slider_mapreduce::JobError::ModeViolation(_)));
    // Variable-width windows retract fine.
    let job = WindowedJob::new(
        Hct::new(),
        JobConfig::new(ExecMode::slider_folding()).with_partitions(PARTITIONS),
    )
    .unwrap();
    let mut feeder = EventFeeder::new(job, event).unwrap();
    feeder.ingest(
        stream
            .iter()
            .map(|(t, s, line)| slider_mapreduce::Stamped::new(*t, *s, line.clone())),
    );
    feeder.close_all().unwrap();
    assert!(feeder.retract_epoch(0).unwrap().is_some());
}
