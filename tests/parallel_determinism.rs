//! The parallel runtime must be invisible in every number the system
//! reports: for any worker-thread count, outputs AND the full RunStats
//! (modeled work, phase breakdowns, footprints) must be bit-identical to
//! the sequential run. This suite sweeps all five evaluation apps across
//! every execution mode, plus property-tests arbitrary slide sequences
//! against the sequential reference.

use proptest::prelude::*;
use slider_apps::{Hct, KMeans, Knn, Matrix, SubStr};
use slider_mapreduce::{make_splits, ExecMode, JobConfig, MapReduceApp, Split, WindowedJob};
use slider_workloads::points::{generate_points, initial_centroids};
use slider_workloads::text::{generate_documents, TextConfig};

/// How a mode's window slides in this suite.
#[derive(Clone, Copy, PartialEq)]
enum SlideKind {
    /// Variable-width: remove 2 splits, add 2.
    Variable,
    /// Append-only: add 2 splits.
    Append,
    /// Fixed-width buckets: rotate one whole bucket (4 splits) per slide.
    Fixed,
}

const WINDOW: usize = 24;
const BUCKETS: usize = 6;
const BUCKET_WIDTH: usize = WINDOW / BUCKETS;

/// Every execution mode, paired with a window discipline it supports.
fn mode_matrix() -> Vec<(ExecMode, SlideKind)> {
    vec![
        (ExecMode::Recompute, SlideKind::Variable),
        (ExecMode::Strawman, SlideKind::Variable),
        (ExecMode::slider_folding(), SlideKind::Variable),
        (ExecMode::slider_randomized(), SlideKind::Variable),
        (ExecMode::slider_coalescing(false), SlideKind::Append),
        (ExecMode::slider_coalescing(true), SlideKind::Append),
        (ExecMode::slider_rotating(false), SlideKind::Fixed),
        (ExecMode::slider_rotating(true), SlideKind::Fixed),
        (ExecMode::slider_two_stack(), SlideKind::Variable),
        (ExecMode::slider_daba(), SlideKind::Variable),
        (ExecMode::slider_daba_lite(), SlideKind::Variable),
    ]
}

/// Runs one job to completion (initial window + two slides) and returns a
/// full fingerprint: the final outputs and the Debug rendering of every
/// RunStats the job produced.
fn run_once<A>(
    app: &A,
    splits: &[Split<A::Input>],
    mode: ExecMode,
    kind: SlideKind,
    threads: usize,
) -> (String, String)
where
    A: MapReduceApp + Clone,
    A::Key: std::fmt::Debug,
    A::Output: std::fmt::Debug,
{
    let mut config = JobConfig::new(mode)
        .with_partitions(4)
        .with_threads(threads);
    if kind == SlideKind::Fixed {
        config = config.with_buckets(BUCKETS, BUCKET_WIDTH);
    }
    let mut job = WindowedJob::new(app.clone(), config).expect("valid config");
    let s0 = job
        .initial_run(splits[..WINDOW].to_vec())
        .expect("initial run");
    let (remove, step) = match kind {
        SlideKind::Variable => (2, 2),
        SlideKind::Append => (0, 2),
        SlideKind::Fixed => (BUCKET_WIDTH, BUCKET_WIDTH),
    };
    let s1 = job
        .advance(remove, splits[WINDOW..WINDOW + step].to_vec())
        .expect("slide 1");
    let s2 = job
        .advance(remove, splits[WINDOW + step..WINDOW + 2 * step].to_vec())
        .expect("slide 2");
    (
        format!("{:?}", job.output()),
        format!("{s0:?} {s1:?} {s2:?}"),
    )
}

/// Asserts outputs and stats are identical at 1, 2, and 4 worker threads
/// for every execution mode.
fn check_app<A>(name: &str, app: A, splits: Vec<Split<A::Input>>)
where
    A: MapReduceApp + Clone,
    A::Key: std::fmt::Debug,
    A::Output: std::fmt::Debug,
{
    assert!(
        splits.len() >= WINDOW + 2 * BUCKET_WIDTH,
        "{name}: not enough splits"
    );
    for (mode, kind) in mode_matrix() {
        let sequential = run_once(&app, &splits, mode, kind, 1);
        for threads in [2, 4] {
            let parallel = run_once(&app, &splits, mode, kind, threads);
            assert_eq!(
                sequential.0, parallel.0,
                "{name} outputs differ at {threads} threads under {mode:?}"
            );
            assert_eq!(
                sequential.1, parallel.1,
                "{name} RunStats differ at {threads} threads under {mode:?}"
            );
        }
    }
}

fn text_splits(seed: u64) -> Vec<Split<String>> {
    let docs = generate_documents(
        seed,
        (WINDOW + 2 * BUCKET_WIDTH) * 4,
        &TextConfig {
            vocabulary: 300,
            zipf_exponent: 1.05,
            words_per_doc: 12,
        },
    );
    make_splits(0, docs, 4)
}

#[test]
fn hct_is_thread_count_invariant() {
    check_app("HCT", Hct::new(), text_splits(0x11c7));
}

#[test]
fn substr_is_thread_count_invariant() {
    check_app("subStr", SubStr::new(4), text_splits(0x5ab));
}

#[test]
fn matrix_is_thread_count_invariant() {
    check_app("Matrix", Matrix::new(2), text_splits(0x3a7));
}

#[test]
fn kmeans_is_thread_count_invariant() {
    let dims = 8;
    let points = generate_points(0x4ea5, (WINDOW + 2 * BUCKET_WIDTH) * 4, dims);
    check_app(
        "K-Means",
        KMeans::new(initial_centroids(0x4ea5, 4, dims)),
        make_splits(0, points, 4),
    );
}

#[test]
fn knn_is_thread_count_invariant() {
    let dims = 8;
    let labelled: Vec<(slider_workloads::points::Point, u32)> =
        generate_points(0x59, (WINDOW + 2 * BUCKET_WIDTH) * 4, dims)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, (i % 4) as u32))
            .collect();
    check_app(
        "KNN",
        Knn::new(generate_points(0xabcd, 8, dims), 4),
        make_splits(0, labelled, 4),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// Arbitrary slide sequences: the parallel runtime must track the
    /// sequential incremental job stat-for-stat, and both must agree with
    /// sequential full recomputation on outputs.
    #[test]
    fn arbitrary_slides_match_sequential_reference(
        steps in proptest::collection::vec((0usize..=2, 0usize..=2), 1..8),
    ) {
        let docs = generate_documents(
            0x7e57,
            200,
            &TextConfig { vocabulary: 150, zipf_exponent: 1.0, words_per_doc: 8 },
        );
        let splits = make_splits(0, docs, 4);
        let initial = 12usize;
        let job = |threads: usize, mode: ExecMode| {
            let mut job = WindowedJob::new(
                Hct::new(),
                JobConfig::new(mode).with_partitions(3).with_threads(threads),
            )
            .unwrap();
            job.initial_run(splits[..initial].to_vec()).unwrap();
            job
        };
        let mut parallel = job(4, ExecMode::slider_folding());
        let mut sequential = job(1, ExecMode::slider_folding());
        let mut recompute = job(1, ExecMode::Recompute);

        let mut window = initial;
        let mut feed = initial;
        for (remove, add) in steps {
            let remove = remove.min(window - 1);
            let add = add.min(splits.len() - feed);
            if remove == 0 && add == 0 {
                continue;
            }
            let added = splits[feed..feed + add].to_vec();
            feed += add;
            window = window - remove + add;

            let par_stats = parallel.advance(remove, added.clone()).unwrap();
            let seq_stats = sequential.advance(remove, added.clone()).unwrap();
            recompute.advance(remove, added).unwrap();

            prop_assert_eq!(
                format!("{par_stats:?}"),
                format!("{seq_stats:?}"),
                "stats diverged at window={}",
                window
            );
            prop_assert_eq!(parallel.output(), sequential.output());
            prop_assert_eq!(parallel.output(), recompute.output());
        }
    }
}
