//! Fault-injection integration: the recovery invariant end to end.
//!
//! For any scripted fault plan — machine crashes mid-stage, forced
//! memo-cache loss, straggler slowdowns with speculation — a windowed job
//! must produce outputs bit-identical to its fault-free twin. Only the
//! work/time metrics may move, and recovery work must be metered apart
//! from regular work.

use slider_apps::Hct;
use slider_dcache::CacheConfig;
use slider_mapreduce::{
    make_splits, ExecMode, JobConfig, JobFaultPlan, SimulationConfig, Split, WindowedJob,
};
use slider_workloads::text::{generate_documents, TextConfig};

/// Records with *uniform* per-split work so every simulated map task has
/// the same duration: a crash at half the map-stage duration is then
/// guaranteed to land mid-flight on whichever machine it targets.
fn uniform_records(count: usize) -> Vec<String> {
    vec!["alpha beta gamma delta epsilon".to_string(); count]
}

fn varied_records(count: usize) -> Vec<String> {
    generate_documents(
        1,
        count,
        &TextConfig {
            vocabulary: 40,
            zipf_exponent: 1.0,
            words_per_doc: 6,
        },
    )
}

fn job(config: JobConfig) -> WindowedJob<Hct> {
    WindowedJob::new(Hct::new(), config).unwrap()
}

#[test]
fn machine_crash_mid_stage_recovers_with_identical_outputs() {
    let splits = make_splits(0, uniform_records(100), 5); // 20 splits
    let base = || {
        JobConfig::new(ExecMode::slider_folding())
            .with_partitions(4)
            .with_buckets(20, 1)
            .with_simulation(SimulationConfig::paper_defaults())
    };

    // Fault-free twin first: its map-stage duration tells us when "mid
    // stage" is.
    let mut twin = job(base());
    let twin_s0 = twin.initial_run(splits.clone()).unwrap();
    let crash_at = twin_s0.map_seconds().expect("simulation configured") * 0.5;
    assert!(crash_at > 0.0, "map stage must take simulated time");

    // Machine 1 runs one of the 20 equal-duration maps from t=0; killing
    // it at half the stage duration interrupts that attempt mid-flight.
    let plan = JobFaultPlan::none().crash(0, 1, crash_at);
    let mut faulty = job(base().with_faults(plan));
    let s0 = faulty.initial_run(splits).unwrap();

    assert_eq!(faulty.output(), twin.output(), "crash changed the output");
    assert_eq!(
        s0.work, twin_s0.work,
        "crashes must not change modeled work"
    );
    let sim = s0.sim.as_ref().expect("simulation configured");
    let twin_sim = twin_s0.sim.as_ref().unwrap();
    assert!(sim.retried_tasks >= 1, "the killed attempt must be retried");
    assert!(
        s0.recovery_seconds().unwrap() > 0.0,
        "the interrupted attempt's partial run is recovery time"
    );
    assert!(
        sim.makespan >= twin_sim.makespan,
        "recovery cannot make the run faster ({} vs {})",
        sim.makespan,
        twin_sim.makespan
    );

    // The next run is fault-free again and must match the twin exactly —
    // crashed machines do not leak across runs.
    let adds = make_splits(1000, uniform_records(5), 5);
    let s1 = faulty.advance(1, adds.clone()).unwrap();
    let twin_s1 = twin.advance(1, adds).unwrap();
    assert_eq!(faulty.output(), twin.output());
    assert_eq!(format!("{s1:?}"), format!("{twin_s1:?}"));
}

#[test]
fn memo_loss_and_cache_failover_recover_with_identical_outputs() {
    let records = varied_records(120);
    let splits = make_splits(0, records, 5); // 24 splits
    let plan = JobFaultPlan::none()
        .fail_cache_node(1, 0)
        .lose_memo(2, vec![1])
        .recover_cache_node(3, 0);
    let base = || {
        JobConfig::new(ExecMode::slider_rotating(false))
            .with_partitions(4)
            .with_buckets(8, 1)
            .with_cache(CacheConfig::paper_defaults(4))
    };
    let mut faulty = job(base().with_faults(plan));
    let mut twin = job(base());

    faulty.initial_run(splits[..8].to_vec()).unwrap();
    twin.initial_run(splits[..8].to_vec()).unwrap();

    let advance = |j: &mut WindowedJob<Hct>, i: usize| {
        let adds: Vec<Split<String>> = splits[8 + i..9 + i].to_vec();
        j.advance(1, adds).unwrap()
    };

    for run in 1..=4usize {
        let s = advance(&mut faulty, run - 1);
        let t = advance(&mut twin, run - 1);
        assert_eq!(
            faulty.output(),
            twin.output(),
            "run {run}: faults changed the output"
        );
        let cache = s.cache.expect("cache configured");
        let twin_cache = t.cache.unwrap();
        match run {
            2 => {
                // Partition 1's trees and replicated object vanished just
                // before this slide: the engine rebuilds from the window
                // and meters every bit of it as recovery, not work.
                assert_eq!(s.recovery.lost_partitions, 1);
                assert!(s.recovery.rebuild_work > 0, "rebuild must be metered");
                assert!(s.recovery.keys_recomputed > 0);
                assert!(
                    s.recovery.cache_misses_recovered >= 1,
                    "the lost object's read must degrade to recomputation"
                );
                assert!(
                    cache.failed_reads() >= 1,
                    "losing every replica is a failed read"
                );
            }
            1 => {
                // Cache node 0 is down: reads fail over to disk replicas,
                // succeed, and are not recovery.
                assert!(s.recovery.is_zero(), "failover alone is not recovery");
                assert!(
                    cache.disk_reads > twin_cache.disk_reads,
                    "failover must hit the persistent tier"
                );
                assert_eq!(cache.failed_reads(), 0, "replication must mask the failure");
            }
            _ => {
                assert!(s.recovery.is_zero(), "run {run} is fault-free");
                assert_eq!(cache.failed_reads(), 0);
            }
        }
    }
}

#[test]
fn straggler_speculation_is_metered_and_harmless() {
    let splits = make_splits(0, uniform_records(100), 5);
    let base = || {
        JobConfig::new(ExecMode::slider_folding())
            .with_partitions(4)
            .with_buckets(20, 1)
            .with_simulation(SimulationConfig::paper_defaults())
    };
    let mut twin = job(base());
    let twin_s0 = twin.initial_run(splits.clone()).unwrap();

    // Machine 3 runs 20x slow; with speculation a duplicate of its map
    // launches on an idle machine and wins.
    let plan = JobFaultPlan::none().slow(0, 3, 0.05).with_speculation();
    let mut faulty = job(base().with_faults(plan));
    let s0 = faulty.initial_run(splits).unwrap();

    assert_eq!(
        faulty.output(),
        twin.output(),
        "straggler changed the output"
    );
    assert_eq!(
        s0.work, twin_s0.work,
        "stragglers must not change modeled work"
    );
    let sim = s0.sim.as_ref().unwrap();
    assert!(sim.speculative_tasks >= 1, "a duplicate must have launched");
    assert!(
        s0.recovery_seconds().unwrap() > 0.0,
        "the losing attempt's run is recovery time"
    );
}

#[test]
fn seeded_plans_uphold_the_invariant_across_runs() {
    let records = varied_records(90);
    let splits = make_splits(0, records, 3); // 30 splits
    for seed in [3, 7, 11, 19] {
        let plan = JobFaultPlan::seeded(seed, 6, 24, 4);
        let base = || {
            JobConfig::new(ExecMode::slider_folding())
                .with_partitions(4)
                .with_buckets(10, 1)
                .with_simulation(SimulationConfig::paper_defaults())
                .with_cache(CacheConfig::paper_defaults(4))
        };
        let mut faulty = job(base().with_faults(plan));
        let mut twin = job(base());
        faulty.initial_run(splits[..10].to_vec()).unwrap();
        twin.initial_run(splits[..10].to_vec()).unwrap();
        for i in 0..5 {
            let adds: Vec<Split<String>> = splits[10 + 4 * i..10 + 4 * (i + 1)].to_vec();
            faulty.advance(4, adds.clone()).unwrap();
            twin.advance(4, adds).unwrap();
            assert_eq!(
                faulty.output(),
                twin.output(),
                "seed {seed}, slide {i}: outputs diverged"
            );
        }
    }
}

#[test]
fn constant_time_aggregators_recover_from_seeded_plans() {
    // The twin-stack aggregators memoize running partial sums instead of
    // subtree handles; memo loss must still rebuild them bit-identically
    // from the surviving window.
    let records = varied_records(90);
    let splits = make_splits(0, records, 3); // 30 splits
    for mode in [
        ExecMode::slider_two_stack(),
        ExecMode::slider_daba(),
        ExecMode::slider_daba_lite(),
    ] {
        let plan = JobFaultPlan::seeded(13, 6, 24, 4);
        let base = || {
            JobConfig::new(mode)
                .with_partitions(4)
                .with_buckets(10, 1)
                .with_simulation(SimulationConfig::paper_defaults())
                .with_cache(CacheConfig::paper_defaults(4))
        };
        let mut faulty = job(base().with_faults(plan));
        let mut twin = job(base());
        faulty.initial_run(splits[..10].to_vec()).unwrap();
        twin.initial_run(splits[..10].to_vec()).unwrap();
        for i in 0..5 {
            let adds: Vec<Split<String>> = splits[10 + 4 * i..10 + 4 * (i + 1)].to_vec();
            faulty.advance(4, adds.clone()).unwrap();
            twin.advance(4, adds).unwrap();
            assert_eq!(
                faulty.output(),
                twin.output(),
                "{mode}, slide {i}: outputs diverged under faults"
            );
        }
    }
}
