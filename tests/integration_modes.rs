//! Cross-crate integration: every execution mode must produce the same
//! output as recomputation from scratch, for every micro-benchmark
//! application, across multi-slide histories.

use slider_apps::{Hct, KMeans, Knn, Matrix, SubStr};
use slider_mapreduce::{make_splits, ExecMode, JobConfig, MapReduceApp, Split, WindowedJob};
use slider_workloads::points::{generate_points, initial_centroids};
use slider_workloads::text::{generate_documents, TextConfig};

/// Runs `app` over the same slide history under `mode` and `Recompute`,
/// asserting identical outputs after every slide.
fn check_mode_equivalence<A>(
    app: A,
    records: Vec<A::Input>,
    mode: ExecMode,
    buckets: (usize, usize),
) where
    A: MapReduceApp + Clone,
    A::Key: std::fmt::Debug,
    A::Output: std::fmt::Debug,
{
    let per_split = 5;
    let splits = make_splits(0, records, per_split);
    let n = splits.len();
    assert!(n >= 16, "history needs at least 16 splits, got {n}");
    let window = 8;

    let mk_job = |mode: ExecMode| {
        let config = JobConfig::new(mode)
            .with_partitions(3)
            .with_buckets(buckets.0, buckets.1);
        WindowedJob::new(app.clone(), config).expect("valid config")
    };
    let mut job = mk_job(mode);
    let mut vanilla = mk_job(ExecMode::Recompute);

    let initial: Vec<Split<A::Input>> = splits[..window].to_vec();
    job.initial_run(initial.clone()).expect("initial");
    vanilla.initial_run(initial).expect("initial");
    assert_eq!(
        job.output(),
        vanilla.output(),
        "{mode}: initial run diverged"
    );

    let append_only = mode.tree_kind() == Some(slider_core::TreeKind::Coalescing);
    let mut cursor = window;
    let mut step = 0;
    while cursor + 2 <= n {
        let added = splits[cursor..cursor + 2].to_vec();
        cursor += 2;
        let remove = if append_only { 0 } else { 2 };
        job.advance(remove, added.clone()).expect("slide");
        vanilla.advance(remove, added).expect("slide");
        step += 1;
        assert_eq!(
            job.output(),
            vanilla.output(),
            "{mode}: diverged at slide {step}"
        );
    }
    assert!(step >= 3, "exercised only {step} slides");
}

fn text_records(seed: u64) -> Vec<String> {
    generate_documents(
        seed,
        120,
        &TextConfig {
            vocabulary: 80,
            zipf_exponent: 1.0,
            words_per_doc: 12,
        },
    )
}

fn sliding_modes() -> Vec<ExecMode> {
    vec![
        ExecMode::Strawman,
        ExecMode::slider_folding(),
        ExecMode::slider_randomized(),
        ExecMode::slider_rotating(false),
        ExecMode::slider_rotating(true),
        ExecMode::slider_two_stack(),
        ExecMode::slider_daba(),
        ExecMode::slider_daba_lite(),
    ]
}

#[test]
fn hct_all_modes_match_recompute() {
    for mode in sliding_modes() {
        check_mode_equivalence(Hct::new(), text_records(1), mode, (8, 1));
    }
    check_mode_equivalence(
        Hct::new(),
        text_records(1),
        ExecMode::slider_coalescing(true),
        (8, 1),
    );
}

#[test]
fn substr_all_modes_match_recompute() {
    for mode in sliding_modes() {
        check_mode_equivalence(SubStr::new(3), text_records(2), mode, (8, 1));
    }
}

#[test]
fn matrix_all_modes_match_recompute() {
    for mode in sliding_modes() {
        check_mode_equivalence(Matrix::new(2), text_records(3), mode, (8, 1));
    }
}

#[test]
fn kmeans_outputs_match_within_float_tolerance() {
    // Floating-point sums associate differently across tree shapes, so
    // K-Means compares coordinates with a tolerance instead of Eq.
    let points = generate_points(4, 120, 6);
    let app = KMeans::new(initial_centroids(4, 4, 6));
    for mode in sliding_modes() {
        let mk = |mode| {
            let config = JobConfig::new(mode).with_partitions(2).with_buckets(8, 1);
            WindowedJob::new(app.clone(), config).expect("valid config")
        };
        let mut job = mk(mode);
        let mut vanilla = mk(ExecMode::Recompute);
        let splits = make_splits(0, points.clone(), 5);
        job.initial_run(splits[..8].to_vec()).unwrap();
        vanilla.initial_run(splits[..8].to_vec()).unwrap();
        for i in 0..4 {
            let added = splits[8 + 2 * i..10 + 2 * i].to_vec();
            job.advance(2, added.clone()).unwrap();
            vanilla.advance(2, added).unwrap();
        }
        assert_eq!(
            job.output().keys().collect::<Vec<_>>(),
            vanilla.output().keys().collect::<Vec<_>>()
        );
        for (k, centroid) in vanilla.output() {
            for (a, b) in centroid.coords.iter().zip(&job.output()[k].coords) {
                assert!((a - b).abs() < 1e-9, "{mode}: cluster {k} drifted");
            }
        }
    }
}

#[test]
fn knn_all_modes_match_recompute() {
    let train: Vec<(slider_workloads::points::Point, u32)> = generate_points(5, 120, 6)
        .into_iter()
        .enumerate()
        .map(|(i, p)| (p, (i % 3) as u32))
        .collect();
    let queries = generate_points(55, 5, 6);
    for mode in sliding_modes() {
        check_mode_equivalence(Knn::new(queries.clone(), 4), train.clone(), mode, (8, 1));
    }
}

#[test]
fn incremental_work_stays_sublinear_over_long_histories() {
    // Over a long slide history the folding tree's per-slide work must stay
    // bounded (no degradation as the tree ages).
    let docs = generate_documents(
        9,
        600,
        &TextConfig {
            vocabulary: 60,
            zipf_exponent: 1.0,
            words_per_doc: 10,
        },
    );
    let splits = make_splits(0, docs, 5);
    let mut job = WindowedJob::new(
        Hct::new(),
        JobConfig::new(ExecMode::slider_folding()).with_partitions(2),
    )
    .unwrap();
    job.initial_run(splits[..40].to_vec()).unwrap();

    let mut per_slide = Vec::new();
    for i in 0..40 {
        let stats = job
            .advance(2, splits[40 + 2 * i..42 + 2 * i].to_vec())
            .unwrap();
        per_slide.push(stats.work.contraction_fg.work);
    }
    let first_ten: u64 = per_slide[..10].iter().sum();
    let last_ten: u64 = per_slide[30..].iter().sum();
    assert!(
        last_ten < first_ten * 2,
        "per-slide work degraded over time: first ten {first_ten}, last ten {last_ten}"
    );
}
