//! Crash-resilience integration: the service under chaos.
//!
//! Three pillars, each proved by bit-identical-twin comparison:
//!
//! 1. **Checkpoint/restore** — crash the service at *every* ingest
//!    boundary of a seeded 3-tenant run, restore from the
//!    [`ServiceSnapshot`] onto a fresh engine, replay the rest: outputs,
//!    decisions, stats, metrics, health and the final snapshot manifest
//!    are bit-identical to an uninterrupted twin, at 1, 2 and 4 worker
//!    threads.
//! 2. **Tenant fault domains** — a tenant whose scripted dispatch faults
//!    trip its circuit breaker leaves every sibling bit-identical to the
//!    no-bad-tenant twin.
//! 3. **Overload shedding** — an arrival burst sheds deterministically,
//!    lowest priority first, with counters that reconcile exactly.
//!
//! The adversarial schedules come from the seeded chaos harness
//! (`slider_workloads::chaos`), so every crash point, burst and fault is
//! reproducible by construction.

use std::collections::BTreeMap;

use slider_apps::Hct;
use slider_dcache::CacheConfig;
use slider_mapreduce::{EngineShared, EventTimeConfig, ExecMode, JobError, Stamped};
use slider_serve::{
    BreakerConfig, DispatchFaultPlan, OverloadConfig, RateLimit, ServeError, ServiceRuntime,
    TenantId, TenantSpec, SNAPSHOT_VERSION,
};
use slider_workloads::chaos::{chaos_plan, ChaosConfig, ChaosEvent};
use slider_workloads::disorder::DisorderConfig;
use slider_workloads::multitenant::{multitenant_stream, MultiTenantConfig};

const PARTITIONS: usize = 4;
const TENANTS: usize = 3;
const SEED: u64 = 0x9e5d;

fn traffic_config() -> MultiTenantConfig {
    MultiTenantConfig {
        tenants: TENANTS,
        requests_per_tenant: 5,
        records_per_request: 4,
        stream: DisorderConfig {
            records: 0, // per-tenant sizes decide
            mean_step: 2,
            lateness: 8,
            vocabulary: 20,
        },
        hot_tenant: None,
        hot_factor: 1,
        mean_arrival_gap: 4,
    }
}

fn event() -> EventTimeConfig {
    EventTimeConfig {
        epoch_len: 16,
        records_per_split: 3,
        window_epochs: Some(3),
        lateness: 8,
    }
}

fn name_of(tenant: usize) -> String {
    format!("tenant{tenant}")
}

/// A mixed-limit tenant population, so snapshots capture non-trivial
/// admission state: tenant 1 carries a rate limiter's DGIM buckets,
/// tenant 2 a quota ledger.
fn spec_of(tenant: usize) -> TenantSpec {
    let spec = TenantSpec::new(name_of(tenant), ExecMode::slider_folding(), event())
        .with_partitions(PARTITIONS);
    match tenant {
        1 => spec.with_rate_limit(RateLimit::new(6, 40)),
        2 => spec.with_record_quota(60),
        _ => spec,
    }
}

fn engine(threads: usize) -> EngineShared {
    EngineShared::builder()
        .threads(threads)
        .cache(CacheConfig::paper_defaults(PARTITIONS))
        .clock()
        .build()
}

fn stamp(records: &[(u64, u64, String)]) -> Vec<Stamped<String>> {
    records
        .iter()
        .map(|(t, s, line)| Stamped::new(*t, *s, line.clone()))
        .collect()
}

/// Everything one run leaves behind, rendered deterministically — the
/// unit of every twin comparison in this file.
fn fingerprint(service: &ServiceRuntime<Hct>, log: &str) -> String {
    let mut out = format!("log:{log}\n");
    for (id, name) in service.tenants() {
        let view = service.query(id).expect("query");
        out.push_str(&format!(
            "tenant {name}: out={:?} event={:?} stats={:?}\n",
            view.output,
            view.event,
            service.tenant_stats(id).expect("stats")
        ));
    }
    out.push_str(&format!("serve:{:?}\n", service.serve_stats()));
    out.push_str(&service.health());
    out.push_str(&service.metrics());
    out.push_str(&service.snapshot().describe());
    out
}

/// Crash/restore driver for pillar 1: serves the whole stream, crashing
/// (snapshot → drop → restore onto a fresh engine) right before request
/// `crash_at` — `None` never crashes, `Some(len)` crashes after the last
/// request.
fn run_with_crash(threads: usize, crash_at: Option<usize>) -> String {
    let traffic = multitenant_stream(SEED, &traffic_config());
    let mut service: ServiceRuntime<Hct> = ServiceRuntime::new(engine(threads));
    let ids: Vec<TenantId> = (0..TENANTS)
        .map(|t| service.register(Hct::new(), spec_of(t)).expect("register"))
        .collect();
    let mut log = String::new();
    for (at, request) in traffic.iter().enumerate() {
        if crash_at == Some(at) {
            let snapshot = service.snapshot();
            drop(service);
            service = ServiceRuntime::restore(engine(threads), &snapshot).expect("restore");
        }
        let outcome = service
            .ingest(
                ids[request.tenant],
                request.arrival,
                stamp(&request.records),
            )
            .expect("ingest");
        log.push_str(&format!("{};{:?};", outcome.decision, outcome.runs));
    }
    if crash_at == Some(traffic.len()) {
        let snapshot = service.snapshot();
        drop(service);
        service = ServiceRuntime::restore(engine(threads), &snapshot).expect("restore");
    }
    fingerprint(&service, &log)
}

/// Pillar 1: crash at every ingest boundary, at every thread count — the
/// restored service is indistinguishable from one that never crashed.
#[test]
fn crash_at_any_boundary_restores_bit_identically() {
    let boundaries = multitenant_stream(SEED, &traffic_config()).len();
    let reference = run_with_crash(1, None);
    assert!(reference.contains("admitted"), "traffic actually flowed");
    for threads in [1, 2, 4] {
        assert_eq!(
            run_with_crash(threads, None),
            reference,
            "uninterrupted, threads={threads}"
        );
        for at in 0..=boundaries {
            assert_eq!(
                run_with_crash(threads, Some(at)),
                reference,
                "crash before request {at}, threads={threads}"
            );
        }
    }
}

/// A snapshot is a value: one capture can seed many twins, and restoring
/// twice from the same capture yields the same service.
#[test]
fn one_snapshot_seeds_many_identical_twins() {
    let traffic = multitenant_stream(SEED, &traffic_config());
    let mut service: ServiceRuntime<Hct> = ServiceRuntime::new(engine(1));
    let ids: Vec<TenantId> = (0..TENANTS)
        .map(|t| service.register(Hct::new(), spec_of(t)).expect("register"))
        .collect();
    for request in traffic.iter().take(traffic.len() / 2) {
        service
            .ingest(
                ids[request.tenant],
                request.arrival,
                stamp(&request.records),
            )
            .expect("ingest");
    }
    let snapshot = service.snapshot();
    let resume = |threads: usize| {
        let mut twin = ServiceRuntime::restore(engine(threads), &snapshot).expect("restore");
        let mut log = String::new();
        for request in traffic.iter().skip(traffic.len() / 2) {
            let outcome = twin
                .ingest(
                    ids[request.tenant],
                    request.arrival,
                    stamp(&request.records),
                )
                .expect("ingest");
            log.push_str(&format!("{};{:?};", outcome.decision, outcome.runs));
        }
        fingerprint(&twin, &log)
    };
    let first = resume(1);
    assert_eq!(resume(1), first, "same capture, same resumed service");
    assert_eq!(resume(4), first, "thread count cannot leak into a resume");
}

/// Restoring a snapshot from a different format version fails with the
/// typed error, before any state is touched.
#[test]
fn version_mismatch_is_a_typed_error() {
    let mut service: ServiceRuntime<Hct> = ServiceRuntime::new(engine(1));
    service.register(Hct::new(), spec_of(0)).expect("register");
    let snapshot = service.snapshot().with_version(SNAPSHOT_VERSION + 1);
    match ServiceRuntime::<Hct>::restore(engine(1), &snapshot) {
        Err(ServeError::SnapshotVersion { expected, got }) => {
            assert_eq!(expected, SNAPSHOT_VERSION);
            assert_eq!(got, SNAPSHOT_VERSION + 1);
        }
        Err(other) => panic!("expected SnapshotVersion error, got {other:?}"),
        Ok(_) => panic!("restore accepted a mismatched snapshot version"),
    }
}

/// Breaker-isolation driver for pillar 2. The bad tenant (1) carries a
/// breaker and, when `faulty`, a scripted fault plan that fails whole
/// dispatches (attempts > the retry budget). The no-bad-tenant twin
/// registers the *same* tenants with an empty fault plan, so namespaces
/// and registration order stay aligned.
fn run_with_bad_tenant(threads: usize, faulty: bool) -> (BTreeMap<usize, String>, String) {
    let traffic = multitenant_stream(SEED, &traffic_config());
    let mut service: ServiceRuntime<Hct> = ServiceRuntime::new(engine(threads));
    let breaker = BreakerConfig {
        failure_threshold: 2,
        cooldown_ticks: 6,
        ..BreakerConfig::default()
    };
    let faults = if faulty {
        // 9 attempts ≫ the default 2-retry budget: dispatches 0–2 fail
        // outright, tripping the threshold-2 breaker.
        DispatchFaultPlan::new().fail(0, 9).fail(1, 9).fail(2, 9)
    } else {
        DispatchFaultPlan::new()
    };
    let ids: Vec<TenantId> = (0..TENANTS)
        .map(|t| {
            let mut spec = spec_of(t);
            if t == 1 {
                spec = spec
                    .with_breaker(breaker.clone())
                    .with_dispatch_faults(faults.clone());
            }
            service.register(Hct::new(), spec).expect("register")
        })
        .collect();
    let mut logs: BTreeMap<usize, String> = (0..TENANTS).map(|t| (t, String::new())).collect();
    for request in &traffic {
        let line = match service.ingest(
            ids[request.tenant],
            request.arrival,
            stamp(&request.records),
        ) {
            Ok(outcome) => format!("{};{:?};", outcome.decision, outcome.runs),
            Err(ServeError::Job(JobError::Injected(msg))) => format!("fail:{msg};"),
            Err(e) => panic!("unexpected error: {e}"),
        };
        logs.get_mut(&request.tenant).unwrap().push_str(&line);
        // Sibling queries between every request: isolation must hold
        // mid-stream, not just at the end.
        for t in (0..TENANTS).filter(|&t| t != 1) {
            let view = service.query(ids[t]).expect("query");
            logs.get_mut(&t).unwrap().push_str(&format!(
                "q:{:?},{};",
                view.watermark,
                view.output.len()
            ));
        }
    }
    let bad = format!(
        "{:?}|{}",
        service.tenant_stats(ids[1]).expect("stats"),
        logs[&1]
    );
    (logs.into_iter().filter(|(t, _)| *t != 1).collect(), bad)
}

/// Pillar 2: the faulted tenant trips its breaker and is quarantined;
/// its siblings are bit-identical to the twin where no tenant was bad.
#[test]
fn breaker_quarantines_without_touching_siblings() {
    let (clean_siblings, clean_bad) = run_with_bad_tenant(1, false);
    let (faulty_siblings, faulty_bad) = run_with_bad_tenant(1, true);
    assert_eq!(
        faulty_siblings, clean_siblings,
        "siblings of the bad tenant must match the no-bad-tenant twin"
    );
    assert_ne!(faulty_bad, clean_bad, "the bad tenant itself diverged");
    // Two trips: the threshold-2 trip on dispatch 1, then the failed
    // half-open probe (dispatch 2, still scripted to fail) re-opening it.
    assert!(
        faulty_bad.contains("breaker_trips: 2"),
        "breaker tripped: {faulty_bad}"
    );
    assert!(
        faulty_bad.contains("breaker-open"),
        "open breaker bounced requests: {faulty_bad}"
    );
    assert!(faulty_bad.contains("fail:dispatch"), "dispatches failed");
    // The whole faulty run is thread-invariant too.
    for threads in [2, 4] {
        assert_eq!(
            run_with_bad_tenant(threads, true),
            (faulty_siblings.clone(), faulty_bad.clone()),
            "faulty run, threads={threads}"
        );
    }
}

/// Faults inside the retry budget recover transparently: the tenant's
/// observable behavior equals the fault-free twin's everywhere but the
/// retry counters and the backoff charged to the clock.
#[test]
fn recoverable_faults_are_invisible_in_outputs() {
    let run = |faults: DispatchFaultPlan| {
        let traffic = multitenant_stream(SEED, &traffic_config());
        let mut service: ServiceRuntime<Hct> = ServiceRuntime::new(engine(1));
        let id = service
            .register(
                Hct::new(),
                spec_of(0)
                    .with_breaker(BreakerConfig::default())
                    .with_dispatch_faults(faults),
            )
            .expect("register");
        for request in traffic.iter().filter(|r| r.tenant == 0) {
            service
                .ingest(id, request.arrival, stamp(&request.records))
                .expect("recoverable faults never fail the dispatch");
        }
        let view = service.query(id).expect("query");
        let stats = *service.tenant_stats(id).expect("stats");
        (format!("{:?}|{:?}", view.output, view.event), stats)
    };
    // Two failing attempts = exactly the default retry budget.
    let (clean, clean_stats) = run(DispatchFaultPlan::new());
    let (faulted, faulted_stats) = run(DispatchFaultPlan::new().fail(0, 2).fail(2, 1));
    assert_eq!(faulted, clean, "recovered dispatches change nothing");
    assert_eq!(faulted_stats.dispatch_retries, 3);
    assert_eq!(faulted_stats.dispatch_failures, 0);
    assert_eq!(clean_stats.dispatch_retries, 0);
    assert_eq!(
        (faulted_stats.admitted, faulted_stats.runs),
        (clean_stats.admitted, clean_stats.runs)
    );
}

/// Overload driver for pillar 3: a tight service-wide record limit, a
/// priority ladder, and an arrival burst from the chaos harness.
fn run_overloaded(threads: usize) -> (Vec<String>, slider_serve::ServeStats, String) {
    let config = ChaosConfig {
        traffic: MultiTenantConfig {
            mean_arrival_gap: 12,
            ..traffic_config()
        },
        crashes: 0,
        churn_cycles: 0,
        bursts: 2,
        burst_len: 5,
        faulty_tenant: None,
        ..ChaosConfig::default()
    };
    let plan = chaos_plan(SEED, &config);
    let mut service: ServiceRuntime<Hct> = ServiceRuntime::new(engine(threads))
        .with_overload(OverloadConfig::new(12, 24))
        .expect("overload config");
    // Priority ladder: tenant 0 sheds first, tenant 2 never sheds but
    // carries a deadline budget that bounces big requests under pressure.
    let ids: Vec<TenantId> = (0..TENANTS)
        .map(|t| {
            let spec = TenantSpec::new(name_of(t), ExecMode::slider_folding(), event())
                .with_partitions(PARTITIONS)
                .with_priority(match t {
                    0 => 0,
                    1 => 5,
                    _ => 255,
                });
            let spec = if t == 2 {
                spec.with_pressure_budget(3)
            } else {
                spec
            };
            service.register(Hct::new(), spec).expect("register")
        })
        .collect();
    let mut decisions = Vec::new();
    let mut records_sent = 0u64;
    for request in plan.requests() {
        records_sent += request.records.len() as u64;
        let outcome = service
            .ingest(
                ids[request.tenant],
                request.arrival,
                stamp(&request.records),
            )
            .expect("ingest");
        decisions.push(format!("t{} {}", request.tenant, outcome.decision));
    }
    let stats = *service.serve_stats();
    assert_eq!(
        stats.records_admitted + stats.records_rejected,
        records_sent,
        "every record is accounted admitted or rejected"
    );
    (decisions, stats, service.metrics())
}

/// Pillar 3: the burst drives the service over its record limit; shedding
/// hits the lowest-priority tenant, deadline budgets bounce oversized
/// requests, counters reconcile exactly, and the whole degradation is
/// deterministic across reruns and thread counts.
#[test]
fn overload_sheds_deterministically_with_reconciling_counters() {
    let (decisions, stats, metrics) = run_overloaded(1);
    assert!(stats.shed > 0, "the burst shed someone: {decisions:?}");
    assert!(
        decisions.iter().any(|d| d.starts_with("t0 shed")),
        "the lowest-priority tenant was shed: {decisions:?}"
    );
    assert!(
        !decisions.iter().any(|d| d.starts_with("t2 shed")),
        "priority 255 always clears the overflow: {decisions:?}"
    );
    assert_eq!(
        stats.requests,
        stats.admitted
            + stats.rate_limited
            + stats.over_quota
            + stats.too_large
            + stats.breaker_open
            + stats.shed
            + stats.deadline_exceeded,
        "every request lands in exactly one counter"
    );
    assert!(metrics.contains(&format!("shed={}", stats.shed)));
    for threads in [1, 2, 4] {
        assert_eq!(
            run_overloaded(threads),
            (decisions.clone(), stats, metrics.clone()),
            "threads={threads}"
        );
    }
}

/// The full chaos gauntlet: crashes, tenant churn, bursts and dispatch
/// faults in one seeded schedule, bit-identical at every thread count.
#[test]
fn chaos_schedule_is_bit_identical_across_thread_counts() {
    let config = ChaosConfig {
        traffic: traffic_config(),
        crashes: 2,
        churn_cycles: 1,
        bursts: 1,
        burst_len: 4,
        faulty_tenant: Some(1),
        faults: 2,
        max_fault_attempts: 9,
    };
    let plan = chaos_plan(SEED ^ 0xc4a0, &config);
    assert!(plan.events.iter().any(|e| matches!(e, ChaosEvent::Crash)));

    let run = |threads: usize| {
        let mut service: ServiceRuntime<Hct> = ServiceRuntime::new(engine(threads))
            .with_overload(OverloadConfig::new(40, 32))
            .expect("overload config");
        let breaker = BreakerConfig {
            failure_threshold: 1,
            cooldown_ticks: 8,
            ..BreakerConfig::default()
        };
        let spec_for = |t: usize| {
            let mut spec = spec_of(t).with_priority(u8::try_from(t * 40).unwrap_or(u8::MAX));
            if Some(t) == config.faulty_tenant {
                let mut faults = DispatchFaultPlan::new();
                for f in &plan.faults {
                    faults = faults.fail(f.request, f.attempts);
                }
                spec = spec
                    .with_breaker(breaker.clone())
                    .with_dispatch_faults(faults);
            }
            spec
        };
        let mut ids: BTreeMap<usize, TenantId> = (0..TENANTS)
            .map(|t| {
                (
                    t,
                    service.register(Hct::new(), spec_for(t)).expect("register"),
                )
            })
            .collect();
        let mut log = String::new();
        for event in &plan.events {
            match event {
                ChaosEvent::Crash => {
                    let snapshot = service.snapshot();
                    drop(service);
                    service = ServiceRuntime::restore(engine(threads), &snapshot).expect("restore");
                    log.push_str("crash;");
                }
                ChaosEvent::Deregister(t) => {
                    if let Some(id) = ids.remove(t) {
                        let report = service.deregister(id).expect("deregister");
                        log.push_str(&format!("dereg t{t}:{:?};", report.stats));
                    }
                }
                ChaosEvent::Register(t) => {
                    if !ids.contains_key(t) {
                        let id = service.register(Hct::new(), spec_for(*t)).expect("rejoin");
                        ids.insert(*t, id);
                        log.push_str(&format!("rejoin t{t};"));
                    }
                }
                ChaosEvent::Request(request) => {
                    let Some(&id) = ids.get(&request.tenant) else {
                        log.push_str("skip;");
                        continue;
                    };
                    match service.ingest(id, request.arrival, stamp(&request.records)) {
                        Ok(outcome) => {
                            log.push_str(&format!("{};{:?};", outcome.decision, outcome.runs));
                        }
                        Err(ServeError::Job(JobError::Injected(msg))) => {
                            log.push_str(&format!("fail:{msg};"));
                        }
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            }
        }
        fingerprint(&service, &log)
    };
    let reference = run(1);
    assert!(reference.contains("crash;"), "the schedule crashed");
    assert_eq!(run(1), reference, "rerun is bit-identical");
    for threads in [2, 4] {
        assert_eq!(run(threads), reference, "threads={threads}");
    }
}
