//! Failure injection and scheduling integration: cache node crashes must
//! not affect results, and the hybrid scheduler must beat strict
//! memoization-aware placement under stragglers.

use slider_apps::Hct;
use slider_cluster::{simulate, ClusterSpec, MachineId, SchedulerPolicy, Task};
use slider_dcache::CacheConfig;
use slider_mapreduce::{make_splits, ExecMode, JobConfig, WindowedJob};
use slider_workloads::text::{generate_documents, TextConfig};

fn docs() -> Vec<String> {
    generate_documents(
        1,
        200,
        &TextConfig {
            vocabulary: 50,
            zipf_exponent: 1.0,
            words_per_doc: 8,
        },
    )
}

#[test]
fn cache_failures_never_change_results() {
    let records = docs();
    let splits = make_splits(0, records, 5);

    let run = |failures: &[usize]| {
        let mut job = WindowedJob::new(
            Hct::new(),
            JobConfig::new(ExecMode::slider_folding())
                .with_partitions(4)
                .with_cache(CacheConfig::paper_defaults(6)),
        )
        .unwrap();
        job.initial_run(splits[..20].to_vec()).unwrap();
        let mut disk_reads = 0;
        for i in 0..8 {
            if failures.contains(&i) {
                job.fail_cache_node(i % 6);
            }
            let stats = job.advance(1, splits[20 + i..21 + i].to_vec()).unwrap();
            let cache = stats.cache.expect("cache configured");
            assert_eq!(cache.failed_reads(), 0, "replication must mask failures");
            disk_reads += cache.disk_reads;
        }
        (job.output().clone(), disk_reads)
    };

    let (healthy_out, healthy_disk) = run(&[]);
    let (faulty_out, faulty_disk) = run(&[1, 3, 5]);
    assert_eq!(healthy_out, faulty_out, "failures changed the result");
    assert!(
        faulty_disk > healthy_disk,
        "crashes must force persistent-tier fallbacks ({faulty_disk} vs {healthy_disk})"
    );
}

#[test]
fn recovering_a_node_restores_memory_hits() {
    let records = docs();
    let splits = make_splits(0, records, 5);
    let mut job = WindowedJob::new(
        Hct::new(),
        JobConfig::new(ExecMode::slider_folding())
            .with_partitions(2)
            .with_cache(CacheConfig::paper_defaults(2)),
    )
    .unwrap();
    job.initial_run(splits[..10].to_vec()).unwrap();
    job.advance(1, splits[10..11].to_vec()).unwrap();

    job.fail_cache_node(0);
    let during = job.advance(1, splits[11..12].to_vec()).unwrap();
    assert!(during.cache.unwrap().disk_reads > 0);

    job.recover_cache_node(0);
    // First post-recovery run re-warms memory; the next one hits it.
    job.advance(1, splits[12..13].to_vec()).unwrap();
    let after = job.advance(1, splits[13..14].to_vec()).unwrap();
    assert!(
        after.cache.unwrap().memory_hits > 0,
        "memory tier should re-warm"
    );
}

#[test]
fn hybrid_scheduler_beats_strict_placement_under_stragglers() {
    // All reduce tasks prefer machine 0, which is a heavy straggler.
    let spec = ClusterSpec::with_stragglers(1, 0.05);
    let reduces: Vec<Task> = (0..8)
        .map(|i| {
            Task::reduce(i, 50_000)
                .prefer(MachineId(0))
                .with_input_bytes(1 << 20)
        })
        .collect();

    let strict = simulate(
        &spec,
        SchedulerPolicy::MemoizationAware,
        std::slice::from_ref(&reduces),
    );
    let hybrid = simulate(
        &spec,
        SchedulerPolicy::Hybrid {
            migration_threshold: 2.0,
        },
        &[reduces],
    );
    assert!(
        hybrid.makespan < strict.makespan / 2.0,
        "hybrid {} should be far below strict {}",
        hybrid.makespan,
        strict.makespan
    );
    assert!(hybrid.migrations > 0);
}

#[test]
fn vanilla_reduce_placement_pays_remote_reads() {
    // The same windowed run under vanilla vs. memoization-aware reduce
    // placement: vanilla lands reduces off their memoized state.
    let spec = ClusterSpec::paper_cluster();
    let reduces: Vec<Task> = (0..24)
        .map(|i| {
            Task::reduce(i, 1_000)
                .prefer(MachineId(i as usize))
                .with_input_bytes(200 << 20)
        })
        .collect();
    let vanilla = simulate(
        &spec,
        SchedulerPolicy::Vanilla,
        std::slice::from_ref(&reduces),
    );
    let aware = simulate(&spec, SchedulerPolicy::MemoizationAware, &[reduces]);
    assert!(aware.makespan < vanilla.makespan);
    assert_eq!(aware.stages[0].remote_placements, 0);
    assert!(vanilla.stages[0].remote_placements > 0);
}
