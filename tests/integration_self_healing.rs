//! Self-healing integration: re-replication, corruption detection, and
//! master rebuild end to end.
//!
//! The healing invariant on top of PR 2's recovery invariant: with at most
//! `replicas` concurrent cache-node failures and repair enabled, a faulted
//! run performs **zero** fault-induced recomputation and its outputs stay
//! bit-identical to the fault-free twin. All repair/scrub work is metered
//! in `RepairStats`, apart from foreground reads, so fault-free runs
//! report zero self-healing cost.

use slider_apps::Hct;
use slider_dcache::{CacheConfig, RepairStats};
use slider_mapreduce::{make_splits, ExecMode, JobConfig, JobFaultPlan, Split, WindowedJob};
use slider_workloads::text::{generate_documents, TextConfig};

fn varied_records(count: usize) -> Vec<String> {
    generate_documents(
        1,
        count,
        &TextConfig {
            vocabulary: 40,
            zipf_exponent: 1.0,
            words_per_doc: 6,
        },
    )
}

/// Disk-only cache (Table-2 style) so persistent-tier loss is visible:
/// with the memory tier on, the home node would mask replica failures.
fn disk_only_cache(repair: bool) -> CacheConfig {
    let mut cache = CacheConfig::paper_defaults(4);
    cache.memory_enabled = false;
    if repair {
        cache = cache.with_repair();
    }
    cache
}

fn job_with(cache: CacheConfig, plan: Option<JobFaultPlan>) -> WindowedJob<Hct> {
    let mut config = JobConfig::new(ExecMode::slider_rotating(false))
        .with_partitions(4)
        .with_buckets(8, 1)
        .with_cache(cache);
    if let Some(plan) = plan {
        config = config.with_faults(plan);
    }
    WindowedJob::new(Hct::new(), config).unwrap()
}

fn drive(
    job: &mut WindowedJob<Hct>,
    splits: &[Split<String>],
    runs: usize,
) -> Vec<slider_mapreduce::RunStats> {
    let mut all = vec![job.initial_run(splits[..8].to_vec()).unwrap()];
    for i in 0..runs {
        all.push(job.advance(1, splits[8 + i..9 + i].to_vec()).unwrap());
    }
    all
}

fn total_repair(stats: &[slider_mapreduce::RunStats]) -> RepairStats {
    let mut sum = RepairStats::default();
    for s in stats {
        sum.enqueued += s.repair.enqueued;
        sum.repaired_objects += s.repair.repaired_objects;
        sum.copies_restored += s.repair.copies_restored;
        sum.repair_bytes += s.repair.repair_bytes;
        sum.corruptions_detected += s.repair.corruptions_detected;
        sum.master_rebuilds += s.repair.master_rebuilds;
        sum.objects_reindexed += s.repair.objects_reindexed;
    }
    sum
}

/// The headline scenario: node 1 fails, repair heals the under-replicated
/// objects, then node 2 fails. With repair the second failure costs zero
/// recomputation; without it, partition 0's object (originally replicated
/// on exactly nodes 1 and 2) degrades to recompute-on-miss.
#[test]
fn repair_prevents_fault_induced_recomputation() {
    let splits = make_splits(0, varied_records(120), 5); // 24 splits
    let plan = JobFaultPlan::none()
        .fail_cache_node(1, 1)
        .fail_cache_node(3, 2);

    let mut twin = job_with(disk_only_cache(true), None);
    let mut healed = job_with(disk_only_cache(true), Some(plan.clone()));
    let mut degraded = job_with(disk_only_cache(false), Some(plan));

    let twin_stats = drive(&mut twin, &splits, 4);
    let healed_stats = drive(&mut healed, &splits, 4);
    let degraded_stats = drive(&mut degraded, &splits, 4);

    // Faults never change answers — healed or not.
    assert_eq!(healed.output(), twin.output(), "healed run diverged");
    assert_eq!(degraded.output(), twin.output(), "degraded run diverged");
    for (s, t) in healed_stats.iter().zip(&twin_stats) {
        assert_eq!(s.work, t.work, "run {}: faults changed modeled work", s.run);
    }

    // With repair: zero fault-induced recomputation across every run, and
    // the healing work is visible in RepairStats.
    for s in &healed_stats {
        assert!(
            s.recovery.is_zero(),
            "run {}: self-healing must avoid recomputation, got {:?}",
            s.run,
            s.recovery
        );
    }
    let healed_repair = total_repair(&healed_stats);
    assert!(
        healed_repair.enqueued >= 1,
        "node failures must enqueue under-replicated objects"
    );
    assert!(
        healed_stats.iter().any(|s| !s.repair.is_zero()),
        "RepairStats must be nonzero under this plan"
    );

    // Without repair the same plan degrades to recomputation: the object
    // whose two replicas sat exactly on the failed nodes reads
    // Unavailable (indexed but unreachable — the counter split in action).
    let degraded_recovery: u64 = degraded_stats
        .iter()
        .map(|s| s.recovery.cache_misses_recovered)
        .sum();
    assert!(
        degraded_recovery > 0,
        "without repair the second failure must force recomputation"
    );
    let unavailable: u64 = degraded_stats
        .iter()
        .map(|s| s.recovery.cache_unavailable)
        .sum();
    let not_found: u64 = degraded_stats
        .iter()
        .map(|s| s.recovery.cache_not_found)
        .sum();
    assert!(unavailable > 0, "the miss is an availability loss");
    assert_eq!(not_found, 0, "the object never left the index");
    assert_eq!(
        total_repair(&degraded_stats),
        RepairStats::default(),
        "repair disabled must do no background work"
    );
}

/// Corrupted copies are detected by read-path verification and never
/// served; the clean replica answers and nothing is recomputed.
#[test]
fn corruption_fails_over_to_a_clean_replica() {
    let splits = make_splits(0, varied_records(120), 5);
    // Partition 1's object lives on nodes 2 and 3; flip node 2's copy.
    let plan = JobFaultPlan::none().corrupt_object(2, 1, 2);
    let mut twin = job_with(disk_only_cache(true), None);
    let mut faulty = job_with(disk_only_cache(true).with_scrub_interval(1), Some(plan));

    let _ = drive(&mut twin, &splits, 4);
    let stats = drive(&mut faulty, &splits, 4);

    assert_eq!(faulty.output(), twin.output(), "corruption changed answers");
    for s in &stats {
        assert!(
            s.recovery.is_zero(),
            "run {}: failover to the clean replica is not recovery",
            s.run
        );
    }
    assert!(
        total_repair(&stats).corruptions_detected >= 1,
        "the flipped copy must be caught"
    );
    let run2 = &stats[2];
    assert!(
        run2.repair.corruptions_detected >= 1,
        "detection happens on the corrupted run's reads"
    );
    // The scrub cadence is metered as background work.
    assert!(stats.iter().all(|s| s.repair.scrub_passes == 1));
    assert!(stats.iter().any(|s| s.repair.scrubbed_copies > 0));
}

/// Corrupting every replica exhausts failover: the read degrades to
/// recomputation (the last resort) — but still never serves bad data and
/// never changes the output.
#[test]
fn corrupting_every_replica_recomputes_as_last_resort() {
    let splits = make_splits(0, varied_records(120), 5);
    let plan = JobFaultPlan::none()
        .corrupt_object(2, 1, 2)
        .corrupt_object(2, 1, 3);
    let mut twin = job_with(disk_only_cache(true), None);
    let mut faulty = job_with(disk_only_cache(true), Some(plan));

    let _ = drive(&mut twin, &splits, 4);
    let stats = drive(&mut faulty, &splits, 4);

    assert_eq!(faulty.output(), twin.output(), "corruption changed answers");
    let run2 = &stats[2];
    assert_eq!(run2.repair.corruptions_detected, 2, "both copies caught");
    assert_eq!(run2.recovery.cache_misses_recovered, 1);
    assert_eq!(run2.recovery.cache_unavailable, 1);
    assert!(
        run2.recovery.read_retries > 0 && run2.recovery.backoff_seconds > 0.0,
        "unavailable reads retry with backoff before giving up"
    );
    // The re-put after recomputation heals the object for later runs.
    assert!(stats[3].recovery.is_zero() && stats[4].recovery.is_zero());
}

/// Losing the master index is survivable: the index rebuilds
/// deterministically from the node inventories and the run proceeds with
/// zero recomputation.
#[test]
fn master_loss_rebuilds_from_node_inventories() {
    let splits = make_splits(0, varied_records(120), 5);
    let plan = JobFaultPlan::none().lose_master(2);
    let base_cache = || CacheConfig::paper_defaults(4).with_repair();
    let mut twin = job_with(base_cache(), None);
    let mut faulty = job_with(base_cache(), Some(plan));

    let _ = drive(&mut twin, &splits, 4);
    let stats = drive(&mut faulty, &splits, 4);

    assert_eq!(
        faulty.output(),
        twin.output(),
        "master loss changed answers"
    );
    let run2 = &stats[2];
    assert_eq!(run2.repair.master_rebuilds, 1);
    assert!(
        run2.repair.objects_reindexed >= 1,
        "the index must come back from the disks"
    );
    for s in &stats {
        assert!(
            s.recovery.is_zero(),
            "run {}: a rebuilt index needs no recomputation",
            s.run
        );
    }
}

/// Fault-free runs pay nothing for self-healing: every run reports a zero
/// `RepairStats` and the full per-run stats are bit-identical with the
/// feature on and off.
#[test]
fn fault_free_runs_pay_zero_self_healing_cost() {
    let splits = make_splits(0, varied_records(120), 5);
    let mut with_repair = job_with(CacheConfig::paper_defaults(4).with_repair(), None);
    let mut without = job_with(CacheConfig::paper_defaults(4), None);

    let on = drive(&mut with_repair, &splits, 4);
    let off = drive(&mut without, &splits, 4);

    assert_eq!(with_repair.output(), without.output());
    for (s, t) in on.iter().zip(&off) {
        assert!(
            s.repair.is_zero(),
            "run {}: fault-free self-healing cost must be zero, got {:?}",
            s.run,
            s.repair
        );
        assert_eq!(
            format!("{s:?}"),
            format!("{t:?}"),
            "run {}: repair knob changed fault-free stats",
            s.run
        );
    }
}
