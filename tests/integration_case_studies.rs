//! End-to-end case studies (§8) exercised across crates: workload
//! generators → applications → windowed engine → metrics.

use std::sync::Arc;

use slider_apps::{
    AuditVerdict, GlasnostMonitor, NetSessionAudit, PropagationStats, TwitterPropagation,
};
use slider_mapreduce::{make_splits, ExecMode, JobConfig, Split, WindowedJob};
use slider_workloads::glasnost::{generate_months, GlasnostConfig};
use slider_workloads::netsession::{generate_week, NetSessionConfig};
use slider_workloads::twitter::{generate, TwitterConfig};

#[test]
fn twitter_case_study_end_to_end() {
    let data = generate(
        3,
        &TwitterConfig {
            users: 300,
            avg_follows: 5,
            urls: 40,
            repost_probability: 0.4,
        },
        3_000,
    );
    let intervals = data.intervals(&[80, 5, 5, 5, 5]);

    let run = |mode| {
        let mut job = WindowedJob::new(
            TwitterPropagation::new(Arc::clone(&data.graph)),
            JobConfig::new(mode).with_partitions(3),
        )
        .unwrap();
        let mut id = 0;
        let mut mk = |tweets: Vec<slider_workloads::twitter::Tweet>| {
            let s = make_splits(id, tweets, 50);
            id += s.len() as u64;
            s
        };
        let mut work = Vec::new();
        let mut slices = intervals.iter();
        let initial = job.initial_run(mk(slices.next().unwrap().clone())).unwrap();
        work.push(initial.work.foreground_total());
        for slice in slices {
            let stats = job.advance(0, mk(slice.clone())).unwrap();
            work.push(stats.work.foreground_total());
        }
        (job.output().clone(), work)
    };

    let (vanilla_out, vanilla_work) = run(ExecMode::Recompute);
    let (slider_out, slider_work) = run(ExecMode::slider_coalescing(true));
    assert_eq!(vanilla_out, slider_out);

    // Each weekly append must be much cheaper than recomputation.
    for (i, (v, s)) in vanilla_work.iter().zip(&slider_work).enumerate().skip(1) {
        assert!(s < v, "append {i}: slider {s} >= vanilla {v}");
    }

    // Cascades exist and have sane statistics.
    let max: &PropagationStats = vanilla_out
        .values()
        .max_by_key(|s| s.edges)
        .expect("some URL");
    assert!(max.edges > 0, "no propagation happened");
    assert!(max.depth >= 2);
    assert!(max.nodes as u64 >= max.depth as u64);
}

#[test]
fn glasnost_case_study_medians_are_stable_and_correct() {
    let config = GlasnostConfig {
        servers: 3,
        clients: 100,
        samples_per_test: 6,
    };
    let months = generate_months(1, &config, &[120, 120, 120, 120, 120]);

    let run = |mode| {
        let per_month = 4usize;
        let mut job = WindowedJob::new(
            GlasnostMonitor::new(),
            JobConfig::new(mode)
                .with_partitions(2)
                .with_buckets(3, per_month),
        )
        .unwrap();
        let mut id = 0u64;
        let mut mk = |traces: &Vec<slider_workloads::glasnost::TestTrace>| {
            let mut splits = make_splits(id, traces.clone(), traces.len().div_ceil(per_month));
            while splits.len() < per_month {
                splits.push(Split::from_records(id + splits.len() as u64, Vec::new()));
            }
            id += per_month as u64;
            splits
        };
        let initial: Vec<_> = months[0..3].iter().flat_map(&mut mk).collect();
        job.initial_run(initial).unwrap();
        let mut outputs = vec![job.output().clone()];
        for month in &months[3..] {
            job.advance(per_month, mk(month)).unwrap();
            outputs.push(job.output().clone());
        }
        outputs
    };

    let vanilla = run(ExecMode::Recompute);
    let slider = run(ExecMode::slider_rotating(true));
    assert_eq!(vanilla.len(), slider.len());
    for (window, (v, s)) in vanilla.iter().zip(&slider).enumerate() {
        assert_eq!(v.keys().collect::<Vec<_>>(), s.keys().collect::<Vec<_>>());
        for (server, median) in v {
            assert!(
                (median - s[server]).abs() < 1e-12,
                "window {window}, server {server}: {median} vs {}",
                s[server]
            );
            assert!((5.0..170.0).contains(median), "implausible median {median}");
        }
    }
}

#[test]
fn netsession_case_study_flags_exactly_the_tampered_clients() {
    let config = NetSessionConfig {
        clients: 400,
        mean_entries: 10,
        tamper_rate: 0.1,
    };
    let weeks: Vec<Vec<_>> = (0..6u32)
        .map(|w| generate_week(5, &config, w, if w == 4 { 0.75 } else { 0.95 }))
        .collect();

    let run = |mode| {
        let mut job = WindowedJob::new(
            NetSessionAudit::new(),
            JobConfig::new(mode).with_partitions(3),
        )
        .unwrap();
        let mut id = 0u64;
        let mut counts = std::collections::VecDeque::new();
        let mut mk = |logs: &Vec<slider_workloads::netsession::ClientLog>,
                      counts: &mut std::collections::VecDeque<usize>| {
            let s = make_splits(id, logs.clone(), 20);
            id += s.len() as u64;
            counts.push_back(s.len());
            s
        };
        let mut initial = Vec::new();
        for week in &weeks[..4] {
            initial.extend(mk(week, &mut counts));
        }
        job.initial_run(initial).unwrap();
        for week in &weeks[4..] {
            let added = mk(week, &mut counts);
            let oldest = counts.pop_front().unwrap();
            job.advance(oldest, added).unwrap();
        }
        job.output().clone()
    };

    let vanilla = run(ExecMode::Recompute);
    let slider = run(ExecMode::slider_folding());
    assert_eq!(vanilla, slider);

    // Reference: recompute verdicts straight from the final window.
    let mut expected_flagged = std::collections::BTreeSet::new();
    for week in &weeks[2..] {
        for log in week {
            if !log.chain_ok {
                expected_flagged.insert(log.client);
            }
        }
    }
    let flagged: std::collections::BTreeSet<u32> = slider
        .iter()
        .filter_map(|(c, v)| matches!(v, AuditVerdict::Flagged { .. }).then_some(*c))
        .collect();
    assert_eq!(flagged, expected_flagged);
    assert!(!flagged.is_empty(), "10% tamper rate must flag someone");
}
