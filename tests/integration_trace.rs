//! Cross-crate integration for the `slider-trace` observability subsystem.
//!
//! The load-bearing invariants:
//!
//! * **Exact reconciliation** — span totals on every track equal the
//!   engine's own statistics (`WorkBreakdown`, `RecoveryStats`,
//!   `RepairStats`, `SimReport`, cache counters), per run, for every
//!   execution mode and thread count. Not approximately: `u64` sums are
//!   exact and `f64` folds replay the engine's own accumulation order.
//! * **Zero observable overhead** — enabling tracing leaves job outputs
//!   and `RunStats` bit-identical to an untraced run.
//! * **Determinism** — the three profile exports are byte-identical for
//!   any `threads` value, because the virtual clock counts modeled work,
//!   never wall time.

use std::collections::BTreeMap;

use slider_apps::Hct;
use slider_dcache::{CacheConfig, DistributedCache, NodeId, ObjectId};
use slider_mapreduce::{
    make_splits, ExecMode, JobConfig, JobFaultPlan, RunStats, SimulationConfig, TraceSink,
    WindowedJob,
};
use slider_trace::{validate_chrome_trace, SpanKind, TraceSnapshot};
use slider_workloads::text::{generate_documents, TextConfig};

fn records(count: usize) -> Vec<String> {
    generate_documents(
        7,
        count,
        &TextConfig {
            vocabulary: 60,
            zipf_exponent: 1.0,
            words_per_doc: 8,
        },
    )
}

fn all_modes() -> Vec<ExecMode> {
    vec![
        ExecMode::Recompute,
        ExecMode::Strawman,
        ExecMode::slider_folding(),
        ExecMode::slider_randomized(),
        ExecMode::slider_rotating(true),
        ExecMode::slider_coalescing(true),
        ExecMode::slider_daba(),
        ExecMode::slider_daba_lite(),
    ]
}

/// Builds a traced job and drives the same 4-run history every test uses:
/// an 8-split initial window plus three slides. Returns the per-run stats.
fn drive(mode: ExecMode, threads: usize, trace: TraceSink) -> (Vec<RunStats>, WindowedJob<Hct>) {
    let splits = make_splits(0, records(70), 5);
    let mut config = JobConfig::new(mode)
        .with_partitions(3)
        .with_simulation(SimulationConfig::paper_defaults())
        .with_threads(threads)
        .with_trace(trace);
    if mode.tree_kind() == Some(slider_core::TreeKind::Rotating) {
        config = config.with_buckets(8, 1);
    }
    let mut job = WindowedJob::new(Hct::new(), config).expect("valid config");
    let mut stats = vec![job.initial_run(splits[..8].to_vec()).expect("initial")];
    let append_only = mode.tree_kind() == Some(slider_core::TreeKind::Coalescing);
    for i in 0..3 {
        let added = splits[8 + i..9 + i].to_vec();
        let remove = if append_only { 0 } else { 1 };
        stats.push(job.advance(remove, added).expect("slide"));
    }
    (stats, job)
}

/// Replays the emission-order f64 fold `seconds_total` performs, from the
/// engine's own per-stage numbers — addition order identical, so equality
/// below is bit-exact.
fn fold_sim_seconds(stats: &RunStats) -> f64 {
    let mut total = 0.0f64;
    if let Some(sim) = &stats.sim {
        for stage in &sim.stages {
            total += stage.duration;
        }
    }
    if let Some(bg) = &stats.sim_background {
        for stage in &bg.stages {
            total += stage.duration;
        }
    }
    total
}

fn assert_run_reconciles(snap: &TraceSnapshot, stats: &RunStats, mode: ExecMode, threads: usize) {
    let run = Some(stats.run);
    let cx = format!("mode={mode} threads={threads} run={}", stats.run);
    assert_eq!(
        snap.work_total("engine", SpanKind::Map, run),
        stats.work.map,
        "{cx}: map work"
    );
    assert_eq!(
        snap.work_total("engine", SpanKind::ContractionFg, run),
        stats.work.contraction_fg.work,
        "{cx}: foreground contraction work"
    );
    assert_eq!(
        snap.work_total("engine", SpanKind::Reduce, run),
        stats.work.reduce,
        "{cx}: reduce work"
    );
    assert_eq!(
        snap.work_total("engine", SpanKind::Movement, run),
        stats.work.movement,
        "{cx}: movement work"
    );
    assert_eq!(
        snap.work_total("background", SpanKind::ContractionBg, run),
        stats.work.contraction_bg.work,
        "{cx}: background contraction work"
    );
    assert_eq!(
        snap.arg_total("engine", SpanKind::Shuffle, "bytes", run),
        stats.shuffle_bytes,
        "{cx}: shuffle bytes"
    );
    let sim_seconds = snap.seconds_total("cluster", SpanKind::SimStage, run);
    assert_eq!(
        sim_seconds.to_bits(),
        fold_sim_seconds(stats).to_bits(),
        "{cx}: simulated stage seconds must refold bit-exactly"
    );
    assert_eq!(
        snap.work_total("recovery", SpanKind::Recovery, run),
        stats.recovery.rebuild_work,
        "{cx}: recovery rebuild work"
    );
    assert_eq!(
        snap.seconds_total("recovery", SpanKind::Recovery, run)
            .to_bits(),
        stats.recovery.backoff_seconds.to_bits(),
        "{cx}: recovery backoff seconds"
    );
}

#[test]
fn span_totals_reconcile_with_run_stats_across_modes_and_threads() {
    for mode in all_modes() {
        for threads in [1usize, 2, 4] {
            let sink = TraceSink::enabled();
            let (stats, _job) = drive(mode, threads, sink.clone());
            let snap = sink.snapshot().expect("sink is enabled");
            for run_stats in &stats {
                assert_run_reconciles(&snap, run_stats, mode, threads);
            }
            // The run-span totals cover the whole engine track: one Run
            // span per advance, each enclosing the run's engine phases.
            assert_eq!(
                snap.span_count("engine", SpanKind::Run, None),
                stats.len(),
                "mode={mode}: one Run span per advance"
            );
        }
    }
}

#[test]
fn recovery_and_repair_tracks_reconcile_under_faults() {
    let plan = JobFaultPlan::none()
        .lose_memo(1, vec![0, 2])
        .fail_cache_node(2, 1)
        .corrupt_object(2, 0, 2);
    let sink = TraceSink::enabled();
    let splits = make_splits(0, records(70), 5);
    // Disk-only cache (Table-2 style) so persistent-tier loss is visible;
    // a scrub every run keeps the background self-healing path hot.
    let mut cache = CacheConfig::paper_defaults(4)
        .with_repair()
        .with_scrub_interval(1);
    cache.memory_enabled = false;
    let config = JobConfig::new(ExecMode::slider_rotating(false))
        .with_partitions(4)
        .with_buckets(8, 1)
        .with_cache(cache)
        .with_faults(plan)
        .with_trace(sink.clone());
    let mut job = WindowedJob::new(Hct::new(), config).expect("valid config");
    let mut stats = vec![job.initial_run(splits[..8].to_vec()).expect("initial")];
    for i in 0..4 {
        stats.push(
            job.advance(1, splits[8 + i..9 + i].to_vec())
                .expect("slide"),
        );
    }
    let snap = sink.snapshot().expect("sink is enabled");

    assert!(
        stats.iter().any(|s| s.recovery.rebuild_work > 0),
        "the fault plan must force memo rebuilds"
    );
    assert!(
        stats
            .iter()
            .any(|s| s.repair.repair_seconds > 0.0 || s.repair.scrub_seconds > 0.0),
        "the fault plan must trigger self-healing work"
    );
    for s in &stats {
        let run = Some(s.run);
        assert_eq!(
            snap.work_total("recovery", SpanKind::Recovery, run),
            s.recovery.rebuild_work,
            "run {}: rebuild work",
            s.run
        );
        assert_eq!(
            snap.seconds_total("recovery", SpanKind::Recovery, run)
                .to_bits(),
            s.recovery.backoff_seconds.to_bits(),
            "run {}: backoff seconds",
            s.run
        );
        // The run-summary repair/scrub spans carry the exact f64 deltas
        // stored in `RunStats::repair`.
        assert_eq!(
            snap.seconds_total("repair", SpanKind::Repair, run)
                .to_bits(),
            s.repair.repair_seconds.to_bits(),
            "run {}: repair seconds",
            s.run
        );
        assert_eq!(
            snap.seconds_total("repair", SpanKind::Scrub, run).to_bits(),
            s.repair.scrub_seconds.to_bits(),
            "run {}: scrub seconds",
            s.run
        );
        assert_eq!(
            snap.arg_total("repair", SpanKind::Repair, "repair_bytes", run),
            s.repair.repair_bytes,
            "run {}: repair bytes",
            s.run
        );
    }
}

#[test]
fn tracing_leaves_outputs_and_stats_bit_identical() {
    for mode in all_modes() {
        let run = |trace: TraceSink| {
            let (stats, job) = drive(mode, 2, trace);
            let debug: Vec<String> = stats.iter().map(|s| format!("{s:?}")).collect();
            (job.output().clone(), debug)
        };
        let (out_off, stats_off) = run(TraceSink::disabled());
        let (out_on, stats_on) = run(TraceSink::enabled());
        assert_eq!(out_off, out_on, "mode={mode}: outputs must not change");
        assert_eq!(
            stats_off, stats_on,
            "mode={mode}: RunStats must be bit-identical under tracing"
        );
    }
}

#[test]
fn exports_are_byte_identical_across_thread_counts() {
    let export = |threads: usize| {
        let sink = TraceSink::enabled();
        drive(ExecMode::slider_rotating(true), threads, sink.clone());
        let snap = sink.snapshot().expect("sink is enabled");
        (
            snap.chrome_trace(),
            snap.folded_flamegraph(),
            snap.metrics_json(),
        )
    };
    let base = export(1);
    let events = validate_chrome_trace(&base.0).expect("valid Chrome trace");
    assert!(events > 0, "trace must contain complete events");
    assert!(!base.1.is_empty(), "flamegraph must have frames");
    for threads in [2usize, 4] {
        let other = export(threads);
        assert_eq!(base.0, other.0, "chrome trace, 1 vs {threads} threads");
        assert_eq!(base.1, other.1, "flamegraph, 1 vs {threads} threads");
        assert_eq!(base.2, other.2, "metrics, 1 vs {threads} threads");
    }
}

#[test]
fn dcache_counters_reconcile_with_cache_stats() {
    let sink = TraceSink::enabled();
    let mut cache = DistributedCache::new(CacheConfig::paper_defaults(4).with_repair());
    cache.attach_trace(sink.clone());

    for p in 0..6u64 {
        cache.put(ObjectId(p), 4096 + p * 512, NodeId((p % 4) as usize), 0);
    }
    for p in 0..6u64 {
        let _ = cache.read(ObjectId(p), NodeId(((p + 1) % 4) as usize));
    }
    let _ = cache.read(ObjectId(99), NodeId(0)); // not found
    cache.fail_node(NodeId(1));
    for p in 0..6u64 {
        let _ = cache.read(ObjectId(p), NodeId(2));
    }
    cache.corrupt_object(ObjectId(3), NodeId(0));
    cache.drain_repairs();
    cache.scrub();
    cache.recover_node(NodeId(1));
    cache.collect_garbage(5);

    let stats = cache.stats();
    let repair = cache.repair_stats();
    let snap = sink.snapshot().expect("sink is enabled");
    let checks: Vec<(&str, u64)> = vec![
        ("dcache.memory_hits", stats.memory_hits),
        ("dcache.disk_reads", stats.disk_reads),
        ("dcache.not_found_reads", stats.not_found_reads),
        ("dcache.unavailable_reads", stats.unavailable_reads),
        ("dcache.bytes_read", stats.bytes_read),
        ("dcache.collected", stats.collected),
        ("dcache.repair.enqueued", repair.enqueued),
        ("dcache.repair.repaired_objects", repair.repaired_objects),
        ("dcache.repair.copies_restored", repair.copies_restored),
        ("dcache.repair.bytes", repair.repair_bytes),
        ("dcache.scrub.passes", repair.scrub_passes),
        ("dcache.scrub.copies", repair.scrubbed_copies),
        ("dcache.scrub.bytes", repair.scrub_bytes),
        ("dcache.corruptions_detected", repair.corruptions_detected),
        ("dcache.stale_copies_purged", repair.stale_copies_purged),
        ("dcache.node_failures", 1),
        ("dcache.node_recoveries", 1),
    ];
    for (counter, expected) in checks {
        assert_eq!(
            snap.counter(counter),
            expected,
            "counter {counter} must equal the cache's own stat"
        );
    }
    assert!(stats.memory_hits + stats.disk_reads > 0, "reads happened");
}

#[test]
fn pipeline_and_query_tracks_reconcile() {
    use slider_query::{AggFn, Query};

    let sink = TraceSink::enabled();
    let query = Query::load()
        .group_by(vec![0], vec![AggFn::Count])
        .group_by(vec![1], vec![AggFn::Count]);
    let mut exec = query
        .compile(
            JobConfig::new(ExecMode::slider_folding())
                .with_partitions(2)
                .with_trace(sink.clone()),
            4,
        )
        .expect("compiles");
    let data: Vec<slider_query::Row> = (0..40)
        .map(|i| {
            vec![
                slider_query::Field::Int(i % 5),
                slider_query::Field::Int(i % 3),
            ]
        })
        .collect();
    let mut runs = vec![exec
        .initial_run(make_splits(0, data[..30].to_vec(), 5))
        .unwrap()];
    runs.push(
        exec.advance(1, make_splits(100, data[30..].to_vec(), 5))
            .unwrap(),
    );

    let snap = sink.snapshot().expect("sink is enabled");
    for r in &runs {
        let run = Some(r.first.run);
        let inner_map: u64 = r.inner.iter().map(|s| s.map_work).sum();
        let inner_fg: u64 = r.inner.iter().map(|s| s.tree.foreground.work).sum();
        let inner_reduce: u64 = r.inner.iter().map(|s| s.reduce_work).sum();
        assert_eq!(
            snap.work_total("pipeline", SpanKind::Map, run),
            inner_map,
            "pipeline map work"
        );
        assert_eq!(
            snap.work_total("pipeline", SpanKind::ContractionFg, run),
            inner_fg,
            "pipeline contraction work"
        );
        assert_eq!(
            snap.work_total("pipeline", SpanKind::Reduce, run),
            inner_reduce,
            "pipeline reduce work"
        );
        let query_total = r.first.work.foreground_total()
            + r.inner
                .iter()
                .map(slider_mapreduce::InnerStageStats::total_work)
                .sum::<u64>();
        assert_eq!(
            snap.work_total("query", SpanKind::Stage, run),
            query_total,
            "query per-job work"
        );
    }
    assert_eq!(snap.counter("query.runs"), runs.len() as u64);

    // A second compile of the same query against the same sink would share
    // the tracer; outputs stay plain data either way.
    let rows: BTreeMap<String, String> = exec
        .rows()
        .iter()
        .map(|r| (format!("{:?}", r[0]), format!("{:?}", r[1])))
        .collect();
    assert!(!rows.is_empty());
}
