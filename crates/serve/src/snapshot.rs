//! Deterministic service checkpoints.
//!
//! A [`ServiceSnapshot`] is a deep, versioned capture of everything a
//! [`ServiceRuntime`](crate::ServiceRuntime) would need to resume after a
//! crash as if the crash never happened:
//!
//! * the shared engine's mutable state — the simulated clock, the
//!   memoization cache *contents* (a full [`DistributedCache`] image),
//!   and the cache-namespace watermark;
//! * every live tenant — its [`TenantSpec`], the event-time feeder's
//!   reorder buffer / late queue / window map, the job's aggregator
//!   trees cloned *exactly* (see
//!   [`WindowedJob::checkpoint`](slider_mapreduce::WindowedJob::checkpoint)),
//!   the admission gate's DGIM buckets and quota ledger, the circuit
//!   breaker's position, the dispatch sequence counter and the folded
//!   statistics;
//! * the service roll-up, the overload gauge, and the tenant-id counter.
//!
//! The restore invariant (proved by `tests/integration_resilience.rs`):
//! crash at *any* ingest boundary, restore onto a fresh engine, replay
//! the remaining requests — and every output, query, and metrics render
//! is bit-identical to an uninterrupted twin, at any thread count.
//!
//! Snapshots are in-memory values (this reproduction models durability,
//! it does not serialize to disk — no serde in the dependency set), but
//! they are *byte-stable*: [`ServiceSnapshot::describe`] renders a
//! deterministic manifest, identical across twins, reruns and thread
//! counts, which is what an on-disk format would checksum.

use std::fmt::Write as _;

use slider_cluster::SimClock;
use slider_dcache::DistributedCache;
use slider_mapreduce::{FeederCheckpoint, MapReduceApp};

use crate::admission::{GateSnapshot, OverloadConfig};
use crate::breaker::BreakerState;
use crate::stats::{ServeStats, TenantStats};
use crate::tenant::{TenantId, TenantSpec};

/// The snapshot-format version this build writes and the only version
/// [`ServiceRuntime::restore`](crate::ServiceRuntime::restore) accepts;
/// a mismatch is the typed error
/// [`ServeError::SnapshotVersion`](crate::ServeError::SnapshotVersion),
/// never a panic.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Captured overload-gauge state.
pub(crate) struct OverloadSnapshot {
    pub(crate) config: OverloadConfig,
    pub(crate) gauge: slider_core::CounterSnapshot,
    pub(crate) last_arrival: u64,
}

/// One live tenant's captured state.
pub(crate) struct TenantSnapshot<A: MapReduceApp> {
    pub(crate) id: TenantId,
    pub(crate) name: String,
    pub(crate) spec: TenantSpec,
    pub(crate) feeder: FeederCheckpoint<A>,
    pub(crate) gate: GateSnapshot,
    pub(crate) breaker: Option<BreakerState>,
    pub(crate) dispatch_seq: u64,
    pub(crate) stats: TenantStats,
}

/// A versioned, deep checkpoint of a whole service (see the module
/// docs). Build with
/// [`ServiceRuntime::snapshot`](crate::ServiceRuntime::snapshot); resume
/// with [`ServiceRuntime::restore`](crate::ServiceRuntime::restore). A
/// snapshot is a value — restoring borrows it, so one capture can seed
/// any number of resumed twins.
pub struct ServiceSnapshot<A: MapReduceApp> {
    pub(crate) version: u32,
    pub(crate) clock: Option<SimClock>,
    pub(crate) cache: Option<DistributedCache>,
    pub(crate) namespace_watermark: u32,
    pub(crate) next_id: u64,
    pub(crate) stats: ServeStats,
    pub(crate) overload: Option<OverloadSnapshot>,
    pub(crate) tenants: Vec<TenantSnapshot<A>>,
}

impl<A: MapReduceApp> ServiceSnapshot<A> {
    /// The snapshot-format version this capture carries.
    #[must_use]
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Overrides the carried version — a forward-compatibility testing
    /// hook, used to prove that restoring a snapshot from a different
    /// format version fails with a typed error instead of corrupting
    /// state or panicking.
    #[must_use]
    pub fn with_version(mut self, version: u32) -> Self {
        self.version = version;
        self
    }

    /// Live tenants captured.
    #[must_use]
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// A byte-stable manifest of the capture: every field that defines
    /// the resumed service's behavior, rendered deterministically. Two
    /// snapshots taken at the same logical point of twin services render
    /// identically — across reruns and worker-thread counts — so this is
    /// the string an on-disk checkpoint format would checksum.
    #[must_use]
    pub fn describe(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# slider-serve snapshot v{}", self.version);
        match self.clock {
            Some(clock) => {
                let _ = writeln!(
                    out,
                    "clock seconds={:.6} advances={}",
                    clock.seconds, clock.advances
                );
            }
            None => {
                let _ = writeln!(out, "clock none");
            }
        }
        match &self.cache {
            Some(cache) => {
                let _ = writeln!(
                    out,
                    "cache objects={} indexed_bytes={}",
                    cache.len(),
                    cache.indexed_bytes()
                );
            }
            None => {
                let _ = writeln!(out, "cache none");
            }
        }
        let _ = writeln!(
            out,
            "service namespace_watermark={} next_tenant_id={} tenants={}",
            self.namespace_watermark,
            self.next_id,
            self.tenants.len()
        );
        let _ = writeln!(out, "stats {:?}", self.stats);
        match &self.overload {
            Some(o) => {
                let _ = writeln!(
                    out,
                    "overload limit={} window={} epsilon={} last_arrival={} gauge={:?}",
                    o.config.record_limit,
                    o.config.window,
                    o.config.epsilon,
                    o.last_arrival,
                    o.gauge
                );
            }
            None => {
                let _ = writeln!(out, "overload none");
            }
        }
        for t in &self.tenants {
            let breaker = match t.breaker {
                None => "none".to_string(),
                Some(BreakerState::Closed { failures }) => format!("closed:{failures}"),
                Some(BreakerState::Open { since }) => format!("open:{since}"),
                Some(BreakerState::HalfOpen) => "half-open".to_string(),
            };
            let _ = writeln!(
                out,
                "tenant id={} name={} ns={} runs={} window_splits={} buffered={} \
                 dispatch_seq={} gate_used={} breaker={}",
                t.id,
                t.name,
                t.feeder.job().cache_namespace(),
                t.feeder.job().run_index(),
                t.feeder.job().window_splits(),
                t.feeder.buffered_records(),
                t.dispatch_seq,
                t.gate.used,
                breaker
            );
            let _ = writeln!(out, "tenant id={} event={:?}", t.id, t.feeder.stats());
            if let Some(limiter) = &t.gate.limiter {
                let _ = writeln!(out, "tenant id={} limiter={limiter:?}", t.id);
            }
            let _ = writeln!(out, "tenant id={} stats={:?}", t.id, t.stats);
        }
        out
    }
}
