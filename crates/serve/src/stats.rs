//! Service-side statistics: per-tenant and service-wide counters that
//! reconcile bit-exactly with the per-run [`RunStats`] the engine
//! returns.
//!
//! Both structs fold the *deterministic* subset of [`RunStats`] — work,
//! task and key counts, byte counters — with plain integer addition, so
//! `sum(per-run) == folded` is an exact invariant, not an approximation.

use slider_mapreduce::RunStats;

use crate::admission::Decision;

/// Folded statistics for one tenant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Requests seen at the front door.
    pub requests: u64,
    /// Requests admitted and dispatched.
    pub admitted: u64,
    /// Requests bounced by the DGIM rate limiter.
    pub rate_limited: u64,
    /// Requests bounced by the lifetime record quota.
    pub over_quota: u64,
    /// Requests bounced by the per-request record cap.
    pub too_large: u64,
    /// Requests bounced by an open circuit breaker.
    pub breaker_open: u64,
    /// Requests shed under service-wide overload.
    pub shed: u64,
    /// Requests bounced by the under-pressure record budget.
    pub deadline_exceeded: u64,
    /// Admitted dispatches that failed after exhausting their retries.
    pub dispatch_failures: u64,
    /// Dispatch retries performed (backoff charged to the shared clock).
    pub dispatch_retries: u64,
    /// Times the circuit breaker tripped (Closed → Open, or a failed
    /// half-open probe re-opening it).
    pub breaker_trips: u64,
    /// Records carried by admitted requests.
    pub records_admitted: u64,
    /// Records carried by rejected requests.
    pub records_rejected: u64,
    /// Runs the tenant's job executed.
    pub runs: u64,
    /// Total foreground work across all runs.
    pub work_foreground: u64,
    /// Total work including background pre-processing.
    pub work_grand: u64,
    /// Map tasks executed.
    pub map_tasks: u64,
    /// Splits whose map output was reused from memoization.
    pub map_reused: u64,
    /// Keys recomputed by Reduce.
    pub keys_reduced: u64,
    /// Keys whose previous output was reused untouched.
    pub keys_reused: u64,
    /// Bytes of fresh map output shuffled.
    pub shuffle_bytes: u64,
    /// Bytes of memoized state read.
    pub memo_read_bytes: u64,
    /// Memoization footprint after the most recent run.
    pub memo_footprint_bytes: u64,
}

impl TenantStats {
    /// Folds one run's metrics in.
    pub fn absorb(&mut self, run: &RunStats) {
        self.runs += 1;
        self.work_foreground += run.work.foreground_total();
        self.work_grand += run.work.grand_total();
        self.map_tasks += run.map_tasks as u64;
        self.map_reused += run.map_reused as u64;
        self.keys_reduced += run.keys_reduced as u64;
        self.keys_reused += run.keys_reused as u64;
        self.shuffle_bytes += run.shuffle_bytes;
        self.memo_read_bytes += run.memo_read_bytes;
        self.memo_footprint_bytes = run.memo_footprint_bytes;
    }

    /// Counts one front-door decision.
    pub(crate) fn count(&mut self, decision: &Decision, records: usize) {
        self.requests += 1;
        match decision {
            Decision::Admitted { .. } => {
                self.admitted += 1;
                self.records_admitted += records as u64;
            }
            Decision::RateLimited { .. } => {
                self.rate_limited += 1;
                self.records_rejected += records as u64;
            }
            Decision::OverQuota { .. } => {
                self.over_quota += 1;
                self.records_rejected += records as u64;
            }
            Decision::TooLarge { .. } => {
                self.too_large += 1;
                self.records_rejected += records as u64;
            }
            Decision::BreakerOpen { .. } => {
                self.breaker_open += 1;
                self.records_rejected += records as u64;
            }
            Decision::Shed { .. } => {
                self.shed += 1;
                self.records_rejected += records as u64;
            }
            Decision::DeadlineExceeded { .. } => {
                self.deadline_exceeded += 1;
                self.records_rejected += records as u64;
            }
        }
    }
}

/// Service-wide roll-up: the exact sum of every tenant's folded stats,
/// including tenants that have since deregistered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Tenants ever registered.
    pub tenants_registered: u64,
    /// Tenants deregistered again.
    pub tenants_deregistered: u64,
    /// Requests seen at the front door.
    pub requests: u64,
    /// Requests admitted and dispatched.
    pub admitted: u64,
    /// Requests bounced by rate limiting.
    pub rate_limited: u64,
    /// Requests bounced by quota enforcement.
    pub over_quota: u64,
    /// Requests bounced by the per-request cap.
    pub too_large: u64,
    /// Requests bounced by open circuit breakers.
    pub breaker_open: u64,
    /// Requests shed under service-wide overload.
    pub shed: u64,
    /// Requests bounced by under-pressure record budgets.
    pub deadline_exceeded: u64,
    /// Admitted dispatches that failed after exhausting their retries.
    pub dispatch_failures: u64,
    /// Dispatch retries performed across all tenants.
    pub dispatch_retries: u64,
    /// Circuit-breaker trips across all tenants.
    pub breaker_trips: u64,
    /// Records carried by admitted requests.
    pub records_admitted: u64,
    /// Records carried by rejected requests.
    pub records_rejected: u64,
    /// Runs executed across all tenants.
    pub runs: u64,
    /// Total foreground work across all tenants' runs.
    pub work_foreground: u64,
    /// Total work including background pre-processing.
    pub work_grand: u64,
}

impl ServeStats {
    /// Folds one run's metrics in (mirrors [`TenantStats::absorb`]).
    pub fn absorb(&mut self, run: &RunStats) {
        self.runs += 1;
        self.work_foreground += run.work.foreground_total();
        self.work_grand += run.work.grand_total();
    }

    /// Counts one front-door decision.
    pub(crate) fn count(&mut self, decision: &Decision, records: usize) {
        self.requests += 1;
        match decision {
            Decision::Admitted { .. } => {
                self.admitted += 1;
                self.records_admitted += records as u64;
            }
            Decision::RateLimited { .. } => {
                self.rate_limited += 1;
                self.records_rejected += records as u64;
            }
            Decision::OverQuota { .. } => {
                self.over_quota += 1;
                self.records_rejected += records as u64;
            }
            Decision::TooLarge { .. } => {
                self.too_large += 1;
                self.records_rejected += records as u64;
            }
            Decision::BreakerOpen { .. } => {
                self.breaker_open += 1;
                self.records_rejected += records as u64;
            }
            Decision::Shed { .. } => {
                self.shed += 1;
                self.records_rejected += records as u64;
            }
            Decision::DeadlineExceeded { .. } => {
                self.deadline_exceeded += 1;
                self.records_rejected += records as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_folds_exactly() {
        let mut run = RunStats::default();
        run.work.map = 10;
        run.work.reduce = 5;
        run.work.movement = 1;
        run.work.contraction_bg.work = 4;
        run.map_tasks = 3;
        run.shuffle_bytes = 100;
        run.memo_footprint_bytes = 77;

        let mut tenant = TenantStats::default();
        tenant.absorb(&run);
        tenant.absorb(&run);
        assert_eq!(tenant.runs, 2);
        assert_eq!(tenant.work_foreground, 32);
        assert_eq!(tenant.work_grand, 40);
        assert_eq!(tenant.map_tasks, 6);
        assert_eq!(tenant.shuffle_bytes, 200);
        assert_eq!(tenant.memo_footprint_bytes, 77, "footprint is last-value");

        let mut serve = ServeStats::default();
        serve.absorb(&run);
        serve.absorb(&run);
        assert_eq!(
            (serve.runs, serve.work_foreground, serve.work_grand),
            (tenant.runs, tenant.work_foreground, tenant.work_grand),
            "the roll-up folds the identical sums"
        );
    }

    #[test]
    fn decisions_are_counted_by_kind() {
        let mut s = TenantStats::default();
        s.count(&Decision::Admitted { records: 4 }, 4);
        s.count(
            &Decision::RateLimited {
                limit: 1,
                estimate: 1,
            },
            2,
        );
        s.count(&Decision::OverQuota { quota: 1, used: 1 }, 3);
        s.count(&Decision::TooLarge { max: 1, got: 9 }, 9);
        assert_eq!(s.requests, 4);
        assert_eq!(s.admitted, 1);
        assert_eq!(s.records_admitted, 4);
        assert_eq!(s.records_rejected, 14);
    }
}
