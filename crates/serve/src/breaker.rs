//! Per-tenant fault domains: bounded dispatch retries and a circuit
//! breaker that quarantines a persistently failing tenant without
//! touching its siblings.
//!
//! Dispatch failures are rare but must not be contagious: one tenant
//! whose job keeps erroring (or whose scripted [`DispatchFaultPlan`]
//! keeps injecting failures) may not consume service capacity forever.
//! Each tenant therefore owns an optional [`CircuitBreaker`]:
//!
//! * **Closed** — requests flow; consecutive dispatch failures are
//!   counted. A success resets the count.
//! * **Open** — after [`BreakerConfig::failure_threshold`] consecutive
//!   failures the breaker trips: every request bounces with
//!   [`Decision::BreakerOpen`](crate::Decision::BreakerOpen) until
//!   [`BreakerConfig::cooldown_ticks`] arrival ticks have passed. The
//!   cool-down is measured on the *service clock* (request arrival
//!   ticks), so it is deterministic by construction.
//! * **HalfOpen** — after the cool-down the next request is a probe: a
//!   success closes the breaker, a failure re-opens it for another full
//!   cool-down.
//!
//! Before a failure is charged, the dispatch is retried under the
//! engine-shared [`RetryPolicy`]: each retry's exponential backoff is
//! charged to the shared simulated clock (never a wall-clock sleep), so
//! the whole recovery path replays bit-identically at any thread count.

use slider_mapreduce::RetryPolicy;

/// Circuit-breaker and retry configuration for one tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive dispatch failures that trip the breaker.
    pub failure_threshold: u32,
    /// Arrival ticks the breaker stays open before a half-open probe.
    pub cooldown_ticks: u64,
    /// Bounded-retry policy applied to a failing dispatch before the
    /// failure is charged to the breaker.
    pub retry: RetryPolicy,
    /// Base backoff per retry, in simulated seconds; retry `n` charges
    /// `retry_backoff_seconds × retry.backoff_multiplier(n)` to the
    /// shared clock (when one is configured).
    pub retry_backoff_seconds: f64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_ticks: 16,
            retry: RetryPolicy::default(),
            retry_backoff_seconds: 0.05,
        }
    }
}

impl BreakerConfig {
    /// Validates the configuration.
    pub(crate) fn validate(&self) -> Result<(), String> {
        if self.failure_threshold == 0 {
            return Err("breaker failure threshold must be at least 1".into());
        }
        if !self.retry_backoff_seconds.is_finite() || self.retry_backoff_seconds < 0.0 {
            return Err(format!(
                "retry backoff seconds must be finite and >= 0, got {}",
                self.retry_backoff_seconds
            ));
        }
        self.retry.validate()
    }
}

/// One scripted dispatch failure: the first `attempts` tries of the
/// tenant's admitted request number `request` (0-based, counted over
/// admitted dispatches only) fail with
/// [`JobError::Injected`](slider_mapreduce::JobError::Injected) before
/// reaching the feeder. With `attempts` ≤ the retry budget the request
/// recovers transparently; beyond it the dispatch fails and charges the
/// breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchFault {
    /// 0-based admitted-dispatch sequence number this fault targets.
    pub request: u64,
    /// Attempts (initial try + retries) that fail.
    pub attempts: u32,
}

/// A tenant's scripted dispatch faults, for chaos testing. Failures are
/// injected *before* the records touch the feeder, so a faulted tenant's
/// window state stays exactly what its successful dispatches built — and
/// sibling tenants are untouched by construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DispatchFaultPlan {
    /// The scripted faults, in any order.
    pub faults: Vec<DispatchFault>,
}

impl DispatchFaultPlan {
    /// An empty plan (no injected failures).
    #[must_use]
    pub fn new() -> Self {
        DispatchFaultPlan::default()
    }

    /// Scripts the first `attempts` tries of admitted dispatch `request`
    /// to fail. Builder-style.
    #[must_use]
    pub fn fail(mut self, request: u64, attempts: u32) -> Self {
        self.faults.push(DispatchFault { request, attempts });
        self
    }

    /// Failing attempts scripted for dispatch `request` (the maximum over
    /// matching entries; 0 = no fault).
    #[must_use]
    pub fn failing_attempts(&self, request: u64) -> u32 {
        self.faults
            .iter()
            .filter(|f| f.request == request)
            .map(|f| f.attempts)
            .max()
            .unwrap_or(0)
    }

    /// Validates the plan.
    pub(crate) fn validate(&self) -> Result<(), String> {
        if self.faults.iter().any(|f| f.attempts == 0) {
            return Err("a dispatch fault must fail at least one attempt".into());
        }
        Ok(())
    }
}

/// The breaker's position in its state machine. Captured verbatim by
/// service snapshots and reimposed on restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow; `failures` consecutive dispatch failures so far.
    Closed {
        /// Consecutive failures since the last success.
        failures: u32,
    },
    /// Tripped at arrival tick `since`; requests bounce until the
    /// cool-down elapses.
    Open {
        /// Arrival tick the breaker tripped at.
        since: u64,
    },
    /// Cool-down elapsed; the next request is a probe.
    HalfOpen,
}

/// Per-tenant circuit breaker (see the module docs for the state
/// machine). All transitions are driven by request arrival ticks and
/// dispatch outcomes — both deterministic — so twin services agree on
/// every state change.
#[derive(Debug, Clone)]
pub(crate) struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
}

impl CircuitBreaker {
    pub(crate) fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed { failures: 0 },
        }
    }

    /// Rebuilds a breaker at a captured state.
    pub(crate) fn restore(config: BreakerConfig, state: BreakerState) -> Self {
        CircuitBreaker { config, state }
    }

    #[cfg(test)]
    pub(crate) fn config(&self) -> &BreakerConfig {
        &self.config
    }

    pub(crate) fn state(&self) -> BreakerState {
        self.state
    }

    /// Gate for a request arriving at tick `now`: `None` lets it through
    /// (Closed, or an Open breaker whose cool-down elapsed — which moves
    /// to HalfOpen and lets the probe pass); `Some(remaining)` bounces it
    /// with the ticks left in the cool-down.
    pub(crate) fn check(&mut self, now: u64) -> Option<u64> {
        match self.state {
            BreakerState::Closed { .. } | BreakerState::HalfOpen => None,
            BreakerState::Open { since } => {
                let reopens = since.saturating_add(self.config.cooldown_ticks);
                if now >= reopens {
                    self.state = BreakerState::HalfOpen;
                    None
                } else {
                    Some(reopens - now)
                }
            }
        }
    }

    /// A dispatch succeeded: the breaker closes and the failure streak
    /// resets.
    pub(crate) fn on_success(&mut self) {
        self.state = BreakerState::Closed { failures: 0 };
    }

    /// A dispatch failed (after its retries were exhausted) at tick
    /// `now`. Returns `true` when this failure *trips* the breaker
    /// (Closed → Open on reaching the threshold, or a failed HalfOpen
    /// probe re-opening it).
    pub(crate) fn on_failure(&mut self, now: u64) -> bool {
        match self.state {
            BreakerState::Closed { failures } => {
                let failures = failures + 1;
                if failures >= self.config.failure_threshold {
                    self.state = BreakerState::Open { since: now };
                    true
                } else {
                    self.state = BreakerState::Closed { failures };
                    false
                }
            }
            BreakerState::HalfOpen | BreakerState::Open { .. } => {
                self.state = BreakerState::Open { since: now };
                true
            }
        }
    }

    /// Stable single-token rendering for health/metrics key=value lines.
    pub(crate) fn describe(&self) -> String {
        match self.state {
            BreakerState::Closed { failures } => format!("closed:{failures}"),
            BreakerState::Open { since } => format!("open:{since}"),
            BreakerState::HalfOpen => "half-open".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_and_probes_after_cooldown() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown_ticks: 10,
            ..BreakerConfig::default()
        });
        assert_eq!(b.check(0), None);
        assert!(!b.on_failure(0), "first failure does not trip");
        assert!(b.on_failure(1), "second failure trips");
        assert_eq!(b.state(), BreakerState::Open { since: 1 });
        assert_eq!(b.check(5), Some(6), "cool-down remaining is exact");
        assert_eq!(b.check(11), None, "cool-down elapsed: probe passes");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed { failures: 0 });
    }

    #[test]
    fn failed_probe_reopens_for_a_full_cooldown() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown_ticks: 4,
            ..BreakerConfig::default()
        });
        assert!(b.on_failure(0));
        assert_eq!(b.check(4), None, "probe");
        assert!(b.on_failure(4), "failed probe counts as a trip");
        assert_eq!(b.check(7), Some(1));
        assert_eq!(b.check(8), None);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            ..BreakerConfig::default()
        });
        b.on_failure(0);
        b.on_failure(1);
        b.on_success();
        assert!(!b.on_failure(2), "streak restarted after the success");
    }

    #[test]
    fn restore_resumes_mid_cooldown() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown_ticks: 8,
            ..BreakerConfig::default()
        });
        assert!(b.on_failure(10));
        let state = b.state();
        let mut twin = CircuitBreaker::restore(b.config().clone(), state);
        assert_eq!(twin.check(12), b.check(12));
        assert_eq!(twin.check(18), b.check(18));
        assert_eq!(twin.state(), b.state());
    }

    #[test]
    fn fault_plans_take_the_max_over_duplicates() {
        let plan = DispatchFaultPlan::new().fail(3, 1).fail(3, 4).fail(7, 2);
        assert_eq!(plan.failing_attempts(3), 4);
        assert_eq!(plan.failing_attempts(7), 2);
        assert_eq!(plan.failing_attempts(0), 0);
        assert!(plan.validate().is_ok());
        assert!(DispatchFaultPlan::new().fail(1, 0).validate().is_err());
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let mut cfg = BreakerConfig::default();
        assert!(cfg.validate().is_ok());
        cfg.failure_threshold = 0;
        assert!(cfg.validate().is_err());
        let cfg = BreakerConfig {
            retry_backoff_seconds: f64::NAN,
            ..BreakerConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = BreakerConfig {
            retry: RetryPolicy::new(1, 0.25),
            ..BreakerConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn descriptions_are_stable() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            ..BreakerConfig::default()
        });
        assert_eq!(b.describe(), "closed:0");
        b.on_failure(9);
        assert_eq!(b.describe(), "open:9");
        b.check(100);
        assert_eq!(b.describe(), "half-open");
    }
}
