//! The deterministic admission chain.
//!
//! Every request passes three gates, in a fixed order, before its records
//! reach the tenant's windowed job:
//!
//! 1. **Admission control** — request-shape limits
//!    ([`TenantSpec::max_request_records`](crate::TenantSpec::max_request_records)).
//! 2. **Rate limiting** — a DGIM sliding-window counter
//!    ([`slider_core::SlidingWindowCounter`]) estimates how many requests
//!    the tenant admitted inside the trailing rate window; at or above the
//!    limit the request bounces. The estimate is approximate (within the
//!    configured ε) but *deterministic*: the same request sequence is
//!    accepted and rejected identically on every run.
//! 3. **Quota enforcement** — a lifetime record budget.
//!
//! Only admitted requests count toward the rate window and the quota, so
//! a rejected burst does not starve a tenant forever.

use std::fmt;

use slider_core::SlidingWindowCounter;

use crate::tenant::TenantSpec;

/// The front door's verdict on one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The request was dispatched to the tenant's job.
    Admitted {
        /// Records handed to the event-time feeder.
        records: usize,
    },
    /// The request exceeded the per-request record cap.
    TooLarge {
        /// Configured cap.
        max: usize,
        /// Records the request carried.
        got: usize,
    },
    /// The DGIM estimate of recent admissions was at or above the limit.
    RateLimited {
        /// Configured requests-per-window limit.
        limit: u64,
        /// DGIM estimate of admissions in the trailing window.
        estimate: u64,
    },
    /// Admitting the request would exceed the lifetime record quota.
    OverQuota {
        /// Configured lifetime record budget.
        quota: u64,
        /// Records admitted so far.
        used: u64,
    },
}

impl Decision {
    /// True for [`Decision::Admitted`].
    pub fn is_admitted(&self) -> bool {
        matches!(self, Decision::Admitted { .. })
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decision::Admitted { records } => write!(f, "admitted records={records}"),
            Decision::TooLarge { max, got } => write!(f, "too-large max={max} got={got}"),
            Decision::RateLimited { limit, estimate } => {
                write!(f, "rate-limited limit={limit} estimate={estimate}")
            }
            Decision::OverQuota { quota, used } => {
                write!(f, "over-quota quota={quota} used={used}")
            }
        }
    }
}

/// Per-tenant admission state: the DGIM limiter plus quota bookkeeping.
#[derive(Debug)]
pub(crate) struct AdmissionGate {
    limiter: Option<(SlidingWindowCounter, u64)>,
    quota: Option<u64>,
    used: u64,
    max_request: Option<usize>,
}

impl AdmissionGate {
    /// Builds the gate for a validated spec.
    pub(crate) fn new(spec: &TenantSpec) -> Self {
        AdmissionGate {
            limiter: spec.rate_limit.as_ref().map(|limit| {
                (
                    SlidingWindowCounter::new(limit.window, limit.epsilon),
                    limit.requests,
                )
            }),
            quota: spec.record_quota,
            used: 0,
            max_request: spec.max_request_records,
        }
    }

    /// Runs the chain for a request of `records` records arriving at tick
    /// `now`. Mutates the gate only when the request is admitted.
    pub(crate) fn admit(&mut self, now: u64, records: usize) -> Decision {
        if let Some(max) = self.max_request {
            if records > max {
                return Decision::TooLarge { max, got: records };
            }
        }
        if let Some((limiter, limit)) = &self.limiter {
            let estimate = limiter.count(now);
            if estimate >= *limit {
                return Decision::RateLimited {
                    limit: *limit,
                    estimate,
                };
            }
        }
        if let Some(quota) = self.quota {
            if self.used + records as u64 > quota {
                return Decision::OverQuota {
                    quota,
                    used: self.used,
                };
            }
        }
        if let Some((limiter, _)) = &mut self.limiter {
            limiter.record(now);
        }
        self.used += records as u64;
        Decision::Admitted { records }
    }

    /// Records admitted so far (quota consumption).
    #[cfg(test)]
    pub(crate) fn used(&self) -> u64 {
        self.used
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::RateLimit;

    fn spec() -> TenantSpec {
        TenantSpec::new(
            "t",
            slider_mapreduce::ExecMode::slider_folding(),
            slider_mapreduce::EventTimeConfig {
                epoch_len: 10,
                records_per_split: 2,
                window_epochs: Some(2),
                lateness: 0,
            },
        )
    }

    #[test]
    fn unlimited_gate_admits_everything() {
        let mut gate = AdmissionGate::new(&spec());
        for now in 0..100 {
            assert!(gate.admit(now, 1_000).is_admitted());
        }
        assert_eq!(gate.used(), 100_000);
    }

    #[test]
    fn request_cap_is_checked_first() {
        let mut gate = AdmissionGate::new(
            &spec()
                .with_max_request_records(4)
                .with_rate_limit(RateLimit::new(1, 100))
                .with_record_quota(2),
        );
        // Oversized: rejected by the cap, not by the (also violated) quota.
        assert_eq!(gate.admit(0, 9), Decision::TooLarge { max: 4, got: 9 });
        assert_eq!(gate.used(), 0, "rejections must not consume quota");
    }

    #[test]
    fn rate_limit_counts_only_admitted_requests() {
        let mut gate = AdmissionGate::new(&spec().with_rate_limit(RateLimit::new(2, 10)));
        assert!(gate.admit(0, 1).is_admitted());
        assert!(gate.admit(1, 1).is_admitted());
        // Third request inside the window bounces...
        assert_eq!(
            gate.admit(2, 1),
            Decision::RateLimited {
                limit: 2,
                estimate: 2
            }
        );
        // ...and bouncing did not record, so the window drains on schedule.
        assert!(gate.admit(12, 1).is_admitted());
    }

    #[test]
    fn quota_is_a_lifetime_budget() {
        let mut gate = AdmissionGate::new(&spec().with_record_quota(5));
        assert!(gate.admit(0, 3).is_admitted());
        assert_eq!(gate.admit(1, 3), Decision::OverQuota { quota: 5, used: 3 });
        // A smaller request that still fits is fine.
        assert!(gate.admit(2, 2).is_admitted());
        assert_eq!(gate.admit(3, 1), Decision::OverQuota { quota: 5, used: 5 });
    }

    #[test]
    fn decisions_render_stably() {
        assert_eq!(
            Decision::RateLimited {
                limit: 2,
                estimate: 3
            }
            .to_string(),
            "rate-limited limit=2 estimate=3"
        );
        assert_eq!(
            Decision::Admitted { records: 7 }.to_string(),
            "admitted records=7"
        );
    }
}
