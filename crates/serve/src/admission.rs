//! The deterministic admission chain.
//!
//! Every request passes three gates, in a fixed order, before its records
//! reach the tenant's windowed job:
//!
//! 1. **Admission control** — request-shape limits
//!    ([`TenantSpec::max_request_records`](crate::TenantSpec::max_request_records)).
//! 2. **Rate limiting** — a DGIM sliding-window counter
//!    ([`slider_core::SlidingWindowCounter`]) estimates how many requests
//!    the tenant admitted inside the trailing rate window; at or above the
//!    limit the request bounces. The estimate is approximate (within the
//!    configured ε) but *deterministic*: the same request sequence is
//!    accepted and rejected identically on every run.
//! 3. **Quota enforcement** — a lifetime record budget.
//!
//! Only admitted requests count toward the rate window and the quota, so
//! a rejected burst does not starve a tenant forever.

use std::fmt;

use slider_core::{CounterSnapshot, SlidingWindowCounter};

use crate::tenant::TenantSpec;

/// The front door's verdict on one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The request was dispatched to the tenant's job.
    Admitted {
        /// Records handed to the event-time feeder.
        records: usize,
    },
    /// The request exceeded the per-request record cap.
    TooLarge {
        /// Configured cap.
        max: usize,
        /// Records the request carried.
        got: usize,
    },
    /// The DGIM estimate of recent admissions was at or above the limit.
    RateLimited {
        /// Configured requests-per-window limit.
        limit: u64,
        /// DGIM estimate of admissions in the trailing window.
        estimate: u64,
    },
    /// Admitting the request would exceed the lifetime record quota.
    OverQuota {
        /// Configured lifetime record budget.
        quota: u64,
        /// Records admitted so far.
        used: u64,
    },
    /// The tenant's circuit breaker is open (see
    /// [`BreakerConfig`](crate::BreakerConfig)).
    BreakerOpen {
        /// Arrival ticks left in the cool-down.
        remaining: u64,
    },
    /// Overload: the request exceeded the tenant's under-pressure record
    /// budget ([`TenantSpec::pressure_budget`](crate::TenantSpec::pressure_budget)).
    DeadlineExceeded {
        /// The configured per-request budget under pressure.
        budget: usize,
        /// Records the request carried.
        got: usize,
    },
    /// Overload: the service shed this request because the tenant's
    /// priority did not clear the current overflow (lowest-priority
    /// tenants shed first; see [`OverloadConfig`]).
    Shed {
        /// The tenant's configured priority.
        priority: u8,
        /// Admitted-record estimate above the overload limit.
        overflow: u64,
    },
}

impl Decision {
    /// True for [`Decision::Admitted`].
    pub fn is_admitted(&self) -> bool {
        matches!(self, Decision::Admitted { .. })
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decision::Admitted { records } => write!(f, "admitted records={records}"),
            Decision::TooLarge { max, got } => write!(f, "too-large max={max} got={got}"),
            Decision::RateLimited { limit, estimate } => {
                write!(f, "rate-limited limit={limit} estimate={estimate}")
            }
            Decision::OverQuota { quota, used } => {
                write!(f, "over-quota quota={quota} used={used}")
            }
            Decision::BreakerOpen { remaining } => {
                write!(f, "breaker-open remaining={remaining}")
            }
            Decision::DeadlineExceeded { budget, got } => {
                write!(f, "deadline-exceeded budget={budget} got={got}")
            }
            Decision::Shed { priority, overflow } => {
                write!(f, "shed priority={priority} overflow={overflow}")
            }
        }
    }
}

/// Service-wide overload configuration: a DGIM gauge estimates the
/// admitted records inside the trailing `window` arrival ticks; once the
/// estimate reaches `record_limit` the service is under pressure and
/// degrades *deterministically* — requests larger than their tenant's
/// pressure budget bounce ([`Decision::DeadlineExceeded`]), and tenants
/// whose priority does not exceed the overflow are shed entirely
/// ([`Decision::Shed`]), lowest priority first.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadConfig {
    /// Admitted records per trailing window before pressure sets in.
    pub record_limit: u64,
    /// Width of the trailing window, in arrival ticks.
    pub window: u64,
    /// DGIM accuracy knob (relative estimation error bound, in `(0, 1]`).
    pub epsilon: f64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            record_limit: 1024,
            window: 64,
            epsilon: 0.5,
        }
    }
}

impl OverloadConfig {
    /// A gauge of `record_limit` records per trailing `window` ticks at
    /// the default ε = 0.5.
    #[must_use]
    pub fn new(record_limit: u64, window: u64) -> Self {
        OverloadConfig {
            record_limit,
            window,
            epsilon: 0.5,
        }
    }

    /// Overrides the DGIM accuracy knob. Builder-style.
    #[must_use]
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    pub(crate) fn validate(&self) -> Result<(), String> {
        if self.window == 0 {
            return Err("overload window must be positive".into());
        }
        if !(self.epsilon > 0.0 && self.epsilon <= 1.0) {
            return Err("overload epsilon must be in (0, 1]".into());
        }
        Ok(())
    }
}

/// Per-tenant admission state: the DGIM limiter plus quota bookkeeping.
#[derive(Debug)]
pub(crate) struct AdmissionGate {
    limiter: Option<(SlidingWindowCounter, u64)>,
    quota: Option<u64>,
    used: u64,
    max_request: Option<usize>,
}

impl AdmissionGate {
    /// Builds the gate for a validated spec.
    pub(crate) fn new(spec: &TenantSpec) -> Self {
        AdmissionGate {
            limiter: spec.rate_limit.as_ref().map(|limit| {
                (
                    SlidingWindowCounter::new(limit.window, limit.epsilon),
                    limit.requests,
                )
            }),
            quota: spec.record_quota,
            used: 0,
            max_request: spec.max_request_records,
        }
    }

    /// Runs the chain for a request of `records` records arriving at tick
    /// `now`. Mutates the gate only when the request is admitted.
    pub(crate) fn admit(&mut self, now: u64, records: usize) -> Decision {
        if let Some(max) = self.max_request {
            if records > max {
                return Decision::TooLarge { max, got: records };
            }
        }
        if let Some((limiter, limit)) = &self.limiter {
            let estimate = limiter.count(now);
            if estimate >= *limit {
                return Decision::RateLimited {
                    limit: *limit,
                    estimate,
                };
            }
        }
        if let Some(quota) = self.quota {
            if self.used + records as u64 > quota {
                return Decision::OverQuota {
                    quota,
                    used: self.used,
                };
            }
        }
        if let Some((limiter, _)) = &mut self.limiter {
            limiter.record(now);
        }
        self.used += records as u64;
        Decision::Admitted { records }
    }

    /// Records admitted so far (quota consumption).
    #[cfg(test)]
    pub(crate) fn used(&self) -> u64 {
        self.used
    }

    /// Captures the gate's mutable state (the DGIM limiter's buckets and
    /// the quota ledger); the static limits live in the [`TenantSpec`]
    /// and are re-derived on restore.
    pub(crate) fn snapshot(&self) -> GateSnapshot {
        GateSnapshot {
            limiter: self.limiter.as_ref().map(|(counter, _)| counter.snapshot()),
            used: self.used,
        }
    }

    /// Rebuilds a gate for `spec` and reimposes the captured state.
    pub(crate) fn restore(spec: &TenantSpec, snapshot: &GateSnapshot) -> Self {
        let mut gate = AdmissionGate::new(spec);
        if let (Some((counter, _)), Some(captured)) = (&mut gate.limiter, &snapshot.limiter) {
            *counter = SlidingWindowCounter::restore(captured);
        }
        gate.used = snapshot.used;
        gate
    }
}

/// Captured mutable state of one [`AdmissionGate`].
#[derive(Debug, Clone)]
pub(crate) struct GateSnapshot {
    pub(crate) limiter: Option<CounterSnapshot>,
    pub(crate) used: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::RateLimit;

    fn spec() -> TenantSpec {
        TenantSpec::new(
            "t",
            slider_mapreduce::ExecMode::slider_folding(),
            slider_mapreduce::EventTimeConfig {
                epoch_len: 10,
                records_per_split: 2,
                window_epochs: Some(2),
                lateness: 0,
            },
        )
    }

    #[test]
    fn unlimited_gate_admits_everything() {
        let mut gate = AdmissionGate::new(&spec());
        for now in 0..100 {
            assert!(gate.admit(now, 1_000).is_admitted());
        }
        assert_eq!(gate.used(), 100_000);
    }

    #[test]
    fn request_cap_is_checked_first() {
        let mut gate = AdmissionGate::new(
            &spec()
                .with_max_request_records(4)
                .with_rate_limit(RateLimit::new(1, 100))
                .with_record_quota(2),
        );
        // Oversized: rejected by the cap, not by the (also violated) quota.
        assert_eq!(gate.admit(0, 9), Decision::TooLarge { max: 4, got: 9 });
        assert_eq!(gate.used(), 0, "rejections must not consume quota");
    }

    #[test]
    fn rate_limit_counts_only_admitted_requests() {
        let mut gate = AdmissionGate::new(&spec().with_rate_limit(RateLimit::new(2, 10)));
        assert!(gate.admit(0, 1).is_admitted());
        assert!(gate.admit(1, 1).is_admitted());
        // Third request inside the window bounces...
        assert_eq!(
            gate.admit(2, 1),
            Decision::RateLimited {
                limit: 2,
                estimate: 2
            }
        );
        // ...and bouncing did not record, so the window drains on schedule.
        assert!(gate.admit(12, 1).is_admitted());
    }

    #[test]
    fn quota_is_a_lifetime_budget() {
        let mut gate = AdmissionGate::new(&spec().with_record_quota(5));
        assert!(gate.admit(0, 3).is_admitted());
        assert_eq!(gate.admit(1, 3), Decision::OverQuota { quota: 5, used: 3 });
        // A smaller request that still fits is fine.
        assert!(gate.admit(2, 2).is_admitted());
        assert_eq!(gate.admit(3, 1), Decision::OverQuota { quota: 5, used: 5 });
    }

    #[test]
    fn decisions_render_stably() {
        assert_eq!(
            Decision::RateLimited {
                limit: 2,
                estimate: 3
            }
            .to_string(),
            "rate-limited limit=2 estimate=3"
        );
        assert_eq!(
            Decision::Admitted { records: 7 }.to_string(),
            "admitted records=7"
        );
    }
}
