//! The service runtime: tenant registry, admission, dispatch, and the
//! health/metrics surface.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use slider_mapreduce::{
    EngineShared, EventFeeder, JobConfig, MapReduceApp, RunStats, Stamped, WindowedJob,
};
use slider_trace::{SpanKind, TrackId};

use crate::admission::{AdmissionGate, Decision};
use crate::error::ServeError;
use crate::stats::{ServeStats, TenantStats};
use crate::tenant::{TenantId, TenantReport, TenantSpec, WindowView};

/// What one front-door request produced: the admission verdict and, for
/// admitted requests, the runs the dispatch executed (closed epochs and
/// late-record splices the new records unlocked).
#[derive(Debug)]
pub struct IngestOutcome {
    /// The admission chain's verdict.
    pub decision: Decision,
    /// Runs executed by this dispatch (empty for rejected requests).
    pub runs: Vec<RunStats>,
}

struct TenantEntry<A: MapReduceApp> {
    name: String,
    feeder: EventFeeder<A>,
    gate: AdmissionGate,
    stats: TenantStats,
    track: Option<TrackId>,
}

/// A multi-tenant streaming service over one shared engine.
///
/// Tenants register at runtime with a [`TenantSpec`]; each is compiled
/// into an [`EventFeeder`]-backed windowed job attached to the service's
/// [`EngineShared`] (one runtime, one trace sink, one memoization cache
/// with a private namespace per tenant, one simulated-cluster clock).
/// Requests pass the deterministic admission chain before dispatch; the
/// window of any tenant can be queried between requests while other
/// tenants' slides are in flight.
///
/// Determinism contract: the same registration order, request sequence
/// and seeds produce bit-identical per-tenant outputs, [`ServeStats`]
/// and trace exports at every worker-thread count.
pub struct ServiceRuntime<A: MapReduceApp> {
    shared: EngineShared,
    tenants: BTreeMap<TenantId, TenantEntry<A>>,
    names: BTreeMap<String, TenantId>,
    next_id: u64,
    stats: ServeStats,
}

impl<A: MapReduceApp> ServiceRuntime<A> {
    /// Creates an empty service over `shared`.
    pub fn new(shared: EngineShared) -> Self {
        ServiceRuntime {
            shared,
            tenants: BTreeMap::new(),
            names: BTreeMap::new(),
            next_id: 1,
            stats: ServeStats::default(),
        }
    }

    /// The shared engine infrastructure this service multiplexes.
    pub fn shared(&self) -> &EngineShared {
        &self.shared
    }

    /// Registers a tenant: validates `spec`, compiles it into an
    /// event-time windowed job on the shared engine, and opens the
    /// tenant's trace track (`tenant:<name>`).
    pub fn register(&mut self, app: A, spec: TenantSpec) -> Result<TenantId, ServeError> {
        spec.validate()?;
        if self.names.contains_key(&spec.name) {
            return Err(ServeError::DuplicateTenant(spec.name));
        }
        let mut config = JobConfig::new(spec.mode).with_partitions(spec.partitions);
        if let Some(sim) = spec.simulation.clone() {
            config = config.with_simulation(sim);
        }
        if let Some(rate) = spec.work_per_byte {
            config = config.with_work_per_byte(rate);
        }
        let job = WindowedJob::with_shared(app, config, &self.shared)?;
        let feeder = EventFeeder::new(job, spec.event)?;
        let id = TenantId(self.next_id);
        self.next_id += 1;
        let track = self
            .shared
            .trace()
            .with(|t| t.track(&format!("tenant:{}", spec.name)));
        self.names.insert(spec.name.clone(), id);
        self.tenants.insert(
            id,
            TenantEntry {
                name: spec.name.clone(),
                gate: AdmissionGate::new(&spec),
                feeder,
                stats: TenantStats::default(),
                track,
            },
        );
        self.stats.tenants_registered += 1;
        Ok(id)
    }

    /// Deregisters a tenant: drains its reorder buffer and open epochs
    /// (running any final slides), folds the final runs into the
    /// statistics, and removes it from the registry. Other tenants are
    /// untouched — their outputs and stats do not depend on who else
    /// comes or goes.
    pub fn deregister(&mut self, id: TenantId) -> Result<TenantReport<A>, ServeError> {
        let mut entry = self
            .tenants
            .remove(&id)
            .ok_or(ServeError::UnknownTenant(id.0))?;
        self.names.remove(&entry.name);
        let final_runs = match entry.feeder.close_all() {
            Ok(runs) => runs,
            Err(e) => {
                // Registry state stays consistent: the tenant is gone
                // either way, only its drain failed.
                self.stats.tenants_deregistered += 1;
                return Err(e.into());
            }
        };
        for run in &final_runs {
            entry.stats.absorb(run);
            self.stats.absorb(run);
        }
        self.stats.tenants_deregistered += 1;
        self.shared.trace().with(|t| {
            t.add("serve.deregistered", 1);
        });
        Ok(TenantReport {
            name: entry.name,
            stats: entry.stats,
            event: entry.feeder.stats(),
            output: entry.feeder.output().clone(),
            final_runs,
        })
    }

    /// Serves one request: runs the admission chain and, when admitted,
    /// dispatches the records into the tenant's event-time feeder and
    /// executes every run the new records unlock.
    ///
    /// `arrival` is the service-clock tick the request arrived at; the
    /// DGIM rate limiter windows over it. Per tenant it should be
    /// non-decreasing (the limiter clamps regressions).
    pub fn ingest(
        &mut self,
        id: TenantId,
        arrival: u64,
        records: Vec<Stamped<A::Input>>,
    ) -> Result<IngestOutcome, ServeError> {
        let entry = self
            .tenants
            .get_mut(&id)
            .ok_or(ServeError::UnknownTenant(id.0))?;
        let count = records.len();
        let decision = entry.gate.admit(arrival, count);
        entry.stats.count(&decision, count);
        self.stats.count(&decision, count);
        let runs = if decision.is_admitted() {
            entry.feeder.ingest(records);
            let runs = entry.feeder.flush()?;
            for run in &runs {
                entry.stats.absorb(run);
                self.stats.absorb(run);
            }
            runs
        } else {
            Vec::new()
        };
        self.shared.trace().with(|t| {
            let name = match decision {
                Decision::Admitted { .. } => "request",
                Decision::TooLarge { .. } => "reject:too-large",
                Decision::RateLimited { .. } => "reject:rate-limited",
                Decision::OverQuota { .. } => "reject:over-quota",
            };
            if let Some(track) = entry.track {
                t.leaf(track, SpanKind::Stage, name, count as u64);
            }
            t.add("serve.requests", 1);
            t.add(&format!("serve.{name}"), 1);
        });
        Ok(IngestOutcome { decision, runs })
    }

    /// Point-in-time view of a tenant's window: output, watermark, and
    /// feeder state, consistent as of the last dispatch.
    pub fn query(&self, id: TenantId) -> Result<WindowView<'_, A>, ServeError> {
        let entry = self
            .tenants
            .get(&id)
            .ok_or(ServeError::UnknownTenant(id.0))?;
        Ok(WindowView {
            output: entry.feeder.output(),
            watermark: entry.feeder.watermark(),
            window_epochs: entry.feeder.window_epochs(),
            buffered_records: entry.feeder.buffered_records(),
            event: entry.feeder.stats(),
        })
    }

    /// Looks a tenant up by name.
    pub fn tenant_id(&self, name: &str) -> Option<TenantId> {
        self.names.get(name).copied()
    }

    /// Registered tenants, in id order.
    pub fn tenants(&self) -> Vec<(TenantId, &str)> {
        self.tenants
            .iter()
            .map(|(id, e)| (*id, e.name.as_str()))
            .collect()
    }

    /// A tenant's folded statistics.
    pub fn tenant_stats(&self, id: TenantId) -> Result<&TenantStats, ServeError> {
        self.tenants
            .get(&id)
            .map(|e| &e.stats)
            .ok_or(ServeError::UnknownTenant(id.0))
    }

    /// The service-wide roll-up (includes deregistered tenants).
    pub fn serve_stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The health endpoint: one line per tenant, in id order. A tenant is
    /// `ok` when its job is live; the service line leads with totals.
    pub fn health(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "service tenants={} requests={} runs={}",
            self.tenants.len(),
            self.stats.requests,
            self.stats.runs
        );
        for (id, entry) in &self.tenants {
            let watermark = entry
                .feeder
                .watermark()
                .map_or_else(|| "-".to_string(), |w| w.to_string());
            let _ = writeln!(
                out,
                "ok tenant={} id={} watermark={} window_epochs={} buffered={}",
                entry.name,
                id,
                watermark,
                entry.feeder.window_epochs().len(),
                entry.feeder.buffered_records()
            );
        }
        out
    }

    /// The metrics endpoint: a deterministic text rendering of
    /// [`ServeStats`], the per-tenant folds, per-namespace cache
    /// accounting, and the shared simulated clock. Byte-identical across
    /// reruns and worker-thread counts.
    pub fn metrics(&self) -> String {
        let mut out = String::new();
        let s = &self.stats;
        let _ = writeln!(out, "# slider-serve metrics");
        let _ = writeln!(
            out,
            "service tenants_active={} tenants_registered={} tenants_deregistered={}",
            self.tenants.len(),
            s.tenants_registered,
            s.tenants_deregistered
        );
        let _ = writeln!(
            out,
            "requests total={} admitted={} rate_limited={} over_quota={} too_large={}",
            s.requests, s.admitted, s.rate_limited, s.over_quota, s.too_large
        );
        let _ = writeln!(
            out,
            "records admitted={} rejected={}",
            s.records_admitted, s.records_rejected
        );
        let _ = writeln!(
            out,
            "engine runs={} work_fg={} work_grand={}",
            s.runs, s.work_foreground, s.work_grand
        );
        for (id, entry) in &self.tenants {
            let t = &entry.stats;
            let _ = writeln!(
                out,
                "tenant id={} name={} requests={} admitted={} rate_limited={} \
                 over_quota={} too_large={} records={} runs={} work_fg={} \
                 work_grand={} footprint={}",
                id,
                entry.name,
                t.requests,
                t.admitted,
                t.rate_limited,
                t.over_quota,
                t.too_large,
                t.records_admitted,
                t.runs,
                t.work_foreground,
                t.work_grand,
                t.memo_footprint_bytes
            );
        }
        if let Some(cache) = self.shared.cache() {
            for (id, entry) in &self.tenants {
                let ns = entry.feeder.job().cache_namespace();
                let n = cache.namespace_stats(ns);
                let _ = writeln!(
                    out,
                    "cache ns={} tenant={} puts={} put_bytes={} evictions={} \
                     collected={} live_objects={} live_bytes={}",
                    ns,
                    id,
                    n.puts,
                    n.put_bytes,
                    n.evictions,
                    n.collected,
                    n.live_objects,
                    n.live_bytes
                );
            }
        }
        if let Some(clock) = self.shared.clock() {
            let _ = writeln!(
                out,
                "clock seconds={:.6} advances={}",
                clock.seconds(),
                clock.advances()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::RateLimit;
    use slider_mapreduce::{EventTimeConfig, ExecMode};

    /// Tiny word-count app so the service tests need no other crate.
    #[derive(Clone, Default)]
    struct Count;

    impl MapReduceApp for Count {
        type Input = String;
        type Key = String;
        type Value = u64;
        type Output = u64;

        fn map(&self, line: &String, emit: &mut dyn FnMut(String, u64)) {
            for token in line.split_whitespace() {
                emit(token.to_string(), 1);
            }
        }

        fn combine(&self, _k: &String, a: &u64, b: &u64) -> u64 {
            a + b
        }

        fn reduce(&self, _k: &String, parts: &[&u64]) -> u64 {
            parts.iter().copied().sum()
        }
    }

    fn event() -> EventTimeConfig {
        EventTimeConfig {
            epoch_len: 10,
            records_per_split: 2,
            window_epochs: Some(2),
            lateness: 0,
        }
    }

    fn spec(name: &str) -> TenantSpec {
        TenantSpec::new(name, ExecMode::slider_folding(), event()).with_partitions(2)
    }

    fn stamped(time: u64, seq: u64, line: &str) -> Stamped<String> {
        Stamped::new(time, seq, line.to_string())
    }

    #[test]
    fn register_ingest_query_deregister_roundtrip() {
        let mut service = ServiceRuntime::new(EngineShared::builder().build());
        let id = service.register(Count, spec("alpha")).unwrap();
        assert_eq!(service.tenant_id("alpha"), Some(id));

        let out = service
            .ingest(
                id,
                0,
                vec![
                    stamped(0, 0, "a b"),
                    stamped(5, 1, "b"),
                    stamped(12, 2, "c"),
                    stamped(25, 3, "a"),
                ],
            )
            .unwrap();
        assert!(out.decision.is_admitted());
        assert!(!out.runs.is_empty(), "closed epochs must run");

        let view = service.query(id).unwrap();
        assert_eq!(view.watermark, Some(25));
        assert!(view.output.contains_key("a"));

        let report = service.deregister(id).unwrap();
        assert_eq!(report.name, "alpha");
        assert_eq!(report.stats.records_admitted, 4);
        assert!(report.stats.runs >= out.runs.len() as u64);
        // Closing drained epoch 2 into the 2-epoch window, evicting
        // epoch 0 (and with it the first "a" and both "b"s).
        assert_eq!(report.output.get("a"), Some(&1));
        assert_eq!(report.output.get("b"), None);
        assert_eq!(report.output.get("c"), Some(&1));
        assert!(service.query(id).is_err(), "gone after deregistration");
        assert_eq!(service.serve_stats().tenants_deregistered, 1);
    }

    #[test]
    fn duplicate_and_invalid_specs_are_rejected() {
        let mut service = ServiceRuntime::new(EngineShared::builder().build());
        service.register(Count, spec("alpha")).unwrap();
        assert!(matches!(
            service.register(Count, spec("alpha")),
            Err(ServeError::DuplicateTenant(_))
        ));
        assert!(matches!(
            service.register(Count, spec("")),
            Err(ServeError::BadSpec(_))
        ));
        assert!(matches!(
            service.register(
                Count,
                TenantSpec::new("rot", ExecMode::slider_rotating(false), event())
            ),
            Err(ServeError::BadSpec(_))
        ));
        assert!(matches!(
            service.register(
                Count,
                spec("limited").with_rate_limit(RateLimit::new(0, 10))
            ),
            Err(ServeError::BadSpec(_))
        ));
    }

    #[test]
    fn rejected_requests_do_not_touch_the_window() {
        let mut service = ServiceRuntime::new(EngineShared::builder().build());
        let id = service
            .register(
                Count,
                spec("alpha")
                    .with_rate_limit(RateLimit::new(1, 100))
                    .with_max_request_records(8),
            )
            .unwrap();
        assert!(service
            .ingest(id, 0, vec![stamped(0, 0, "a")])
            .unwrap()
            .decision
            .is_admitted());
        let bounced = service.ingest(id, 1, vec![stamped(1, 1, "b")]).unwrap();
        assert!(matches!(bounced.decision, Decision::RateLimited { .. }));
        assert!(bounced.runs.is_empty());
        let view = service.query(id).unwrap();
        assert_eq!(
            view.watermark,
            Some(0),
            "the rejected record never reached the feeder"
        );
        let stats = service.tenant_stats(id).unwrap();
        assert_eq!((stats.admitted, stats.rate_limited), (1, 1));
    }

    #[test]
    fn serve_stats_reconcile_with_per_run_stats() {
        let mut service = ServiceRuntime::new(EngineShared::builder().build());
        let a = service.register(Count, spec("alpha")).unwrap();
        let b = service.register(Count, spec("bravo")).unwrap();
        let mut runs = Vec::new();
        for (i, id) in [(0u64, a), (1, b), (2, a), (3, b)] {
            let records = (0..6)
                .map(|j| stamped(i * 20 + j * 4, i * 10 + j, "w x"))
                .collect();
            runs.extend(service.ingest(id, i, records).unwrap().runs);
        }
        runs.extend(service.deregister(a).unwrap().final_runs);
        runs.extend(service.deregister(b).unwrap().final_runs);

        let mut expected = ServeStats::default();
        for run in &runs {
            expected.absorb(run);
        }
        let got = service.serve_stats();
        assert_eq!(
            (got.runs, got.work_foreground, got.work_grand),
            (expected.runs, expected.work_foreground, expected.work_grand),
            "the roll-up is the exact fold of every run the engine reported"
        );
    }

    #[test]
    fn metrics_and_health_render_deterministically() {
        let render = || {
            let mut service = ServiceRuntime::new(EngineShared::builder().build());
            let id = service.register(Count, spec("alpha")).unwrap();
            service
                .ingest(id, 0, vec![stamped(0, 0, "a b"), stamped(15, 1, "c")])
                .unwrap();
            (service.health(), service.metrics())
        };
        let (h1, m1) = render();
        let (h2, m2) = render();
        assert_eq!(h1, h2);
        assert_eq!(m1, m2);
        assert!(h1.contains("ok tenant=alpha"));
        assert!(m1.contains("tenant id=1 name=alpha"));
    }
}
