//! The service runtime: tenant registry, admission, dispatch, and the
//! health/metrics surface.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use slider_core::SlidingWindowCounter;
use slider_mapreduce::{
    EngineShared, EventFeeder, JobConfig, JobError, MapReduceApp, RunStats, Stamped, WindowedJob,
};
use slider_trace::{SpanKind, TrackId};

use crate::admission::{AdmissionGate, Decision, OverloadConfig};
use crate::breaker::CircuitBreaker;
use crate::error::ServeError;
use crate::snapshot::{OverloadSnapshot, ServiceSnapshot, TenantSnapshot, SNAPSHOT_VERSION};
use crate::stats::{ServeStats, TenantStats};
use crate::tenant::{TenantId, TenantReport, TenantSpec, WindowView};

/// What one front-door request produced: the admission verdict and, for
/// admitted requests, the runs the dispatch executed (closed epochs and
/// late-record splices the new records unlocked).
#[derive(Debug)]
pub struct IngestOutcome {
    /// The admission chain's verdict.
    pub decision: Decision,
    /// Runs executed by this dispatch (empty for rejected requests).
    pub runs: Vec<RunStats>,
}

struct TenantEntry<A: MapReduceApp> {
    name: String,
    /// The registering spec, retained verbatim: snapshots capture it so a
    /// restored service can recompile the tenant, and the overload path
    /// reads priority / pressure budget from it on every request.
    spec: TenantSpec,
    feeder: EventFeeder<A>,
    gate: AdmissionGate,
    breaker: Option<CircuitBreaker>,
    /// Admitted dispatches so far — the sequence number scripted
    /// [`DispatchFaultPlan`](crate::DispatchFaultPlan)s key on.
    dispatch_seq: u64,
    stats: TenantStats,
    track: Option<TrackId>,
}

/// Service-wide overload state: the DGIM gauge over admitted records.
struct OverloadState {
    config: OverloadConfig,
    gauge: SlidingWindowCounter,
    /// Highest arrival tick seen, so metrics can render the gauge
    /// estimate without a caller-supplied clock.
    last_arrival: u64,
}

/// A multi-tenant streaming service over one shared engine.
///
/// Tenants register at runtime with a [`TenantSpec`]; each is compiled
/// into an [`EventFeeder`]-backed windowed job attached to the service's
/// [`EngineShared`] (one runtime, one trace sink, one memoization cache
/// with a private namespace per tenant, one simulated-cluster clock).
/// Requests pass the deterministic admission chain before dispatch; the
/// window of any tenant can be queried between requests while other
/// tenants' slides are in flight.
///
/// Determinism contract: the same registration order, request sequence
/// and seeds produce bit-identical per-tenant outputs, [`ServeStats`]
/// and trace exports at every worker-thread count.
pub struct ServiceRuntime<A: MapReduceApp> {
    shared: EngineShared,
    tenants: BTreeMap<TenantId, TenantEntry<A>>,
    names: BTreeMap<String, TenantId>,
    next_id: u64,
    stats: ServeStats,
    overload: Option<OverloadState>,
}

impl<A: MapReduceApp> ServiceRuntime<A> {
    /// Creates an empty service over `shared`.
    pub fn new(shared: EngineShared) -> Self {
        ServiceRuntime {
            shared,
            tenants: BTreeMap::new(),
            names: BTreeMap::new(),
            next_id: 1,
            stats: ServeStats::default(),
            overload: None,
        }
    }

    /// Installs service-wide overload shedding (see [`OverloadConfig`]).
    /// Builder-style; install before serving traffic.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadSpec`] for a zero window or an epsilon outside
    /// `(0, 1]`.
    pub fn with_overload(mut self, config: OverloadConfig) -> Result<Self, ServeError> {
        config.validate().map_err(ServeError::BadSpec)?;
        self.overload = Some(OverloadState {
            gauge: SlidingWindowCounter::new(config.window, config.epsilon),
            config,
            last_arrival: 0,
        });
        Ok(self)
    }

    /// The shared engine infrastructure this service multiplexes.
    pub fn shared(&self) -> &EngineShared {
        &self.shared
    }

    /// Registers a tenant: validates `spec`, compiles it into an
    /// event-time windowed job on the shared engine, and opens the
    /// tenant's trace track (`tenant:<name>`).
    pub fn register(&mut self, app: A, spec: TenantSpec) -> Result<TenantId, ServeError> {
        spec.validate()?;
        if self.names.contains_key(&spec.name) {
            return Err(ServeError::DuplicateTenant(spec.name));
        }
        let mut config = JobConfig::new(spec.mode).with_partitions(spec.partitions);
        if let Some(sim) = spec.simulation.clone() {
            config = config.with_simulation(sim);
        }
        if let Some(rate) = spec.work_per_byte {
            config = config.with_work_per_byte(rate);
        }
        let job = WindowedJob::with_shared(app, config, &self.shared)?;
        let feeder = EventFeeder::new(job, spec.event)?;
        let id = TenantId(self.next_id);
        self.next_id += 1;
        let track = self
            .shared
            .trace()
            .with(|t| t.track(&format!("tenant:{}", spec.name)));
        self.names.insert(spec.name.clone(), id);
        self.tenants.insert(
            id,
            TenantEntry {
                name: spec.name.clone(),
                gate: AdmissionGate::new(&spec),
                breaker: spec.breaker.clone().map(CircuitBreaker::new),
                dispatch_seq: 0,
                feeder,
                stats: TenantStats::default(),
                track,
                spec,
            },
        );
        self.stats.tenants_registered += 1;
        Ok(id)
    }

    /// Deregisters a tenant: drains its reorder buffer and open epochs
    /// (running any final slides), folds the final runs into the
    /// statistics, and removes it from the registry. Other tenants are
    /// untouched — their outputs and stats do not depend on who else
    /// comes or goes.
    pub fn deregister(&mut self, id: TenantId) -> Result<TenantReport<A>, ServeError> {
        let mut entry = self
            .tenants
            .remove(&id)
            .ok_or(ServeError::UnknownTenant(id.0))?;
        self.names.remove(&entry.name);
        let final_runs = match entry.feeder.close_all() {
            Ok(runs) => runs,
            Err(e) => {
                // Registry state stays consistent: the tenant is gone
                // either way, only its drain failed.
                self.stats.tenants_deregistered += 1;
                return Err(e.into());
            }
        };
        for run in &final_runs {
            entry.stats.absorb(run);
            self.stats.absorb(run);
        }
        self.stats.tenants_deregistered += 1;
        self.shared.trace().with(|t| {
            t.add("serve.deregistered", 1);
        });
        Ok(TenantReport {
            name: entry.name,
            stats: entry.stats,
            event: entry.feeder.stats(),
            output: entry.feeder.output().clone(),
            final_runs,
        })
    }

    /// Serves one request through the full resilience pipeline, in a
    /// fixed deterministic order:
    ///
    /// 1. **Circuit breaker** — an open breaker bounces first; a
    ///    quarantined tenant must not consume rate or overload capacity.
    /// 2. **Overload** — when the service-wide admitted-record gauge is
    ///    at or above the configured limit, requests over the tenant's
    ///    pressure budget bounce, then tenants whose priority does not
    ///    clear the overflow are shed (lowest priority first).
    /// 3. **Admission chain** — per-request cap, DGIM rate limit, quota.
    /// 4. **Dispatch** — scripted faults (if any) are retried under the
    ///    tenant's [`BreakerConfig::retry`] policy with backoff charged
    ///    to the shared simulated clock; exhausted retries charge the
    ///    breaker and surface as
    ///    [`JobError::Injected`](slider_mapreduce::JobError::Injected).
    ///    Real flush errors charge the breaker the same way. Successful
    ///    dispatches close the breaker.
    ///
    /// `arrival` is the service-clock tick the request arrived at; the
    /// DGIM limiter and gauge window over it and breaker cool-downs are
    /// measured on it. Per tenant it should be non-decreasing (the
    /// counters clamp regressions).
    pub fn ingest(
        &mut self,
        id: TenantId,
        arrival: u64,
        records: Vec<Stamped<A::Input>>,
    ) -> Result<IngestOutcome, ServeError> {
        let entry = self
            .tenants
            .get_mut(&id)
            .ok_or(ServeError::UnknownTenant(id.0))?;
        let count = records.len();

        // 1. Circuit breaker.
        if let Some(remaining) = entry.breaker.as_mut().and_then(|b| b.check(arrival)) {
            let decision = Decision::BreakerOpen { remaining };
            entry.stats.count(&decision, count);
            self.stats.count(&decision, count);
            Self::trace_decision(&self.shared, entry, decision, count);
            return Ok(IngestOutcome {
                decision,
                runs: Vec::new(),
            });
        }

        // 2. Overload pressure.
        let mut verdict = None;
        if let Some(overload) = &mut self.overload {
            overload.last_arrival = overload.last_arrival.max(arrival);
            let estimate = overload.gauge.count(arrival);
            if estimate >= overload.config.record_limit {
                let overflow = estimate - overload.config.record_limit;
                if let Some(budget) = entry.spec.pressure_budget {
                    if count > budget {
                        verdict = Some(Decision::DeadlineExceeded { budget, got: count });
                    }
                }
                if verdict.is_none() && u64::from(entry.spec.priority) <= overflow {
                    verdict = Some(Decision::Shed {
                        priority: entry.spec.priority,
                        overflow,
                    });
                }
            }
        }

        // 3. Per-tenant admission chain (skipped for overload verdicts —
        //    bounced requests must not consume rate slots or quota).
        let decision = verdict.unwrap_or_else(|| entry.gate.admit(arrival, count));
        entry.stats.count(&decision, count);
        self.stats.count(&decision, count);
        if !decision.is_admitted() {
            Self::trace_decision(&self.shared, entry, decision, count);
            return Ok(IngestOutcome {
                decision,
                runs: Vec::new(),
            });
        }
        if let Some(overload) = &mut self.overload {
            overload.gauge.record_n(arrival, count as u64);
        }

        // 4. Dispatch. Scripted faults fail the first `failing` attempts
        //    of this admitted dispatch; each retry charges deterministic
        //    backoff to the shared clock before trying again.
        let seq = entry.dispatch_seq;
        entry.dispatch_seq += 1;
        let failing = entry
            .spec
            .dispatch_faults
            .as_ref()
            .map_or(0, |plan| plan.failing_attempts(seq));
        if failing > 0 {
            let policy = entry.spec.breaker.clone().unwrap_or_default();
            // Attempt `a` (1-based) fails while a ≤ failing; after a
            // failed attempt `a` the dispatch may retry while
            // a ≤ max_retries, and retry number `a` charges
            // backoff × multiplier(a).
            let mut attempt: u32 = 1;
            while attempt <= failing && attempt <= policy.retry.max_retries {
                entry.stats.dispatch_retries += 1;
                self.stats.dispatch_retries += 1;
                if let Some(clock) = self.shared.clock() {
                    clock.advance(
                        policy.retry_backoff_seconds * policy.retry.backoff_multiplier(attempt),
                    );
                }
                self.shared
                    .trace()
                    .with(|t| t.add("serve.dispatch-retry", 1));
                attempt += 1;
            }
            if attempt <= failing {
                // Retries exhausted with the fault still firing.
                let error = JobError::Injected(format!(
                    "dispatch {seq} failed {failing} scripted attempts \
                     (retry budget {})",
                    policy.retry.max_retries
                ));
                Self::fail_dispatch(&self.shared, &mut self.stats, entry, arrival, count);
                return Err(ServeError::Job(error));
            }
        }
        entry.feeder.ingest(records);
        let runs = match entry.feeder.flush() {
            Ok(runs) => runs,
            Err(e) => {
                // A real dispatch failure charges the breaker exactly
                // like an injected one.
                Self::fail_dispatch(&self.shared, &mut self.stats, entry, arrival, count);
                return Err(e.into());
            }
        };
        if let Some(breaker) = entry.breaker.as_mut() {
            breaker.on_success();
        }
        for run in &runs {
            entry.stats.absorb(run);
            self.stats.absorb(run);
        }
        Self::trace_decision(&self.shared, entry, decision, count);
        Ok(IngestOutcome { decision, runs })
    }

    /// Emits the per-request trace record (the tenant-track leaf and the
    /// service counters) for a settled decision.
    fn trace_decision(
        shared: &EngineShared,
        entry: &TenantEntry<A>,
        decision: Decision,
        count: usize,
    ) {
        shared.trace().with(|t| {
            let name = match decision {
                Decision::Admitted { .. } => "request",
                Decision::TooLarge { .. } => "reject:too-large",
                Decision::RateLimited { .. } => "reject:rate-limited",
                Decision::OverQuota { .. } => "reject:over-quota",
                Decision::BreakerOpen { .. } => "reject:breaker-open",
                Decision::DeadlineExceeded { .. } => "reject:deadline",
                Decision::Shed { .. } => "reject:shed",
            };
            if let Some(track) = entry.track {
                t.leaf(track, SpanKind::Stage, name, count as u64);
            }
            t.add("serve.requests", 1);
            t.add(&format!("serve.{name}"), 1);
        });
    }

    /// Books an exhausted dispatch: failure counters, breaker charge
    /// (counting a trip when this failure opens it), trace records.
    fn fail_dispatch(
        shared: &EngineShared,
        stats: &mut ServeStats,
        entry: &mut TenantEntry<A>,
        arrival: u64,
        count: usize,
    ) {
        let tripped = entry
            .breaker
            .as_mut()
            .is_some_and(|b| b.on_failure(arrival));
        entry.stats.dispatch_failures += 1;
        stats.dispatch_failures += 1;
        if tripped {
            entry.stats.breaker_trips += 1;
            stats.breaker_trips += 1;
        }
        shared.trace().with(|t| {
            if let Some(track) = entry.track {
                t.leaf(track, SpanKind::Stage, "dispatch-failed", count as u64);
            }
            t.add("serve.requests", 1);
            t.add("serve.dispatch-failed", 1);
            if tripped {
                t.add("serve.breaker-trip", 1);
            }
        });
    }

    /// Captures a deep, versioned checkpoint of the whole service: every
    /// tenant's spec, feeder and job state, admission and breaker
    /// positions, the service roll-up, the overload gauge, and the shared
    /// engine's mutable state (clock, cache contents, namespace
    /// watermark). See [`ServiceSnapshot`]. The capture is a value —
    /// restoring borrows it, so one snapshot can seed many resumed twins.
    #[must_use]
    pub fn snapshot(&self) -> ServiceSnapshot<A> {
        ServiceSnapshot {
            version: SNAPSHOT_VERSION,
            clock: self
                .shared
                .clock()
                .map(slider_cluster::SharedClock::snapshot),
            cache: self
                .shared
                .cache()
                .map(slider_dcache::SharedCache::snapshot_cache),
            namespace_watermark: self.shared.namespace_watermark(),
            next_id: self.next_id,
            stats: self.stats,
            overload: self.overload.as_ref().map(|o| OverloadSnapshot {
                config: o.config.clone(),
                gauge: o.gauge.snapshot(),
                last_arrival: o.last_arrival,
            }),
            tenants: self
                .tenants
                .iter()
                .map(|(id, entry)| TenantSnapshot {
                    id: *id,
                    name: entry.name.clone(),
                    spec: entry.spec.clone(),
                    feeder: entry.feeder.checkpoint(),
                    gate: entry.gate.snapshot(),
                    breaker: entry.breaker.as_ref().map(CircuitBreaker::state),
                    dispatch_seq: entry.dispatch_seq,
                    stats: entry.stats,
                })
                .collect(),
        }
    }

    /// Resumes a service from `snapshot` onto `shared` — typically a
    /// fresh engine standing in for a restarted process. Restores, in
    /// order: the simulated clock, the memoization cache contents, the
    /// namespace watermark, then every tenant (in id order, so trace
    /// tracks are recreated deterministically) with its job, feeder,
    /// gate, breaker and counters exactly where the capture left them.
    ///
    /// # Errors
    ///
    /// * [`ServeError::SnapshotVersion`] when the snapshot carries a
    ///   different format version — checked first, before any state is
    ///   touched.
    /// * [`ServeError::Snapshot`] when the snapshot needs engine parts
    ///   `shared` was built without (clock, cache).
    /// * [`ServeError::Job`] when a tenant's job rejects reconstruction.
    pub fn restore(
        shared: EngineShared,
        snapshot: &ServiceSnapshot<A>,
    ) -> Result<Self, ServeError> {
        if snapshot.version != SNAPSHOT_VERSION {
            return Err(ServeError::SnapshotVersion {
                expected: SNAPSHOT_VERSION,
                got: snapshot.version,
            });
        }
        if let Some(clock) = snapshot.clock {
            let Some(target) = shared.clock() else {
                return Err(ServeError::Snapshot(
                    "snapshot carries a simulated clock but the engine has none".into(),
                ));
            };
            target.restore(clock);
        }
        if let Some(cache) = &snapshot.cache {
            let Some(target) = shared.cache() else {
                return Err(ServeError::Snapshot(
                    "snapshot carries cache contents but the engine has no cache".into(),
                ));
            };
            // The captured image shares the crashed service's trace sink;
            // swap in this engine's before installing it.
            let mut cache = cache.clone();
            cache.attach_trace(shared.trace().clone());
            target.restore_cache(cache);
        }
        shared.restore_namespace_watermark(snapshot.namespace_watermark);
        let mut tenants = BTreeMap::new();
        let mut names = BTreeMap::new();
        for t in &snapshot.tenants {
            let feeder = EventFeeder::restore_with_shared(&t.feeder, &shared)?;
            let track = shared
                .trace()
                .with(|tr| tr.track(&format!("tenant:{}", t.name)));
            names.insert(t.name.clone(), t.id);
            tenants.insert(
                t.id,
                TenantEntry {
                    name: t.name.clone(),
                    gate: AdmissionGate::restore(&t.spec, &t.gate),
                    breaker: t.breaker.map(|state| {
                        CircuitBreaker::restore(t.spec.breaker.clone().unwrap_or_default(), state)
                    }),
                    dispatch_seq: t.dispatch_seq,
                    feeder,
                    stats: t.stats,
                    track,
                    spec: t.spec.clone(),
                },
            );
        }
        shared.trace().with(|t| t.add("serve.restored", 1));
        Ok(ServiceRuntime {
            shared,
            tenants,
            names,
            next_id: snapshot.next_id,
            stats: snapshot.stats,
            overload: snapshot.overload.as_ref().map(|o| OverloadState {
                config: o.config.clone(),
                gauge: SlidingWindowCounter::restore(&o.gauge),
                last_arrival: o.last_arrival,
            }),
        })
    }

    /// Point-in-time view of a tenant's window: output, watermark, and
    /// feeder state, consistent as of the last dispatch.
    pub fn query(&self, id: TenantId) -> Result<WindowView<'_, A>, ServeError> {
        let entry = self
            .tenants
            .get(&id)
            .ok_or(ServeError::UnknownTenant(id.0))?;
        Ok(WindowView {
            output: entry.feeder.output(),
            watermark: entry.feeder.watermark(),
            window_epochs: entry.feeder.window_epochs(),
            buffered_records: entry.feeder.buffered_records(),
            event: entry.feeder.stats(),
        })
    }

    /// Looks a tenant up by name.
    pub fn tenant_id(&self, name: &str) -> Option<TenantId> {
        self.names.get(name).copied()
    }

    /// Registered tenants, in id order.
    pub fn tenants(&self) -> Vec<(TenantId, &str)> {
        self.tenants
            .iter()
            .map(|(id, e)| (*id, e.name.as_str()))
            .collect()
    }

    /// A tenant's folded statistics.
    pub fn tenant_stats(&self, id: TenantId) -> Result<&TenantStats, ServeError> {
        self.tenants
            .get(&id)
            .map(|e| &e.stats)
            .ok_or(ServeError::UnknownTenant(id.0))
    }

    /// The service-wide roll-up (includes deregistered tenants).
    pub fn serve_stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The health endpoint: one line per tenant, in id order. A tenant is
    /// `ok` when its job is live; the service line leads with totals.
    pub fn health(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "service tenants={} requests={} runs={}",
            self.tenants.len(),
            self.stats.requests,
            self.stats.runs
        );
        if let Some(o) = &self.overload {
            let estimate = o.gauge.count(o.last_arrival);
            let _ = write!(
                out,
                " pressure={}/{}{}",
                estimate,
                o.config.record_limit,
                if estimate >= o.config.record_limit {
                    " overloaded"
                } else {
                    ""
                }
            );
        }
        out.push('\n');
        for (id, entry) in &self.tenants {
            let watermark = entry
                .feeder
                .watermark()
                .map_or_else(|| "-".to_string(), |w| w.to_string());
            let _ = write!(
                out,
                "ok tenant={} id={} watermark={} window_epochs={} buffered={}",
                entry.name,
                id,
                watermark,
                entry.feeder.window_epochs().len(),
                entry.feeder.buffered_records()
            );
            if let Some(breaker) = &entry.breaker {
                let _ = write!(out, " breaker={}", breaker.describe());
            }
            out.push('\n');
        }
        out
    }

    /// The metrics endpoint: a deterministic text rendering of
    /// [`ServeStats`], the per-tenant folds, per-namespace cache
    /// accounting, and the shared simulated clock. Byte-identical across
    /// reruns and worker-thread counts.
    pub fn metrics(&self) -> String {
        let mut out = String::new();
        let s = &self.stats;
        let _ = writeln!(out, "# slider-serve metrics");
        let _ = writeln!(
            out,
            "service tenants_active={} tenants_registered={} tenants_deregistered={}",
            self.tenants.len(),
            s.tenants_registered,
            s.tenants_deregistered
        );
        let _ = writeln!(
            out,
            "requests total={} admitted={} rate_limited={} over_quota={} too_large={} \
             breaker_open={} shed={} deadline_exceeded={}",
            s.requests,
            s.admitted,
            s.rate_limited,
            s.over_quota,
            s.too_large,
            s.breaker_open,
            s.shed,
            s.deadline_exceeded
        );
        let _ = writeln!(
            out,
            "dispatch failures={} retries={} breaker_trips={}",
            s.dispatch_failures, s.dispatch_retries, s.breaker_trips
        );
        let _ = writeln!(
            out,
            "records admitted={} rejected={}",
            s.records_admitted, s.records_rejected
        );
        if let Some(o) = &self.overload {
            let _ = writeln!(
                out,
                "overload limit={} window={} estimate={} last_arrival={}",
                o.config.record_limit,
                o.config.window,
                o.gauge.count(o.last_arrival),
                o.last_arrival
            );
        }
        let _ = writeln!(
            out,
            "engine runs={} work_fg={} work_grand={}",
            s.runs, s.work_foreground, s.work_grand
        );
        for (id, entry) in &self.tenants {
            let t = &entry.stats;
            let _ = write!(
                out,
                "tenant id={} name={} requests={} admitted={} rate_limited={} \
                 over_quota={} too_large={} breaker_open={} shed={} \
                 deadline_exceeded={} dispatch_failures={} records={} runs={} \
                 work_fg={} work_grand={} footprint={}",
                id,
                entry.name,
                t.requests,
                t.admitted,
                t.rate_limited,
                t.over_quota,
                t.too_large,
                t.breaker_open,
                t.shed,
                t.deadline_exceeded,
                t.dispatch_failures,
                t.records_admitted,
                t.runs,
                t.work_foreground,
                t.work_grand,
                t.memo_footprint_bytes
            );
            if let Some(breaker) = &entry.breaker {
                let _ = write!(out, " breaker={}", breaker.describe());
            }
            out.push('\n');
        }
        if let Some(cache) = self.shared.cache() {
            for (id, entry) in &self.tenants {
                let ns = entry.feeder.job().cache_namespace();
                let n = cache.namespace_stats(ns);
                let _ = writeln!(
                    out,
                    "cache ns={} tenant={} puts={} put_bytes={} evictions={} \
                     collected={} live_objects={} live_bytes={}",
                    ns,
                    id,
                    n.puts,
                    n.put_bytes,
                    n.evictions,
                    n.collected,
                    n.live_objects,
                    n.live_bytes
                );
            }
        }
        if let Some(clock) = self.shared.clock() {
            let _ = writeln!(
                out,
                "clock seconds={:.6} advances={}",
                clock.seconds(),
                clock.advances()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::{BreakerConfig, DispatchFaultPlan};
    use crate::tenant::RateLimit;
    use slider_mapreduce::{EventTimeConfig, ExecMode};

    /// Tiny word-count app so the service tests need no other crate.
    #[derive(Clone, Default)]
    struct Count;

    impl MapReduceApp for Count {
        type Input = String;
        type Key = String;
        type Value = u64;
        type Output = u64;

        fn map(&self, line: &String, emit: &mut dyn FnMut(String, u64)) {
            for token in line.split_whitespace() {
                emit(token.to_string(), 1);
            }
        }

        fn combine(&self, _k: &String, a: &u64, b: &u64) -> u64 {
            a + b
        }

        fn reduce(&self, _k: &String, parts: &[&u64]) -> u64 {
            parts.iter().copied().sum()
        }
    }

    fn event() -> EventTimeConfig {
        EventTimeConfig {
            epoch_len: 10,
            records_per_split: 2,
            window_epochs: Some(2),
            lateness: 0,
        }
    }

    fn spec(name: &str) -> TenantSpec {
        TenantSpec::new(name, ExecMode::slider_folding(), event()).with_partitions(2)
    }

    fn stamped(time: u64, seq: u64, line: &str) -> Stamped<String> {
        Stamped::new(time, seq, line.to_string())
    }

    #[test]
    fn register_ingest_query_deregister_roundtrip() {
        let mut service = ServiceRuntime::new(EngineShared::builder().build());
        let id = service.register(Count, spec("alpha")).unwrap();
        assert_eq!(service.tenant_id("alpha"), Some(id));

        let out = service
            .ingest(
                id,
                0,
                vec![
                    stamped(0, 0, "a b"),
                    stamped(5, 1, "b"),
                    stamped(12, 2, "c"),
                    stamped(25, 3, "a"),
                ],
            )
            .unwrap();
        assert!(out.decision.is_admitted());
        assert!(!out.runs.is_empty(), "closed epochs must run");

        let view = service.query(id).unwrap();
        assert_eq!(view.watermark, Some(25));
        assert!(view.output.contains_key("a"));

        let report = service.deregister(id).unwrap();
        assert_eq!(report.name, "alpha");
        assert_eq!(report.stats.records_admitted, 4);
        assert!(report.stats.runs >= out.runs.len() as u64);
        // Closing drained epoch 2 into the 2-epoch window, evicting
        // epoch 0 (and with it the first "a" and both "b"s).
        assert_eq!(report.output.get("a"), Some(&1));
        assert_eq!(report.output.get("b"), None);
        assert_eq!(report.output.get("c"), Some(&1));
        assert!(service.query(id).is_err(), "gone after deregistration");
        assert_eq!(service.serve_stats().tenants_deregistered, 1);
    }

    #[test]
    fn duplicate_and_invalid_specs_are_rejected() {
        let mut service = ServiceRuntime::new(EngineShared::builder().build());
        service.register(Count, spec("alpha")).unwrap();
        assert!(matches!(
            service.register(Count, spec("alpha")),
            Err(ServeError::DuplicateTenant(_))
        ));
        assert!(matches!(
            service.register(Count, spec("")),
            Err(ServeError::BadSpec(_))
        ));
        assert!(matches!(
            service.register(
                Count,
                TenantSpec::new("rot", ExecMode::slider_rotating(false), event())
            ),
            Err(ServeError::BadSpec(_))
        ));
        assert!(matches!(
            service.register(
                Count,
                spec("limited").with_rate_limit(RateLimit::new(0, 10))
            ),
            Err(ServeError::BadSpec(_))
        ));
    }

    #[test]
    fn rejected_requests_do_not_touch_the_window() {
        let mut service = ServiceRuntime::new(EngineShared::builder().build());
        let id = service
            .register(
                Count,
                spec("alpha")
                    .with_rate_limit(RateLimit::new(1, 100))
                    .with_max_request_records(8),
            )
            .unwrap();
        assert!(service
            .ingest(id, 0, vec![stamped(0, 0, "a")])
            .unwrap()
            .decision
            .is_admitted());
        let bounced = service.ingest(id, 1, vec![stamped(1, 1, "b")]).unwrap();
        assert!(matches!(bounced.decision, Decision::RateLimited { .. }));
        assert!(bounced.runs.is_empty());
        let view = service.query(id).unwrap();
        assert_eq!(
            view.watermark,
            Some(0),
            "the rejected record never reached the feeder"
        );
        let stats = service.tenant_stats(id).unwrap();
        assert_eq!((stats.admitted, stats.rate_limited), (1, 1));
    }

    #[test]
    fn serve_stats_reconcile_with_per_run_stats() {
        let mut service = ServiceRuntime::new(EngineShared::builder().build());
        let a = service.register(Count, spec("alpha")).unwrap();
        let b = service.register(Count, spec("bravo")).unwrap();
        let mut runs = Vec::new();
        for (i, id) in [(0u64, a), (1, b), (2, a), (3, b)] {
            let records = (0..6)
                .map(|j| stamped(i * 20 + j * 4, i * 10 + j, "w x"))
                .collect();
            runs.extend(service.ingest(id, i, records).unwrap().runs);
        }
        runs.extend(service.deregister(a).unwrap().final_runs);
        runs.extend(service.deregister(b).unwrap().final_runs);

        let mut expected = ServeStats::default();
        for run in &runs {
            expected.absorb(run);
        }
        let got = service.serve_stats();
        assert_eq!(
            (got.runs, got.work_foreground, got.work_grand),
            (expected.runs, expected.work_foreground, expected.work_grand),
            "the roll-up is the exact fold of every run the engine reported"
        );
    }

    #[test]
    fn scripted_faults_within_the_retry_budget_recover_transparently() {
        let shared = EngineShared::builder().clock().build();
        let mut service = ServiceRuntime::new(shared);
        let id = service
            .register(
                Count,
                // Default policy: 2 retries, so 2 failing attempts recover.
                spec("flaky")
                    .with_breaker(BreakerConfig::default())
                    .with_dispatch_faults(DispatchFaultPlan::new().fail(0, 2)),
            )
            .unwrap();
        let out = service.ingest(id, 0, vec![stamped(0, 0, "a"), stamped(15, 1, "b")]);
        let out = out.unwrap();
        assert!(out.decision.is_admitted());
        assert!(!out.runs.is_empty(), "the recovered dispatch ran");
        let stats = service.tenant_stats(id).unwrap();
        assert_eq!(stats.dispatch_retries, 2);
        assert_eq!(stats.dispatch_failures, 0);
        // Each retry charged deterministic backoff to the shared clock:
        // 0.05 × 2 + 0.05 × 4.
        let clock = service.shared().clock().unwrap();
        assert!(clock.seconds() >= 0.3 - 1e-9);
        assert!(clock.advances() >= 2);
    }

    #[test]
    fn exhausted_faults_trip_the_breaker_and_quarantine_the_tenant() {
        let mut service = ServiceRuntime::new(EngineShared::builder().build());
        let breaker = BreakerConfig {
            failure_threshold: 2,
            cooldown_ticks: 10,
            ..BreakerConfig::default()
        };
        let id = service
            .register(
                Count,
                spec("faulty")
                    .with_breaker(breaker)
                    // 3 failing attempts > 2 retries: both dispatches fail.
                    .with_dispatch_faults(DispatchFaultPlan::new().fail(0, 9).fail(1, 9)),
            )
            .unwrap();
        assert!(matches!(
            service.ingest(id, 0, vec![stamped(0, 0, "a")]),
            Err(ServeError::Job(JobError::Injected(_)))
        ));
        assert!(matches!(
            service.ingest(id, 1, vec![stamped(1, 1, "b")]),
            Err(ServeError::Job(JobError::Injected(_)))
        ));
        let stats = service.tenant_stats(id).unwrap();
        assert_eq!(stats.dispatch_failures, 2);
        assert_eq!(stats.breaker_trips, 1, "second failure tripped it");

        // Open: requests bounce without touching the window.
        let bounced = service.ingest(id, 5, vec![stamped(5, 2, "c")]).unwrap();
        assert!(matches!(
            bounced.decision,
            Decision::BreakerOpen { remaining: 6 }
        ));
        assert_eq!(service.query(id).unwrap().watermark, None);

        // Cool-down elapsed: the half-open probe passes and closes it.
        let probe = service.ingest(id, 11, vec![stamped(11, 3, "d")]).unwrap();
        assert!(probe.decision.is_admitted());
        let healthy = service.ingest(id, 12, vec![stamped(12, 4, "e")]).unwrap();
        assert!(healthy.decision.is_admitted());
        assert!(service.health().contains("breaker=closed:0"));
    }

    #[test]
    fn overload_sheds_lowest_priority_first_and_deadline_bounces_big_requests() {
        let mut service = ServiceRuntime::new(EngineShared::builder().build())
            .with_overload(OverloadConfig::new(4, 100))
            .unwrap();
        let low = service
            .register(Count, spec("low").with_priority(0))
            .unwrap();
        let high = service
            .register(
                Count,
                spec("high").with_priority(200).with_pressure_budget(2),
            )
            .unwrap();

        // Fill the gauge past the limit.
        let records: Vec<_> = (0..6).map(|j| stamped(j * 30, j, "x")).collect();
        assert!(service
            .ingest(high, 0, records)
            .unwrap()
            .decision
            .is_admitted());

        // Under pressure: the low-priority tenant is shed...
        let shed = service.ingest(low, 1, vec![stamped(200, 10, "y")]).unwrap();
        assert!(matches!(shed.decision, Decision::Shed { priority: 0, .. }));
        // ...the high-priority tenant's oversized request bounces on its
        // deadline budget...
        let big: Vec<_> = (0..3).map(|j| stamped(210 + j, 20 + j, "z")).collect();
        let bounced = service.ingest(high, 2, big).unwrap();
        assert!(matches!(
            bounced.decision,
            Decision::DeadlineExceeded { budget: 2, got: 3 }
        ));
        // ...but its small requests still flow.
        let ok = service
            .ingest(high, 3, vec![stamped(220, 30, "w")])
            .unwrap();
        assert!(ok.decision.is_admitted());

        let s = service.serve_stats();
        assert_eq!((s.shed, s.deadline_exceeded), (1, 1));
        assert_eq!(
            s.requests,
            s.admitted + s.shed + s.deadline_exceeded,
            "every request is accounted to exactly one counter"
        );
        assert!(service.metrics().contains("overload limit=4 window=100"));
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically_mid_stream() {
        let build = || {
            let shared = EngineShared::builder()
                .cache(slider_dcache::CacheConfig::paper_defaults(2))
                .clock()
                .build();
            let mut service = ServiceRuntime::new(shared)
                .with_overload(OverloadConfig::new(1_000, 100))
                .unwrap();
            let a = service.register(Count, spec("alpha")).unwrap();
            let b = service
                .register(
                    Count,
                    spec("bravo").with_rate_limit(RateLimit::new(8, 1_000)),
                )
                .unwrap();
            (service, a, b)
        };
        let prefix = |service: &mut ServiceRuntime<Count>, a: TenantId, b: TenantId| {
            for i in 0..4u64 {
                let recs = vec![
                    stamped(i * 12, i * 2, "a b"),
                    stamped(i * 12 + 6, i * 2 + 1, "c"),
                ];
                service.ingest(a, i, recs).unwrap();
                service
                    .ingest(b, i, vec![stamped(i * 9, 100 + i, "d e f")])
                    .unwrap();
            }
        };
        let suffix = |service: &mut ServiceRuntime<Count>, a: TenantId, b: TenantId| {
            for i in 4..8u64 {
                let recs = vec![
                    stamped(i * 12, i * 2, "a b"),
                    stamped(i * 12 + 6, i * 2 + 1, "c"),
                ];
                service.ingest(a, i, recs).unwrap();
                service
                    .ingest(b, i, vec![stamped(i * 9, 100 + i, "d e f")])
                    .unwrap();
            }
        };

        // The uninterrupted twin.
        let (mut straight, a, b) = build();
        prefix(&mut straight, a, b);
        suffix(&mut straight, a, b);

        // The crashed twin: checkpoint mid-stream, restore onto a fresh
        // engine, replay the remainder.
        let (mut crashed, a2, b2) = build();
        assert_eq!((a2, b2), (a, b));
        prefix(&mut crashed, a, b);
        let snap = crashed.snapshot();
        assert_eq!(snap.version(), SNAPSHOT_VERSION);
        assert_eq!(snap.tenant_count(), 2);
        drop(crashed);
        let fresh = EngineShared::builder()
            .cache(slider_dcache::CacheConfig::paper_defaults(2))
            .clock()
            .build();
        let mut restored = ServiceRuntime::restore(fresh, &snap).unwrap();
        suffix(&mut restored, a, b);

        for id in [a, b] {
            assert_eq!(
                restored.query(id).unwrap().output,
                straight.query(id).unwrap().output
            );
            assert_eq!(
                format!("{:?}", restored.query(id).unwrap().event),
                format!("{:?}", straight.query(id).unwrap().event)
            );
            assert_eq!(
                restored.tenant_stats(id).unwrap(),
                straight.tenant_stats(id).unwrap()
            );
        }
        assert_eq!(restored.serve_stats(), straight.serve_stats());
        assert_eq!(restored.health(), straight.health());
        assert_eq!(restored.metrics(), straight.metrics());
        // The snapshot manifest itself is byte-stable: the same logical
        // point renders identically from either twin.
        assert!(!restored.snapshot().describe().is_empty());
        assert_eq!(straight.snapshot().describe(), {
            let (mut again, a3, b3) = build();
            prefix(&mut again, a3, b3);
            suffix(&mut again, a3, b3);
            again.snapshot().describe()
        });
    }

    #[test]
    fn restore_rejects_version_mismatch_and_missing_engine_parts() {
        let mut service = ServiceRuntime::new(EngineShared::builder().clock().build());
        service.register(Count, spec("alpha")).unwrap();
        let snap = service.snapshot().with_version(99);
        assert!(matches!(
            ServiceRuntime::<Count>::restore(EngineShared::builder().clock().build(), &snap),
            Err(ServeError::SnapshotVersion {
                expected: SNAPSHOT_VERSION,
                got: 99
            })
        ));
        // Same snapshot at the right version, but onto a clockless engine.
        let snap = service.snapshot();
        assert!(matches!(
            ServiceRuntime::<Count>::restore(EngineShared::builder().build(), &snap),
            Err(ServeError::Snapshot(_))
        ));
    }

    #[test]
    fn empty_service_renders_a_stable_zero_tenant_document() {
        let mut service = ServiceRuntime::new(EngineShared::builder().build());
        let id = service.register(Count, spec("alpha")).unwrap();
        service
            .ingest(id, 0, vec![stamped(0, 0, "a b"), stamped(15, 1, "c")])
            .unwrap();
        service.deregister(id).unwrap();

        let health = service.health();
        let metrics = service.metrics();
        assert!(health.starts_with("service tenants=0 "));
        assert_eq!(health.lines().count(), 1, "no tenant lines remain");
        assert!(metrics.contains("tenants_active=0"));
        assert!(metrics.contains("tenants_deregistered=1"));
        // The roll-up survives the departure; renders stay byte-stable.
        assert!(metrics.contains("requests total=1 admitted=1"));
        assert_eq!(service.health(), health);
        assert_eq!(service.metrics(), metrics);
        // And the empty service still snapshots and restores cleanly.
        let snap = service.snapshot();
        assert_eq!(snap.tenant_count(), 0);
        let restored =
            ServiceRuntime::<Count>::restore(EngineShared::builder().build(), &snap).unwrap();
        assert_eq!(restored.health(), health);
        assert_eq!(restored.metrics(), metrics);
    }

    #[test]
    fn metrics_and_health_render_deterministically() {
        let render = || {
            let mut service = ServiceRuntime::new(EngineShared::builder().build());
            let id = service.register(Count, spec("alpha")).unwrap();
            service
                .ingest(id, 0, vec![stamped(0, 0, "a b"), stamped(15, 1, "c")])
                .unwrap();
            (service.health(), service.metrics())
        };
        let (h1, m1) = render();
        let (h2, m2) = render();
        assert_eq!(h1, h2);
        assert_eq!(m1, m2);
        assert!(h1.contains("ok tenant=alpha"));
        assert!(m1.contains("tenant id=1 name=alpha"));
    }
}
