//! # slider-serve — a multi-tenant streaming service layer
//!
//! The paper's deployment model is a *service*: one cluster, one
//! memoization layer, many sliding-window computations coming and going.
//! This crate is that front door over the reproduction's shared engine
//! ([`slider_mapreduce::EngineShared`]):
//!
//! * [`ServiceRuntime`] registers and deregisters tenants at runtime;
//!   each [`TenantSpec`] compiles into an event-time windowed job
//!   ([`slider_mapreduce::EventFeeder`]) attached to the shared runtime,
//!   trace sink, memoization cache (private namespace per tenant) and
//!   simulated-cluster clock.
//! * Every request passes a deterministic admission chain — request-shape
//!   admission control, DGIM sliding-window rate limiting
//!   ([`slider_core::SlidingWindowCounter`]), lifetime record quotas —
//!   before dispatch ([`Decision`]).
//! * Point-in-time [`WindowView`] queries read any tenant's window while
//!   other tenants' slides are in flight.
//! * [`ServiceRuntime::health`] and [`ServiceRuntime::metrics`] render a
//!   deterministic text surface whose numbers ([`ServeStats`],
//!   [`TenantStats`]) reconcile bit-exactly with the per-run
//!   [`slider_mapreduce::RunStats`] the engine reports.
//!
//! The service is also *crash-resilient* (DESIGN.md §3h):
//!
//! * [`ServiceRuntime::snapshot`] captures a deep, versioned
//!   [`ServiceSnapshot`] — every tenant's feeder and aggregator state,
//!   admission ledgers, breaker positions, the overload gauge, and the
//!   shared engine's clock/cache/namespace state — and
//!   [`ServiceRuntime::restore`] resumes from it bit-identically to a
//!   service that never crashed.
//! * Per-tenant **circuit breakers** ([`BreakerConfig`]) quarantine a
//!   persistently failing tenant after bounded, deterministic retries
//!   ([`slider_mapreduce::RetryPolicy`]) without perturbing its siblings;
//!   scripted [`DispatchFaultPlan`]s drive chaos tests through the same
//!   path.
//! * Service-wide **overload shedding** ([`OverloadConfig`]) degrades
//!   deterministically under pressure: per-tenant deadline budgets bounce
//!   oversized requests and the lowest-priority tenants are shed first.
//!
//! Determinism is absolute (DESIGN.md §3g): the same seed, registration
//! order and request sequence produce bit-identical per-tenant outputs,
//! statistics and trace exports at every worker-thread count — including
//! under a seeded fault plan, with tenants joining or leaving mid-stream,
//! and across a crash/restore boundary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Silent integer narrowing has burned this codebase before; be explicit.
#![deny(clippy::cast_possible_truncation)]

mod admission;
mod breaker;
mod error;
mod service;
mod snapshot;
mod stats;
mod tenant;

pub use admission::{Decision, OverloadConfig};
pub use breaker::{BreakerConfig, BreakerState, DispatchFault, DispatchFaultPlan};
pub use error::ServeError;
pub use service::{IngestOutcome, ServiceRuntime};
pub use snapshot::{ServiceSnapshot, SNAPSHOT_VERSION};
pub use stats::{ServeStats, TenantStats};
pub use tenant::{RateLimit, TenantId, TenantReport, TenantSpec, WindowView};
