//! # slider-serve — a multi-tenant streaming service layer
//!
//! The paper's deployment model is a *service*: one cluster, one
//! memoization layer, many sliding-window computations coming and going.
//! This crate is that front door over the reproduction's shared engine
//! ([`slider_mapreduce::EngineShared`]):
//!
//! * [`ServiceRuntime`] registers and deregisters tenants at runtime;
//!   each [`TenantSpec`] compiles into an event-time windowed job
//!   ([`slider_mapreduce::EventFeeder`]) attached to the shared runtime,
//!   trace sink, memoization cache (private namespace per tenant) and
//!   simulated-cluster clock.
//! * Every request passes a deterministic admission chain — request-shape
//!   admission control, DGIM sliding-window rate limiting
//!   ([`slider_core::SlidingWindowCounter`]), lifetime record quotas —
//!   before dispatch ([`Decision`]).
//! * Point-in-time [`WindowView`] queries read any tenant's window while
//!   other tenants' slides are in flight.
//! * [`ServiceRuntime::health`] and [`ServiceRuntime::metrics`] render a
//!   deterministic text surface whose numbers ([`ServeStats`],
//!   [`TenantStats`]) reconcile bit-exactly with the per-run
//!   [`slider_mapreduce::RunStats`] the engine reports.
//!
//! Determinism is absolute (DESIGN.md §3g): the same seed, registration
//! order and request sequence produce bit-identical per-tenant outputs,
//! statistics and trace exports at every worker-thread count — including
//! under a seeded fault plan and with tenants joining or leaving
//! mid-stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Silent integer narrowing has burned this codebase before; be explicit.
#![deny(clippy::cast_possible_truncation)]

mod admission;
mod error;
mod service;
mod stats;
mod tenant;

pub use admission::Decision;
pub use error::ServeError;
pub use service::{IngestOutcome, ServiceRuntime};
pub use stats::{ServeStats, TenantStats};
pub use tenant::{RateLimit, TenantId, TenantReport, TenantSpec, WindowView};
