//! Tenant identity and specification.

use std::collections::BTreeMap;

use slider_core::TreeKind;
use slider_mapreduce::{
    EventTimeConfig, EventTimeStats, ExecMode, MapReduceApp, RunStats, SimulationConfig,
};

use crate::breaker::{BreakerConfig, DispatchFaultPlan};
use crate::error::ServeError;
use crate::stats::TenantStats;

/// Opaque tenant handle, assigned at registration (1, 2, 3, … in
/// registration order). The tenant's cache namespace is allocated
/// separately by the shared engine; the metrics surface reports both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u64);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// DGIM-windowed request-rate limit: at most `requests` admitted requests
/// inside any trailing `window` arrival ticks, estimated within `epsilon`.
#[derive(Debug, Clone, PartialEq)]
pub struct RateLimit {
    /// Maximum admitted requests per trailing window.
    pub requests: u64,
    /// Width of the trailing window, in arrival ticks.
    pub window: u64,
    /// DGIM accuracy knob (relative estimation error bound, in `(0, 1]`).
    pub epsilon: f64,
}

impl RateLimit {
    /// A limit of `requests` per `window` ticks at the default ε = 0.5
    /// (classic DGIM: at most a factor-1.5 overcount).
    pub fn new(requests: u64, window: u64) -> Self {
        RateLimit {
            requests,
            window,
            epsilon: 0.5,
        }
    }

    /// Overrides the DGIM accuracy knob. Builder-style.
    #[must_use]
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }
}

/// Everything the service needs to compile one tenant into an event-time
/// windowed job on the shared engine.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Human-readable tenant name; unique within a service, and the name
    /// of the tenant's trace track (`tenant:<name>`).
    pub name: String,
    /// Execution mode of the tenant's job. Fixed-width rotating trees are
    /// rejected: variable request sizes cannot guarantee the uniform
    /// epochs they require.
    pub mode: ExecMode,
    /// Reduce partitions of the tenant's job.
    pub partitions: usize,
    /// Event-time window geometry (epochs, lateness bound).
    pub event: EventTimeConfig,
    /// Optional cluster simulation for this tenant's runs; when the shared
    /// engine carries a clock, simulated makespans accumulate into it.
    pub simulation: Option<SimulationConfig>,
    /// Optional override of the job's data-movement work rate.
    pub work_per_byte: Option<f64>,
    /// Optional DGIM-windowed request-rate limit.
    pub rate_limit: Option<RateLimit>,
    /// Optional lifetime record budget.
    pub record_quota: Option<u64>,
    /// Optional per-request record cap (admission control).
    pub max_request_records: Option<usize>,
    /// Shedding priority under service-wide overload: a request is shed
    /// when the admitted-record estimate exceeds the overload limit by
    /// more than this value — so *lower*-priority tenants are shed first
    /// as pressure mounts. Default 100.
    pub priority: u8,
    /// Optional per-request record budget enforced only while the
    /// service is under overload pressure ("deadline budget"): larger
    /// requests bounce with
    /// [`Decision::DeadlineExceeded`](crate::Decision::DeadlineExceeded).
    pub pressure_budget: Option<usize>,
    /// Optional circuit breaker guarding this tenant's dispatches.
    pub breaker: Option<BreakerConfig>,
    /// Optional scripted dispatch faults (chaos testing).
    pub dispatch_faults: Option<DispatchFaultPlan>,
}

impl TenantSpec {
    /// A spec with the service defaults: 8 partitions, no simulation, no
    /// limits.
    pub fn new(name: impl Into<String>, mode: ExecMode, event: EventTimeConfig) -> Self {
        TenantSpec {
            name: name.into(),
            mode,
            partitions: 8,
            event,
            simulation: None,
            work_per_byte: None,
            rate_limit: None,
            record_quota: None,
            max_request_records: None,
            priority: 100,
            pressure_budget: None,
            breaker: None,
            dispatch_faults: None,
        }
    }

    /// Sets the reduce-partition count. Builder-style.
    #[must_use]
    pub fn with_partitions(mut self, partitions: usize) -> Self {
        self.partitions = partitions;
        self
    }

    /// Enables cluster simulation for this tenant. Builder-style.
    #[must_use]
    pub fn with_simulation(mut self, sim: SimulationConfig) -> Self {
        self.simulation = Some(sim);
        self
    }

    /// Overrides the data-movement work rate. Builder-style.
    #[must_use]
    pub fn with_work_per_byte(mut self, rate: f64) -> Self {
        self.work_per_byte = Some(rate);
        self
    }

    /// Installs a request-rate limit. Builder-style.
    #[must_use]
    pub fn with_rate_limit(mut self, limit: RateLimit) -> Self {
        self.rate_limit = Some(limit);
        self
    }

    /// Installs a lifetime record quota. Builder-style.
    #[must_use]
    pub fn with_record_quota(mut self, quota: u64) -> Self {
        self.record_quota = Some(quota);
        self
    }

    /// Installs a per-request record cap. Builder-style.
    #[must_use]
    pub fn with_max_request_records(mut self, max: usize) -> Self {
        self.max_request_records = Some(max);
        self
    }

    /// Sets the shedding priority under overload. Builder-style.
    #[must_use]
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Installs an under-pressure per-request record budget.
    /// Builder-style.
    #[must_use]
    pub fn with_pressure_budget(mut self, budget: usize) -> Self {
        self.pressure_budget = Some(budget);
        self
    }

    /// Installs a circuit breaker. Builder-style.
    #[must_use]
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = Some(breaker);
        self
    }

    /// Installs scripted dispatch faults (chaos testing). Builder-style.
    #[must_use]
    pub fn with_dispatch_faults(mut self, plan: DispatchFaultPlan) -> Self {
        self.dispatch_faults = Some(plan);
        self
    }

    /// Validates the spec (the checks the underlying job cannot make for
    /// us). Job-level config errors surface from registration as
    /// [`ServeError::Job`].
    pub(crate) fn validate(&self) -> Result<(), ServeError> {
        if self.name.is_empty() {
            return Err(ServeError::BadSpec("tenant name must be non-empty".into()));
        }
        if let ExecMode::Slider {
            tree: TreeKind::Rotating,
            ..
        } = self.mode
        {
            return Err(ServeError::BadSpec(
                "rotating trees need uniform epochs, which variable-size \
                 requests cannot guarantee"
                    .into(),
            ));
        }
        if let Some(limit) = &self.rate_limit {
            if limit.requests == 0 {
                return Err(ServeError::BadSpec(
                    "rate limit must allow at least one request".into(),
                ));
            }
            if limit.window == 0 {
                return Err(ServeError::BadSpec("rate window must be positive".into()));
            }
            if !(limit.epsilon > 0.0 && limit.epsilon <= 1.0) {
                return Err(ServeError::BadSpec("rate epsilon must be in (0, 1]".into()));
            }
        }
        if self.max_request_records == Some(0) {
            return Err(ServeError::BadSpec(
                "per-request cap must allow at least one record".into(),
            ));
        }
        if self.pressure_budget == Some(0) {
            return Err(ServeError::BadSpec(
                "pressure budget must allow at least one record".into(),
            ));
        }
        if let Some(breaker) = &self.breaker {
            breaker
                .validate()
                .map_err(|m| ServeError::BadSpec(format!("breaker: {m}")))?;
        }
        if let Some(plan) = &self.dispatch_faults {
            plan.validate()
                .map_err(|m| ServeError::BadSpec(format!("dispatch faults: {m}")))?;
        }
        Ok(())
    }
}

/// Point-in-time view of one tenant's window, readable between requests
/// while other tenants' slides are in flight.
#[derive(Debug)]
pub struct WindowView<'a, A: MapReduceApp> {
    /// The tenant's current reduced output.
    pub output: &'a BTreeMap<A::Key, A::Output>,
    /// Event-time watermark (None before the first record).
    pub watermark: Option<u64>,
    /// Closed epochs currently inside the window, oldest first.
    pub window_epochs: Vec<u64>,
    /// Records buffered ahead of the watermark (not yet in any run).
    pub buffered_records: usize,
    /// Event-time feeder counters.
    pub event: EventTimeStats,
}

/// Everything a deregistration returns: the tenant's drained state.
#[derive(Debug)]
pub struct TenantReport<A: MapReduceApp> {
    /// The tenant's name.
    pub name: String,
    /// Folded service-side statistics, final.
    pub stats: TenantStats,
    /// Event-time feeder counters, final.
    pub event: EventTimeStats,
    /// Runs executed while draining the reorder buffer and open epochs.
    pub final_runs: Vec<RunStats>,
    /// The final window output.
    pub output: BTreeMap<A::Key, A::Output>,
}
