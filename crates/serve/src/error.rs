//! Typed service-layer failures.

use std::error::Error;
use std::fmt;

use slider_mapreduce::JobError;

/// Everything that can go wrong at the service front door.
#[derive(Debug)]
pub enum ServeError {
    /// A tenant spec failed validation at registration.
    BadSpec(String),
    /// A tenant name was registered twice.
    DuplicateTenant(String),
    /// An operation addressed a tenant id the registry does not hold.
    UnknownTenant(u64),
    /// The tenant's underlying windowed job rejected an operation.
    Job(JobError),
    /// A service snapshot was produced by an incompatible snapshot-format
    /// version and cannot be restored.
    SnapshotVersion {
        /// The version this build reads and writes.
        expected: u32,
        /// The version the snapshot carries.
        got: u32,
    },
    /// A service snapshot could not be restored onto the provided shared
    /// engine (detailed in the message — e.g. the snapshot carries cache
    /// or clock state the engine was built without).
    Snapshot(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadSpec(why) => write!(f, "bad tenant spec: {why}"),
            ServeError::DuplicateTenant(name) => {
                write!(f, "tenant {name:?} is already registered")
            }
            ServeError::UnknownTenant(id) => write!(f, "no tenant with id {id}"),
            ServeError::Job(e) => write!(f, "tenant job failed: {e}"),
            ServeError::SnapshotVersion { expected, got } => {
                write!(f, "snapshot version {got} is not the supported {expected}")
            }
            ServeError::Snapshot(why) => write!(f, "snapshot restore failed: {why}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Job(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JobError> for ServeError {
    fn from(e: JobError) -> Self {
        ServeError::Job(e)
    }
}
