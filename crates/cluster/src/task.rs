//! Simulated tasks: the unit of scheduling.

use crate::machine::MachineId;

/// Identifies a task within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u64);

/// Which slot pool a task occupies (MapReduce distinguishes map slots from
/// reduce slots).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotKind {
    /// Map-phase task.
    Map,
    /// Contraction + Reduce phase task.
    Reduce,
}

/// A schedulable unit of work.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Unique id within the simulation.
    pub id: TaskId,
    /// Slot pool the task occupies.
    pub kind: SlotKind,
    /// Modeled compute cost in abstract work units.
    pub work: u64,
    /// Machine where the task's input (split replica or memoized state)
    /// lives; `None` if the task has no placement preference.
    pub preferred: Option<MachineId>,
    /// Bytes the task must read as input. Read locally when scheduled on
    /// `preferred`, fetched over the network otherwise.
    pub input_bytes: u64,
}

impl Task {
    /// A map task with the given work and no placement preference.
    pub fn map(id: u64, work: u64) -> Self {
        Task {
            id: TaskId(id),
            kind: SlotKind::Map,
            work,
            preferred: None,
            input_bytes: 0,
        }
    }

    /// A reduce task with the given work and no placement preference.
    pub fn reduce(id: u64, work: u64) -> Self {
        Task {
            id: TaskId(id),
            kind: SlotKind::Reduce,
            work,
            preferred: None,
            input_bytes: 0,
        }
    }

    /// Sets the preferred (data-local) machine. Builder-style.
    pub fn prefer(mut self, machine: MachineId) -> Self {
        self.preferred = Some(machine);
        self
    }

    /// Sets the input size in bytes. Builder-style.
    pub fn with_input_bytes(mut self, bytes: u64) -> Self {
        self.input_bytes = bytes;
        self
    }

    /// Re-points a preference at a dead machine to the next alive machine
    /// (wrap-around), mirroring where the memoization layer's replicas live
    /// (`home + 1 + i`). A preference at an alive machine — or no
    /// preference — is left untouched; if no machine is alive the
    /// preference is also left untouched (the simulation is doomed either
    /// way and reports a deadlock).
    pub fn repoint_preference(&mut self, alive: &[bool]) {
        let Some(MachineId(m)) = self.preferred else {
            return;
        };
        if alive.get(m).copied().unwrap_or(false) {
            return;
        }
        let n = alive.len();
        if let Some(next) = (1..=n).map(|i| (m + i) % n).find(|&i| alive[i]) {
            self.preferred = Some(MachineId(next));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let t = Task::map(1, 500)
            .prefer(MachineId(3))
            .with_input_bytes(64 << 20);
        assert_eq!(t.kind, SlotKind::Map);
        assert_eq!(t.preferred, Some(MachineId(3)));
        assert_eq!(t.input_bytes, 64 << 20);
        assert_eq!(t.work, 500);
    }

    #[test]
    fn reduce_has_reduce_kind() {
        assert_eq!(Task::reduce(2, 1).kind, SlotKind::Reduce);
    }

    #[test]
    fn repoint_moves_to_next_alive_machine() {
        let mut t = Task::reduce(0, 1).prefer(MachineId(1));
        // Preferred machine dead, next alive is 3 (2 is dead too).
        t.repoint_preference(&[true, false, false, true]);
        assert_eq!(t.preferred, Some(MachineId(3)));
        // Wrap-around past the end.
        let mut t = Task::reduce(0, 1).prefer(MachineId(3));
        t.repoint_preference(&[true, false, false, false]);
        assert_eq!(t.preferred, Some(MachineId(0)));
    }

    #[test]
    fn repoint_leaves_alive_and_preference_free_tasks_alone() {
        let mut t = Task::reduce(0, 1).prefer(MachineId(1));
        t.repoint_preference(&[true, true]);
        assert_eq!(t.preferred, Some(MachineId(1)));
        let mut t = Task::map(0, 1);
        t.repoint_preference(&[false, false]);
        assert_eq!(t.preferred, None);
    }
}
