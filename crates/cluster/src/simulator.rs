//! The discrete-event list-scheduling simulator.
//!
//! Tasks are organized in *stages* with a barrier between consecutive
//! stages (MapReduce's map → shuffle → reduce structure). Within a stage,
//! whenever a slot frees up the configured [`Scheduler`] picks a pending
//! task for it; the task's duration follows the [`CostModel`] given the
//! machine's speed and whether the task's input is local.
//!
//! [`simulate_with_faults`] additionally consumes a [`FaultPlan`]: machines
//! crash at planned times (killing their in-flight attempts, which retry on
//! survivors within a bounded attempt budget), planned slowdowns turn
//! machines into stragglers, and — with speculation enabled — straggling
//! attempts are duplicated onto faster idle machines with the first
//! finisher winning. Recovery work (partial runs lost to crashes and
//! cancelled speculative duplicates) is metered separately in
//! [`StageReport::recovery_seconds`]; with the empty plan the simulation is
//! bit-identical to [`simulate`].

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::fault::{FaultPlan, MachineCrash};
use crate::machine::{Machine, MachineId, MachineSpec};
use crate::scheduler::{build_scheduler, PendingTask, Scheduler, SchedulerPolicy};
use crate::task::{SlotKind, Task};
use crate::topology::CostModel;

/// A cluster to simulate: workers plus the cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Worker machines (the master is not modeled as a compute resource).
    pub machines: Vec<MachineSpec>,
    /// Unit conversion rates.
    pub cost: CostModel,
}

impl ClusterSpec {
    /// The paper's evaluation cluster: 24 healthy workers (§7.1), with the
    /// default cost model.
    pub fn paper_cluster() -> Self {
        ClusterSpec {
            machines: vec![MachineSpec::healthy(); 24],
            cost: CostModel::paper_defaults(),
        }
    }

    /// A paper cluster where `count` workers straggle at the given relative
    /// speed.
    pub fn with_stragglers(count: usize, speed: f64) -> Self {
        let mut spec = Self::paper_cluster();
        for m in spec.machines.iter_mut().take(count) {
            *m = MachineSpec::straggler(speed);
        }
        spec
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// True when the cluster has no workers.
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }
}

/// Per-stage outcome.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageReport {
    /// Simulated seconds from stage start to the last task completion.
    pub duration: f64,
    /// Sum of task durations (active machine time) in this stage.
    pub busy_seconds: f64,
    /// Tasks that ran off their preferred machine.
    pub remote_placements: u64,
    /// Bytes fetched over the network by remote placements.
    pub remote_bytes: u64,
    /// Tasks executed.
    pub tasks: usize,
    /// Tasks re-executed after a machine crash killed an attempt.
    pub retried_tasks: u64,
    /// Speculative duplicate attempts launched against stragglers.
    pub speculative_tasks: u64,
    /// Machine seconds spent on attempts that did not produce their task's
    /// winning completion: partial runs lost to crashes plus cancelled
    /// speculative duplicates. Always included in `busy_seconds`.
    pub recovery_seconds: f64,
}

/// Whole-run outcome.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimReport {
    /// End-to-end simulated runtime across all stages.
    pub makespan: f64,
    /// Per-stage breakdown, in input order.
    pub stages: Vec<StageReport>,
    /// Total tasks executed.
    pub tasks_run: usize,
    /// Total active machine seconds.
    pub busy_seconds: f64,
    /// Placement-preferring tasks migrated by the hybrid scheduler.
    pub migrations: u64,
    /// Tasks re-executed after machine crashes, across all stages.
    pub retried_tasks: u64,
    /// Speculative duplicate attempts launched, across all stages.
    pub speculative_tasks: u64,
    /// Recovery machine seconds (see [`StageReport::recovery_seconds`]),
    /// across all stages.
    pub recovery_seconds: f64,
    /// Network bytes moved by background cache re-replication attached to
    /// this run (off the critical path; never part of `makespan`).
    pub repair_network_bytes: u64,
    /// Simulated seconds of background repair and scrub I/O attached to
    /// this run (off the critical path; never part of `makespan`).
    pub repair_seconds: f64,
}

impl SimReport {
    /// Attaches background self-healing traffic (re-replication bytes and
    /// repair/scrub seconds) to this run's accounting. The work shares the
    /// cluster's network but runs off the critical path, so `makespan` is
    /// untouched.
    pub fn attach_repair_traffic(&mut self, bytes: u64, seconds: f64) {
        self.repair_network_bytes += bytes;
        self.repair_seconds += seconds;
    }
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    payload: Payload,
}

#[derive(Debug, Clone, Copy)]
enum Payload {
    Done {
        attempt: usize,
    },
    Retry,
    /// A planned machine crash falls due (the crash schedule cursor decides
    /// which crashes actually apply).
    Crash,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, seq).
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct SlotState {
    free_map: usize,
    free_reduce: usize,
}

impl SlotState {
    fn free(&mut self, kind: SlotKind) -> &mut usize {
        match kind {
            SlotKind::Map => &mut self.free_map,
            SlotKind::Reduce => &mut self.free_reduce,
        }
    }

    fn available(&self, kind: SlotKind) -> usize {
        match kind {
            SlotKind::Map => self.free_map,
            SlotKind::Reduce => self.free_reduce,
        }
    }
}

/// One execution attempt of a task on a machine. Tasks normally have one
/// attempt; crashes and speculation create more. At most one attempt per
/// task ever completes.
#[derive(Debug, Clone, Copy)]
struct Attempt {
    /// Stage-local task index.
    task: usize,
    machine: usize,
    kind: SlotKind,
    start: f64,
    duration: f64,
    /// Cleared when the attempt completes, is killed by a crash, or is
    /// cancelled because a duplicate finished first; its `Done` event is
    /// then stale and ignored.
    alive: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct TaskState {
    completed: bool,
    /// Live attempts currently running.
    live: u32,
    /// Attempts killed by machine crashes so far.
    failures: u32,
}

/// Simulates `stages` of tasks on `spec` under `policy`, fault-free.
///
/// Each inner `Vec<Task>` is released only after the previous stage fully
/// completes (the shuffle barrier). Equivalent to
/// [`simulate_with_faults`] with the empty [`FaultPlan`].
///
/// # Panics
///
/// Panics if a task prefers a machine id outside the cluster, or if the
/// cluster has no workers while tasks exist — both are host-engine bugs.
pub fn simulate(spec: &ClusterSpec, policy: SchedulerPolicy, stages: &[Vec<Task>]) -> SimReport {
    simulate_with_faults(spec, policy, stages, &FaultPlan::default())
}

/// [`simulate_with_faults`] plus trace emission: one
/// [`SpanKind::SimStage`](slider_trace::SpanKind) container span per call
/// on the `cluster` track, with one leaf per stage whose simulated seconds
/// equal that stage's [`StageReport::duration`] exactly (the leaf copies
/// the same `f64` the report carries, so traces reconcile bit-for-bit with
/// `SimReport`). `label` distinguishes concurrent schedules of one run
/// (e.g. foreground vs. background). A disabled sink makes this identical
/// to [`simulate_with_faults`].
///
/// # Panics
///
/// Exactly as [`simulate_with_faults`].
pub fn simulate_traced(
    spec: &ClusterSpec,
    policy: SchedulerPolicy,
    stages: &[Vec<Task>],
    plan: &FaultPlan,
    trace: &slider_trace::TraceSink,
    label: &str,
) -> SimReport {
    let report = simulate_with_faults(spec, policy, stages, plan);
    trace.with(|t| {
        use slider_trace::SpanKind;
        let tr = t.track("cluster");
        let parent = t.begin(tr, SpanKind::SimStage, format!("{label} schedule"));
        for (i, stage) in report.stages.iter().enumerate() {
            let s = t.leaf_seconds(
                tr,
                SpanKind::SimStage,
                format!("{label} stage {i}"),
                stage.duration,
            );
            t.arg(s, "tasks", stage.tasks as u64);
            t.arg(s, "retried", stage.retried_tasks);
            t.arg(s, "speculative", stage.speculative_tasks);
            t.arg(s, "remote_placements", stage.remote_placements);
        }
        t.end(parent);
        t.add("cluster.tasks_run", report.tasks_run as u64);
        t.add("cluster.retried_tasks", report.retried_tasks);
        t.add("cluster.speculative_tasks", report.speculative_tasks);
        t.add("cluster.migrations", report.migrations);
    });
    report
}

/// Simulates `stages` of tasks on `spec` under `policy` while injecting the
/// crashes, slowdowns, and speculation of `plan`.
///
/// Faults change only the schedule — which machine runs what, when, and how
/// much work is wasted — never which tasks logically complete: every task
/// eventually finishes exactly once (or the simulator panics when
/// [`FaultPlan::max_attempts`] is exhausted or no machine survives).
///
/// # Panics
///
/// Panics on host-engine bugs (out-of-range machine indices in tasks or in
/// the plan, an empty cluster with tasks) and on unrecoverable plans: a
/// task crashing more than `max_attempts` times, or every machine dead
/// while tasks remain.
pub fn simulate_with_faults(
    spec: &ClusterSpec,
    policy: SchedulerPolicy,
    stages: &[Vec<Task>],
    plan: &FaultPlan,
) -> SimReport {
    let total_tasks: usize = stages.iter().map(Vec::len).sum();
    assert!(
        total_tasks == 0 || !spec.is_empty(),
        "cannot simulate {total_tasks} tasks on an empty cluster"
    );
    for task in stages.iter().flatten() {
        if let Some(MachineId(m)) = task.preferred {
            assert!(
                m < spec.len(),
                "task {:?} prefers unknown machine m{m}",
                task.id
            );
        }
    }
    assert!(plan.max_attempts >= 1, "a task needs at least one attempt");
    for crash in &plan.crashes {
        assert!(
            crash.machine < spec.len(),
            "fault plan crashes unknown machine m{}",
            crash.machine
        );
        assert!(
            crash.at_seconds.is_finite() && crash.at_seconds >= 0.0,
            "crash time must be finite and non-negative"
        );
    }
    for slow in &plan.slowdowns {
        assert!(
            slow.machine < spec.len(),
            "fault plan slows unknown machine m{}",
            slow.machine
        );
    }

    let mut machines: Vec<Machine> = spec
        .machines
        .iter()
        .enumerate()
        .map(|(i, &spec)| Machine {
            id: MachineId(i),
            spec,
        })
        .collect();
    for slow in &plan.slowdowns {
        machines[slow.machine].spec = machines[slow.machine].spec.slowed_by(slow.factor);
    }
    let mut crashes = plan.crashes.clone();
    crashes.sort_by(|a, b| {
        a.at_seconds
            .total_cmp(&b.at_seconds)
            .then(a.machine.cmp(&b.machine))
    });
    let mut alive = vec![true; machines.len()];
    let mut next_crash = 0usize;
    let mut scheduler = build_scheduler(policy);

    let mut report = SimReport {
        stages: Vec::with_capacity(stages.len()),
        ..Default::default()
    };
    let mut now = 0.0f64;

    for stage_tasks in stages {
        let stage_start = now;
        let mut run = StageRun {
            spec,
            plan,
            policy,
            machines: &machines,
            alive: &mut alive,
            crashes: &crashes,
            next_crash: &mut next_crash,
            scheduler: scheduler.as_mut(),
            tasks: stage_tasks.clone(),
            task_state: vec![TaskState::default(); stage_tasks.len()],
            pending: Vec::new(),
            slots: machines
                .iter()
                .map(|m| SlotState {
                    free_map: m.spec.map_slots,
                    free_reduce: m.spec.reduce_slots,
                })
                .collect(),
            events: BinaryHeap::new(),
            attempts: Vec::new(),
            seq: 0,
            running: 0,
            retry_scheduled: false,
            stage: StageReport {
                tasks: stage_tasks.len(),
                ..Default::default()
            },
        };
        // Machines that died in (or before) an earlier stage stay dead:
        // apply any crash that has already happened, zero the dead
        // machines' slots, and move placement preferences off them.
        run.apply_crashes_until(stage_start);
        for mi in 0..run.slots.len() {
            if !run.alive[mi] {
                run.slots[mi] = SlotState {
                    free_map: 0,
                    free_reduce: 0,
                };
            }
        }
        for task in &mut run.tasks {
            task.repoint_preference(run.alive);
        }
        run.pending = run
            .tasks
            .iter()
            .cloned()
            .enumerate()
            .map(|(index, task)| PendingTask {
                task,
                enqueued_at: stage_start,
                attempt: 0,
                index,
            })
            .collect();
        // Future crashes become events so the machine dies — and its tasks
        // re-dispatch — at the planned time, not at the next completion.
        // Crashes the stage never reaches stay in the schedule (the cursor
        // only advances when a crash is applied) and re-arm next stage.
        for crash in &run.crashes[*run.next_crash..] {
            run.seq += 1;
            run.events.push(Event {
                time: crash.at_seconds,
                seq: run.seq,
                payload: Payload::Crash,
            });
        }

        run.dispatch(stage_start);
        run.schedule_retry(stage_start);

        // The stage ends at the last task completion; a pending hybrid
        // retry wake-up past that point must not stretch the stage.
        let mut last_done = stage_start;
        while let Some(event) = run.events.pop() {
            now = event.time;
            match event.payload {
                Payload::Done { attempt } => {
                    if run.complete(attempt, now) {
                        last_done = now;
                    }
                }
                Payload::Retry => {
                    run.retry_scheduled = false;
                }
                // Crash events sort before same-time completions (earlier
                // seq), so an attempt whose machine dies the instant it
                // would finish never completes.
                Payload::Crash => {
                    run.apply_crashes_until(now);
                }
            }
            if run.running == 0 && run.pending.is_empty() {
                break;
            }
            run.dispatch(now);
            run.schedule_retry(now);
        }

        assert!(
            run.pending.is_empty(),
            "scheduler deadlock: {} tasks stranded (policy {:?}, {} of {} machines alive)",
            run.pending.len(),
            policy,
            run.alive.iter().filter(|a| **a).count(),
            run.alive.len()
        );
        now = last_done;
        run.stage.duration = now - stage_start;
        report.stages.push(run.stage);
    }

    report.makespan = now;
    report.tasks_run = total_tasks;
    report.busy_seconds = report.stages.iter().map(|s| s.busy_seconds).sum();
    report.migrations = scheduler.migrations();
    report.retried_tasks = report.stages.iter().map(|s| s.retried_tasks).sum();
    report.speculative_tasks = report.stages.iter().map(|s| s.speculative_tasks).sum();
    report.recovery_seconds = report.stages.iter().map(|s| s.recovery_seconds).sum();
    report
}

/// All mutable state of one stage's event loop.
struct StageRun<'a> {
    spec: &'a ClusterSpec,
    plan: &'a FaultPlan,
    policy: SchedulerPolicy,
    machines: &'a [Machine],
    alive: &'a mut [bool],
    /// Whole-simulation crash schedule, sorted by time.
    crashes: &'a [MachineCrash],
    /// Cursor into `crashes`, shared across stages.
    next_crash: &'a mut usize,
    scheduler: &'a mut dyn Scheduler,
    /// This stage's tasks, with preferences re-pointed off dead machines.
    tasks: Vec<Task>,
    task_state: Vec<TaskState>,
    pending: Vec<PendingTask>,
    slots: Vec<SlotState>,
    events: BinaryHeap<Event>,
    attempts: Vec<Attempt>,
    seq: u64,
    running: usize,
    retry_scheduled: bool,
    stage: StageReport,
}

impl StageRun<'_> {
    /// Fills free slots with pending tasks, then (when the plan enables it)
    /// launches speculative duplicates of straggling attempts.
    fn dispatch(&mut self, now: f64) {
        loop {
            let mut assigned = false;
            for mi in 0..self.machines.len() {
                if !self.alive[mi] {
                    continue;
                }
                for kind in [SlotKind::Map, SlotKind::Reduce] {
                    while *self.slots[mi].free(kind) > 0 && !self.pending.is_empty() {
                        let Some(i) =
                            self.scheduler
                                .choose(now, &self.machines[mi], kind, &self.pending)
                        else {
                            break;
                        };
                        let picked = self.pending.remove(i);
                        self.start_attempt(now, picked.task, picked.index, mi, kind);
                        assigned = true;
                    }
                }
            }
            if !assigned {
                break;
            }
        }
        if self.plan.speculation {
            self.speculate(now);
        }
    }

    /// Starts one attempt of `task` (stage index `index`) on machine `mi`.
    /// The full duration is charged to `busy_seconds` up front; a crash or
    /// cancellation refunds the un-run remainder.
    fn start_attempt(&mut self, now: f64, task: Task, index: usize, mi: usize, kind: SlotKind) {
        let machine = &self.machines[mi];
        let local = task.preferred.is_none_or(|p| p == machine.id);
        if !local {
            self.stage.remote_placements += 1;
            self.stage.remote_bytes += task.input_bytes;
        }
        let duration =
            self.spec
                .cost
                .task_seconds(task.work, task.input_bytes, machine.spec.speed, local);
        self.stage.busy_seconds += duration;
        *self.slots[mi].free(kind) -= 1;
        self.seq += 1;
        let attempt = self.attempts.len();
        self.attempts.push(Attempt {
            task: index,
            machine: mi,
            kind,
            start: now,
            duration,
            alive: true,
        });
        self.task_state[index].live += 1;
        self.events.push(Event {
            time: now + duration,
            seq: self.seq,
            payload: Payload::Done { attempt },
        });
        self.running += 1;
    }

    /// Handles a `Done` event. Returns true for a real completion, false
    /// for a stale event of a killed or cancelled attempt.
    fn complete(&mut self, attempt: usize, now: f64) -> bool {
        if !self.attempts[attempt].alive {
            return false;
        }
        let a = self.attempts[attempt];
        self.attempts[attempt].alive = false;
        *self.slots[a.machine].free(a.kind) += 1;
        self.running -= 1;
        self.task_state[a.task].live -= 1;
        self.task_state[a.task].completed = true;
        // First finisher wins: cancel the task's other live attempts and
        // refund their unspent time; what they did run is recovery waste.
        if self.task_state[a.task].live > 0 {
            for other in 0..self.attempts.len() {
                let o = self.attempts[other];
                if other == attempt || !o.alive || o.task != a.task {
                    continue;
                }
                self.attempts[other].alive = false;
                *self.slots[o.machine].free(o.kind) += 1;
                self.running -= 1;
                self.task_state[a.task].live -= 1;
                let wasted = (now - o.start).max(0.0);
                self.stage.busy_seconds -= o.duration - wasted;
                self.stage.recovery_seconds += wasted;
            }
        }
        true
    }

    /// Applies every planned crash with `at_seconds <= t`: the machine goes
    /// (and stays) dead, its live attempts die with it, and their tasks
    /// re-enter the queue — bounded by the plan's attempt budget.
    fn apply_crashes_until(&mut self, t: f64) {
        while *self.next_crash < self.crashes.len()
            && self.crashes[*self.next_crash].at_seconds <= t
        {
            let crash = self.crashes[*self.next_crash];
            *self.next_crash += 1;
            if !self.alive[crash.machine] {
                continue;
            }
            self.alive[crash.machine] = false;
            self.slots[crash.machine] = SlotState {
                free_map: 0,
                free_reduce: 0,
            };
            for ai in 0..self.attempts.len() {
                let a = self.attempts[ai];
                if !a.alive || a.machine != crash.machine {
                    continue;
                }
                self.attempts[ai].alive = false;
                self.running -= 1;
                let elapsed = (crash.at_seconds - a.start).max(0.0);
                self.stage.busy_seconds -= a.duration - elapsed;
                self.stage.recovery_seconds += elapsed;
                let state = &mut self.task_state[a.task];
                state.live -= 1;
                if state.completed || state.live > 0 {
                    // A duplicate attempt survives elsewhere; no retry.
                    continue;
                }
                state.failures += 1;
                assert!(
                    state.failures < self.plan.max_attempts,
                    "task {:?} lost {} attempts to crashes; max_attempts is {}",
                    self.tasks[a.task].id,
                    state.failures,
                    self.plan.max_attempts
                );
                self.stage.retried_tasks += 1;
                let mut task = self.tasks[a.task].clone();
                task.repoint_preference(self.alive);
                self.pending.push(PendingTask {
                    task,
                    enqueued_at: crash.at_seconds,
                    attempt: state.failures,
                    index: a.task,
                });
            }
            // Strict memoization-aware placement would wait forever for a
            // dead machine; preferences follow the replica chain instead.
            for task in &mut self.tasks {
                task.repoint_preference(self.alive);
            }
            for p in &mut self.pending {
                p.task.repoint_preference(self.alive);
            }
        }
    }

    /// Launches speculative duplicates: when nothing is queued, a task
    /// whose only attempt runs on a straggling machine is duplicated onto
    /// the machine that would finish it soonest — if that beats the
    /// straggler's projected finish.
    fn speculate(&mut self, now: f64) {
        if !self.pending.is_empty() {
            return;
        }
        loop {
            let mut launched = false;
            for ai in 0..self.attempts.len() {
                let a = self.attempts[ai];
                if !a.alive || !self.machines[a.machine].is_straggler() {
                    continue;
                }
                let state = self.task_state[a.task];
                if state.completed || state.live != 1 {
                    continue;
                }
                let task = self.tasks[a.task].clone();
                let finish = a.start + a.duration;
                let mut best: Option<(usize, f64)> = None;
                for mi in 0..self.machines.len() {
                    if mi == a.machine || !self.alive[mi] || self.slots[mi].available(a.kind) == 0 {
                        continue;
                    }
                    let local = task.preferred.is_none_or(|p| p == MachineId(mi));
                    let d = self.spec.cost.task_seconds(
                        task.work,
                        task.input_bytes,
                        self.machines[mi].spec.speed,
                        local,
                    );
                    if now + d < finish && best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((mi, d));
                    }
                }
                if let Some((mi, _)) = best {
                    self.stage.speculative_tasks += 1;
                    self.start_attempt(now, task, a.task, mi, a.kind);
                    launched = true;
                }
            }
            if !launched {
                break;
            }
        }
    }

    /// Ensures the hybrid scheduler gets a wake-up once its migration
    /// threshold expires even if no completion event occurs in the
    /// meantime.
    fn schedule_retry(&mut self, now: f64) {
        let SchedulerPolicy::Hybrid {
            migration_threshold,
        } = self.policy
        else {
            return;
        };
        if self.pending.is_empty() || self.retry_scheduled {
            return;
        }
        let earliest = self
            .pending
            .iter()
            .map(|p| p.enqueued_at + migration_threshold)
            .fold(f64::INFINITY, f64::min);
        // A wake-up is only useful when the oldest pending task has NOT yet
        // crossed the migration threshold: once it has, it is already
        // eligible and only a freed slot (a Done event) can unblock it —
        // re-dispatching on a timer would spin the event loop.
        if earliest > now {
            self.seq += 1;
            self.events.push(Event {
                time: earliest,
                seq: self.seq,
                payload: Payload::Retry,
            });
            self.retry_scheduled = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cost() -> CostModel {
        CostModel {
            work_per_second: 1.0,
            local_bytes_per_second: 1.0,
            remote_bytes_per_second: 0.5,
            task_startup_seconds: 0.0,
        }
    }

    fn cluster(n: usize) -> ClusterSpec {
        ClusterSpec {
            machines: vec![MachineSpec::healthy(); n],
            cost: tiny_cost(),
        }
    }

    #[test]
    fn single_task_runs_for_its_duration() {
        let spec = cluster(1);
        let report = simulate(&spec, SchedulerPolicy::Vanilla, &[vec![Task::map(0, 10)]]);
        assert_eq!(report.makespan, 10.0);
        assert_eq!(report.tasks_run, 1);
        assert_eq!(report.busy_seconds, 10.0);
    }

    #[test]
    fn parallel_tasks_share_the_cluster() {
        // 4 machines × 2 map slots = 8-way parallelism; 16 unit tasks of
        // 10s take exactly two waves.
        let spec = cluster(4);
        let tasks: Vec<Task> = (0..16).map(|i| Task::map(i, 10)).collect();
        let report = simulate(&spec, SchedulerPolicy::Vanilla, &[tasks]);
        assert_eq!(report.makespan, 20.0);
        assert_eq!(report.busy_seconds, 160.0);
    }

    #[test]
    fn stages_are_barriers() {
        let spec = cluster(2);
        let report = simulate(
            &spec,
            SchedulerPolicy::Vanilla,
            &[vec![Task::map(0, 5)], vec![Task::reduce(1, 7)]],
        );
        assert_eq!(report.makespan, 12.0);
        assert_eq!(report.stages.len(), 2);
        assert_eq!(report.stages[0].duration, 5.0);
        assert_eq!(report.stages[1].duration, 7.0);
    }

    #[test]
    fn remote_placement_pays_transfer_cost() {
        let spec = cluster(2);
        // Vanilla ignores reduce preferences: the task may land anywhere,
        // but with 1 task and FIFO it lands on machine 0 while preferring
        // machine 1 → remote read at 0.5 B/s.
        let task = Task::reduce(0, 10).prefer(MachineId(1)).with_input_bytes(5);
        let report = simulate(&spec, SchedulerPolicy::Vanilla, &[vec![task.clone()]]);
        assert_eq!(report.makespan, 10.0 + 5.0 / 0.5);
        assert_eq!(report.stages[0].remote_placements, 1);

        // The memoization-aware policy waits for machine 1 → local read.
        let report = simulate(&spec, SchedulerPolicy::MemoizationAware, &[vec![task]]);
        assert_eq!(report.makespan, 10.0 + 5.0 / 1.0);
        assert_eq!(report.stages[0].remote_placements, 0);
    }

    #[test]
    fn memo_aware_waits_for_busy_preferred_machine() {
        let mut spec = cluster(2);
        spec.machines[1].reduce_slots = 1;
        // A long filler occupies machine 1's only reduce slot; the
        // preferring task must wait for it.
        let filler = Task::reduce(0, 100).prefer(MachineId(1));
        let preferrer = Task::reduce(1, 10).prefer(MachineId(1));
        let report = simulate(
            &spec,
            SchedulerPolicy::MemoizationAware,
            &[vec![filler, preferrer]],
        );
        assert_eq!(report.makespan, 110.0);
    }

    #[test]
    fn hybrid_migrates_off_stragglers() {
        let mut spec = cluster(2);
        spec.machines[1].reduce_slots = 1;
        let filler = Task::reduce(0, 100).prefer(MachineId(1));
        let preferrer = Task::reduce(1, 10).prefer(MachineId(1)).with_input_bytes(2);
        let report = simulate(
            &spec,
            SchedulerPolicy::Hybrid {
                migration_threshold: 5.0,
            },
            &[vec![filler, preferrer]],
        );
        // The preferring task migrates to machine 0 at ~t=5 and finishes at
        // ~t=19 (10 compute + 4 remote read), well before the filler.
        assert!(report.makespan < 110.0, "makespan = {}", report.makespan);
        assert_eq!(report.migrations, 1);
        assert_eq!(report.stages[0].remote_bytes, 2);
    }

    #[test]
    fn stragglers_stretch_vanilla_makespan() {
        let healthy = ClusterSpec {
            machines: vec![MachineSpec::healthy(); 4],
            cost: tiny_cost(),
        };
        let degraded = ClusterSpec {
            machines: {
                let mut m = vec![MachineSpec::healthy(); 4];
                m[0] = MachineSpec::straggler(0.1);
                m
            },
            cost: tiny_cost(),
        };
        let tasks: Vec<Task> = (0..8).map(|i| Task::map(i, 10)).collect();
        let fast = simulate(
            &healthy,
            SchedulerPolicy::Vanilla,
            std::slice::from_ref(&tasks),
        );
        let slow = simulate(&degraded, SchedulerPolicy::Vanilla, &[tasks]);
        assert!(slow.makespan > fast.makespan);
    }

    #[test]
    fn empty_stage_list_is_fine() {
        let report = simulate(&cluster(2), SchedulerPolicy::Vanilla, &[]);
        assert_eq!(report.makespan, 0.0);
        assert_eq!(report.tasks_run, 0);
    }

    #[test]
    #[should_panic(expected = "unknown machine")]
    fn unknown_preferred_machine_panics() {
        let _ = simulate(
            &cluster(1),
            SchedulerPolicy::Vanilla,
            &[vec![Task::map(0, 1).prefer(MachineId(9))]],
        );
    }

    #[test]
    fn paper_cluster_shape() {
        let spec = ClusterSpec::paper_cluster();
        assert_eq!(spec.len(), 24);
        let with = ClusterSpec::with_stragglers(3, 0.5);
        assert_eq!(with.machines.iter().filter(|m| m.speed < 1.0).count(), 3);
    }

    #[test]
    fn empty_fault_plan_is_bit_identical_to_fault_free() {
        let spec = cluster(3);
        let stages: Vec<Vec<Task>> = vec![
            (0..7).map(|i| Task::map(i, 10 + i)).collect(),
            (0..4)
                .map(|i| {
                    Task::reduce(100 + i, 25).prefer(MachineId(usize::try_from(i % 3).unwrap()))
                })
                .collect(),
        ];
        for policy in [
            SchedulerPolicy::Vanilla,
            SchedulerPolicy::MemoizationAware,
            SchedulerPolicy::hybrid_default(),
        ] {
            let plain = simulate(&spec, policy, &stages);
            let faulted = simulate_with_faults(&spec, policy, &stages, &FaultPlan::none());
            assert_eq!(plain, faulted);
            assert_eq!(plain.retried_tasks, 0);
            assert_eq!(plain.recovery_seconds, 0.0);
        }
    }

    #[test]
    fn crash_mid_stage_retries_on_survivors() {
        // One 10s task per machine; machine 1 dies at t=4 with its task
        // half-run. The task retries on a survivor, so the stage stretches
        // and the lost 4 seconds are metered as recovery.
        let spec = cluster(3);
        let tasks: Vec<Task> = (0..3)
            .map(|i| Task::map(i, 10).prefer(MachineId(usize::try_from(i).unwrap())))
            .collect();
        let plan = FaultPlan::none().crash(1, 4.0);
        let report = simulate_with_faults(&spec, SchedulerPolicy::Vanilla, &[tasks], &plan);
        assert_eq!(report.retried_tasks, 1);
        assert_eq!(report.recovery_seconds, 4.0);
        // The retry re-dispatches at the crash time onto an idle survivor
        // slot: 10 fresh seconds from t=4.
        assert_eq!(report.makespan, 14.0);
        // Busy time: two clean 10s runs + 4 wasted + 10 rerun.
        assert_eq!(report.busy_seconds, 34.0);
    }

    #[test]
    fn crash_repoints_memo_aware_preferences() {
        // Strict placement would wait forever for dead machine 1; the
        // preference follows the replica chain to machine 2 instead.
        let spec = cluster(3);
        let stages = vec![
            vec![Task::map(0, 10)],
            vec![
                Task::reduce(1, 10).prefer(MachineId(1)),
                Task::reduce(2, 10).prefer(MachineId(2)),
            ],
        ];
        let plan = FaultPlan::none().crash(1, 5.0);
        let report = simulate_with_faults(&spec, SchedulerPolicy::MemoizationAware, &stages, &plan);
        assert_eq!(report.tasks_run, 3);
        assert!(report.makespan >= 20.0);
    }

    #[test]
    fn dead_machine_stays_dead_across_stages() {
        let spec = cluster(2);
        let stages = vec![vec![Task::map(0, 10)], vec![Task::reduce(1, 10)]];
        // Machine 0 dies during stage 1; stage 2 must run on machine 1.
        let plan = FaultPlan::none().crash(0, 2.0);
        let report = simulate_with_faults(&spec, SchedulerPolicy::Vanilla, &stages, &plan);
        assert_eq!(report.retried_tasks, 1);
        assert_eq!(report.stages.len(), 2);
        assert_eq!(report.tasks_run, 2);
    }

    #[test]
    fn speculation_beats_a_straggler() {
        // Two machines, one very slow. The straggler's 10s task would take
        // 100s; with speculation a duplicate launches on the idle fast
        // machine and wins.
        let spec = ClusterSpec {
            machines: vec![MachineSpec::healthy(), MachineSpec::healthy()],
            cost: tiny_cost(),
        };
        let tasks = vec![Task::map(0, 10), Task::map(1, 10)];
        let plan = FaultPlan::none().slow(0, 0.1).with_speculation();
        let slow_plan = FaultPlan::none().slow(0, 0.1);
        let with = simulate_with_faults(
            &spec,
            SchedulerPolicy::Vanilla,
            std::slice::from_ref(&tasks),
            &plan,
        );
        let without = simulate_with_faults(&spec, SchedulerPolicy::Vanilla, &[tasks], &slow_plan);
        assert!(with.speculative_tasks >= 1);
        assert!(
            with.makespan < without.makespan,
            "speculation ({}) should beat the straggler ({})",
            with.makespan,
            without.makespan
        );
        assert!(with.recovery_seconds > 0.0, "the loser's run is waste");
    }

    #[test]
    #[should_panic(expected = "max_attempts")]
    fn attempt_budget_is_enforced() {
        // Both machines die mid-run; with max_attempts = 1 the first kill
        // already exceeds the budget.
        let spec = cluster(2);
        let tasks = vec![Task::map(0, 100), Task::map(1, 100)];
        let plan = FaultPlan::none()
            .crash(0, 5.0)
            .crash(1, 6.0)
            .with_max_attempts(1);
        let _ = simulate_with_faults(&spec, SchedulerPolicy::Vanilla, &[tasks], &plan);
    }

    #[test]
    #[should_panic(expected = "unknown machine")]
    fn crash_on_unknown_machine_panics() {
        let plan = FaultPlan::none().crash(9, 1.0);
        let _ = simulate_with_faults(
            &cluster(1),
            SchedulerPolicy::Vanilla,
            &[vec![Task::map(0, 1)]],
            &plan,
        );
    }
}
