//! The discrete-event list-scheduling simulator.
//!
//! Tasks are organized in *stages* with a barrier between consecutive
//! stages (MapReduce's map → shuffle → reduce structure). Within a stage,
//! whenever a slot frees up the configured [`Scheduler`] picks a pending
//! task for it; the task's duration follows the [`CostModel`] given the
//! machine's speed and whether the task's input is local.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::machine::{Machine, MachineId, MachineSpec};
use crate::scheduler::{build_scheduler, PendingTask, Scheduler, SchedulerPolicy};
use crate::task::{SlotKind, Task};
use crate::topology::CostModel;

/// A cluster to simulate: workers plus the cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Worker machines (the master is not modeled as a compute resource).
    pub machines: Vec<MachineSpec>,
    /// Unit conversion rates.
    pub cost: CostModel,
}

impl ClusterSpec {
    /// The paper's evaluation cluster: 24 healthy workers (§7.1), with the
    /// default cost model.
    pub fn paper_cluster() -> Self {
        ClusterSpec {
            machines: vec![MachineSpec::healthy(); 24],
            cost: CostModel::paper_defaults(),
        }
    }

    /// A paper cluster where `count` workers straggle at the given relative
    /// speed.
    pub fn with_stragglers(count: usize, speed: f64) -> Self {
        let mut spec = Self::paper_cluster();
        for m in spec.machines.iter_mut().take(count) {
            *m = MachineSpec::straggler(speed);
        }
        spec
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// True when the cluster has no workers.
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }
}

/// Per-stage outcome.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageReport {
    /// Simulated seconds from stage start to the last task completion.
    pub duration: f64,
    /// Sum of task durations (active machine time) in this stage.
    pub busy_seconds: f64,
    /// Tasks that ran off their preferred machine.
    pub remote_placements: u64,
    /// Bytes fetched over the network by remote placements.
    pub remote_bytes: u64,
    /// Tasks executed.
    pub tasks: usize,
}

/// Whole-run outcome.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimReport {
    /// End-to-end simulated runtime across all stages.
    pub makespan: f64,
    /// Per-stage breakdown, in input order.
    pub stages: Vec<StageReport>,
    /// Total tasks executed.
    pub tasks_run: usize,
    /// Total active machine seconds.
    pub busy_seconds: f64,
    /// Placement-preferring tasks migrated by the hybrid scheduler.
    pub migrations: u64,
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    payload: Payload,
}

#[derive(Debug, Clone, Copy)]
enum Payload {
    Done { machine: usize, kind: SlotKind },
    Retry,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, seq).
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct SlotState {
    free_map: usize,
    free_reduce: usize,
}

impl SlotState {
    fn free(&mut self, kind: SlotKind) -> &mut usize {
        match kind {
            SlotKind::Map => &mut self.free_map,
            SlotKind::Reduce => &mut self.free_reduce,
        }
    }
}

/// Simulates `stages` of tasks on `spec` under `policy`.
///
/// Each inner `Vec<Task>` is released only after the previous stage fully
/// completes (the shuffle barrier).
///
/// # Panics
///
/// Panics if a task prefers a machine id outside the cluster, or if the
/// cluster has no workers while tasks exist — both are host-engine bugs.
pub fn simulate(spec: &ClusterSpec, policy: SchedulerPolicy, stages: &[Vec<Task>]) -> SimReport {
    let total_tasks: usize = stages.iter().map(Vec::len).sum();
    assert!(
        total_tasks == 0 || !spec.is_empty(),
        "cannot simulate {total_tasks} tasks on an empty cluster"
    );
    for task in stages.iter().flatten() {
        if let Some(MachineId(m)) = task.preferred {
            assert!(
                m < spec.len(),
                "task {:?} prefers unknown machine m{m}",
                task.id
            );
        }
    }

    let machines: Vec<Machine> = spec
        .machines
        .iter()
        .enumerate()
        .map(|(i, &spec)| Machine {
            id: MachineId(i),
            spec,
        })
        .collect();
    let mut scheduler = build_scheduler(policy);

    let mut report = SimReport {
        stages: Vec::with_capacity(stages.len()),
        ..Default::default()
    };
    let mut now = 0.0f64;

    for stage_tasks in stages {
        let stage_start = now;
        let mut stage = StageReport {
            tasks: stage_tasks.len(),
            ..Default::default()
        };
        let mut pending: Vec<PendingTask> = stage_tasks
            .iter()
            .cloned()
            .map(|task| PendingTask {
                task,
                enqueued_at: stage_start,
            })
            .collect();
        let mut slots: Vec<SlotState> = machines
            .iter()
            .map(|m| SlotState {
                free_map: m.spec.map_slots,
                free_reduce: m.spec.reduce_slots,
            })
            .collect();
        let mut events: BinaryHeap<Event> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut running = 0usize;
        let mut retry_scheduled = false;

        let dispatch = |now: f64,
                        pending: &mut Vec<PendingTask>,
                        slots: &mut Vec<SlotState>,
                        events: &mut BinaryHeap<Event>,
                        seq: &mut u64,
                        running: &mut usize,
                        stage: &mut StageReport,
                        scheduler: &mut Box<dyn Scheduler>| {
            loop {
                let mut assigned = false;
                for machine in &machines {
                    for kind in [SlotKind::Map, SlotKind::Reduce] {
                        while *slots[machine.id.0].free(kind) > 0 && !pending.is_empty() {
                            let Some(i) = scheduler.choose(now, machine, kind, pending) else {
                                break;
                            };
                            let picked = pending.remove(i);
                            let local = picked.task.preferred.is_none_or(|p| p == machine.id);
                            if !local {
                                stage.remote_placements += 1;
                                stage.remote_bytes += picked.task.input_bytes;
                            }
                            let duration = spec.cost.task_seconds(
                                picked.task.work,
                                picked.task.input_bytes,
                                machine.spec.speed,
                                local,
                            );
                            stage.busy_seconds += duration;
                            *slots[machine.id.0].free(kind) -= 1;
                            *seq += 1;
                            events.push(Event {
                                time: now + duration,
                                seq: *seq,
                                payload: Payload::Done {
                                    machine: machine.id.0,
                                    kind,
                                },
                            });
                            *running += 1;
                            assigned = true;
                        }
                    }
                }
                if !assigned {
                    break;
                }
            }
        };

        dispatch(
            now,
            &mut pending,
            &mut slots,
            &mut events,
            &mut seq,
            &mut running,
            &mut stage,
            &mut scheduler,
        );
        schedule_retry(
            policy,
            now,
            &pending,
            running,
            &mut retry_scheduled,
            &mut events,
            &mut seq,
        );

        // The stage ends at the last task completion; a pending hybrid
        // retry wake-up past that point must not stretch the stage.
        let mut last_done = stage_start;
        while let Some(event) = events.pop() {
            now = event.time;
            match event.payload {
                Payload::Done { machine, kind } => {
                    *slots[machine].free(kind) += 1;
                    running -= 1;
                    last_done = now;
                }
                Payload::Retry => {
                    retry_scheduled = false;
                }
            }
            if running == 0 && pending.is_empty() {
                break;
            }
            dispatch(
                now,
                &mut pending,
                &mut slots,
                &mut events,
                &mut seq,
                &mut running,
                &mut stage,
                &mut scheduler,
            );
            schedule_retry(
                policy,
                now,
                &pending,
                running,
                &mut retry_scheduled,
                &mut events,
                &mut seq,
            );
        }

        assert!(
            pending.is_empty(),
            "scheduler deadlock: {} tasks stranded (policy {:?})",
            pending.len(),
            policy
        );
        now = last_done;
        stage.duration = now - stage_start;
        report.stages.push(stage);
    }

    report.makespan = now;
    report.tasks_run = total_tasks;
    report.busy_seconds = report.stages.iter().map(|s| s.busy_seconds).sum();
    report.migrations = scheduler.migrations();
    report
}

/// Ensures the hybrid scheduler gets a wake-up once its migration threshold
/// expires even if no completion event occurs in the meantime.
#[allow(clippy::too_many_arguments)]
fn schedule_retry(
    policy: SchedulerPolicy,
    now: f64,
    pending: &[PendingTask],
    running: usize,
    retry_scheduled: &mut bool,
    events: &mut BinaryHeap<Event>,
    seq: &mut u64,
) {
    let SchedulerPolicy::Hybrid {
        migration_threshold,
    } = policy
    else {
        return;
    };
    if pending.is_empty() || *retry_scheduled {
        return;
    }
    let earliest = pending
        .iter()
        .map(|p| p.enqueued_at + migration_threshold)
        .fold(f64::INFINITY, f64::min);
    // A wake-up is only useful when the oldest pending task has NOT yet
    // crossed the migration threshold: once it has, it is already eligible
    // and only a freed slot (a Done event) can unblock it — re-dispatching
    // on a timer would spin the event loop.
    let _ = running;
    if earliest > now {
        *seq += 1;
        events.push(Event {
            time: earliest,
            seq: *seq,
            payload: Payload::Retry,
        });
        *retry_scheduled = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cost() -> CostModel {
        CostModel {
            work_per_second: 1.0,
            local_bytes_per_second: 1.0,
            remote_bytes_per_second: 0.5,
            task_startup_seconds: 0.0,
        }
    }

    fn cluster(n: usize) -> ClusterSpec {
        ClusterSpec {
            machines: vec![MachineSpec::healthy(); n],
            cost: tiny_cost(),
        }
    }

    #[test]
    fn single_task_runs_for_its_duration() {
        let spec = cluster(1);
        let report = simulate(&spec, SchedulerPolicy::Vanilla, &[vec![Task::map(0, 10)]]);
        assert_eq!(report.makespan, 10.0);
        assert_eq!(report.tasks_run, 1);
        assert_eq!(report.busy_seconds, 10.0);
    }

    #[test]
    fn parallel_tasks_share_the_cluster() {
        // 4 machines × 2 map slots = 8-way parallelism; 16 unit tasks of
        // 10s take exactly two waves.
        let spec = cluster(4);
        let tasks: Vec<Task> = (0..16).map(|i| Task::map(i, 10)).collect();
        let report = simulate(&spec, SchedulerPolicy::Vanilla, &[tasks]);
        assert_eq!(report.makespan, 20.0);
        assert_eq!(report.busy_seconds, 160.0);
    }

    #[test]
    fn stages_are_barriers() {
        let spec = cluster(2);
        let report = simulate(
            &spec,
            SchedulerPolicy::Vanilla,
            &[vec![Task::map(0, 5)], vec![Task::reduce(1, 7)]],
        );
        assert_eq!(report.makespan, 12.0);
        assert_eq!(report.stages.len(), 2);
        assert_eq!(report.stages[0].duration, 5.0);
        assert_eq!(report.stages[1].duration, 7.0);
    }

    #[test]
    fn remote_placement_pays_transfer_cost() {
        let spec = cluster(2);
        // Vanilla ignores reduce preferences: the task may land anywhere,
        // but with 1 task and FIFO it lands on machine 0 while preferring
        // machine 1 → remote read at 0.5 B/s.
        let task = Task::reduce(0, 10).prefer(MachineId(1)).with_input_bytes(5);
        let report = simulate(&spec, SchedulerPolicy::Vanilla, &[vec![task.clone()]]);
        assert_eq!(report.makespan, 10.0 + 5.0 / 0.5);
        assert_eq!(report.stages[0].remote_placements, 1);

        // The memoization-aware policy waits for machine 1 → local read.
        let report = simulate(&spec, SchedulerPolicy::MemoizationAware, &[vec![task]]);
        assert_eq!(report.makespan, 10.0 + 5.0 / 1.0);
        assert_eq!(report.stages[0].remote_placements, 0);
    }

    #[test]
    fn memo_aware_waits_for_busy_preferred_machine() {
        let mut spec = cluster(2);
        spec.machines[1].reduce_slots = 1;
        // A long filler occupies machine 1's only reduce slot; the
        // preferring task must wait for it.
        let filler = Task::reduce(0, 100).prefer(MachineId(1));
        let preferrer = Task::reduce(1, 10).prefer(MachineId(1));
        let report = simulate(
            &spec,
            SchedulerPolicy::MemoizationAware,
            &[vec![filler, preferrer]],
        );
        assert_eq!(report.makespan, 110.0);
    }

    #[test]
    fn hybrid_migrates_off_stragglers() {
        let mut spec = cluster(2);
        spec.machines[1].reduce_slots = 1;
        let filler = Task::reduce(0, 100).prefer(MachineId(1));
        let preferrer = Task::reduce(1, 10).prefer(MachineId(1)).with_input_bytes(2);
        let report = simulate(
            &spec,
            SchedulerPolicy::Hybrid {
                migration_threshold: 5.0,
            },
            &[vec![filler, preferrer]],
        );
        // The preferring task migrates to machine 0 at ~t=5 and finishes at
        // ~t=19 (10 compute + 4 remote read), well before the filler.
        assert!(report.makespan < 110.0, "makespan = {}", report.makespan);
        assert_eq!(report.migrations, 1);
        assert_eq!(report.stages[0].remote_bytes, 2);
    }

    #[test]
    fn stragglers_stretch_vanilla_makespan() {
        let healthy = ClusterSpec {
            machines: vec![MachineSpec::healthy(); 4],
            cost: tiny_cost(),
        };
        let degraded = ClusterSpec {
            machines: {
                let mut m = vec![MachineSpec::healthy(); 4];
                m[0] = MachineSpec::straggler(0.1);
                m
            },
            cost: tiny_cost(),
        };
        let tasks: Vec<Task> = (0..8).map(|i| Task::map(i, 10)).collect();
        let fast = simulate(
            &healthy,
            SchedulerPolicy::Vanilla,
            std::slice::from_ref(&tasks),
        );
        let slow = simulate(&degraded, SchedulerPolicy::Vanilla, &[tasks]);
        assert!(slow.makespan > fast.makespan);
    }

    #[test]
    fn empty_stage_list_is_fine() {
        let report = simulate(&cluster(2), SchedulerPolicy::Vanilla, &[]);
        assert_eq!(report.makespan, 0.0);
        assert_eq!(report.tasks_run, 0);
    }

    #[test]
    #[should_panic(expected = "unknown machine")]
    fn unknown_preferred_machine_panics() {
        let _ = simulate(
            &cluster(1),
            SchedulerPolicy::Vanilla,
            &[vec![Task::map(0, 1).prefer(MachineId(9))]],
        );
    }

    #[test]
    fn paper_cluster_shape() {
        let spec = ClusterSpec::paper_cluster();
        assert_eq!(spec.len(), 24);
        let with = ClusterSpec::with_stragglers(3, 0.5);
        assert_eq!(with.machines.iter().filter(|m| m.speed < 1.0).count(), 3);
    }
}
