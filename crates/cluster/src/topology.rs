//! The cost model translating modeled work and bytes into simulated time.

/// Conversion rates between the engine's abstract units and seconds.
///
/// The absolute values are calibrated loosely to the paper's 2014-era
/// cluster (AMD Opteron-252 workers, GbE network); only *ratios* influence
/// the reproduced result shapes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Work units a healthy (speed = 1.0) machine executes per second.
    pub work_per_second: f64,
    /// Bytes per second when reading input present on the local machine
    /// (memory / local disk).
    pub local_bytes_per_second: f64,
    /// Bytes per second when fetching input from a remote machine.
    pub remote_bytes_per_second: f64,
    /// Fixed per-task startup latency in seconds (JVM spawn, heartbeat
    /// round-trips in Hadoop; small but significant for tiny tasks).
    pub task_startup_seconds: f64,
}

impl CostModel {
    /// Defaults matching the reproduction's calibration (see DESIGN.md §5).
    pub fn paper_defaults() -> Self {
        CostModel {
            work_per_second: 50_000.0,
            local_bytes_per_second: 400.0 * (1 << 20) as f64, // ~400 MB/s
            remote_bytes_per_second: 100.0 * (1 << 20) as f64, // ~GbE
            task_startup_seconds: 0.5,
        }
    }

    /// Simulated duration of a task on a machine of the given relative
    /// speed, reading `input_bytes` either locally or remotely.
    pub fn task_seconds(&self, work: u64, input_bytes: u64, speed: f64, local: bool) -> f64 {
        debug_assert!(speed > 0.0);
        let compute = work as f64 / (self.work_per_second * speed);
        let bw = if local {
            self.local_bytes_per_second
        } else {
            self.remote_bytes_per_second
        };
        let io = input_bytes as f64 / bw;
        self.task_startup_seconds + compute + io
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_reads_cost_more() {
        let cm = CostModel::paper_defaults();
        let local = cm.task_seconds(1_000, 1 << 30, 1.0, true);
        let remote = cm.task_seconds(1_000, 1 << 30, 1.0, false);
        assert!(remote > local);
    }

    #[test]
    fn stragglers_take_longer() {
        let cm = CostModel::paper_defaults();
        let fast = cm.task_seconds(100_000, 0, 1.0, true);
        let slow = cm.task_seconds(100_000, 0, 0.25, true);
        assert!(slow > 3.0 * fast - cm.task_startup_seconds * 4.0);
    }

    #[test]
    fn startup_dominates_empty_tasks() {
        let cm = CostModel::paper_defaults();
        assert_eq!(cm.task_seconds(0, 0, 1.0, true), cm.task_startup_seconds);
    }
}
