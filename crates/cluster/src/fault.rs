//! Deterministic fault plans consumed by the simulator.
//!
//! A [`FaultPlan`] describes *when* machines crash and *which* machines run
//! slow, plus how the simulator recovers: attempts killed by a crash are
//! retried on surviving machines (bounded by [`FaultPlan::max_attempts`]),
//! and — when speculation is enabled — attempts stuck on slowed machines
//! are duplicated on faster ones with the first finisher winning (the
//! paper's §6 hybrid straggler mitigation).
//!
//! Plans are plain data: the same plan against the same task stages yields
//! the same schedule, so every injected fault is fully reproducible.

/// A machine crash at an absolute simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineCrash {
    /// Index of the machine that dies.
    pub machine: usize,
    /// Simulated seconds (since simulation start) at which it dies.
    pub at_seconds: f64,
}

/// A machine running at a fraction of its configured speed for the whole
/// simulation (a persistent straggler).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slowdown {
    /// Index of the affected machine.
    pub machine: usize,
    /// Multiplier applied to the machine's speed (`0 < factor <= 1`).
    pub factor: f64,
}

/// A deterministic fault-injection plan for one simulation.
///
/// The empty plan ([`FaultPlan::none`], also the `Default`) makes
/// [`crate::simulate_with_faults`] behave exactly like [`crate::simulate`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Machines that crash, with their crash times. A crashed machine stays
    /// dead for the rest of the simulation (across stage barriers).
    pub crashes: Vec<MachineCrash>,
    /// Machines that straggle for the whole simulation.
    pub slowdowns: Vec<Slowdown>,
    /// Attempts allowed per task (first run plus crash retries) before the
    /// simulator declares the run unrecoverable. Must be at least 1.
    pub max_attempts: u32,
    /// Speculatively duplicate attempts running on straggling machines onto
    /// faster idle ones; the first finisher wins.
    pub speculation: bool,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: no crashes, no slowdowns, no speculation.
    pub fn none() -> Self {
        FaultPlan {
            crashes: Vec::new(),
            slowdowns: Vec::new(),
            max_attempts: 3,
            speculation: false,
        }
    }

    /// True when the plan cannot change a simulation's behaviour.
    pub fn is_trivial(&self) -> bool {
        self.crashes.is_empty() && self.slowdowns.is_empty() && !self.speculation
    }

    /// Adds a machine crash. Builder-style.
    pub fn crash(mut self, machine: usize, at_seconds: f64) -> Self {
        self.crashes.push(MachineCrash {
            machine,
            at_seconds,
        });
        self
    }

    /// Adds a persistent slowdown. Builder-style.
    pub fn slow(mut self, machine: usize, factor: f64) -> Self {
        self.slowdowns.push(Slowdown { machine, factor });
        self
    }

    /// Sets the per-task attempt bound. Builder-style.
    ///
    /// # Panics
    ///
    /// Panics if `attempts` is zero.
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        assert!(attempts >= 1, "a task needs at least one attempt");
        self.max_attempts = attempts;
        self
    }

    /// Enables speculative re-execution of straggling attempts.
    /// Builder-style.
    pub fn with_speculation(mut self) -> Self {
        self.speculation = true;
        self
    }

    /// A reproducible pseudo-random plan over a `machines`-worker cluster:
    /// up to two crashes within `horizon_seconds` and up to two slowdowns,
    /// all derived from `seed`. At least one machine is always spared so
    /// recovery has somewhere to run.
    pub fn seeded(seed: u64, machines: usize, horizon_seconds: f64) -> Self {
        assert!(machines > 0, "need at least one machine");
        assert!(
            horizon_seconds.is_finite() && horizon_seconds > 0.0,
            "horizon must be positive"
        );
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut plan = FaultPlan::none();
        let crashes = (next(&mut state) % 3).min(machines as u64 - 1);
        let mut crashed = Vec::new();
        for _ in 0..crashes {
            let machine = usize::try_from(next(&mut state) % machines as u64)
                .expect("bounded by machine count");
            if crashed.contains(&machine) {
                continue;
            }
            crashed.push(machine);
            // Strictly inside (0, horizon).
            let frac = (1 + next(&mut state) % 998) as f64 / 1000.0;
            plan = plan.crash(machine, frac * horizon_seconds);
        }
        let slowdowns = next(&mut state) % 3;
        for _ in 0..slowdowns {
            let machine = usize::try_from(next(&mut state) % machines as u64)
                .expect("bounded by machine count");
            if crashed.contains(&machine) {
                continue;
            }
            // Factors in [0.25, 1.0).
            let factor = 0.25 + 0.75 * ((next(&mut state) % 1000) as f64 / 1000.0);
            plan = plan.slow(machine, factor);
        }
        if next(&mut state).is_multiple_of(2) {
            plan = plan.with_speculation();
        }
        plan
    }
}

/// xorshift64: a tiny deterministic generator so the cluster crate needs no
/// external randomness.
fn next(state: &mut u64) -> u64 {
    let mut x = *state | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_trivial() {
        assert!(FaultPlan::none().is_trivial());
        assert!(FaultPlan::default().is_trivial());
        assert!(!FaultPlan::none().crash(0, 1.0).is_trivial());
        assert!(!FaultPlan::none().slow(0, 0.5).is_trivial());
        assert!(!FaultPlan::none().with_speculation().is_trivial());
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultPlan::seeded(42, 8, 100.0);
        let b = FaultPlan::seeded(42, 8, 100.0);
        assert_eq!(a, b);
        // Different seeds eventually differ.
        let other = (0..32)
            .map(|s| FaultPlan::seeded(s, 8, 100.0))
            .collect::<Vec<_>>();
        assert!(other.iter().any(|p| *p != a) || !a.is_trivial());
    }

    #[test]
    fn seeded_plans_spare_a_machine() {
        for seed in 0..64 {
            let plan = FaultPlan::seeded(seed, 2, 50.0);
            assert!(plan.crashes.len() < 2, "seed {seed} kills the cluster");
            for c in &plan.crashes {
                assert!(c.machine < 2);
                assert!(c.at_seconds > 0.0 && c.at_seconds < 50.0);
            }
            for s in &plan.slowdowns {
                assert!(s.factor >= 0.25 && s.factor < 1.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn zero_attempts_rejected() {
        let _ = FaultPlan::none().with_max_attempts(0);
    }
}
