//! Worker machines: slots and relative speed.

use std::fmt;

/// Identifies a worker machine in the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MachineId(pub usize);

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Static description of one worker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineSpec {
    /// Concurrent Map tasks this worker can run.
    pub map_slots: usize,
    /// Concurrent Reduce (contraction + reduce) tasks this worker can run.
    pub reduce_slots: usize,
    /// Relative execution speed; `1.0` is a healthy worker, values below
    /// `1.0` model stragglers (§6: tasks on loaded machines run slowly).
    pub speed: f64,
}

impl MachineSpec {
    /// A healthy worker with the paper-like 2 map + 2 reduce slots.
    pub fn healthy() -> Self {
        MachineSpec {
            map_slots: 2,
            reduce_slots: 2,
            speed: 1.0,
        }
    }

    /// A straggling worker running at `speed` (< 1.0) of a healthy one.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not strictly positive and finite.
    pub fn straggler(speed: f64) -> Self {
        assert!(
            speed.is_finite() && speed > 0.0,
            "straggler speed must be positive"
        );
        MachineSpec {
            speed,
            ..Self::healthy()
        }
    }

    /// This worker running at `factor` of its current speed (fault-plan
    /// slowdowns compose multiplicatively with any configured straggling).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive and finite.
    pub fn slowed_by(self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "slowdown factor must be positive"
        );
        MachineSpec {
            speed: self.speed * factor,
            ..self
        }
    }

    /// Slots available for the given kind.
    pub fn slots(&self, kind: crate::task::SlotKind) -> usize {
        match kind {
            crate::task::SlotKind::Map => self.map_slots,
            crate::task::SlotKind::Reduce => self.reduce_slots,
        }
    }
}

impl Default for MachineSpec {
    fn default() -> Self {
        Self::healthy()
    }
}

/// Runtime view of a machine handed to schedulers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Machine {
    /// The machine's identity.
    pub id: MachineId,
    /// Its static description.
    pub spec: MachineSpec,
}

impl Machine {
    /// True if this machine runs slower than a healthy worker.
    pub fn is_straggler(&self) -> bool {
        self.spec.speed < 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::SlotKind;

    #[test]
    fn healthy_matches_paper_defaults() {
        let spec = MachineSpec::healthy();
        assert_eq!(spec.map_slots, 2);
        assert_eq!(spec.reduce_slots, 2);
        assert_eq!(spec.speed, 1.0);
        assert_eq!(spec.slots(SlotKind::Map), 2);
        assert_eq!(spec.slots(SlotKind::Reduce), 2);
    }

    #[test]
    fn straggler_is_detected() {
        let m = Machine {
            id: MachineId(3),
            spec: MachineSpec::straggler(0.25),
        };
        assert!(m.is_straggler());
        assert!(!Machine {
            id: MachineId(0),
            spec: MachineSpec::healthy()
        }
        .is_straggler());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_speed_is_rejected() {
        let _ = MachineSpec::straggler(0.0);
    }

    #[test]
    fn slowdowns_compose_multiplicatively() {
        let spec = MachineSpec::straggler(0.5).slowed_by(0.5);
        assert_eq!(spec.speed, 0.25);
        assert_eq!(spec.map_slots, 2, "slots are unaffected");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_slowdown_factor_is_rejected() {
        let _ = MachineSpec::healthy().slowed_by(0.0);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(MachineId(7).to_string(), "m7");
    }
}
