//! Shared simulated-cluster clock.
//!
//! The simulator itself is stateless — each [`simulate`](crate::simulate)
//! call reports a makespan and forgets it. A long-running service that
//! multiplexes many jobs over one simulated cluster needs the opposite: a
//! single clock that accumulates virtual time as runs complete, so
//! "cluster uptime" and per-tenant run timestamps come from one place and
//! stay identical across host thread counts.
//!
//! [`SimClock`] is that accumulator; [`SharedClock`] is the cloneable
//! handle engines hold. Virtual seconds only ever advance by explicit
//! [`SharedClock::advance`] calls (there is no wall-clock coupling), so a
//! run schedule replayed with the same inputs advances the clock through
//! the same sequence of instants — bit-identical, because the f64 sums
//! happen in the same order.

use std::sync::{Arc, Mutex};

/// Accumulated virtual time of a simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimClock {
    /// Virtual seconds elapsed since the cluster came up.
    pub seconds: f64,
    /// Number of advances applied (one per completed run).
    pub advances: u64,
}

impl SimClock {
    /// A clock at virtual time zero.
    #[must_use]
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Advances the clock by `seconds` of virtual time (negative or
    /// non-finite advances are ignored — a run cannot take the cluster
    /// back in time).
    pub fn advance(&mut self, seconds: f64) {
        if seconds.is_finite() && seconds > 0.0 {
            self.seconds += seconds;
        }
        self.advances += 1;
    }
}

/// Cloneable handle to a [`SimClock`] shared by every job on one simulated
/// cluster. All clones advance and read the same underlying clock.
#[derive(Debug, Clone, Default)]
pub struct SharedClock {
    inner: Arc<Mutex<SimClock>>,
}

impl SharedClock {
    /// A fresh shared clock at virtual time zero.
    #[must_use]
    pub fn new() -> Self {
        SharedClock::default()
    }

    /// Advances the shared clock by `seconds` of virtual time.
    pub fn advance(&self, seconds: f64) {
        self.lock().advance(seconds);
    }

    /// Current virtual time in seconds.
    #[must_use]
    pub fn seconds(&self) -> f64 {
        self.lock().seconds
    }

    /// Number of advances applied so far.
    #[must_use]
    pub fn advances(&self) -> u64 {
        self.lock().advances
    }

    /// A point-in-time copy of the clock state.
    #[must_use]
    pub fn snapshot(&self) -> SimClock {
        *self.lock()
    }

    /// Reimposes a previously captured [`snapshot`] on this clock,
    /// overwriting the current state. Checkpoint restore uses this to put
    /// a fresh engine's clock exactly where the crashed one stood, so
    /// subsequent advances replay through the same sequence of instants.
    ///
    /// [`snapshot`]: SharedClock::snapshot
    pub fn restore(&self, state: SimClock) {
        *self.lock() = state;
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SimClock> {
        self.inner.lock().expect("sim clock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_accumulate() {
        let clock = SharedClock::new();
        clock.advance(1.5);
        clock.advance(2.5);
        assert_eq!(clock.seconds(), 4.0);
        assert_eq!(clock.advances(), 2);
    }

    #[test]
    fn clones_share_state() {
        let a = SharedClock::new();
        let b = a.clone();
        a.advance(3.0);
        assert_eq!(b.seconds(), 3.0);
        b.advance(1.0);
        assert_eq!(
            a.snapshot(),
            SimClock {
                seconds: 4.0,
                advances: 2
            }
        );
    }

    #[test]
    fn restore_reimposes_a_snapshot() {
        let crashed = SharedClock::new();
        crashed.advance(2.5);
        crashed.advance(0.5);
        let image = crashed.snapshot();

        let fresh = SharedClock::new();
        fresh.restore(image);
        assert_eq!(fresh.snapshot(), image);
        // Replaying the same advance lands both clocks on the same state.
        crashed.advance(1.25);
        fresh.advance(1.25);
        assert_eq!(fresh.snapshot(), crashed.snapshot());
    }

    #[test]
    fn bogus_advances_count_but_do_not_move_time() {
        let clock = SharedClock::new();
        clock.advance(-5.0);
        clock.advance(f64::NAN);
        assert_eq!(clock.seconds(), 0.0);
        assert_eq!(clock.advances(), 2);
    }
}
