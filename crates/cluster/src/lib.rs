//! # slider-cluster — discrete-event cluster simulation substrate
//!
//! The Slider paper (§7.1) evaluates on a 25-machine Hadoop cluster (one
//! master plus 24 workers) and reports two metrics: **work** (the sum of
//! active time over all tasks) and **time** (end-to-end job runtime). This
//! crate reproduces the *time* metric: given the task graph an engine run
//! produces (stages of tasks with modeled costs, data sizes and placement
//! preferences), it simulates list-scheduling those tasks onto a cluster of
//! multi-slot machines and reports the makespan.
//!
//! It also implements the scheduling policies of §6: Hadoop's vanilla
//! scheduler, Slider's memoization-aware scheduler, and the hybrid
//! straggler-mitigating scheduler (Table 1), plus straggler injection.
//!
//! ```
//! use slider_cluster::{ClusterSpec, SchedulerPolicy, SlotKind, Task, simulate};
//!
//! let spec = ClusterSpec::paper_cluster(); // 24 workers, 2+2 slots
//! let maps: Vec<Task> = (0..48).map(|i| Task::map(i, 1_000)).collect();
//! let reduces: Vec<Task> = (0..24).map(|i| Task::reduce(100 + i, 2_000)).collect();
//! let report = simulate(&spec, SchedulerPolicy::Vanilla, &[maps, reduces]);
//! assert!(report.makespan > 0.0);
//! assert_eq!(report.tasks_run, 72);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::cast_possible_truncation)]

mod clock;
mod fault;
mod machine;
mod scheduler;
mod simulator;
mod task;
mod topology;

pub use clock::{SharedClock, SimClock};
pub use fault::{FaultPlan, MachineCrash, Slowdown};
pub use machine::{Machine, MachineId, MachineSpec};
pub use scheduler::{PendingTask, Scheduler, SchedulerPolicy};
pub use simulator::{simulate, simulate_traced, simulate_with_faults, SimReport, StageReport};
pub use task::{SlotKind, Task, TaskId};
pub use topology::CostModel;

/// Convenience re-export: cluster + cost model in one spec.
pub use simulator::ClusterSpec;
