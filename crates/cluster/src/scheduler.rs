//! Scheduling policies (paper §6).
//!
//! * [`SchedulerPolicy::Vanilla`] — Hadoop's stock behaviour: Map tasks
//!   honour input-split locality when possible, Reduce tasks go to the
//!   first available machine with no regard for where memoized state lives.
//! * [`SchedulerPolicy::MemoizationAware`] — Slider's strict policy: a task
//!   with a placement preference waits for a slot on that machine so it can
//!   read memoized sub-computations locally.
//! * [`SchedulerPolicy::Hybrid`] — the straggler-mitigating variant: like
//!   the strict policy, but a task that has waited longer than a threshold
//!   migrates to any free slot, fetching its memoized data remotely.

use crate::machine::Machine;
use crate::task::{SlotKind, Task};

/// A task waiting in the scheduler queue.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingTask {
    /// The task itself.
    pub task: Task,
    /// Simulation time at which the task became runnable.
    pub enqueued_at: f64,
    /// How many earlier attempts of this task were killed by machine
    /// crashes; `0` for a task's first run. Retried tasks jump the queue:
    /// a re-execution blocks the stage barrier, so recovery is
    /// latency-critical (§6).
    pub attempt: u32,
    /// Stage-local index of the task, stable across retries (set by the
    /// simulator; schedulers treat it as opaque).
    pub index: usize,
}

/// Which scheduling policy the simulator applies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulerPolicy {
    /// Stock Hadoop scheduling (locality for maps only).
    Vanilla,
    /// Strict memoization-aware placement (§6).
    MemoizationAware,
    /// Memoization-aware with straggler mitigation: migrate after waiting
    /// `migration_threshold` simulated seconds.
    Hybrid {
        /// Seconds a preferred task may wait before migrating.
        migration_threshold: f64,
    },
}

impl SchedulerPolicy {
    /// The hybrid policy with the default 5-second migration threshold.
    pub fn hybrid_default() -> Self {
        SchedulerPolicy::Hybrid {
            migration_threshold: 5.0,
        }
    }
}

/// Chooses which pending task a newly freed slot should run.
///
/// Implementations are consulted by [`crate::simulate`] whenever a slot of
/// `kind` frees up on `machine`; they return the index into `pending` of
/// the chosen task, or `None` to leave the slot idle until the next event.
pub trait Scheduler: Send {
    /// Picks a task for a free `kind` slot on `machine` at time `now`.
    fn choose(
        &mut self,
        now: f64,
        machine: &Machine,
        kind: SlotKind,
        pending: &[PendingTask],
    ) -> Option<usize>;

    /// Number of placement-preferring tasks this scheduler migrated away
    /// from their preferred machine (Table 1 diagnostics).
    fn migrations(&self) -> u64 {
        0
    }
}

/// Stock Hadoop: maps prefer local splits, reduces are FIFO.
#[derive(Debug, Default)]
pub struct VanillaScheduler;

/// Strict memoization-aware placement.
#[derive(Debug, Default)]
pub struct MemoAwareScheduler;

/// Memoization-aware placement with straggler-driven migration.
#[derive(Debug)]
pub struct HybridScheduler {
    threshold: f64,
    migrations: u64,
}

impl HybridScheduler {
    /// Creates the hybrid scheduler with the given migration threshold in
    /// simulated seconds.
    pub fn new(threshold: f64) -> Self {
        HybridScheduler {
            threshold,
            migrations: 0,
        }
    }
}

/// Builds the scheduler implementing `policy`.
pub fn build_scheduler(policy: SchedulerPolicy) -> Box<dyn Scheduler> {
    match policy {
        SchedulerPolicy::Vanilla => Box::new(VanillaScheduler),
        SchedulerPolicy::MemoizationAware => Box::new(MemoAwareScheduler),
        SchedulerPolicy::Hybrid {
            migration_threshold,
        } => Box::new(HybridScheduler::new(migration_threshold)),
    }
}

fn first_of_kind(pending: &[PendingTask], kind: SlotKind) -> Option<usize> {
    pending.iter().position(|p| p.task.kind == kind)
}

/// First crash-retried task of `kind`, if any. Every policy runs these
/// before fresh tasks and on any machine: the killed attempt's partial run
/// is already sunk cost and the stage barrier waits on the re-execution,
/// so recovery placement trumps memoization locality.
fn first_retry(pending: &[PendingTask], kind: SlotKind) -> Option<usize> {
    pending
        .iter()
        .position(|p| p.task.kind == kind && p.attempt > 0)
}

fn first_preferring(pending: &[PendingTask], kind: SlotKind, machine: &Machine) -> Option<usize> {
    pending
        .iter()
        .position(|p| p.task.kind == kind && p.task.preferred == Some(machine.id))
}

fn first_unpreferring(pending: &[PendingTask], kind: SlotKind) -> Option<usize> {
    pending
        .iter()
        .position(|p| p.task.kind == kind && p.task.preferred.is_none())
}

impl Scheduler for VanillaScheduler {
    fn choose(
        &mut self,
        _now: f64,
        machine: &Machine,
        kind: SlotKind,
        pending: &[PendingTask],
    ) -> Option<usize> {
        if let Some(i) = first_retry(pending, kind) {
            return Some(i);
        }
        match kind {
            // Hadoop's scheduler takes input locality into account for Map
            // tasks: run a split-local map if one is queued.
            SlotKind::Map => {
                first_preferring(pending, kind, machine).or_else(|| first_of_kind(pending, kind))
            }
            // ...but reduces go to the first available machine.
            SlotKind::Reduce => first_of_kind(pending, kind),
        }
    }
}

impl Scheduler for MemoAwareScheduler {
    fn choose(
        &mut self,
        _now: f64,
        machine: &Machine,
        kind: SlotKind,
        pending: &[PendingTask],
    ) -> Option<usize> {
        if let Some(i) = first_retry(pending, kind) {
            return Some(i);
        }
        match kind {
            // Map placement is Hadoop's: locality is best-effort.
            SlotKind::Map => {
                first_preferring(pending, kind, machine).or_else(|| first_of_kind(pending, kind))
            }
            // Reduce placement is strict: wait for the machine holding the
            // memoized state; preference-free tasks fill leftover slots.
            SlotKind::Reduce => first_preferring(pending, kind, machine)
                .or_else(|| first_unpreferring(pending, kind)),
        }
    }
}

impl Scheduler for HybridScheduler {
    fn choose(
        &mut self,
        now: f64,
        machine: &Machine,
        kind: SlotKind,
        pending: &[PendingTask],
    ) -> Option<usize> {
        if let Some(i) = first_retry(pending, kind) {
            return Some(i);
        }
        if kind == SlotKind::Map {
            // Map placement is Hadoop's: locality is best-effort.
            return first_preferring(pending, kind, machine)
                .or_else(|| first_of_kind(pending, kind));
        }
        if let Some(i) =
            first_preferring(pending, kind, machine).or_else(|| first_unpreferring(pending, kind))
        {
            return Some(i);
        }
        // Migration path: steal the longest-waiting task whose preferred
        // machine has not picked it up within the threshold.
        let stale = pending
            .iter()
            .enumerate()
            .filter(|(_, p)| p.task.kind == kind && now - p.enqueued_at >= self.threshold)
            .min_by(|(_, a), (_, b)| {
                a.enqueued_at
                    .partial_cmp(&b.enqueued_at)
                    .expect("finite times")
            })
            .map(|(i, _)| i);
        if stale.is_some() {
            self.migrations += 1;
        }
        stale
    }

    fn migrations(&self) -> u64 {
        self.migrations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{MachineId, MachineSpec};

    fn machine(id: usize) -> Machine {
        Machine {
            id: MachineId(id),
            spec: MachineSpec::healthy(),
        }
    }

    fn pend(task: Task, at: f64) -> PendingTask {
        PendingTask {
            task,
            enqueued_at: at,
            attempt: 0,
            index: 0,
        }
    }

    #[test]
    fn vanilla_reduce_is_fifo() {
        let mut s = VanillaScheduler;
        let pending = vec![
            pend(Task::reduce(0, 10).prefer(MachineId(5)), 0.0),
            pend(Task::reduce(1, 10), 0.0),
        ];
        // Machine 2 is not the preferred machine, but vanilla ignores
        // preferences for reduces and picks the first queued task.
        assert_eq!(
            s.choose(0.0, &machine(2), SlotKind::Reduce, &pending),
            Some(0)
        );
    }

    #[test]
    fn vanilla_map_prefers_local() {
        let mut s = VanillaScheduler;
        let pending = vec![
            pend(Task::map(0, 10).prefer(MachineId(1)), 0.0),
            pend(Task::map(1, 10).prefer(MachineId(2)), 0.0),
        ];
        assert_eq!(s.choose(0.0, &machine(2), SlotKind::Map, &pending), Some(1));
    }

    #[test]
    fn memo_aware_waits_for_preferred_machine() {
        let mut s = MemoAwareScheduler;
        let pending = vec![pend(Task::reduce(0, 10).prefer(MachineId(5)), 0.0)];
        assert_eq!(s.choose(0.0, &machine(2), SlotKind::Reduce, &pending), None);
        assert_eq!(
            s.choose(0.0, &machine(5), SlotKind::Reduce, &pending),
            Some(0)
        );
    }

    #[test]
    fn memo_aware_fills_slots_with_unpreferring_tasks() {
        let mut s = MemoAwareScheduler;
        let pending = vec![
            pend(Task::reduce(0, 10).prefer(MachineId(5)), 0.0),
            pend(Task::reduce(1, 10), 0.0),
        ];
        assert_eq!(
            s.choose(0.0, &machine(2), SlotKind::Reduce, &pending),
            Some(1)
        );
    }

    #[test]
    fn hybrid_migrates_after_threshold() {
        let mut s = HybridScheduler::new(5.0);
        let pending = vec![pend(Task::reduce(0, 10).prefer(MachineId(5)), 0.0)];
        // Before the threshold the task waits like the strict policy.
        assert_eq!(s.choose(1.0, &machine(2), SlotKind::Reduce, &pending), None);
        assert_eq!(s.migrations(), 0);
        // After the threshold it migrates.
        assert_eq!(
            s.choose(6.0, &machine(2), SlotKind::Reduce, &pending),
            Some(0)
        );
        assert_eq!(s.migrations(), 1);
    }

    #[test]
    fn retried_tasks_jump_the_queue_on_any_machine() {
        // A crash-retried reduce preferring a (dead) machine 5 must run
        // immediately, even under the strict memoization-aware policy and
        // even on a non-preferred machine.
        let retried = PendingTask {
            task: Task::reduce(7, 10).prefer(MachineId(5)),
            enqueued_at: 3.0,
            attempt: 1,
            index: 7,
        };
        let fresh = pend(Task::reduce(1, 10), 0.0);
        let pending = vec![fresh, retried];
        let mut memo = MemoAwareScheduler;
        assert_eq!(
            memo.choose(3.0, &machine(2), SlotKind::Reduce, &pending),
            Some(1)
        );
        let mut vanilla = VanillaScheduler;
        assert_eq!(
            vanilla.choose(3.0, &machine(2), SlotKind::Reduce, &pending),
            Some(1)
        );
        let mut hybrid = HybridScheduler::new(5.0);
        assert_eq!(
            hybrid.choose(3.0, &machine(2), SlotKind::Reduce, &pending),
            Some(1)
        );
        assert_eq!(hybrid.migrations(), 0, "retry placement is not a migration");
    }

    #[test]
    fn slot_kinds_are_respected() {
        let mut s = VanillaScheduler;
        let pending = vec![pend(Task::map(0, 10), 0.0)];
        assert_eq!(s.choose(0.0, &machine(0), SlotKind::Reduce, &pending), None);
        assert_eq!(s.choose(0.0, &machine(0), SlotKind::Map, &pending), Some(0));
    }
}
