//! Property tests for the discrete-event simulator: conservation laws that
//! must hold for any task set under any scheduling policy.

use proptest::prelude::*;
use slider_cluster::{
    simulate, ClusterSpec, CostModel, MachineId, MachineSpec, SchedulerPolicy, SlotKind, Task,
};

fn task_strategy(machines: usize) -> impl Strategy<Value = Task> {
    (
        proptest::bool::ANY,
        1u64..5_000,
        proptest::option::of(0..machines),
        0u64..1_000_000,
    )
        .prop_map(move |(is_map, work, preferred, bytes)| {
            let mut t = if is_map {
                Task::map(0, work)
            } else {
                Task::reduce(0, work)
            };
            if let Some(m) = preferred {
                t = t.prefer(MachineId(m));
            }
            t.with_input_bytes(bytes)
        })
}

fn policies() -> Vec<SchedulerPolicy> {
    vec![
        SchedulerPolicy::Vanilla,
        SchedulerPolicy::MemoizationAware,
        SchedulerPolicy::Hybrid {
            migration_threshold: 1.0,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every policy must run every task; the makespan is bounded below by
    /// the longest single task and above by serial execution, and busy
    /// time is invariant to scheduling given equal placement locality.
    #[test]
    fn conservation_laws_hold(
        machines in 1usize..6,
        stage1 in proptest::collection::vec(task_strategy(6), 0..20),
        stage2 in proptest::collection::vec(task_strategy(6), 0..10),
    ) {
        let spec = ClusterSpec {
            machines: vec![MachineSpec::healthy(); machines],
            cost: CostModel::paper_defaults(),
        };
        // Clamp preferences into range and assign unique ids.
        let clamp = |tasks: &[Task], base: u64| -> Vec<Task> {
            tasks
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let mut t = match t.kind {
                        SlotKind::Map => Task::map(base + i as u64, t.work),
                        SlotKind::Reduce => Task::reduce(base + i as u64, t.work),
                    }
                    .with_input_bytes(t.input_bytes);
                    if let Some(MachineId(m)) = t.preferred {
                        t = t.prefer(MachineId(m % machines));
                    }
                    t
                })
                .collect()
        };
        let stage1 = clamp(&stage1, 0);
        let stage2 = clamp(&stage2, 1_000);
        let total = stage1.len() + stage2.len();

        // The fastest any single task can run (local, healthy machine).
        let min_any_task = stage1
            .iter()
            .chain(&stage2)
            .map(|t| spec.cost.task_seconds(t.work, t.input_bytes, 1.0, true))
            .fold(0.0f64, f64::max);
        // Serial worst case: every task remote, one after another.
        let serial: f64 = stage1
            .iter()
            .chain(&stage2)
            .map(|t| spec.cost.task_seconds(t.work, t.input_bytes, 1.0, false))
            .sum();

        for policy in policies() {
            let report = simulate(&spec, policy, &[stage1.clone(), stage2.clone()]);
            prop_assert_eq!(report.tasks_run, total);
            prop_assert_eq!(report.stages.len(), 2);
            prop_assert!(report.makespan >= min_any_task - 1e-9,
                "{policy:?}: makespan below longest task");
            prop_assert!(report.makespan <= serial + 1e-9,
                "{policy:?}: makespan {} exceeds serial bound {}", report.makespan, serial);
            prop_assert!(report.busy_seconds <= report.makespan * (machines * 4) as f64 + 1e-9,
                "{policy:?}: busy time exceeds slot capacity");
            let stage_sum: f64 = report.stages.iter().map(|s| s.duration).sum();
            prop_assert!((stage_sum - report.makespan).abs() < 1e-6,
                "{policy:?}: stages {} != makespan {}", stage_sum, report.makespan);
        }
    }

    /// The memoization-aware policy never places a preferring task remotely.
    #[test]
    fn strict_policy_never_migrates(
        machines in 2usize..6,
        tasks in proptest::collection::vec(task_strategy(6), 1..16),
    ) {
        let spec = ClusterSpec {
            machines: vec![MachineSpec::healthy(); machines],
            cost: CostModel::paper_defaults(),
        };
        let tasks: Vec<Task> = tasks
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let mut out = Task::reduce(i as u64, t.work).with_input_bytes(t.input_bytes);
                if let Some(MachineId(m)) = t.preferred {
                    out = out.prefer(MachineId(m % machines));
                }
                out
            })
            .collect();
        let report = simulate(&spec, SchedulerPolicy::MemoizationAware, &[tasks]);
        let remote: u64 = report.stages.iter().map(|s| s.remote_placements).sum();
        prop_assert_eq!(remote, 0, "strict placement must never go remote");
    }
}
