//! Property tests for the distributed memoization cache: durability under
//! bounded failures, and shim-layer consistency.

use proptest::prelude::*;
use slider_dcache::{CacheConfig, DistributedCache, GcPolicy, NodeId, ObjectId};

#[derive(Debug, Clone)]
enum Op {
    Put {
        object: u64,
        bytes: u64,
        home: usize,
    },
    Read {
        object: u64,
        reader: usize,
    },
    Fail {
        node: usize,
    },
    Recover {
        node: usize,
    },
}

fn op_strategy(nodes: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..12, 1u64..10_000, 0..nodes).prop_map(|(object, bytes, home)| Op::Put {
            object,
            bytes,
            home
        }),
        (0u64..12, 0..nodes).prop_map(|(object, reader)| Op::Read { object, reader }),
        (0..nodes).prop_map(|node| Op::Fail { node }),
        (0..nodes).prop_map(|node| Op::Recover { node }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// With 2 persistent replicas, an object stored while its replica nodes
    /// were alive must remain readable as long as at most one node is down.
    #[test]
    fn puts_survive_single_node_failures(
        ops in proptest::collection::vec(op_strategy(5), 1..60),
    ) {
        let nodes = 5;
        let mut config = CacheConfig::paper_defaults(nodes);
        config.gc = GcPolicy::Disabled;
        let mut cache = DistributedCache::new(config);
        let mut down: std::collections::HashSet<usize> = std::collections::HashSet::new();
        // Objects stored while the whole cluster was healthy.
        let mut stored: std::collections::HashSet<u64> = std::collections::HashSet::new();

        for op in ops {
            match op {
                Op::Put { object, bytes, home } => {
                    cache.put(ObjectId(object), bytes, NodeId(home), 0);
                    if down.is_empty() {
                        stored.insert(object);
                    } else {
                        // Replicas may have landed on dead nodes; no durability
                        // claim for this object.
                        stored.remove(&object);
                    }
                }
                Op::Read { object, reader } => {
                    let result = cache.read(ObjectId(object), NodeId(reader));
                    if stored.contains(&object) && down.len() <= 1 {
                        prop_assert!(
                            result.is_ok(),
                            "object {object} unreadable with only {:?} down",
                            down
                        );
                    }
                }
                Op::Fail { node } => {
                    // Keep at most one node down so the durability claim holds.
                    if down.is_empty() {
                        cache.fail_node(NodeId(node));
                        down.insert(node);
                    }
                }
                Op::Recover { node } => {
                    if down.remove(&node) {
                        cache.recover_node(NodeId(node));
                    }
                }
            }
        }
    }

    /// Read times are positive, and a *local* memory read never loses to
    /// the disk-only configuration. (A remote memory read may legitimately
    /// lose to a local disk replica: the network is slower than disk in
    /// the latency model, exactly why the shim prefers local replicas.)
    #[test]
    fn local_memory_reads_are_never_slower_than_disk(
        bytes in 1u64..100_000_000,
        home in 0usize..4,
    ) {
        let mut with_mem = DistributedCache::new(CacheConfig::paper_defaults(4));
        with_mem.put(ObjectId(1), bytes, NodeId(home), 0);
        let fast = with_mem.read(ObjectId(1), NodeId(home)).unwrap();
        prop_assert_eq!(fast.source, slider_dcache::ReadSource::Memory);

        let mut config = CacheConfig::paper_defaults(4);
        config.memory_enabled = false;
        let mut no_mem = DistributedCache::new(config);
        no_mem.put(ObjectId(1), bytes, NodeId(home), 0);
        let slow = no_mem.read(ObjectId(1), NodeId(home)).unwrap();

        prop_assert!(fast.seconds > 0.0);
        prop_assert!(fast.seconds <= slow.seconds * 1.000_001,
            "memory {:?} slower than disk {:?}", fast, slow);
    }

    /// Self-healing convergence: with repair enabled and at most one node
    /// down at a time, any interleaving of puts, failures, recoveries, and
    /// repair drains leaves every indexed object readable — and once every
    /// node is live again, a single drain restores full replication and
    /// empties the queue (repair converges, nothing stays degraded).
    #[test]
    fn repair_converges_under_failure_interleavings(
        ops in proptest::collection::vec(op_strategy(5), 1..80),
        drain_mask in proptest::collection::vec(proptest::bool::ANY, 80),
    ) {
        let nodes = 5;
        let mut config = CacheConfig::paper_defaults(nodes).with_repair();
        config.gc = GcPolicy::Disabled;
        let mut cache = DistributedCache::new(config);
        let mut down: Option<usize> = None;

        for (i, op) in ops.into_iter().enumerate() {
            match op {
                Op::Put { object, bytes, home } => {
                    // With repair on, placement skips the dead node, so
                    // every put lands fully replicated on live nodes.
                    cache.put(ObjectId(object), bytes, NodeId(home), 0);
                }
                Op::Read { object, reader } => {
                    // Reads may hit never-stored ids (NotFound is fine) but
                    // must never see an Unavailable indexed object: at most
                    // one node is down and every put was fully replicated.
                    let result = cache.read(ObjectId(object), NodeId(reader));
                    if let Err(e) = &result {
                        prop_assert!(
                            matches!(e, slider_dcache::CacheError::NotFound(_)),
                            "indexed object {object} degraded: {e:?} (down: {down:?})"
                        );
                    }
                }
                Op::Fail { node } => {
                    if down.is_none() {
                        cache.fail_node(NodeId(node));
                        down = Some(node);
                    }
                }
                Op::Recover { node } => {
                    if down == Some(node) {
                        cache.recover_node(NodeId(node));
                        down = None;
                    }
                }
            }
            if drain_mask.get(i).copied().unwrap_or(false) {
                cache.drain_repairs();
            }
        }

        // Heal the cluster: every object must converge back to full
        // replication with nothing left pending, and stay readable.
        if let Some(node) = down {
            cache.recover_node(NodeId(node));
        }
        cache.drain_repairs();
        prop_assert_eq!(cache.under_replicated(), 0, "repair did not converge");
        prop_assert_eq!(cache.pending_repairs(), 0, "queue did not empty");
        prop_assert_eq!(cache.scrub(), 0, "no corrupt copies may survive");
        let indexed = cache.len() as u64;
        for object in 0..12u64 {
            if cache.home_of(ObjectId(object)).is_some() {
                prop_assert!(cache.read(ObjectId(object), NodeId(0)).is_ok());
            }
        }
        prop_assert_eq!(cache.len() as u64, indexed, "reads must not drop objects");
    }

    /// Window-based GC never collects objects within the horizon.
    #[test]
    fn gc_respects_the_horizon(
        horizon in 0u64..4,
        epochs in proptest::collection::vec(0u64..10, 1..20),
    ) {
        let mut config = CacheConfig::paper_defaults(3);
        config.gc = GcPolicy::WindowBased { horizon };
        let mut cache = DistributedCache::new(config);
        for (i, &epoch) in epochs.iter().enumerate() {
            cache.put(ObjectId(i as u64), 10, NodeId(0), epoch);
        }
        let current = *epochs.iter().max().unwrap();
        cache.collect_garbage(current);
        for (i, &epoch) in epochs.iter().enumerate() {
            let alive = cache.read(ObjectId(i as u64), NodeId(0)).is_ok();
            let should_live = epoch + horizon >= current;
            prop_assert_eq!(alive, should_live,
                "object {} from epoch {} (current {}, horizon {})", i, epoch, current, horizon);
        }
    }
}
