//! # slider-dcache — fault-tolerant distributed memoization layer
//!
//! Reproduces the memoization subsystem of Slider's architecture (paper §6,
//! Figure 6): a master-indexed, in-memory distributed cache for memoized
//! sub-computation outputs, backed by a fault-tolerant persistent tier that
//! keeps two replicas of every object. A *shim I/O layer* serves reads from
//! memory when possible and transparently falls back to the persistent
//! copies — the mechanism behind the paper's Table 2 (48–68% read-time
//! savings from in-memory caching).
//!
//! The crate simulates placement, latency, eviction, node failure and
//! garbage collection; object payloads are represented by their sizes (the
//! host engine keeps the actual values in process memory).
//!
//! ```
//! use slider_dcache::{CacheConfig, DistributedCache, NodeId, ObjectId};
//!
//! let mut cache = DistributedCache::new(CacheConfig::paper_defaults(4));
//! cache.put(ObjectId(1), 4096, NodeId(0), 0);
//! let read = cache.read(ObjectId(1), NodeId(0)).unwrap();
//! assert!(read.seconds > 0.0);
//! # assert_eq!(read.source, slider_dcache::ReadSource::Memory);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Placement and latency math mixes u64 byte counts with usize indexing;
// every narrowing must be explicit and checked, never a silent `as`.
#![deny(clippy::cast_possible_truncation)]

mod gc;
mod master;
mod repair;
mod shared;
mod store;

pub use gc::GcPolicy;
pub use master::{
    CacheConfig, CacheError, CacheStats, DistributedCache, LatencyModel, NamespaceStats, NodeId,
    ObjectId, ReadOutcome, ReadSource,
};
pub use repair::RepairStats;
pub use shared::SharedCache;
pub use store::InMemoryStore;
