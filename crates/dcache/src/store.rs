//! Per-node in-memory object store with LRU eviction.

use std::collections::HashMap;

/// A bounded in-memory store tracking object sizes with LRU eviction.
///
/// Paper §6 motivates the memory tier with the observation that main memory
/// is generally underutilized in data-centric clusters; it is nonetheless
/// finite, so the store evicts least-recently-used objects past capacity
/// (they remain available from the persistent replicas).
#[derive(Debug, Clone)]
pub struct InMemoryStore {
    capacity_bytes: u64,
    used_bytes: u64,
    /// object -> (size, last-use tick)
    objects: HashMap<u64, (u64, u64)>,
    clock: u64,
    evictions: u64,
}

impl InMemoryStore {
    /// Creates a store holding at most `capacity_bytes`.
    pub fn new(capacity_bytes: u64) -> Self {
        InMemoryStore {
            capacity_bytes,
            used_bytes: 0,
            objects: HashMap::new(),
            clock: 0,
            evictions: 0,
        }
    }

    /// Inserts `object` of `size` bytes, evicting LRU entries as needed.
    /// Returns the ids evicted to make room. Objects larger than the whole
    /// capacity are not admitted (and are reported as "evicted" instantly).
    pub fn put(&mut self, object: u64, size: u64) -> Vec<u64> {
        self.clock += 1;
        let mut evicted = Vec::new();
        if size > self.capacity_bytes {
            // Too large for the memory tier altogether.
            self.evictions += 1;
            evicted.push(object);
            return evicted;
        }
        if let Some((old, _)) = self.objects.remove(&object) {
            self.used_bytes -= old;
        }
        while self.used_bytes + size > self.capacity_bytes {
            let lru = self
                .objects
                .iter()
                .min_by_key(|(_, (_, tick))| *tick)
                .map(|(id, _)| *id)
                .expect("used_bytes > 0 implies an object exists");
            let (sz, _) = self.objects.remove(&lru).expect("lru id just found");
            self.used_bytes -= sz;
            self.evictions += 1;
            evicted.push(lru);
        }
        self.objects.insert(object, (size, self.clock));
        self.used_bytes += size;
        evicted
    }

    /// Looks up `object`, refreshing its recency; returns its size.
    pub fn get(&mut self, object: u64) -> Option<u64> {
        self.clock += 1;
        let clock = self.clock;
        self.objects.get_mut(&object).map(|(size, tick)| {
            *tick = clock;
            *size
        })
    }

    /// Whether `object` is resident, without refreshing its recency (used
    /// by the master rebuild to probe memory tiers read-only).
    pub fn contains(&self, object: u64) -> bool {
        self.objects.contains_key(&object)
    }

    /// Removes `object`, returning its size if present.
    pub fn remove(&mut self, object: u64) -> Option<u64> {
        let (size, _) = self.objects.remove(&object)?;
        self.used_bytes -= size;
        Some(size)
    }

    /// Drops everything (models a node crash wiping volatile memory).
    pub fn clear(&mut self) {
        self.objects.clear();
        self.used_bytes = 0;
    }

    /// Bytes currently stored.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Total LRU evictions since creation.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_remove_roundtrip() {
        let mut s = InMemoryStore::new(100);
        assert!(s.put(1, 40).is_empty());
        assert_eq!(s.get(1), Some(40));
        assert_eq!(s.used_bytes(), 40);
        assert_eq!(s.remove(1), Some(40));
        assert!(s.is_empty());
    }

    #[test]
    fn lru_eviction_order() {
        let mut s = InMemoryStore::new(100);
        s.put(1, 40);
        s.put(2, 40);
        s.get(1); // 1 is now more recent than 2
        let evicted = s.put(3, 40);
        assert_eq!(evicted, vec![2]);
        assert!(s.get(2).is_none());
        assert!(s.get(1).is_some());
        assert_eq!(s.evictions(), 1);
    }

    #[test]
    fn oversized_object_is_rejected() {
        let mut s = InMemoryStore::new(10);
        let evicted = s.put(1, 11);
        assert_eq!(evicted, vec![1]);
        assert!(s.get(1).is_none());
        assert_eq!(s.used_bytes(), 0);
    }

    #[test]
    fn overwrite_replaces_size() {
        let mut s = InMemoryStore::new(100);
        s.put(1, 60);
        s.put(1, 20);
        assert_eq!(s.used_bytes(), 20);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn clear_models_crash() {
        let mut s = InMemoryStore::new(100);
        s.put(1, 10);
        s.put(2, 10);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.used_bytes(), 0);
    }
}
