//! The master-coordinated distributed cache with the shim I/O layer.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::error::Error;
use std::fmt;

use slider_trace::{SpanKind, TraceSink};

use crate::gc::GcPolicy;
use crate::repair::RepairStats;
use crate::store::InMemoryStore;

/// Trace track every cache span lands on.
const TRACE_TRACK: &str = "dcache";

/// Identifies a slave node of the memoization layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// Identifies a memoized object (a contraction-tree node or task output).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u64);

impl ObjectId {
    /// Builds a tenant-scoped id by packing a 32-bit namespace above a
    /// 32-bit local id. Namespace `0` is the legacy/standalone space:
    /// `ObjectId::namespaced(0, n) == ObjectId(n)`, so single-job callers
    /// that construct raw `ObjectId`s stay bit-compatible.
    ///
    /// # Panics
    ///
    /// Panics if `local` does not fit in 32 bits.
    #[must_use]
    pub fn namespaced(namespace: u32, local: u64) -> ObjectId {
        assert!(local < (1 << 32), "local object id {local} exceeds 32 bits");
        ObjectId((u64::from(namespace) << 32) | local)
    }

    /// The namespace this id belongs to (`0` for raw/legacy ids).
    #[must_use]
    pub fn namespace(self) -> u32 {
        u32::try_from(self.0 >> 32).expect("u64 >> 32 fits in u32")
    }

    /// The id within its namespace.
    #[must_use]
    pub fn local(self) -> u64 {
        self.0 & 0xffff_ffff
    }
}

/// Latency model of the storage tiers, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Fixed overhead per operation (index lookup, RPC to the master).
    pub per_op_seconds: f64,
    /// Memory-tier read bandwidth, bytes/second.
    pub memory_bytes_per_second: f64,
    /// Persistent-tier (disk) read bandwidth, bytes/second.
    pub disk_bytes_per_second: f64,
    /// Network bandwidth for non-local reads, bytes/second.
    pub network_bytes_per_second: f64,
}

impl LatencyModel {
    /// Defaults loosely calibrated to 2014-era hardware (DDR vs. SATA disk
    /// vs. GbE); only ratios matter for the reproduced shapes.
    pub fn paper_defaults() -> Self {
        LatencyModel {
            per_op_seconds: 0.000_5,
            memory_bytes_per_second: 4.0e9,
            disk_bytes_per_second: 120.0e6,
            network_bytes_per_second: 110.0e6,
        }
    }
}

/// Configuration of the distributed memoization layer.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Number of slave nodes.
    pub nodes: usize,
    /// Per-node memory-tier capacity, bytes.
    pub memory_capacity_bytes: u64,
    /// Whether the in-memory tier is enabled (Table 2 disables it to
    /// quantify the savings).
    pub memory_enabled: bool,
    /// Number of persistent replicas per object (the paper uses 2).
    /// Clamped to the node count at cache creation — more replicas than
    /// nodes cannot be placed distinctly.
    pub replicas: usize,
    /// Latency model.
    pub latency: LatencyModel,
    /// Garbage-collection policy.
    pub gc: GcPolicy,
    /// Enables self-healing: under-replicated objects are enqueued for
    /// background re-replication and drained by
    /// [`DistributedCache::drain_repairs`]. Off by default so fault-free
    /// benchmarks are bit-identical with and without this feature built.
    pub repair: bool,
    /// Scrub cadence hint for the host run loop, in epochs; `0` disables
    /// scrubbing. The cache itself never scrubs spontaneously — the host
    /// calls [`DistributedCache::scrub`] so the work lands at deterministic
    /// points.
    pub scrub_interval: u64,
}

impl CacheConfig {
    /// Paper-like defaults for an `nodes`-worker cluster: 2 persistent
    /// replicas, 1 GiB of memoization memory per node, window-based GC,
    /// self-healing off.
    pub fn paper_defaults(nodes: usize) -> Self {
        CacheConfig {
            nodes,
            memory_capacity_bytes: 1 << 30,
            memory_enabled: true,
            replicas: 2,
            latency: LatencyModel::paper_defaults(),
            gc: GcPolicy::WindowBased { horizon: 1 },
            repair: false,
            scrub_interval: 0,
        }
    }

    /// Enables background re-replication (see [`CacheConfig::repair`]).
    pub fn with_repair(mut self) -> Self {
        self.repair = true;
        self
    }

    /// Sets the scrub cadence in epochs (see
    /// [`CacheConfig::scrub_interval`]); `0` disables scrubbing.
    pub fn with_scrub_interval(mut self, interval: u64) -> Self {
        self.scrub_interval = interval;
        self
    }
}

/// Where a read was ultimately served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReadSource {
    /// In-memory tier on the reading node.
    Memory,
    /// In-memory tier on a remote node (network + memory).
    RemoteMemory,
    /// Persistent tier on the reading node.
    LocalDisk,
    /// Persistent tier on a remote node (network + disk).
    RemoteDisk,
}

/// Result of a successful read through the shim I/O layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadOutcome {
    /// Simulated seconds the read took.
    pub seconds: f64,
    /// Tier and locality that served it.
    pub source: ReadSource,
    /// Object size in bytes.
    pub bytes: u64,
}

/// Errors surfaced by cache operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CacheError {
    /// The object is not in the index (never stored, or collected).
    NotFound(ObjectId),
    /// The object is indexed but every replica is on failed nodes.
    Unavailable(ObjectId),
    /// A node id outside the configured cluster was used.
    UnknownNode(NodeId),
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::NotFound(id) => write!(f, "object {} not found", id.0),
            CacheError::Unavailable(id) => {
                write!(
                    f,
                    "object {} unavailable: all replicas on failed nodes",
                    id.0
                )
            }
            CacheError::UnknownNode(n) => write!(f, "unknown node n{}", n.0),
        }
    }
}

impl Error for CacheError {}

/// Aggregate statistics of the memoization layer (foreground reads only;
/// background self-healing is metered in [`RepairStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CacheStats {
    /// Reads served by the local or remote memory tier.
    pub memory_hits: u64,
    /// Reads that fell back to a persistent replica.
    pub disk_reads: u64,
    /// Reads of objects missing from the index (never stored, collected,
    /// or lost); the caller must recompute from scratch.
    pub not_found_reads: u64,
    /// Reads of indexed objects whose every clean replica is on failed
    /// nodes; the object comes back once a replica's node recovers (or
    /// repair re-replicates it), so retrying can succeed.
    pub unavailable_reads: u64,
    /// Total simulated read seconds.
    pub read_seconds: f64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Objects collected by the garbage collector.
    pub collected: u64,
    /// Memory-tier evictions across all nodes.
    pub evictions: u64,
}

impl CacheStats {
    /// Failed reads of either kind (`not_found` + `unavailable`).
    pub fn failed_reads(&self) -> u64 {
        self.not_found_reads + self.unavailable_reads
    }
}

/// Per-namespace accounting: what one tenant's objects are doing to the
/// shared cache. Counter fields accumulate forever; the `live_*` fields
/// are a point-in-time census of the index.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NamespaceStats {
    /// Objects stored into this namespace (including re-puts).
    pub puts: u64,
    /// Bytes stored into this namespace.
    pub put_bytes: u64,
    /// This namespace's objects pushed out of a memory tier by LRU
    /// pressure — from *any* tenant's puts, so a noisy neighbor shows up
    /// in its victims' numbers.
    pub evictions: u64,
    /// Objects of this namespace reclaimed by garbage collection.
    pub collected: u64,
    /// Objects currently indexed under this namespace.
    pub live_objects: u64,
    /// Bytes currently indexed under this namespace.
    pub live_bytes: u64,
}

/// Checksum of an object's content, modeled as FNV-1a over the identity
/// the simulation tracks (id, size, producing epoch) — payloads are
/// size-only here, so this is the strongest integrity tag available.
fn content_checksum(id: u64, bytes: u64, epoch: u64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for word in [id, bytes, epoch] {
        for byte in word.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// A persistent copy as stored on a node's disk. Carries its own
/// checksum so the read path, scrub, and master rebuild can tell clean
/// copies from corrupt or stale ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DiskCopy {
    bytes: u64,
    epoch: u64,
    checksum: u64,
}

#[derive(Debug, Clone)]
struct ObjectMeta {
    bytes: u64,
    /// Node whose memory tier holds the object (its "home").
    home: NodeId,
    /// Nodes holding persistent replicas.
    replicas: Vec<NodeId>,
    /// Epoch tag for window-based GC (the run that produced the object).
    epoch: u64,
    /// Expected content checksum of every replica.
    checksum: u64,
}

#[derive(Debug, Clone)]
struct Node {
    memory: InMemoryStore,
    /// Persistent objects on this node. Unbounded.
    disk: HashMap<ObjectId, DiskCopy>,
    alive: bool,
}

/// The distributed, fault-tolerant memoization cache (paper §6, Figure 6).
///
/// The master (this struct) keeps the object index; slaves hold an
/// in-memory tier plus persistent replicas. See the crate docs for an
/// example.
// `Clone` is the checkpoint primitive: a clone captures the whole cache —
// index, per-node memory/disk tiers, repair queue, stats — so a restored
// engine replays byte-identical hit/miss/latency sequences. The clone
// shares the `TraceSink` handle; restore paths re-attach their own sink.
#[derive(Debug, Clone)]
pub struct DistributedCache {
    config: CacheConfig,
    nodes: Vec<Node>,
    index: HashMap<ObjectId, ObjectMeta>,
    stats: CacheStats,
    /// Per-namespace counters (puts, evictions, collections). Live
    /// object/byte censuses are computed from the index on demand so
    /// index-rebuilding fault paths cannot leave these inconsistent.
    namespaces: BTreeMap<u32, NamespaceStats>,
    repair: RepairStats,
    /// Objects awaiting background re-replication, drained in id order so
    /// repair work is deterministic.
    repair_queue: BTreeSet<ObjectId>,
    /// Observability sink; disabled by default (see
    /// [`DistributedCache::attach_trace`]). Every span it records mirrors a
    /// [`CacheStats`]/[`RepairStats`] accumulation with identical operands.
    trace: TraceSink,
}

impl DistributedCache {
    /// Creates the cache with `config`. A replica count above the node
    /// count is clamped — distinct placement is impossible beyond one copy
    /// per node.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero nodes or zero replicas.
    pub fn new(mut config: CacheConfig) -> Self {
        assert!(config.nodes > 0, "cache needs at least one node");
        assert!(
            config.replicas > 0,
            "cache needs at least one persistent replica"
        );
        config.replicas = config.replicas.min(config.nodes);
        let nodes = (0..config.nodes)
            .map(|_| Node {
                memory: InMemoryStore::new(config.memory_capacity_bytes),
                disk: HashMap::new(),
                alive: true,
            })
            .collect();
        DistributedCache {
            config,
            nodes,
            index: HashMap::new(),
            stats: CacheStats::default(),
            namespaces: BTreeMap::new(),
            repair: RepairStats::default(),
            repair_queue: BTreeSet::new(),
            trace: TraceSink::disabled(),
        }
    }

    /// Attaches an observability sink. Pass the job's sink so cache spans
    /// land in the same trace as the engine's; the default disabled sink
    /// records nothing at one branch per call site.
    pub fn attach_trace(&mut self, trace: TraceSink) {
        self.trace = trace;
    }

    fn alive_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    /// Replication target given the current cluster state.
    fn want_replicas(&self) -> usize {
        self.config.replicas.min(self.alive_count().max(1))
    }

    /// Enqueues `object` for background re-replication (no-op with repair
    /// disabled).
    fn enqueue_repair(&mut self, object: ObjectId) {
        if self.config.repair && self.repair_queue.insert(object) {
            self.repair.enqueued += 1;
            self.trace.with(|t| t.add("dcache.repair.enqueued", 1));
        }
    }

    /// Stores `object` of `bytes` with its memory copy on `home` and up to
    /// `replicas` persistent copies on distinct nodes walking the ring from
    /// `home + 1`, tagged with the GC `epoch` of the producing run. With
    /// repair enabled the walk skips failed nodes (and enqueues the object
    /// if it still lands under-replicated); with it disabled dead nodes
    /// stay in the replica set but receive no copy, preserving the
    /// fail-then-recover semantics of the plain replicated layer.
    ///
    /// # Panics
    ///
    /// Panics if `home` is outside the cluster.
    pub fn put(&mut self, object: ObjectId, bytes: u64, home: NodeId, epoch: u64) {
        assert!(home.0 < self.nodes.len(), "unknown home node {home:?}");
        let n = self.nodes.len();
        let want = self.config.replicas;
        let mut replicas: Vec<NodeId> = Vec::with_capacity(want);
        for i in 0..n {
            if replicas.len() >= want {
                break;
            }
            let candidate = NodeId((home.0 + 1 + i) % n);
            if self.config.repair && !self.nodes[candidate.0].alive {
                continue;
            }
            replicas.push(candidate);
        }
        debug_assert!(
            replicas.iter().collect::<BTreeSet<_>>().len() == replicas.len(),
            "replica placement must be distinct: {replicas:?}"
        );
        debug_assert!(
            self.config.repair || replicas.len() == want,
            "without dead-node skipping the ring must fill the target"
        );
        let checksum = content_checksum(object.0, bytes, epoch);

        // Tear down copies from a previous placement of the same id so a
        // re-put cannot leave orphans on live nodes (dead nodes are
        // reconciled by `recover_node`).
        if let Some(old) = self.index.get(&object).cloned() {
            if old.home != home && self.nodes[old.home.0].alive {
                self.nodes[old.home.0].memory.remove(object.0);
            }
            for r in &old.replicas {
                if self.nodes[r.0].alive && !replicas.contains(r) {
                    self.nodes[r.0].disk.remove(&object);
                }
            }
        }

        if self.config.memory_enabled && self.nodes[home.0].alive {
            // LRU pressure on the home node may push other objects out of
            // memory; bill each victim's namespace so noisy neighbors are
            // visible in per-tenant accounting.
            for victim in self.nodes[home.0].memory.put(object.0, bytes) {
                self.namespaces
                    .entry(ObjectId(victim).namespace())
                    .or_default()
                    .evictions += 1;
            }
        }
        let mut live_copies = 0usize;
        for &replica in &replicas {
            if self.nodes[replica.0].alive {
                self.nodes[replica.0].disk.insert(
                    object,
                    DiskCopy {
                        bytes,
                        epoch,
                        checksum,
                    },
                );
                live_copies += 1;
            }
        }
        self.index.insert(
            object,
            ObjectMeta {
                bytes,
                home,
                replicas,
                epoch,
                checksum,
            },
        );
        let ns = self.namespaces.entry(object.namespace()).or_default();
        ns.puts += 1;
        ns.put_bytes += bytes;
        self.trace.with(|t| {
            let tr = t.track(TRACE_TRACK);
            let s = t.leaf_seconds(tr, SpanKind::CacheWrite, format!("put {}", object.0), 0.0);
            t.arg(s, "bytes", bytes);
            t.arg(s, "live_copies", live_copies as u64);
            t.add("dcache.puts", 1);
            t.add("dcache.put_bytes", bytes);
        });
        if live_copies < self.want_replicas() {
            self.enqueue_repair(object);
        }
    }

    /// Reads `object` from the perspective of `reader` through the shim
    /// layer: memory first, then persistent replicas (local preferred).
    /// Replica copies are checksum-verified; a corrupt or stale copy is
    /// never served — it is discarded (and enqueued for repair) and the
    /// read fails over to the next clean replica.
    ///
    /// # Errors
    ///
    /// [`CacheError::NotFound`] if the object was never stored or was
    /// collected; [`CacheError::Unavailable`] if every clean replica is on
    /// failed nodes; [`CacheError::UnknownNode`] for an out-of-range
    /// reader.
    pub fn read(&mut self, object: ObjectId, reader: NodeId) -> Result<ReadOutcome, CacheError> {
        if reader.0 >= self.nodes.len() {
            return Err(CacheError::UnknownNode(reader));
        }
        let meta = match self.index.get(&object) {
            Some(m) => m.clone(),
            None => {
                self.stats.not_found_reads += 1;
                self.trace.with(|t| {
                    let tr = t.track(TRACE_TRACK);
                    t.leaf_seconds(tr, SpanKind::CacheRead, format!("miss {}", object.0), 0.0);
                    t.add("dcache.not_found_reads", 1);
                });
                return Err(CacheError::NotFound(object));
            }
        };
        let lat = self.config.latency;

        // 1. Memory tier on the home node.
        if self.config.memory_enabled && self.nodes[meta.home.0].alive {
            let hit = self.nodes[meta.home.0].memory.get(object.0).is_some();
            if hit {
                let (source, seconds) = if meta.home == reader {
                    (
                        ReadSource::Memory,
                        lat.per_op_seconds + meta.bytes as f64 / lat.memory_bytes_per_second,
                    )
                } else {
                    (
                        ReadSource::RemoteMemory,
                        lat.per_op_seconds + meta.bytes as f64 / lat.network_bytes_per_second,
                    )
                };
                self.stats.memory_hits += 1;
                self.stats.read_seconds += seconds;
                self.stats.bytes_read += meta.bytes;
                self.trace.with(|t| {
                    let tr = t.track(TRACE_TRACK);
                    let s = t.leaf_seconds(
                        tr,
                        SpanKind::CacheRead,
                        format!("read {}", object.0),
                        seconds,
                    );
                    t.arg(s, "bytes", meta.bytes);
                    t.add("dcache.memory_hits", 1);
                    t.add("dcache.bytes_read", meta.bytes);
                });
                return Ok(ReadOutcome {
                    seconds,
                    source,
                    bytes: meta.bytes,
                });
            }
        }

        // 2. Persistent tier: prefer a replica on the reading node, then
        // lowest node id, verifying each candidate before serving it.
        let mut candidates: Vec<NodeId> = meta
            .replicas
            .iter()
            .copied()
            .filter(|r| self.nodes[r.0].alive && self.nodes[r.0].disk.contains_key(&object))
            .collect();
        candidates.sort_unstable_by_key(|r| (usize::from(*r != reader), r.0));
        let mut replica = None;
        for candidate in candidates {
            let copy = self.nodes[candidate.0].disk[&object];
            if copy.checksum == meta.checksum {
                replica = Some(candidate);
                break;
            }
            // Corrupt (or stale, after an unclean recovery) copy: drop it
            // before anyone can read it and schedule re-replication.
            self.nodes[candidate.0].disk.remove(&object);
            self.repair.corruptions_detected += 1;
            self.trace.with(|t| t.add("dcache.corruptions_detected", 1));
            self.enqueue_repair(object);
        }
        let Some(replica) = replica else {
            self.stats.unavailable_reads += 1;
            self.trace.with(|t| {
                let tr = t.track(TRACE_TRACK);
                t.leaf_seconds(
                    tr,
                    SpanKind::CacheRead,
                    format!("unavailable {}", object.0),
                    0.0,
                );
                t.add("dcache.unavailable_reads", 1);
            });
            self.enqueue_repair(object);
            return Err(CacheError::Unavailable(object));
        };
        let (source, seconds) = if replica == reader {
            (
                ReadSource::LocalDisk,
                lat.per_op_seconds + meta.bytes as f64 / lat.disk_bytes_per_second,
            )
        } else {
            (
                ReadSource::RemoteDisk,
                lat.per_op_seconds
                    + meta.bytes as f64 / lat.disk_bytes_per_second
                    + meta.bytes as f64 / lat.network_bytes_per_second,
            )
        };
        // Promote back into memory on the home node (re-warm after failure
        // or eviction).
        if self.config.memory_enabled && self.nodes[meta.home.0].alive {
            self.nodes[meta.home.0].memory.put(object.0, meta.bytes);
        }
        self.stats.disk_reads += 1;
        self.stats.read_seconds += seconds;
        self.stats.bytes_read += meta.bytes;
        self.trace.with(|t| {
            let tr = t.track(TRACE_TRACK);
            let s = t.leaf_seconds(
                tr,
                SpanKind::CacheRead,
                format!("read {}", object.0),
                seconds,
            );
            t.arg(s, "bytes", meta.bytes);
            t.add("dcache.disk_reads", 1);
            t.add("dcache.bytes_read", meta.bytes);
        });
        Ok(ReadOutcome {
            seconds,
            source,
            bytes: meta.bytes,
        })
    }

    /// Deletes `object` everywhere reachable. Copies on failed nodes
    /// cannot be deleted remotely — they are purged when the node rejoins
    /// (see [`DistributedCache::recover_node`]). No-op if absent.
    pub fn delete(&mut self, object: ObjectId) {
        self.repair_queue.remove(&object);
        if let Some(meta) = self.index.remove(&object) {
            self.nodes[meta.home.0].memory.remove(object.0);
            for replica in meta.replicas {
                if self.nodes[replica.0].alive {
                    self.nodes[replica.0].disk.remove(&object);
                }
            }
        }
    }

    /// Forcibly loses `object` — index entry, memory copy, and every
    /// persistent replica — as a fault injection. A later read fails with
    /// [`CacheError::NotFound`] and the caller must recompute (Slider's
    /// recovery path: lost memoized state degrades to extra foreground
    /// work, never a wrong answer). Returns whether the object existed.
    pub fn lose_object(&mut self, object: ObjectId) -> bool {
        let existed = self.index.contains_key(&object);
        if let Some(meta) = self.index.get(&object).cloned() {
            // Total loss reaches even dead nodes' disks — nothing survives
            // to resurrect or repair from.
            for replica in meta.replicas {
                self.nodes[replica.0].disk.remove(&object);
            }
        }
        self.delete(object);
        existed
    }

    /// Forcibly loses every object produced in `epoch` (see
    /// [`DistributedCache::lose_object`]); objects are dropped in id order
    /// so the fault is reproducible. Returns how many were lost.
    pub fn lose_epoch(&mut self, epoch: u64) -> u64 {
        let mut victims: Vec<ObjectId> = self
            .index
            .iter()
            .filter(|(_, m)| m.epoch == epoch)
            .map(|(id, _)| *id)
            .collect();
        victims.sort_unstable();
        let n = victims.len() as u64;
        for victim in victims {
            self.lose_object(victim);
        }
        n
    }

    /// Drops a single persistent copy of `object` from `node` (a disk
    /// sector loss rather than a whole-node crash). The object stays
    /// readable from its other replicas; with repair enabled it is
    /// enqueued for re-replication. Returns whether a copy existed there.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the cluster.
    pub fn lose_replica(&mut self, object: ObjectId, node: NodeId) -> bool {
        assert!(node.0 < self.nodes.len(), "unknown node {node:?}");
        let existed = self.nodes[node.0].disk.remove(&object).is_some();
        if existed && self.index.contains_key(&object) {
            self.enqueue_repair(object);
        }
        existed
    }

    /// Flips the stored checksum of `object`'s persistent copy on `node`,
    /// modeling silent on-disk corruption. The copy is detected and
    /// discarded by the next read, scrub, or master rebuild that touches
    /// it — it is never served. Returns whether a copy existed there.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the cluster.
    pub fn corrupt_object(&mut self, object: ObjectId, node: NodeId) -> bool {
        assert!(node.0 < self.nodes.len(), "unknown node {node:?}");
        match self.nodes[node.0].disk.get_mut(&object) {
            Some(copy) => {
                copy.checksum ^= 0x5bd1_e995_7b93_a283;
                true
            }
            None => false,
        }
    }

    /// Runs the configured garbage-collection policy for `current_epoch`,
    /// freeing memoized objects that fell out of the window (§6). Returns
    /// the number of collected objects.
    pub fn collect_garbage(&mut self, current_epoch: u64) -> u64 {
        let victims: Vec<ObjectId> = match self.config.gc {
            GcPolicy::Disabled => Vec::new(),
            GcPolicy::WindowBased { horizon } => {
                let mut victims: Vec<ObjectId> = self
                    .index
                    .iter()
                    .filter(|(_, m)| m.epoch + horizon < current_epoch)
                    .map(|(id, _)| *id)
                    .collect();
                // Sorted so the deletion sequence (not just the final
                // survivor set) is reproducible.
                victims.sort_unstable();
                victims
            }
            GcPolicy::Aggressive { max_total_bytes } => {
                // Evict oldest epochs first until under budget, with the
                // explicit (epoch, id) order of `aggressive_victims` — the
                // index map's iteration order must not pick the survivors.
                let total: u64 = self.index.values().map(|m| m.bytes).sum();
                let entries: Vec<(u64, ObjectId, u64)> = self
                    .index
                    .iter()
                    .map(|(id, m)| (m.epoch, *id, m.bytes))
                    .collect();
                crate::gc::aggressive_victims(entries, total, max_total_bytes)
            }
        };
        let n = victims.len() as u64;
        for victim in victims {
            self.namespaces
                .entry(victim.namespace())
                .or_default()
                .collected += 1;
            self.delete(victim);
        }
        self.stats.collected += n;
        self.trace.with(|t| {
            let tr = t.track(TRACE_TRACK);
            let s = t.leaf_seconds(tr, SpanKind::Gc, format!("gc epoch {current_epoch}"), 0.0);
            t.arg(s, "collected", n);
            t.add("dcache.collected", n);
        });
        n
    }

    /// Runs garbage collection for a single namespace: like
    /// [`DistributedCache::collect_garbage`], but only `namespace`'s
    /// objects are candidates, and an [`GcPolicy::Aggressive`] byte budget
    /// is applied to that namespace's footprint alone. Tenants sharing one
    /// cache advance through epochs independently, so each must sweep only
    /// its own window — a global sweep at one tenant's epoch would reap
    /// another tenant's still-live objects.
    pub fn collect_garbage_scoped(&mut self, namespace: u32, current_epoch: u64) -> u64 {
        let victims: Vec<ObjectId> = match self.config.gc {
            GcPolicy::Disabled => Vec::new(),
            GcPolicy::WindowBased { horizon } => {
                let mut victims: Vec<ObjectId> = self
                    .index
                    .iter()
                    .filter(|(id, m)| {
                        id.namespace() == namespace && m.epoch + horizon < current_epoch
                    })
                    .map(|(id, _)| *id)
                    .collect();
                victims.sort_unstable();
                victims
            }
            GcPolicy::Aggressive { max_total_bytes } => {
                let entries: Vec<(u64, ObjectId, u64)> = self
                    .index
                    .iter()
                    .filter(|(id, _)| id.namespace() == namespace)
                    .map(|(id, m)| (m.epoch, *id, m.bytes))
                    .collect();
                let total: u64 = entries.iter().map(|(_, _, b)| b).sum();
                crate::gc::aggressive_victims(entries, total, max_total_bytes)
            }
        };
        let n = victims.len() as u64;
        for victim in victims {
            self.namespaces.entry(namespace).or_default().collected += 1;
            self.delete(victim);
        }
        self.stats.collected += n;
        self.trace.with(|t| {
            let tr = t.track(TRACE_TRACK);
            let s = t.leaf_seconds(
                tr,
                SpanKind::Gc,
                format!("gc ns {namespace} epoch {current_epoch}"),
                0.0,
            );
            t.arg(s, "collected", n);
            t.add("dcache.collected", n);
        });
        n
    }

    /// Crashes `node`: its memory tier is wiped and its disk becomes
    /// unavailable until [`DistributedCache::recover_node`]. With repair
    /// enabled, every object that kept a replica there is enqueued for
    /// background re-replication onto the surviving nodes.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the cluster.
    pub fn fail_node(&mut self, node: NodeId) {
        let n = self.nodes.get_mut(node.0).expect("unknown node");
        n.alive = false;
        n.memory.clear();
        if self.config.repair {
            let mut affected: Vec<ObjectId> = self
                .index
                .iter()
                .filter(|(_, m)| m.replicas.contains(&node))
                .map(|(id, _)| *id)
                .collect();
            affected.sort_unstable();
            for object in affected {
                self.enqueue_repair(object);
            }
        }
        self.trace.with(|t| t.add("dcache.node_failures", 1));
    }

    /// Brings `node` back: its persistent objects become readable again
    /// (the memory tier re-warms lazily via read promotion). Stale copies
    /// — objects deleted, collected, re-homed, or re-written while the
    /// node was down — are purged so they cannot resurrect, metered as
    /// [`RepairStats::stale_copies_purged`].
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the cluster.
    pub fn recover_node(&mut self, node: NodeId) {
        self.nodes.get_mut(node.0).expect("unknown node").alive = true;
        let mut held: Vec<ObjectId> = self.nodes[node.0].disk.keys().copied().collect();
        held.sort_unstable();
        for object in held {
            let stale = match self.index.get(&object) {
                None => true,
                Some(meta) => {
                    !meta.replicas.contains(&node)
                        || self.nodes[node.0].disk[&object].checksum != meta.checksum
                }
            };
            if stale {
                self.nodes[node.0].disk.remove(&object);
                self.repair.stale_copies_purged += 1;
                self.trace.with(|t| t.add("dcache.stale_copies_purged", 1));
            }
        }
        self.trace.with(|t| t.add("dcache.node_recoveries", 1));
    }

    /// Drains the repair queue, re-replicating every enqueued object onto
    /// live nodes from a clean surviving copy. Background work: bytes and
    /// seconds land in [`RepairStats`], never in [`CacheStats`]. Objects
    /// with no clean live source stay queued (blocked until a node
    /// recovers); partially repaired objects are re-queued. Returns how
    /// many objects had their replication improved. No-op with repair
    /// disabled.
    pub fn drain_repairs(&mut self) -> u64 {
        if !self.config.repair {
            return 0;
        }
        let pending: Vec<ObjectId> = std::mem::take(&mut self.repair_queue).into_iter().collect();
        let drain_span = self.trace.with(|t| {
            let tr = t.track(TRACE_TRACK);
            let s = t.begin(tr, SpanKind::Repair, "repair drain");
            t.arg(s, "pending", pending.len() as u64);
            s
        });
        let mut repaired = 0;
        for object in pending {
            if self.repair_one(object) {
                repaired += 1;
            }
        }
        self.trace.with(|t| {
            if let Some(s) = drain_span {
                t.end(s);
            }
            t.add("dcache.repair.repaired_objects", repaired);
        });
        repaired
    }

    fn repair_one(&mut self, object: ObjectId) -> bool {
        let Some(meta) = self.index.get(&object).cloned() else {
            return false; // collected or lost since it was enqueued
        };
        let want = self.want_replicas();
        let lat = self.config.latency;
        let n = self.nodes.len();

        // Survey the replica set for clean live copies, discarding corrupt
        // ones found along the way.
        let mut members = meta.replicas.clone();
        members.sort_unstable();
        members.dedup();
        let mut clean: Vec<NodeId> = Vec::new();
        for node in members {
            if !self.nodes[node.0].alive {
                continue;
            }
            match self.nodes[node.0].disk.get(&object) {
                Some(copy) if copy.checksum == meta.checksum => clean.push(node),
                Some(_) => {
                    self.nodes[node.0].disk.remove(&object);
                    self.repair.corruptions_detected += 1;
                    self.trace.with(|t| t.add("dcache.corruptions_detected", 1));
                }
                None => {}
            }
        }
        if clean.is_empty() {
            // Blocked: no clean live source. Stay queued until a replica's
            // node recovers (the object reads as Unavailable meanwhile).
            self.repair_queue.insert(object);
            return false;
        }

        // Restore missing copies walking the ring from home + 1, the same
        // order `put` uses, so repaired placement matches fresh placement.
        let mut new_replicas = clean;
        let mut restored = 0u64;
        for i in 0..n {
            if new_replicas.len() >= want {
                break;
            }
            let candidate = NodeId((meta.home.0 + 1 + i) % n);
            if !self.nodes[candidate.0].alive || new_replicas.contains(&candidate) {
                continue;
            }
            self.nodes[candidate.0].disk.insert(
                object,
                DiskCopy {
                    bytes: meta.bytes,
                    epoch: meta.epoch,
                    checksum: meta.checksum,
                },
            );
            new_replicas.push(candidate);
            restored += 1;
            self.repair.copies_restored += 1;
            self.repair.repair_bytes += meta.bytes;
            // Source disk read + network transfer + target disk write.
            let cost = lat.per_op_seconds
                + 2.0 * meta.bytes as f64 / lat.disk_bytes_per_second
                + meta.bytes as f64 / lat.network_bytes_per_second;
            self.repair.repair_seconds += cost;
            self.trace.with(|t| {
                let tr = t.track(TRACE_TRACK);
                let s = t.leaf_seconds(
                    tr,
                    SpanKind::Repair,
                    format!("re-replicate {} -> n{}", object.0, candidate.0),
                    cost,
                );
                t.arg(s, "bytes", meta.bytes);
                t.add("dcache.repair.copies_restored", 1);
                t.add("dcache.repair.bytes", meta.bytes);
            });
        }
        new_replicas.sort_unstable();
        let under_target = new_replicas.len() < want;
        let meta_mut = self.index.get_mut(&object).expect("indexed above");
        meta_mut.replicas = new_replicas.clone();
        if !self.nodes[meta_mut.home.0].alive {
            // Re-home onto a surviving replica holder so future reads can
            // use the memory tier again.
            meta_mut.home = new_replicas[0];
        }
        if under_target {
            self.repair_queue.insert(object);
        }
        if restored > 0 {
            self.repair.repaired_objects += 1;
            true
        } else {
            false
        }
    }

    /// Verifies every reachable persistent copy against its expected
    /// checksum, discarding corrupt ones (and, with repair enabled,
    /// enqueueing the affected objects — including any found
    /// under-replicated). Background work metered in [`RepairStats`].
    /// Returns the number of corrupt copies found this pass.
    pub fn scrub(&mut self) -> u64 {
        self.repair.scrub_passes += 1;
        let pass = self.repair.scrub_passes;
        let scrub_span = self.trace.with(|t| {
            let tr = t.track(TRACE_TRACK);
            t.add("dcache.scrub.passes", 1);
            t.begin(tr, SpanKind::Scrub, format!("scrub pass {pass}"))
        });
        let lat = self.config.latency;
        let want = self.want_replicas();
        let mut ids: Vec<ObjectId> = self.index.keys().copied().collect();
        ids.sort_unstable();
        let mut found = 0u64;
        for object in ids {
            let meta = self.index[&object].clone();
            let mut members = meta.replicas.clone();
            members.sort_unstable();
            members.dedup();
            let mut live_clean = 0usize;
            let mut obj_copies = 0u64;
            let mut obj_seconds = 0.0f64;
            for node in members {
                if !self.nodes[node.0].alive {
                    continue;
                }
                let Some(copy) = self.nodes[node.0].disk.get(&object).copied() else {
                    continue;
                };
                self.repair.scrubbed_copies += 1;
                self.repair.scrub_bytes += meta.bytes;
                let cost = lat.per_op_seconds + meta.bytes as f64 / lat.disk_bytes_per_second;
                self.repair.scrub_seconds += cost;
                obj_copies += 1;
                obj_seconds += cost;
                if copy.checksum == meta.checksum {
                    live_clean += 1;
                } else {
                    self.nodes[node.0].disk.remove(&object);
                    self.repair.corruptions_detected += 1;
                    found += 1;
                    self.trace.with(|t| t.add("dcache.corruptions_detected", 1));
                }
            }
            if obj_copies > 0 {
                self.trace.with(|t| {
                    let tr = t.track(TRACE_TRACK);
                    let s = t.leaf_seconds(
                        tr,
                        SpanKind::Scrub,
                        format!("scrub {}", object.0),
                        obj_seconds,
                    );
                    t.arg(s, "copies", obj_copies);
                    t.add("dcache.scrub.copies", obj_copies);
                    t.add("dcache.scrub.bytes", obj_copies * meta.bytes);
                });
            }
            if live_clean < want {
                self.enqueue_repair(object);
            }
        }
        self.trace.with(|t| {
            if let Some(s) = scrub_span {
                t.arg(s, "corrupt_found", found);
                t.end(s);
            }
        });
        found
    }

    /// Drops the master index and the repair queue, modeling a master
    /// crash with no persisted checkpoint. Node disks are untouched;
    /// [`DistributedCache::rebuild_master`] reconstructs the index from
    /// them. Returns how many entries were lost.
    pub fn lose_master(&mut self) -> usize {
        let n = self.index.len();
        self.index.clear();
        self.repair_queue.clear();
        n
    }

    /// Rebuilds the master index from the surviving nodes' disk
    /// inventories, deterministically: objects are reconstructed in id
    /// order, each copy set majority-votes its `(bytes, epoch, checksum)`
    /// (ties break to the smallest tuple), and dissenting copies are
    /// discarded as corrupt. The home becomes the lowest live node whose
    /// memory tier still holds the object, else the lowest replica
    /// holder. Objects whose every copy sat on failed nodes are not
    /// reindexed — reads fail `NotFound` and the engine recomputes them
    /// (the paper's last-resort recovery). Returns how many objects were
    /// reindexed.
    pub fn rebuild_master(&mut self) -> u64 {
        self.repair.master_rebuilds += 1;
        let rebuild_span = self.trace.with(|t| {
            let tr = t.track(TRACE_TRACK);
            t.add("dcache.master.rebuilds", 1);
            t.begin(tr, SpanKind::Repair, "rebuild master")
        });
        let lat = self.config.latency;
        let mut inventory: BTreeMap<ObjectId, Vec<(NodeId, DiskCopy)>> = BTreeMap::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if !node.alive {
                continue;
            }
            for (object, copy) in &node.disk {
                inventory
                    .entry(*object)
                    .or_default()
                    .push((NodeId(i), *copy));
            }
        }
        let mut reindexed = 0u64;
        for (object, mut copies) in inventory {
            copies.sort_unstable_by_key(|(node, _)| *node);
            // Index-rebuild RPC cost: one inventory round per copy.
            let cost = lat.per_op_seconds * copies.len() as f64;
            self.repair.repair_seconds += cost;
            self.trace.with(|t| {
                let tr = t.track(TRACE_TRACK);
                let s = t.leaf_seconds(tr, SpanKind::Repair, format!("reindex {}", object.0), cost);
                t.arg(s, "copies", copies.len() as u64);
            });
            // Checksums are content-derived, so each copy self-verifies:
            // a corrupt copy cannot even cast a vote.
            let mut verified: Vec<(NodeId, DiskCopy)> = Vec::new();
            for (node, copy) in copies {
                if content_checksum(object.0, copy.bytes, copy.epoch) == copy.checksum {
                    verified.push((node, copy));
                } else {
                    self.nodes[node.0].disk.remove(&object);
                    self.repair.corruptions_detected += 1;
                    self.trace.with(|t| t.add("dcache.corruptions_detected", 1));
                }
            }
            if verified.is_empty() {
                continue; // every surviving copy was corrupt
            }
            // The self-consistent copies can still disagree (a stale epoch
            // from an unclean recovery): majority-vote the content, ties
            // breaking to the newest epoch then smallest tuple.
            let mut votes: BTreeMap<(u64, u64, u64), Vec<NodeId>> = BTreeMap::new();
            for (node, copy) in &verified {
                votes
                    .entry((copy.epoch, copy.bytes, copy.checksum))
                    .or_default()
                    .push(*node);
            }
            let mut winner: Option<((u64, u64, u64), Vec<NodeId>)> = None;
            for (key, holders) in &votes {
                // `>=` over ascending (epoch, ...) keys: ties keep the
                // highest epoch, deterministically.
                if winner
                    .as_ref()
                    .is_none_or(|(_, w)| holders.len() >= w.len())
                {
                    winner = Some((*key, holders.clone()));
                }
            }
            let ((epoch, bytes, checksum), replicas) = winner.expect("verified copies exist");
            for (node, copy) in &verified {
                if (copy.epoch, copy.bytes, copy.checksum) != (epoch, bytes, checksum) {
                    self.nodes[node.0].disk.remove(&object);
                    self.repair.stale_copies_purged += 1;
                    self.trace.with(|t| t.add("dcache.stale_copies_purged", 1));
                }
            }
            let home = (0..self.nodes.len())
                .map(NodeId)
                .find(|node| {
                    self.nodes[node.0].alive && self.nodes[node.0].memory.contains(object.0)
                })
                .unwrap_or(replicas[0]);
            self.index.insert(
                object,
                ObjectMeta {
                    bytes,
                    home,
                    replicas: replicas.clone(),
                    epoch,
                    checksum,
                },
            );
            reindexed += 1;
            self.repair.objects_reindexed += 1;
            self.trace.with(|t| t.add("dcache.master.reindexed", 1));
            if replicas.len() < self.want_replicas() {
                self.enqueue_repair(object);
            }
        }
        self.trace.with(|t| {
            if let Some(s) = rebuild_span {
                t.arg(s, "reindexed", reindexed);
                t.end(s);
            }
        });
        reindexed
    }

    /// Objects currently queued for background re-replication.
    pub fn pending_repairs(&self) -> usize {
        self.repair_queue.len()
    }

    /// Indexed objects with fewer clean live copies than the current
    /// replication target (`replicas`, clamped to the live node count).
    pub fn under_replicated(&self) -> usize {
        let want = self.want_replicas();
        self.index
            .iter()
            .filter(|(id, m)| {
                let live_clean = m
                    .replicas
                    .iter()
                    .filter(|r| {
                        self.nodes[r.0].alive
                            && self.nodes[r.0]
                                .disk
                                .get(id)
                                .is_some_and(|c| c.checksum == m.checksum)
                    })
                    .count();
                live_clean < want
            })
            .count()
    }

    /// The persistent replica holders of `object`, if indexed (placement
    /// introspection for schedulers and tests).
    pub fn replicas_of(&self, object: ObjectId) -> Option<&[NodeId]> {
        self.index.get(&object).map(|m| m.replicas.as_slice())
    }

    /// The home (memory-tier) node of `object`, if indexed. Schedulers use
    /// this for memoization-aware placement.
    pub fn home_of(&self, object: ObjectId) -> Option<NodeId> {
        self.index.get(&object).map(|m| m.home)
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Total indexed bytes (logical, not counting replication).
    pub fn indexed_bytes(&self) -> u64 {
        self.index.values().map(|m| m.bytes).sum()
    }

    /// Foreground statistics so far.
    pub fn stats(&self) -> CacheStats {
        let mut stats = self.stats;
        // The per-node stores are the authoritative eviction counters.
        stats.evictions = self.nodes.iter().map(|n| n.memory.evictions()).sum();
        stats
    }

    /// Per-namespace accounting for `namespace`: accumulated counters plus
    /// a live census of the index. Namespaces the cache has never seen
    /// return all zeros.
    pub fn namespace_stats(&self, namespace: u32) -> NamespaceStats {
        let mut stats = self.namespaces.get(&namespace).copied().unwrap_or_default();
        for (id, meta) in &self.index {
            if id.namespace() == namespace {
                stats.live_objects += 1;
                stats.live_bytes += meta.bytes;
            }
        }
        stats
    }

    /// Every namespace with recorded activity, in ascending order.
    pub fn active_namespaces(&self) -> Vec<u32> {
        self.namespaces.keys().copied().collect()
    }

    /// Background self-healing statistics so far.
    pub fn repair_stats(&self) -> RepairStats {
        self.repair
    }

    /// The configuration in use (after replica clamping).
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(nodes: usize) -> DistributedCache {
        DistributedCache::new(CacheConfig::paper_defaults(nodes))
    }

    #[test]
    fn local_memory_read_is_fastest() {
        let mut c = cache(4);
        c.put(ObjectId(1), 1 << 20, NodeId(0), 0);
        let mem = c.read(ObjectId(1), NodeId(0)).unwrap();
        assert_eq!(mem.source, ReadSource::Memory);

        // Same object read from another node goes over the network.
        let remote = c.read(ObjectId(1), NodeId(2)).unwrap();
        assert_eq!(remote.source, ReadSource::RemoteMemory);
        assert!(remote.seconds > mem.seconds);
    }

    #[test]
    fn disabled_memory_tier_reads_disk() {
        let mut config = CacheConfig::paper_defaults(4);
        config.memory_enabled = false;
        let mut c = DistributedCache::new(config);
        c.put(ObjectId(1), 1 << 20, NodeId(0), 0);
        // Replicas land on nodes 1 and 2; reading from node 1 is local disk.
        let out = c.read(ObjectId(1), NodeId(1)).unwrap();
        assert_eq!(out.source, ReadSource::LocalDisk);
        let out = c.read(ObjectId(1), NodeId(3)).unwrap();
        assert_eq!(out.source, ReadSource::RemoteDisk);
    }

    #[test]
    fn memory_tier_is_faster_than_disk() {
        let bytes = 64 << 20;
        let mut with_mem = cache(4);
        with_mem.put(ObjectId(1), bytes, NodeId(0), 0);
        let fast = with_mem.read(ObjectId(1), NodeId(0)).unwrap().seconds;

        let mut config = CacheConfig::paper_defaults(4);
        config.memory_enabled = false;
        let mut no_mem = DistributedCache::new(config);
        no_mem.put(ObjectId(1), bytes, NodeId(0), 0);
        let slow = no_mem.read(ObjectId(1), NodeId(0)).unwrap().seconds;
        assert!(
            slow > 2.0 * fast,
            "disk ({slow}) should be much slower than memory ({fast})"
        );
    }

    #[test]
    fn node_failure_falls_back_to_replicas() {
        let mut c = cache(4);
        c.put(ObjectId(1), 1024, NodeId(0), 0);
        c.fail_node(NodeId(0));
        // Memory copy is gone; replicas on nodes 1 and 2 still serve.
        let out = c.read(ObjectId(1), NodeId(1)).unwrap();
        assert_eq!(out.source, ReadSource::LocalDisk);

        // All replicas down -> unavailable.
        c.fail_node(NodeId(1));
        c.fail_node(NodeId(2));
        assert_eq!(
            c.read(ObjectId(1), NodeId(3)).unwrap_err(),
            CacheError::Unavailable(ObjectId(1))
        );
        assert_eq!(c.stats().unavailable_reads, 1);
        assert_eq!(c.stats().not_found_reads, 0);
        assert_eq!(c.stats().failed_reads(), 1);

        // Recovery restores service.
        c.recover_node(NodeId(1));
        assert!(c.read(ObjectId(1), NodeId(3)).is_ok());
    }

    #[test]
    fn read_promotes_back_into_memory() {
        let mut c = cache(4);
        c.put(ObjectId(1), 1024, NodeId(0), 0);
        c.fail_node(NodeId(0));
        c.recover_node(NodeId(0)); // memory wiped, disk replicas intact
        let first = c.read(ObjectId(1), NodeId(0)).unwrap();
        assert!(matches!(
            first.source,
            ReadSource::LocalDisk | ReadSource::RemoteDisk
        ));
        let second = c.read(ObjectId(1), NodeId(0)).unwrap();
        assert_eq!(
            second.source,
            ReadSource::Memory,
            "promotion re-warms memory"
        );
    }

    #[test]
    fn window_gc_collects_expired_epochs() {
        let mut c = cache(2);
        c.put(ObjectId(1), 10, NodeId(0), 0);
        c.put(ObjectId(2), 10, NodeId(0), 5);
        let collected = c.collect_garbage(6);
        assert_eq!(collected, 1, "epoch 0 expired, epoch 5 within horizon");
        assert!(c.read(ObjectId(1), NodeId(0)).is_err());
        assert!(c.read(ObjectId(2), NodeId(0)).is_ok());
        assert_eq!(c.stats().collected, 1);
    }

    #[test]
    fn aggressive_gc_respects_byte_budget() {
        let mut config = CacheConfig::paper_defaults(2);
        config.gc = GcPolicy::Aggressive {
            max_total_bytes: 25,
        };
        let mut c = DistributedCache::new(config);
        c.put(ObjectId(1), 10, NodeId(0), 0);
        c.put(ObjectId(2), 10, NodeId(0), 1);
        c.put(ObjectId(3), 10, NodeId(0), 2);
        let collected = c.collect_garbage(3);
        assert_eq!(collected, 1, "oldest epoch evicted to fit 25 bytes");
        assert!(c.read(ObjectId(1), NodeId(0)).is_err());
        assert_eq!(c.indexed_bytes(), 20);
    }

    #[test]
    fn aggressive_gc_boundary_and_tie_break() {
        // Three equal-epoch objects totalling exactly the budget: nothing
        // may be evicted at `total == max_total_bytes`.
        let mut config = CacheConfig::paper_defaults(2);
        config.gc = GcPolicy::Aggressive {
            max_total_bytes: 30,
        };
        let mut c = DistributedCache::new(config.clone());
        for id in [3u64, 1, 2] {
            c.put(ObjectId(id), 10, NodeId(0), 7);
        }
        assert_eq!(c.collect_garbage(8), 0, "exact budget evicts nothing");
        assert_eq!(c.indexed_bytes(), 30);

        // One byte over budget: the equal-epoch tie must break on the
        // lowest object id, regardless of insertion (and map) order.
        config.gc = GcPolicy::Aggressive {
            max_total_bytes: 29,
        };
        let mut c = DistributedCache::new(config);
        for id in [3u64, 1, 2] {
            c.put(ObjectId(id), 10, NodeId(0), 7);
        }
        assert_eq!(c.collect_garbage(8), 1);
        assert!(c.read(ObjectId(1), NodeId(0)).is_err(), "lowest id evicts");
        assert!(c.read(ObjectId(2), NodeId(0)).is_ok());
        assert!(c.read(ObjectId(3), NodeId(0)).is_ok());
    }

    #[test]
    fn lost_objects_fail_reads_until_recomputed() {
        let mut c = cache(3);
        c.put(ObjectId(1), 10, NodeId(0), 0);
        c.put(ObjectId(2), 10, NodeId(1), 0);
        c.put(ObjectId(3), 10, NodeId(1), 1);
        assert!(c.lose_object(ObjectId(1)));
        assert!(!c.lose_object(ObjectId(1)), "already gone");
        assert_eq!(
            c.read(ObjectId(1), NodeId(0)).unwrap_err(),
            CacheError::NotFound(ObjectId(1))
        );
        assert_eq!(c.lose_epoch(0), 1, "object 2 was epoch 0");
        assert!(c.read(ObjectId(2), NodeId(0)).is_err());
        assert!(c.read(ObjectId(3), NodeId(0)).is_ok());
        // Recompute-and-re-put restores service.
        c.put(ObjectId(1), 10, NodeId(0), 2);
        assert!(c.read(ObjectId(1), NodeId(0)).is_ok());
    }

    #[test]
    fn missing_object_is_not_found() {
        let mut c = cache(2);
        assert_eq!(
            c.read(ObjectId(9), NodeId(0)).unwrap_err(),
            CacheError::NotFound(ObjectId(9))
        );
        assert_eq!(c.stats().not_found_reads, 1);
        assert_eq!(c.stats().unavailable_reads, 0);
        assert_eq!(c.stats().failed_reads(), 1);
    }

    #[test]
    fn unknown_reader_is_rejected() {
        let mut c = cache(2);
        c.put(ObjectId(1), 10, NodeId(0), 0);
        assert_eq!(
            c.read(ObjectId(1), NodeId(7)).unwrap_err(),
            CacheError::UnknownNode(NodeId(7))
        );
    }

    #[test]
    fn home_lookup_supports_scheduling() {
        let mut c = cache(3);
        c.put(ObjectId(1), 10, NodeId(2), 0);
        assert_eq!(c.home_of(ObjectId(1)), Some(NodeId(2)));
        assert_eq!(c.home_of(ObjectId(2)), None);
    }

    #[test]
    fn eviction_spills_to_disk_replicas() {
        let mut config = CacheConfig::paper_defaults(3);
        config.memory_capacity_bytes = 100;
        let mut c = DistributedCache::new(config);
        c.put(ObjectId(1), 80, NodeId(0), 0);
        c.put(ObjectId(2), 80, NodeId(0), 0); // evicts 1 from memory
        let out = c.read(ObjectId(1), NodeId(0)).unwrap();
        assert!(
            matches!(out.source, ReadSource::LocalDisk | ReadSource::RemoteDisk),
            "evicted object must still be readable from disk, got {:?}",
            out.source
        );
    }

    #[test]
    fn oversubscribed_replication_is_clamped_and_distinct() {
        // Regression: replicas >= nodes used to wrap the ring back onto
        // the home node and place duplicate copies.
        for replicas in [3, 5] {
            let mut config = CacheConfig::paper_defaults(3);
            config.replicas = replicas;
            let c = DistributedCache::new(config);
            assert_eq!(c.config().replicas, 3, "clamped to the node count");
            let mut c = c;
            c.put(ObjectId(1), 10, NodeId(1), 0);
            let placed = c.replicas_of(ObjectId(1)).unwrap();
            assert_eq!(placed.len(), 3);
            let distinct: BTreeSet<NodeId> = placed.iter().copied().collect();
            assert_eq!(distinct.len(), 3, "no duplicates: {placed:?}");
        }
    }

    #[test]
    fn fault_free_runs_have_zero_repair_cost() {
        let mut c = DistributedCache::new(CacheConfig::paper_defaults(4).with_repair());
        for id in 0..8u64 {
            c.put(
                ObjectId(id),
                1024,
                NodeId(usize::try_from(id % 4).unwrap()),
                0,
            );
            c.read(ObjectId(id), NodeId(0)).unwrap();
        }
        assert_eq!(c.drain_repairs(), 0);
        assert_eq!(c.pending_repairs(), 0);
        assert!(c.repair_stats().is_zero(), "{:?}", c.repair_stats());
    }

    #[test]
    fn failed_node_triggers_re_replication() {
        let mut c = DistributedCache::new(CacheConfig::paper_defaults(4).with_repair());
        c.put(ObjectId(1), 1024, NodeId(0), 0); // replicas on 1, 2
        c.fail_node(NodeId(1));
        assert_eq!(c.under_replicated(), 1);
        assert_eq!(c.pending_repairs(), 1);
        let repaired = c.drain_repairs();
        assert_eq!(repaired, 1);
        assert_eq!(c.under_replicated(), 0);
        assert_eq!(c.pending_repairs(), 0);
        let stats = c.repair_stats();
        assert_eq!(stats.copies_restored, 1);
        assert_eq!(stats.repair_bytes, 1024);
        assert!(stats.repair_seconds > 0.0);
        // Foreground stats untouched by background repair.
        assert_eq!(c.stats().bytes_read, 0);

        // The failed node's copy is now surplus; a second failure of the
        // other original replica must not lose the object.
        c.fail_node(NodeId(2));
        c.drain_repairs();
        assert!(c.read(ObjectId(1), NodeId(3)).is_ok());
    }

    #[test]
    fn corrupt_copies_are_never_served() {
        let mut config = CacheConfig::paper_defaults(4).with_repair();
        config.memory_enabled = false; // force every read through disk
        let mut c = DistributedCache::new(config);
        c.put(ObjectId(1), 1024, NodeId(0), 0); // replicas on 1, 2
        assert!(c.corrupt_object(ObjectId(1), NodeId(1)));
        // The read skips the corrupt copy on node 1 and serves node 2.
        let out = c.read(ObjectId(1), NodeId(1)).unwrap();
        assert_eq!(out.source, ReadSource::RemoteDisk);
        assert_eq!(c.repair_stats().corruptions_detected, 1);
        // Repair restores a clean copy in the corrupt one's place.
        assert_eq!(c.drain_repairs(), 1);
        assert_eq!(c.under_replicated(), 0);
        let local = c.read(ObjectId(1), NodeId(1)).unwrap();
        assert_eq!(local.source, ReadSource::LocalDisk, "copy re-replicated");
    }

    #[test]
    fn corrupting_every_copy_makes_the_object_unavailable() {
        let mut config = CacheConfig::paper_defaults(4);
        config.memory_enabled = false;
        let mut c = DistributedCache::new(config);
        c.put(ObjectId(1), 1024, NodeId(0), 0);
        assert!(c.corrupt_object(ObjectId(1), NodeId(1)));
        assert!(c.corrupt_object(ObjectId(1), NodeId(2)));
        assert_eq!(
            c.read(ObjectId(1), NodeId(0)).unwrap_err(),
            CacheError::Unavailable(ObjectId(1)),
            "a corrupt copy must never be served"
        );
        assert_eq!(c.repair_stats().corruptions_detected, 2);
    }

    #[test]
    fn scrub_detects_and_schedules_repair() {
        let mut c = DistributedCache::new(CacheConfig::paper_defaults(4).with_repair());
        c.put(ObjectId(1), 1024, NodeId(0), 0);
        c.put(ObjectId(2), 2048, NodeId(1), 0);
        assert!(c.corrupt_object(ObjectId(2), NodeId(2)));
        let found = c.scrub();
        assert_eq!(found, 1);
        let stats = c.repair_stats();
        assert_eq!(stats.scrub_passes, 1);
        assert_eq!(stats.scrubbed_copies, 4, "2 objects x 2 copies");
        assert!(stats.scrub_seconds > 0.0);
        assert_eq!(c.pending_repairs(), 1);
        assert_eq!(c.drain_repairs(), 1);
        assert_eq!(c.under_replicated(), 0);
        assert_eq!(c.scrub(), 0, "second pass finds a healthy cluster");
    }

    #[test]
    fn lose_replica_heals_back() {
        let mut c = DistributedCache::new(CacheConfig::paper_defaults(4).with_repair());
        c.put(ObjectId(1), 512, NodeId(0), 0);
        assert!(c.lose_replica(ObjectId(1), NodeId(1)));
        assert!(!c.lose_replica(ObjectId(1), NodeId(3)), "no copy there");
        assert_eq!(c.under_replicated(), 1);
        assert_eq!(c.drain_repairs(), 1);
        assert_eq!(c.under_replicated(), 0);
    }

    #[test]
    fn stale_copies_do_not_resurrect_on_recovery() {
        let mut c = cache(4);
        c.put(ObjectId(1), 1024, NodeId(0), 0); // replicas on 1, 2
        c.fail_node(NodeId(1));
        // Deleted while node 1 is down: its copy cannot be reached.
        c.delete(ObjectId(1));
        c.recover_node(NodeId(1));
        assert_eq!(c.repair_stats().stale_copies_purged, 1);
        assert_eq!(
            c.read(ObjectId(1), NodeId(1)).unwrap_err(),
            CacheError::NotFound(ObjectId(1)),
            "the stale copy must not resurrect the object"
        );
        // Even a master rebuild cannot see the purged copy.
        c.lose_master();
        assert_eq!(c.rebuild_master(), 0);
    }

    #[test]
    fn rewritten_objects_purge_old_epochs_on_recovery() {
        let mut c = cache(4);
        c.put(ObjectId(1), 1024, NodeId(0), 0);
        c.fail_node(NodeId(1));
        // Rewritten at a later epoch while node 1 is down: node 1 still
        // holds the epoch-0 copy.
        c.put(ObjectId(1), 1024, NodeId(0), 3);
        c.recover_node(NodeId(1));
        assert_eq!(c.repair_stats().stale_copies_purged, 1);
        // Node 2's fresh copy serves; the object stays consistent.
        assert!(c.read(ObjectId(1), NodeId(3)).is_ok());
    }

    #[test]
    fn master_rebuild_recovers_the_index_from_disks() {
        let mut c = cache(4);
        for id in 0..6u64 {
            c.put(
                ObjectId(id),
                100 + id,
                NodeId(usize::try_from(id % 4).unwrap()),
                1,
            );
        }
        let lost = c.lose_master();
        assert_eq!(lost, 6);
        assert!(c.is_empty());
        assert_eq!(
            c.read(ObjectId(0), NodeId(0)).unwrap_err(),
            CacheError::NotFound(ObjectId(0))
        );
        let rebuilt = c.rebuild_master();
        assert_eq!(rebuilt, 6);
        let stats = c.repair_stats();
        assert_eq!(stats.master_rebuilds, 1);
        assert_eq!(stats.objects_reindexed, 6);
        for id in 0..6u64 {
            let out = c.read(ObjectId(id), NodeId(0)).unwrap();
            assert_eq!(out.bytes, 100 + id, "sizes survive the rebuild");
        }
        // The home follows the surviving memory copy, so post-rebuild
        // reads still hit the memory tier.
        assert_eq!(c.home_of(ObjectId(2)), Some(NodeId(2)));
    }

    #[test]
    fn master_rebuild_votes_out_corrupt_copies() {
        let mut config = CacheConfig::paper_defaults(4);
        config.memory_enabled = false;
        let mut c = DistributedCache::new(config);
        c.put(ObjectId(1), 1024, NodeId(0), 0); // replicas on 1, 2
        assert!(c.corrupt_object(ObjectId(1), NodeId(1)));
        c.lose_master();
        assert_eq!(c.rebuild_master(), 1);
        assert_eq!(c.repair_stats().corruptions_detected, 1);
        let out = c.read(ObjectId(1), NodeId(2)).unwrap();
        assert_eq!(out.source, ReadSource::LocalDisk, "clean copy won the vote");
        assert_eq!(c.replicas_of(ObjectId(1)).unwrap(), &[NodeId(2)]);
    }

    #[test]
    fn objects_lost_with_all_replicas_stay_lost_after_rebuild() {
        let mut c = cache(4);
        c.put(ObjectId(1), 1024, NodeId(0), 0); // replicas on 1, 2
        c.fail_node(NodeId(1));
        c.fail_node(NodeId(2));
        c.lose_master();
        assert_eq!(c.rebuild_master(), 0, "no surviving copy to index");
        assert_eq!(
            c.read(ObjectId(1), NodeId(0)).unwrap_err(),
            CacheError::NotFound(ObjectId(1)),
            "recomputation is the last resort"
        );
    }
}
