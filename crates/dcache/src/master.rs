//! The master-coordinated distributed cache with the shim I/O layer.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::gc::GcPolicy;
use crate::store::InMemoryStore;

/// Identifies a slave node of the memoization layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// Identifies a memoized object (a contraction-tree node or task output).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u64);

/// Latency model of the storage tiers, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Fixed overhead per operation (index lookup, RPC to the master).
    pub per_op_seconds: f64,
    /// Memory-tier read bandwidth, bytes/second.
    pub memory_bytes_per_second: f64,
    /// Persistent-tier (disk) read bandwidth, bytes/second.
    pub disk_bytes_per_second: f64,
    /// Network bandwidth for non-local reads, bytes/second.
    pub network_bytes_per_second: f64,
}

impl LatencyModel {
    /// Defaults loosely calibrated to 2014-era hardware (DDR vs. SATA disk
    /// vs. GbE); only ratios matter for the reproduced shapes.
    pub fn paper_defaults() -> Self {
        LatencyModel {
            per_op_seconds: 0.000_5,
            memory_bytes_per_second: 4.0e9,
            disk_bytes_per_second: 120.0e6,
            network_bytes_per_second: 110.0e6,
        }
    }
}

/// Configuration of the distributed memoization layer.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Number of slave nodes.
    pub nodes: usize,
    /// Per-node memory-tier capacity, bytes.
    pub memory_capacity_bytes: u64,
    /// Whether the in-memory tier is enabled (Table 2 disables it to
    /// quantify the savings).
    pub memory_enabled: bool,
    /// Number of persistent replicas per object (the paper uses 2).
    pub replicas: usize,
    /// Latency model.
    pub latency: LatencyModel,
    /// Garbage-collection policy.
    pub gc: GcPolicy,
}

impl CacheConfig {
    /// Paper-like defaults for an `nodes`-worker cluster: 2 persistent
    /// replicas, 1 GiB of memoization memory per node, window-based GC.
    pub fn paper_defaults(nodes: usize) -> Self {
        CacheConfig {
            nodes,
            memory_capacity_bytes: 1 << 30,
            memory_enabled: true,
            replicas: 2,
            latency: LatencyModel::paper_defaults(),
            gc: GcPolicy::WindowBased { horizon: 1 },
        }
    }
}

/// Where a read was ultimately served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReadSource {
    /// In-memory tier on the reading node.
    Memory,
    /// In-memory tier on a remote node (network + memory).
    RemoteMemory,
    /// Persistent tier on the reading node.
    LocalDisk,
    /// Persistent tier on a remote node (network + disk).
    RemoteDisk,
}

/// Result of a successful read through the shim I/O layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadOutcome {
    /// Simulated seconds the read took.
    pub seconds: f64,
    /// Tier and locality that served it.
    pub source: ReadSource,
    /// Object size in bytes.
    pub bytes: u64,
}

/// Errors surfaced by cache operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CacheError {
    /// The object is not in the index (never stored, or collected).
    NotFound(ObjectId),
    /// The object is indexed but every replica is on failed nodes.
    Unavailable(ObjectId),
    /// A node id outside the configured cluster was used.
    UnknownNode(NodeId),
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::NotFound(id) => write!(f, "object {} not found", id.0),
            CacheError::Unavailable(id) => {
                write!(
                    f,
                    "object {} unavailable: all replicas on failed nodes",
                    id.0
                )
            }
            CacheError::UnknownNode(n) => write!(f, "unknown node n{}", n.0),
        }
    }
}

impl Error for CacheError {}

/// Aggregate statistics of the memoization layer.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CacheStats {
    /// Reads served by the local or remote memory tier.
    pub memory_hits: u64,
    /// Reads that fell back to a persistent replica.
    pub disk_reads: u64,
    /// Failed reads (object unavailable or collected).
    pub failed_reads: u64,
    /// Total simulated read seconds.
    pub read_seconds: f64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Objects collected by the garbage collector.
    pub collected: u64,
    /// Memory-tier evictions across all nodes.
    pub evictions: u64,
}

#[derive(Debug, Clone)]
struct ObjectMeta {
    bytes: u64,
    /// Node whose memory tier holds the object (its "home").
    home: NodeId,
    /// Nodes holding persistent replicas.
    replicas: Vec<NodeId>,
    /// Epoch tag for window-based GC (the run that produced the object).
    epoch: u64,
}

#[derive(Debug)]
struct Node {
    memory: InMemoryStore,
    /// Persistent objects on this node (object -> bytes). Unbounded.
    disk: HashMap<ObjectId, u64>,
    alive: bool,
}

/// The distributed, fault-tolerant memoization cache (paper §6, Figure 6).
///
/// The master (this struct) keeps the object index; slaves hold an
/// in-memory tier plus persistent replicas. See the crate docs for an
/// example.
#[derive(Debug)]
pub struct DistributedCache {
    config: CacheConfig,
    nodes: Vec<Node>,
    index: HashMap<ObjectId, ObjectMeta>,
    stats: CacheStats,
}

impl DistributedCache {
    /// Creates the cache with `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero nodes or zero replicas.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.nodes > 0, "cache needs at least one node");
        assert!(
            config.replicas > 0,
            "cache needs at least one persistent replica"
        );
        let nodes = (0..config.nodes)
            .map(|_| Node {
                memory: InMemoryStore::new(config.memory_capacity_bytes),
                disk: HashMap::new(),
                alive: true,
            })
            .collect();
        DistributedCache {
            config,
            nodes,
            index: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Stores `object` of `bytes` with its memory copy on `home` and
    /// `replicas` persistent copies on the following nodes, tagged with the
    /// GC `epoch` of the producing run.
    ///
    /// # Panics
    ///
    /// Panics if `home` is outside the cluster.
    pub fn put(&mut self, object: ObjectId, bytes: u64, home: NodeId, epoch: u64) {
        assert!(home.0 < self.nodes.len(), "unknown home node {home:?}");
        let replicas: Vec<NodeId> = (0..self.config.replicas)
            .map(|i| NodeId((home.0 + 1 + i) % self.nodes.len()))
            .collect();
        if self.config.memory_enabled && self.nodes[home.0].alive {
            self.nodes[home.0].memory.put(object.0, bytes);
        }
        for &replica in &replicas {
            if self.nodes[replica.0].alive {
                self.nodes[replica.0].disk.insert(object, bytes);
            }
        }
        self.index.insert(
            object,
            ObjectMeta {
                bytes,
                home,
                replicas,
                epoch,
            },
        );
    }

    /// Reads `object` from the perspective of `reader` through the shim
    /// layer: memory first, then persistent replicas (local preferred).
    ///
    /// # Errors
    ///
    /// [`CacheError::NotFound`] if the object was never stored or was
    /// collected; [`CacheError::Unavailable`] if every replica is on failed
    /// nodes; [`CacheError::UnknownNode`] for an out-of-range reader.
    pub fn read(&mut self, object: ObjectId, reader: NodeId) -> Result<ReadOutcome, CacheError> {
        if reader.0 >= self.nodes.len() {
            return Err(CacheError::UnknownNode(reader));
        }
        let meta = match self.index.get(&object) {
            Some(m) => m.clone(),
            None => {
                self.stats.failed_reads += 1;
                return Err(CacheError::NotFound(object));
            }
        };
        let lat = self.config.latency;

        // 1. Memory tier on the home node.
        if self.config.memory_enabled && self.nodes[meta.home.0].alive {
            let hit = self.nodes[meta.home.0].memory.get(object.0).is_some();
            if hit {
                let (source, seconds) = if meta.home == reader {
                    (
                        ReadSource::Memory,
                        lat.per_op_seconds + meta.bytes as f64 / lat.memory_bytes_per_second,
                    )
                } else {
                    (
                        ReadSource::RemoteMemory,
                        lat.per_op_seconds + meta.bytes as f64 / lat.network_bytes_per_second,
                    )
                };
                self.stats.memory_hits += 1;
                self.stats.read_seconds += seconds;
                self.stats.bytes_read += meta.bytes;
                return Ok(ReadOutcome {
                    seconds,
                    source,
                    bytes: meta.bytes,
                });
            }
        }

        // 2. Persistent tier: prefer a replica on the reading node.
        let replica = meta
            .replicas
            .iter()
            .copied()
            .filter(|r| self.nodes[r.0].alive && self.nodes[r.0].disk.contains_key(&object))
            .min_by_key(|r| if *r == reader { 0 } else { 1 });
        let Some(replica) = replica else {
            self.stats.failed_reads += 1;
            return Err(CacheError::Unavailable(object));
        };
        let (source, seconds) = if replica == reader {
            (
                ReadSource::LocalDisk,
                lat.per_op_seconds + meta.bytes as f64 / lat.disk_bytes_per_second,
            )
        } else {
            (
                ReadSource::RemoteDisk,
                lat.per_op_seconds
                    + meta.bytes as f64 / lat.disk_bytes_per_second
                    + meta.bytes as f64 / lat.network_bytes_per_second,
            )
        };
        // Promote back into memory on the home node (re-warm after failure
        // or eviction).
        if self.config.memory_enabled && self.nodes[meta.home.0].alive {
            self.nodes[meta.home.0].memory.put(object.0, meta.bytes);
        }
        self.stats.disk_reads += 1;
        self.stats.read_seconds += seconds;
        self.stats.bytes_read += meta.bytes;
        Ok(ReadOutcome {
            seconds,
            source,
            bytes: meta.bytes,
        })
    }

    /// Deletes `object` everywhere. No-op if absent.
    pub fn delete(&mut self, object: ObjectId) {
        if let Some(meta) = self.index.remove(&object) {
            self.nodes[meta.home.0].memory.remove(object.0);
            for replica in meta.replicas {
                self.nodes[replica.0].disk.remove(&object);
            }
        }
    }

    /// Forcibly loses `object` — index entry, memory copy, and every
    /// persistent replica — as a fault injection. A later read fails with
    /// [`CacheError::NotFound`] and the caller must recompute (Slider's
    /// recovery path: lost memoized state degrades to extra foreground
    /// work, never a wrong answer). Returns whether the object existed.
    pub fn lose_object(&mut self, object: ObjectId) -> bool {
        let existed = self.index.contains_key(&object);
        self.delete(object);
        existed
    }

    /// Forcibly loses every object produced in `epoch` (see
    /// [`DistributedCache::lose_object`]); objects are dropped in id order
    /// so the fault is reproducible. Returns how many were lost.
    pub fn lose_epoch(&mut self, epoch: u64) -> u64 {
        let mut victims: Vec<ObjectId> = self
            .index
            .iter()
            .filter(|(_, m)| m.epoch == epoch)
            .map(|(id, _)| *id)
            .collect();
        victims.sort_unstable();
        let n = victims.len() as u64;
        for victim in victims {
            self.delete(victim);
        }
        n
    }

    /// Runs the configured garbage-collection policy for `current_epoch`,
    /// freeing memoized objects that fell out of the window (§6). Returns
    /// the number of collected objects.
    pub fn collect_garbage(&mut self, current_epoch: u64) -> u64 {
        let victims: Vec<ObjectId> = match self.config.gc {
            GcPolicy::Disabled => Vec::new(),
            GcPolicy::WindowBased { horizon } => {
                let mut victims: Vec<ObjectId> = self
                    .index
                    .iter()
                    .filter(|(_, m)| m.epoch + horizon < current_epoch)
                    .map(|(id, _)| *id)
                    .collect();
                // Sorted so the deletion sequence (not just the final
                // survivor set) is reproducible.
                victims.sort_unstable();
                victims
            }
            GcPolicy::Aggressive { max_total_bytes } => {
                // Evict oldest epochs first until under budget, with the
                // explicit (epoch, id) order of `aggressive_victims` — the
                // index map's iteration order must not pick the survivors.
                let total: u64 = self.index.values().map(|m| m.bytes).sum();
                let entries: Vec<(u64, ObjectId, u64)> = self
                    .index
                    .iter()
                    .map(|(id, m)| (m.epoch, *id, m.bytes))
                    .collect();
                crate::gc::aggressive_victims(entries, total, max_total_bytes)
            }
        };
        let n = victims.len() as u64;
        for victim in victims {
            self.delete(victim);
        }
        self.stats.collected += n;
        n
    }

    /// Crashes `node`: its memory tier is wiped and its disk becomes
    /// unavailable until [`DistributedCache::recover_node`].
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the cluster.
    pub fn fail_node(&mut self, node: NodeId) {
        let n = self.nodes.get_mut(node.0).expect("unknown node");
        n.alive = false;
        n.memory.clear();
    }

    /// Brings `node` back: its persistent objects become readable again
    /// (the memory tier re-warms lazily via read promotion).
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the cluster.
    pub fn recover_node(&mut self, node: NodeId) {
        self.nodes.get_mut(node.0).expect("unknown node").alive = true;
    }

    /// The home (memory-tier) node of `object`, if indexed. Schedulers use
    /// this for memoization-aware placement.
    pub fn home_of(&self, object: ObjectId) -> Option<NodeId> {
        self.index.get(&object).map(|m| m.home)
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Total indexed bytes (logical, not counting replication).
    pub fn indexed_bytes(&self) -> u64 {
        self.index.values().map(|m| m.bytes).sum()
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        let mut stats = self.stats;
        // The per-node stores are the authoritative eviction counters.
        stats.evictions = self.nodes.iter().map(|n| n.memory.evictions()).sum();
        stats
    }

    /// The configuration in use.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(nodes: usize) -> DistributedCache {
        DistributedCache::new(CacheConfig::paper_defaults(nodes))
    }

    #[test]
    fn local_memory_read_is_fastest() {
        let mut c = cache(4);
        c.put(ObjectId(1), 1 << 20, NodeId(0), 0);
        let mem = c.read(ObjectId(1), NodeId(0)).unwrap();
        assert_eq!(mem.source, ReadSource::Memory);

        // Same object read from another node goes over the network.
        let remote = c.read(ObjectId(1), NodeId(2)).unwrap();
        assert_eq!(remote.source, ReadSource::RemoteMemory);
        assert!(remote.seconds > mem.seconds);
    }

    #[test]
    fn disabled_memory_tier_reads_disk() {
        let mut config = CacheConfig::paper_defaults(4);
        config.memory_enabled = false;
        let mut c = DistributedCache::new(config);
        c.put(ObjectId(1), 1 << 20, NodeId(0), 0);
        // Replicas land on nodes 1 and 2; reading from node 1 is local disk.
        let out = c.read(ObjectId(1), NodeId(1)).unwrap();
        assert_eq!(out.source, ReadSource::LocalDisk);
        let out = c.read(ObjectId(1), NodeId(3)).unwrap();
        assert_eq!(out.source, ReadSource::RemoteDisk);
    }

    #[test]
    fn memory_tier_is_faster_than_disk() {
        let bytes = 64 << 20;
        let mut with_mem = cache(4);
        with_mem.put(ObjectId(1), bytes, NodeId(0), 0);
        let fast = with_mem.read(ObjectId(1), NodeId(0)).unwrap().seconds;

        let mut config = CacheConfig::paper_defaults(4);
        config.memory_enabled = false;
        let mut no_mem = DistributedCache::new(config);
        no_mem.put(ObjectId(1), bytes, NodeId(0), 0);
        let slow = no_mem.read(ObjectId(1), NodeId(0)).unwrap().seconds;
        assert!(
            slow > 2.0 * fast,
            "disk ({slow}) should be much slower than memory ({fast})"
        );
    }

    #[test]
    fn node_failure_falls_back_to_replicas() {
        let mut c = cache(4);
        c.put(ObjectId(1), 1024, NodeId(0), 0);
        c.fail_node(NodeId(0));
        // Memory copy is gone; replicas on nodes 1 and 2 still serve.
        let out = c.read(ObjectId(1), NodeId(1)).unwrap();
        assert_eq!(out.source, ReadSource::LocalDisk);

        // All replicas down -> unavailable.
        c.fail_node(NodeId(1));
        c.fail_node(NodeId(2));
        assert_eq!(
            c.read(ObjectId(1), NodeId(3)).unwrap_err(),
            CacheError::Unavailable(ObjectId(1))
        );

        // Recovery restores service.
        c.recover_node(NodeId(1));
        assert!(c.read(ObjectId(1), NodeId(3)).is_ok());
    }

    #[test]
    fn read_promotes_back_into_memory() {
        let mut c = cache(4);
        c.put(ObjectId(1), 1024, NodeId(0), 0);
        c.fail_node(NodeId(0));
        c.recover_node(NodeId(0)); // memory wiped, disk replicas intact
        let first = c.read(ObjectId(1), NodeId(0)).unwrap();
        assert!(matches!(
            first.source,
            ReadSource::LocalDisk | ReadSource::RemoteDisk
        ));
        let second = c.read(ObjectId(1), NodeId(0)).unwrap();
        assert_eq!(
            second.source,
            ReadSource::Memory,
            "promotion re-warms memory"
        );
    }

    #[test]
    fn window_gc_collects_expired_epochs() {
        let mut c = cache(2);
        c.put(ObjectId(1), 10, NodeId(0), 0);
        c.put(ObjectId(2), 10, NodeId(0), 5);
        let collected = c.collect_garbage(6);
        assert_eq!(collected, 1, "epoch 0 expired, epoch 5 within horizon");
        assert!(c.read(ObjectId(1), NodeId(0)).is_err());
        assert!(c.read(ObjectId(2), NodeId(0)).is_ok());
        assert_eq!(c.stats().collected, 1);
    }

    #[test]
    fn aggressive_gc_respects_byte_budget() {
        let mut config = CacheConfig::paper_defaults(2);
        config.gc = GcPolicy::Aggressive {
            max_total_bytes: 25,
        };
        let mut c = DistributedCache::new(config);
        c.put(ObjectId(1), 10, NodeId(0), 0);
        c.put(ObjectId(2), 10, NodeId(0), 1);
        c.put(ObjectId(3), 10, NodeId(0), 2);
        let collected = c.collect_garbage(3);
        assert_eq!(collected, 1, "oldest epoch evicted to fit 25 bytes");
        assert!(c.read(ObjectId(1), NodeId(0)).is_err());
        assert_eq!(c.indexed_bytes(), 20);
    }

    #[test]
    fn aggressive_gc_boundary_and_tie_break() {
        // Three equal-epoch objects totalling exactly the budget: nothing
        // may be evicted at `total == max_total_bytes`.
        let mut config = CacheConfig::paper_defaults(2);
        config.gc = GcPolicy::Aggressive {
            max_total_bytes: 30,
        };
        let mut c = DistributedCache::new(config.clone());
        for id in [3u64, 1, 2] {
            c.put(ObjectId(id), 10, NodeId(0), 7);
        }
        assert_eq!(c.collect_garbage(8), 0, "exact budget evicts nothing");
        assert_eq!(c.indexed_bytes(), 30);

        // One byte over budget: the equal-epoch tie must break on the
        // lowest object id, regardless of insertion (and map) order.
        config.gc = GcPolicy::Aggressive {
            max_total_bytes: 29,
        };
        let mut c = DistributedCache::new(config);
        for id in [3u64, 1, 2] {
            c.put(ObjectId(id), 10, NodeId(0), 7);
        }
        assert_eq!(c.collect_garbage(8), 1);
        assert!(c.read(ObjectId(1), NodeId(0)).is_err(), "lowest id evicts");
        assert!(c.read(ObjectId(2), NodeId(0)).is_ok());
        assert!(c.read(ObjectId(3), NodeId(0)).is_ok());
    }

    #[test]
    fn lost_objects_fail_reads_until_recomputed() {
        let mut c = cache(3);
        c.put(ObjectId(1), 10, NodeId(0), 0);
        c.put(ObjectId(2), 10, NodeId(1), 0);
        c.put(ObjectId(3), 10, NodeId(1), 1);
        assert!(c.lose_object(ObjectId(1)));
        assert!(!c.lose_object(ObjectId(1)), "already gone");
        assert_eq!(
            c.read(ObjectId(1), NodeId(0)).unwrap_err(),
            CacheError::NotFound(ObjectId(1))
        );
        assert_eq!(c.lose_epoch(0), 1, "object 2 was epoch 0");
        assert!(c.read(ObjectId(2), NodeId(0)).is_err());
        assert!(c.read(ObjectId(3), NodeId(0)).is_ok());
        // Recompute-and-re-put restores service.
        c.put(ObjectId(1), 10, NodeId(0), 2);
        assert!(c.read(ObjectId(1), NodeId(0)).is_ok());
    }

    #[test]
    fn missing_object_is_not_found() {
        let mut c = cache(2);
        assert_eq!(
            c.read(ObjectId(9), NodeId(0)).unwrap_err(),
            CacheError::NotFound(ObjectId(9))
        );
        assert_eq!(c.stats().failed_reads, 1);
    }

    #[test]
    fn unknown_reader_is_rejected() {
        let mut c = cache(2);
        c.put(ObjectId(1), 10, NodeId(0), 0);
        assert_eq!(
            c.read(ObjectId(1), NodeId(7)).unwrap_err(),
            CacheError::UnknownNode(NodeId(7))
        );
    }

    #[test]
    fn home_lookup_supports_scheduling() {
        let mut c = cache(3);
        c.put(ObjectId(1), 10, NodeId(2), 0);
        assert_eq!(c.home_of(ObjectId(1)), Some(NodeId(2)));
        assert_eq!(c.home_of(ObjectId(2)), None);
    }

    #[test]
    fn eviction_spills_to_disk_replicas() {
        let mut config = CacheConfig::paper_defaults(3);
        config.memory_capacity_bytes = 100;
        let mut c = DistributedCache::new(config);
        c.put(ObjectId(1), 80, NodeId(0), 0);
        c.put(ObjectId(2), 80, NodeId(0), 0); // evicts 1 from memory
        let out = c.read(ObjectId(1), NodeId(0)).unwrap();
        assert!(
            matches!(out.source, ReadSource::LocalDisk | ReadSource::RemoteDisk),
            "evicted object must still be readable from disk, got {:?}",
            out.source
        );
    }
}
