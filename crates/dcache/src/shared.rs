//! Cloneable handle for a cache shared by many jobs.
//!
//! The paper's architecture has exactly one memoization layer per cluster;
//! every job memoizes into it and benefits from every other job's history.
//! [`SharedCache`] is that ownership model: a [`DistributedCache`] behind
//! an `Arc<Mutex<_>>` so concurrently registered jobs hold clones of one
//! handle. Combined with [`ObjectId::namespaced`](crate::ObjectId::namespaced)
//! ids, tenants share capacity and placement without colliding on keys.
//!
//! All engine cache traffic happens on the control thread of each job, so
//! the mutex is uncontended in the determinism-critical path — it exists
//! to make the sharing safe, not to schedule it.

use std::sync::{Arc, Mutex};

use crate::master::{CacheStats, DistributedCache, NamespaceStats};

/// A cloneable, mutex-guarded handle to one [`DistributedCache`].
#[derive(Debug, Clone)]
pub struct SharedCache {
    inner: Arc<Mutex<DistributedCache>>,
}

impl SharedCache {
    /// Wraps `cache` for sharing. All clones of the returned handle
    /// operate on this one cache.
    #[must_use]
    pub fn new(cache: DistributedCache) -> Self {
        SharedCache {
            inner: Arc::new(Mutex::new(cache)),
        }
    }

    /// Runs `f` with exclusive access to the underlying cache.
    pub fn with<R>(&self, f: impl FnOnce(&mut DistributedCache) -> R) -> R {
        let mut guard = self.inner.lock().expect("shared cache poisoned");
        f(&mut guard)
    }

    /// Aggregate statistics of the underlying cache.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.with(|c| c.stats())
    }

    /// Per-namespace accounting (see
    /// [`DistributedCache::namespace_stats`]).
    #[must_use]
    pub fn namespace_stats(&self, namespace: u32) -> NamespaceStats {
        self.with(|c| c.namespace_stats(namespace))
    }

    /// Deep copy of the underlying cache: contents, placement, repair
    /// queue and statistics. The checkpoint primitive — pair with
    /// [`SharedCache::restore_cache`] on a fresh handle.
    #[must_use]
    pub fn snapshot_cache(&self) -> DistributedCache {
        self.with(|c| c.clone())
    }

    /// Replaces the underlying cache wholesale with `cache` (typically a
    /// [`SharedCache::snapshot_cache`] image). Every existing clone of
    /// this handle observes the replacement.
    pub fn restore_cache(&self, cache: DistributedCache) {
        self.with(move |c| *c = cache);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::master::{CacheConfig, NodeId, ObjectId};

    #[test]
    fn clones_address_one_cache() {
        let shared = SharedCache::new(DistributedCache::new(CacheConfig::paper_defaults(3)));
        let other = shared.clone();
        shared.with(|c| c.put(ObjectId::namespaced(1, 7), 64, NodeId(0), 0));
        let read = other.with(|c| c.read(ObjectId::namespaced(1, 7), NodeId(0)));
        assert!(read.is_ok());
        assert_eq!(other.namespace_stats(1).puts, 1);
        assert_eq!(other.namespace_stats(2).puts, 0);
    }
}
