//! Garbage-collection policies for the memoization layer (paper §6).

/// How the master frees memoized state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcPolicy {
    /// Never collect (useful for measuring raw space overheads, Fig 13(c)).
    Disabled,
    /// Automatically free objects whose producing epoch fell out of the
    /// current window: an object from epoch `e` is collected once
    /// `e + horizon < current_epoch`.
    WindowBased {
        /// Number of past epochs whose memoized state is retained.
        horizon: u64,
    },
    /// A more aggressive user-defined policy: keep total indexed bytes
    /// under a budget by evicting the oldest epochs first.
    Aggressive {
        /// Upper bound on total indexed bytes after collection.
        max_total_bytes: u64,
    },
}

impl Default for GcPolicy {
    fn default() -> Self {
        GcPolicy::WindowBased { horizon: 1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_window_based() {
        assert_eq!(GcPolicy::default(), GcPolicy::WindowBased { horizon: 1 });
    }
}
