//! Garbage-collection policies for the memoization layer (paper §6).

use crate::master::ObjectId;

/// How the master frees memoized state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcPolicy {
    /// Never collect (useful for measuring raw space overheads, Fig 13(c)).
    Disabled,
    /// Automatically free objects whose producing epoch fell out of the
    /// current window: an object from epoch `e` is collected once
    /// `e + horizon < current_epoch`.
    WindowBased {
        /// Number of past epochs whose memoized state is retained.
        horizon: u64,
    },
    /// A more aggressive user-defined policy: keep total indexed bytes
    /// under a budget by evicting the oldest epochs first.
    Aggressive {
        /// Upper bound on total indexed bytes after collection.
        max_total_bytes: u64,
    },
}

impl Default for GcPolicy {
    fn default() -> Self {
        GcPolicy::WindowBased { horizon: 1 }
    }
}

/// Selects eviction victims for [`GcPolicy::Aggressive`]: oldest epoch
/// first, equal epochs broken by object id. The explicit total order means
/// the survivors never depend on the index map's iteration order — the
/// same contents always evict the same objects.
///
/// `entries` holds `(epoch, id, bytes)` per indexed object and `total`
/// their byte sum; nothing is evicted when `total <= max_total_bytes`.
pub(crate) fn aggressive_victims(
    mut entries: Vec<(u64, ObjectId, u64)>,
    mut total: u64,
    max_total_bytes: u64,
) -> Vec<ObjectId> {
    entries.sort_unstable_by_key(|&(epoch, id, _)| (epoch, id));
    let mut victims = Vec::new();
    for (_, id, bytes) in entries {
        if total <= max_total_bytes {
            break;
        }
        total -= bytes;
        victims.push(id);
    }
    victims
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_window_based() {
        assert_eq!(GcPolicy::default(), GcPolicy::WindowBased { horizon: 1 });
    }

    #[test]
    fn aggressive_victims_break_epoch_ties_by_id() {
        // Same epoch everywhere: eviction must walk ids in order no matter
        // how the entries were listed.
        let entries = vec![
            (7, ObjectId(30), 10),
            (7, ObjectId(10), 10),
            (7, ObjectId(20), 10),
        ];
        let victims = aggressive_victims(entries, 30, 15);
        assert_eq!(victims, vec![ObjectId(10), ObjectId(20)]);
    }

    #[test]
    fn aggressive_victims_respect_exact_budget_boundary() {
        // total == max_total_bytes is within budget: nothing evicts.
        let entries = vec![(1, ObjectId(1), 10), (1, ObjectId(2), 15)];
        assert!(aggressive_victims(entries, 25, 25).is_empty());
    }

    #[test]
    fn aggressive_victims_prefer_older_epochs() {
        let entries = vec![(3, ObjectId(1), 10), (1, ObjectId(9), 10)];
        assert_eq!(aggressive_victims(entries, 20, 10), vec![ObjectId(9)]);
    }
}
