//! Self-healing metering: background re-replication, scrub and master
//! rebuild statistics.
//!
//! All repair work is *background* work in the paper's split-processing
//! sense: it never contributes to a read's latency or to the foreground
//! [`crate::CacheStats`], so a fault-free run reports an all-zero
//! [`RepairStats`] and the foreground numbers (Table 2, Figure 11) are
//! bit-identical whether or not self-healing is enabled.

/// Background self-healing work performed by the memoization layer,
/// metered separately from foreground reads (see [`crate::CacheStats`]).
///
/// Counters are cumulative since cache creation; use
/// [`RepairStats::delta_since`] for per-run deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RepairStats {
    /// Objects enqueued into the repair queue (under-replication detected
    /// after a node failure, a lost/corrupt copy, or a degraded put).
    pub enqueued: u64,
    /// Objects whose replication level the repair drain improved.
    pub repaired_objects: u64,
    /// Persistent copies restored onto live nodes by re-replication.
    pub copies_restored: u64,
    /// Bytes moved (source disk → network → target disk) by re-replication.
    pub repair_bytes: u64,
    /// Simulated seconds of re-replication I/O (off the critical path).
    pub repair_seconds: f64,
    /// Completed scrub passes.
    pub scrub_passes: u64,
    /// Persistent copies whose checksum a scrub pass verified.
    pub scrubbed_copies: u64,
    /// Bytes read back by scrub verification.
    pub scrub_bytes: u64,
    /// Simulated seconds of scrub I/O (off the critical path).
    pub scrub_seconds: f64,
    /// Corrupt copies detected (by read-path verification, a scrub pass,
    /// or a master rebuild) and discarded before they could be served.
    pub corruptions_detected: u64,
    /// Stale persistent copies purged when a node rejoined (objects
    /// deleted or re-homed while the node was down).
    pub stale_copies_purged: u64,
    /// Master index rebuilds from surviving node inventories.
    pub master_rebuilds: u64,
    /// Objects re-indexed by master rebuilds.
    pub objects_reindexed: u64,
}

impl RepairStats {
    /// True when no self-healing work happened at all.
    pub fn is_zero(&self) -> bool {
        *self == RepairStats::default()
    }

    /// Field-wise `self - before`, for per-run metering of a cumulative
    /// counter set.
    pub fn delta_since(&self, before: &RepairStats) -> RepairStats {
        RepairStats {
            enqueued: self.enqueued - before.enqueued,
            repaired_objects: self.repaired_objects - before.repaired_objects,
            copies_restored: self.copies_restored - before.copies_restored,
            repair_bytes: self.repair_bytes - before.repair_bytes,
            repair_seconds: self.repair_seconds - before.repair_seconds,
            scrub_passes: self.scrub_passes - before.scrub_passes,
            scrubbed_copies: self.scrubbed_copies - before.scrubbed_copies,
            scrub_bytes: self.scrub_bytes - before.scrub_bytes,
            scrub_seconds: self.scrub_seconds - before.scrub_seconds,
            corruptions_detected: self.corruptions_detected - before.corruptions_detected,
            stale_copies_purged: self.stale_copies_purged - before.stale_copies_purged,
            master_rebuilds: self.master_rebuilds - before.master_rebuilds,
            objects_reindexed: self.objects_reindexed - before.objects_reindexed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_delta() {
        let mut a = RepairStats::default();
        assert!(a.is_zero());
        a.copies_restored = 3;
        a.repair_seconds = 1.5;
        let mut b = a;
        b.copies_restored = 5;
        b.repair_seconds = 2.0;
        let d = b.delta_since(&a);
        assert_eq!(d.copies_restored, 2);
        assert!((d.repair_seconds - 0.5).abs() < 1e-12);
        assert!(!d.is_zero());
    }
}
