//! Brute-force recompute-the-cross-product reference.
//!
//! [`reference_view`] computes the joined view from the two raw record
//! windows with no index, no sharding, no deltas — just nested loops.
//! It is deliberately the dumbest correct implementation: the integration
//! and property tests assert the incremental operator's materialized view
//! equals this on every slide, which is what makes the delta machinery
//! trustworthy.

use std::collections::BTreeMap;

use crate::app::{IndexRecord, JoinApp};
use crate::stats::{pair_hash, JoinCell};

/// Computes the per-key join view of `left` × `right` by brute force.
///
/// Records are grouped by their extracted key (records with `None` keys
/// are skipped) and every in-key (left, right) pair is enumerated. The
/// resulting cells use the same weight and checksum formulas as the
/// incremental operator, so equality means "same multiset of pairs".
pub fn reference_view<J: JoinApp>(
    app: &J,
    left: &[IndexRecord<J::Left>],
    right: &[IndexRecord<J::Right>],
) -> BTreeMap<J::Key, JoinCell> {
    let mut by_key_left: BTreeMap<J::Key, Vec<&IndexRecord<J::Left>>> = BTreeMap::new();
    for l in left {
        if let Some(k) = app.left_key(&l.value) {
            by_key_left.entry(k).or_default().push(l);
        }
    }
    let mut by_key_right: BTreeMap<J::Key, Vec<&IndexRecord<J::Right>>> = BTreeMap::new();
    for r in right {
        if let Some(k) = app.right_key(&r.value) {
            by_key_right.entry(k).or_default().push(r);
        }
    }
    let mut view = BTreeMap::new();
    for (key, ls) in &by_key_left {
        let Some(rs) = by_key_right.get(key) else {
            continue;
        };
        let mut cell = JoinCell::default();
        for l in ls {
            for r in rs {
                cell.add(
                    app.pair_weight(key, &l.value, &r.value),
                    pair_hash(key, (l.time, l.seq), (r.time, r.seq)),
                );
            }
        }
        if cell.pairs > 0 {
            view.insert(key.clone(), cell);
        }
    }
    view
}

#[cfg(test)]
mod tests {
    use super::*;

    struct ModJoin;
    impl JoinApp for ModJoin {
        type Key = u32;
        type Left = u32;
        type Right = u32;
        fn left_key(&self, l: &u32) -> Option<u32> {
            (*l != 99).then_some(*l % 3)
        }
        fn right_key(&self, r: &u32) -> Option<u32> {
            Some(*r % 3)
        }
    }

    #[test]
    fn cross_product_counts_and_filters() {
        let left = vec![
            IndexRecord::new(0, 0, 0),
            IndexRecord::new(1, 0, 3),
            IndexRecord::new(2, 0, 99), // filtered out
        ];
        let right = vec![
            IndexRecord::new(0, 1, 6),
            IndexRecord::new(1, 1, 9),
            IndexRecord::new(2, 1, 1),
        ];
        let view = reference_view(&ModJoin, &left, &right);
        // Key 0: two left × two right = 4 pairs; key 1 has no left.
        assert_eq!(view.len(), 1);
        assert_eq!(view[&0].pairs, 4);
        assert_eq!(view[&0].weight, 4);
        // Empty sides yield an empty view.
        assert!(reference_view(&ModJoin, &[], &right).is_empty());
    }
}
