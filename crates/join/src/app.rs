//! The join application contract and the per-side index application.
//!
//! A [`JoinApp`] declares the two record types, the shared join key, and
//! (optionally) a weight per matched pair — nothing about windows, deltas
//! or indexes. The operator derives everything else: each side becomes an
//! [`IndexApp`], an ordinary [`MapReduceApp`] whose per-key output is the
//! side's sorted in-window record list. That index is therefore maintained
//! by the engine's own incremental machinery — contraction trees,
//! memoization, fault recovery — with zero join-specific code below the
//! probe layer.

use std::fmt;
use std::hash::Hash;
use std::sync::Arc;

use slider_mapreduce::MapReduceApp;

/// A two-input equi-join, written with no incremental logic — the same
/// transparency contract as [`MapReduceApp`].
///
/// Records whose key extractor returns `None` are filtered out of the
/// join (they still flow through the side's window, they just index
/// under no key).
pub trait JoinApp: Send + Sync + 'static {
    /// The join key both sides map into.
    type Key: Clone + Ord + Eq + Hash + fmt::Debug + Send + Sync + 'static;
    /// Left-side record.
    type Left: Clone + PartialEq + fmt::Debug + Send + Sync + 'static;
    /// Right-side record.
    type Right: Clone + PartialEq + fmt::Debug + Send + Sync + 'static;

    /// Join key of a left record (`None` = not joinable).
    fn left_key(&self, left: &Self::Left) -> Option<Self::Key>;

    /// Join key of a right record (`None` = not joinable).
    fn right_key(&self, right: &Self::Right) -> Option<Self::Key>;

    /// Weight contributed by one matched pair to the per-key
    /// [`JoinCell`](crate::JoinCell) aggregate. Defaults to 1 (pair
    /// counting).
    fn pair_weight(&self, _key: &Self::Key, _left: &Self::Left, _right: &Self::Right) -> u64 {
        1
    }

    /// Modeled size of one left record in bytes (index memoization
    /// accounting).
    fn left_record_bytes(&self) -> u64 {
        24
    }

    /// Modeled size of one right record in bytes.
    fn right_record_bytes(&self) -> u64 {
        24
    }
}

/// One side record as stored in a window index, carrying its event-time
/// stamp: `(time, seq)` is the record's identity, so delta probes can add
/// and retract the exact pair a record participated in.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IndexRecord<V> {
    /// Event time.
    pub time: u64,
    /// Tiebreak between records with equal event times.
    pub seq: u64,
    /// The side's record.
    pub value: V,
}

impl<V> IndexRecord<V> {
    /// Builds a stamped index record.
    pub fn new(time: u64, seq: u64, value: V) -> Self {
        IndexRecord { time, seq, value }
    }
}

/// The per-side window index as a plain [`MapReduceApp`]: maps each
/// stamped record under its join key, combines by sorted merge, and
/// outputs the key's full sorted record list. Running it under a
/// [`WindowedJob`](slider_mapreduce::WindowedJob) gives the join a
/// key-sharded, contraction-tree-maintained, dcache-memoized,
/// fault-recoverable sliding index for free.
pub struct IndexApp<V, K> {
    key_fn: KeyFn<V, K>,
    record_bytes: u64,
}

/// Shared key-extractor closure of an [`IndexApp`].
type KeyFn<V, K> = Arc<dyn Fn(&V) -> Option<K> + Send + Sync>;

impl<V, K> IndexApp<V, K> {
    /// Builds an index app over `key_fn`, modeling `record_bytes` bytes
    /// per record.
    pub fn new(
        key_fn: impl Fn(&V) -> Option<K> + Send + Sync + 'static,
        record_bytes: u64,
    ) -> Self {
        IndexApp {
            key_fn: Arc::new(key_fn),
            record_bytes,
        }
    }
}

impl<V, K> MapReduceApp for IndexApp<V, K>
where
    V: Clone + PartialEq + Send + Sync + 'static,
    K: Clone + Ord + Hash + Send + Sync + 'static,
{
    type Input = IndexRecord<V>;
    type Key = K;
    type Value = Vec<IndexRecord<V>>;
    type Output = Vec<IndexRecord<V>>;

    fn map(&self, input: &IndexRecord<V>, emit: &mut dyn FnMut(K, Vec<IndexRecord<V>>)) {
        if let Some(key) = (self.key_fn)(&input.value) {
            emit(key, vec![input.clone()]);
        }
    }

    fn combine(
        &self,
        _key: &K,
        a: &Vec<IndexRecord<V>>,
        b: &Vec<IndexRecord<V>>,
    ) -> Vec<IndexRecord<V>> {
        // Sorted merge on (time, seq): associative, commutative, and the
        // result never depends on contraction-tree grouping.
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            if (a[i].time, a[i].seq) <= (b[j].time, b[j].seq) {
                out.push(a[i].clone());
                i += 1;
            } else {
                out.push(b[j].clone());
                j += 1;
            }
        }
        out.extend(a[i..].iter().cloned());
        out.extend(b[j..].iter().cloned());
        out
    }

    fn reduce(&self, _key: &K, parts: &[&Vec<IndexRecord<V>>]) -> Vec<IndexRecord<V>> {
        let mut out: Vec<IndexRecord<V>> = parts.iter().flat_map(|p| p.iter().cloned()).collect();
        out.sort_by_key(|r| (r.time, r.seq));
        out
    }

    fn combine_cost(&self, _key: &K, a: &Vec<IndexRecord<V>>, b: &Vec<IndexRecord<V>>) -> u64 {
        (a.len() + b.len()) as u64
    }

    fn reduce_cost(&self, _key: &K, parts: &[&Vec<IndexRecord<V>>]) -> u64 {
        parts.iter().map(|p| p.len() as u64).sum::<u64>().max(1)
    }

    fn value_bytes(&self, _key: &K, v: &Vec<IndexRecord<V>>) -> u64 {
        8 + v.len() as u64 * self.record_bytes
    }

    fn record_bytes(&self, _input: &IndexRecord<V>) -> u64 {
        self.record_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64, s: u64, v: u32) -> IndexRecord<u32> {
        IndexRecord::new(t, s, v)
    }

    #[test]
    fn combine_is_a_sorted_merge_and_commutative() {
        let app: IndexApp<u32, u32> = IndexApp::new(|v| Some(*v % 4), 24);
        let a = vec![rec(1, 0, 8), rec(5, 0, 4)];
        let b = vec![rec(2, 0, 0), rec(5, 1, 12)];
        let ab = app.combine(&0, &a, &b);
        let ba = app.combine(&0, &b, &a);
        assert_eq!(ab, ba);
        let times: Vec<(u64, u64)> = ab.iter().map(|r| (r.time, r.seq)).collect();
        assert_eq!(times, [(1, 0), (2, 0), (5, 0), (5, 1)]);
        assert_eq!(app.combine_cost(&0, &a, &b), 4);
    }

    #[test]
    fn map_filters_unkeyed_records() {
        let app: IndexApp<u32, u32> = IndexApp::new(|v| (*v > 10).then_some(*v), 24);
        let mut seen = Vec::new();
        app.map(&rec(1, 0, 5), &mut |k, _| seen.push(k));
        app.map(&rec(2, 0, 50), &mut |k, _| seen.push(k));
        assert_eq!(seen, [50]);
    }

    #[test]
    fn reduce_merges_parts_sorted() {
        let app: IndexApp<u32, u32> = IndexApp::new(|_| Some(0), 16);
        let p1 = vec![rec(3, 0, 1)];
        let p2 = vec![rec(1, 0, 2), rec(9, 0, 3)];
        let out = app.reduce(&0, &[&p1, &p2]);
        let times: Vec<u64> = out.iter().map(|r| r.time).collect();
        assert_eq!(times, [1, 3, 9]);
        assert_eq!(app.value_bytes(&0, &out), 8 + 3 * 16);
    }
}
