//! The incremental windowed join operator.
//!
//! [`JoinedJob`] owns two [`EventFeeder`]-backed sides. Each side's
//! sliding window is indexed by join key through an [`IndexApp`] run as an
//! ordinary [`WindowedJob`] on the shared engine, so index maintenance
//! inherits contraction trees, dcache memoization (each side under its own
//! namespace), and fault recovery unchanged. Above the two indexes the
//! operator keeps a materialized per-key view of the join result and
//! updates it with *deltas only*: every joint advance probes the records
//! that entered or left one side against the opposite side's index,
//! instead of recomputing the cross product.
//!
//! # Why the delta schedule is exact
//!
//! A joint advance applies the left side's feeder events first, probing
//! them against the right index **before** the right side flushes (so the
//! right index is still `R_old`), then flushes the right side and probes
//! its events against the now-current left index (`L_new`). That is
//! textbook incremental view maintenance:
//!
//! ```text
//! L_new ⋈ R_new = L_old ⋈ R_old  +  ΔL ⋈ R_old  +  L_new ⋈ ΔR
//! ```
//!
//! Within one side's event list the deltas only ever pair with the
//! *opposite* side, so applying them in feeder order (evictions before
//! same-epoch insertions, splices and retractions in occurrence order)
//! keeps every intermediate count consistent and the final view equal to
//! the brute-force [`reference_view`](crate::reference_view).
//!
//! # Determinism
//!
//! Probes are sharded by `partition_of(key)` preserving delta order within
//! each shard, executed via [`Runtime::map`] (results in input order), and
//! folded in shard order on the control thread. The emitted
//! [`PairDelta`] list, the view, and every [`JoinStats`] field are
//! bit-identical at any thread count.

use std::collections::BTreeMap;
use std::fmt;
use std::hash::Hash;
use std::sync::Arc;

use slider_mapreduce::{
    partition_of, EngineShared, EventFeeder, EventTimeConfig, EventTimeStats, ExecMode, FeedEvent,
    JobConfig, JobError, JobFaultPlan, RunStats, Runtime, Stamped, WindowedJob,
};
use slider_trace::{SpanKind, TraceSink};

use crate::app::{IndexApp, IndexRecord, JoinApp};
use crate::reference::reference_view;
use crate::stats::{pair_hash, JoinCell, JoinStats, PairDelta};

/// How the operator maintains its view on each joint advance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinMode {
    /// Probe only the records that entered or left a window (the slider
    /// way). Emits per-pair deltas.
    Incremental,
    /// Rebuild the view from both indexes with a full cross product on
    /// every advance that changed anything. Emits no deltas — this is the
    /// metered strawman the benchmarks compare against.
    Recompute,
}

/// Configuration for a [`JoinedJob`]. Both sides share the event-time
/// semantics (`event`), the probe shard count (`partitions`), and the
/// execution mode of their index jobs (`exec`); fault plans are per side.
#[derive(Debug, Clone)]
pub struct JoinConfig {
    /// Event-time windowing config applied to both sides.
    pub event: EventTimeConfig,
    /// Probe/index shard count.
    pub partitions: usize,
    /// Execution mode for the two side-index jobs.
    pub exec: ExecMode,
    /// View maintenance strategy.
    pub mode: JoinMode,
    /// Optional fault plan injected into the left index job.
    pub left_faults: Option<JobFaultPlan>,
    /// Optional fault plan injected into the right index job.
    pub right_faults: Option<JobFaultPlan>,
}

impl JoinConfig {
    /// Builds a config with the given event-time windowing, 4 partitions,
    /// folding contraction trees, and incremental maintenance.
    pub fn new(event: EventTimeConfig) -> Self {
        JoinConfig {
            event,
            partitions: 4,
            exec: ExecMode::slider_folding(),
            mode: JoinMode::Incremental,
            left_faults: None,
            right_faults: None,
        }
    }

    /// Sets the probe/index shard count.
    pub fn with_partitions(mut self, partitions: usize) -> Self {
        self.partitions = partitions;
        self
    }

    /// Sets the side-index execution mode.
    pub fn with_exec(mut self, exec: ExecMode) -> Self {
        self.exec = exec;
        self
    }

    /// Sets the view maintenance strategy.
    pub fn with_mode(mut self, mode: JoinMode) -> Self {
        self.mode = mode;
        self
    }

    /// Injects a fault plan into the left index job.
    pub fn with_left_faults(mut self, plan: JobFaultPlan) -> Self {
        self.left_faults = Some(plan);
        self
    }

    /// Injects a fault plan into the right index job.
    pub fn with_right_faults(mut self, plan: JobFaultPlan) -> Self {
        self.right_faults = Some(plan);
        self
    }

    fn validate(&self) -> Result<(), JoinError> {
        if self.partitions == 0 {
            return Err(JoinError::BadConfig("partitions must be >= 1".into()));
        }
        Ok(())
    }
}

/// Errors from building or driving a [`JoinedJob`].
#[derive(Debug)]
pub enum JoinError {
    /// An underlying side-index job failed.
    Job(JobError),
    /// The join configuration is invalid.
    BadConfig(String),
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinError::Job(e) => write!(f, "side-index job error: {e}"),
            JoinError::BadConfig(msg) => write!(f, "bad join config: {msg}"),
        }
    }
}

impl std::error::Error for JoinError {}

impl From<JobError> for JoinError {
    fn from(e: JobError) -> Self {
        JoinError::Job(e)
    }
}

/// The result of one joint advance ([`JoinedJob::poll`] and friends).
#[derive(Debug, Clone)]
pub struct JoinRun<K, L, R> {
    /// Pair-level join-result deltas, in deterministic application order.
    /// Empty in [`JoinMode::Recompute`].
    pub deltas: Vec<PairDelta<K, L, R>>,
    /// Stats of the side-index runs this advance drove (left side's runs
    /// first, then right side's).
    pub side_runs: Vec<RunStats>,
    /// Join-layer stats for this advance only (already folded into
    /// [`JoinedJob::stats`]).
    pub stats: JoinStats,
}

impl<K, L, R> JoinRun<K, L, R> {
    fn empty() -> Self {
        JoinRun {
            deltas: Vec::new(),
            side_runs: Vec::new(),
            stats: JoinStats::default(),
        }
    }

    /// True when this advance closed nothing, spliced nothing, and probed
    /// nothing.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty() && self.side_runs.is_empty() && self.stats.is_zero()
    }
}

/// Alias pinning a [`JoinRun`]'s type parameters to a [`JoinApp`].
pub type JoinRunOf<J> = JoinRun<<J as JoinApp>::Key, <J as JoinApp>::Left, <J as JoinApp>::Right>;

/// One in-flight delta: key, the stamped record that moved, and whether it
/// entered (`true`) or left (`false`) its window.
type Delta<K, V> = (K, IndexRecord<V>, bool);

/// A probe match: key, the delta record, the opposite-side record it
/// paired with, and the delta's direction.
type Match<K, VD, VO> = (K, IndexRecord<VD>, IndexRecord<VO>, bool);

/// Per-shard probe output, in shard order: `(matches, modeled work)`.
type ShardMatches<K, VD, VO> = Vec<(Vec<Match<K, VD, VO>>, u64)>;

/// A two-input incremental windowed equi-join over the shared engine.
///
/// See the [module docs](crate::job) for the maintenance schedule and the
/// exactness argument. Ingest stamped records with
/// [`ingest_left`](Self::ingest_left) / [`ingest_right`](Self::ingest_right),
/// then [`poll`](Self::poll) to advance both sides up to the **joint
/// watermark** — the minimum of the two sides' event-time watermarks, so
/// neither window ever runs ahead of data the other side may still
/// deliver.
pub struct JoinedJob<J: JoinApp> {
    app: Arc<J>,
    config: JoinConfig,
    left: EventFeeder<IndexApp<J::Left, J::Key>>,
    right: EventFeeder<IndexApp<J::Right, J::Key>>,
    view: BTreeMap<J::Key, JoinCell>,
    runtime: Runtime,
    trace: TraceSink,
    stats: JoinStats,
    advance_seq: u64,
}

impl<J: JoinApp> JoinedJob<J> {
    /// Builds the operator on the shared engine. Each side gets its own
    /// [`WindowedJob`] (and therefore its own dcache namespace) wrapped in
    /// an [`EventFeeder`] with journaling enabled.
    pub fn new(app: J, config: JoinConfig, shared: &EngineShared) -> Result<Self, JoinError> {
        config.validate()?;
        let app = Arc::new(app);
        let left_app = {
            let a = Arc::clone(&app);
            IndexApp::new(move |v: &J::Left| a.left_key(v), app.left_record_bytes())
        };
        let right_app = {
            let a = Arc::clone(&app);
            IndexApp::new(move |v: &J::Right| a.right_key(v), app.right_record_bytes())
        };
        let mut job_config = JobConfig::new(config.exec).with_partitions(config.partitions);
        if let Some(plan) = &config.left_faults {
            job_config = job_config.with_faults(plan.clone());
        }
        let left_job = WindowedJob::with_shared(left_app, job_config, shared)?;
        let mut job_config = JobConfig::new(config.exec).with_partitions(config.partitions);
        if let Some(plan) = &config.right_faults {
            job_config = job_config.with_faults(plan.clone());
        }
        let right_job = WindowedJob::with_shared(right_app, job_config, shared)?;
        let mut left = EventFeeder::new(left_job, config.event)?;
        let mut right = EventFeeder::new(right_job, config.event)?;
        left.enable_journal();
        right.enable_journal();
        Ok(JoinedJob {
            app,
            config,
            left,
            right,
            view: BTreeMap::new(),
            runtime: shared.runtime().clone(),
            trace: shared.trace().clone(),
            stats: JoinStats::default(),
            advance_seq: 0,
        })
    }

    /// Buffers left-side records. `Stamped.time`/`seq` become the record's
    /// join identity.
    pub fn ingest_left(&mut self, records: impl IntoIterator<Item = Stamped<J::Left>>) {
        self.left.ingest(records.into_iter().map(|s| {
            let rec = IndexRecord::new(s.time, s.seq, s.record);
            Stamped::new(rec.time, rec.seq, rec)
        }));
    }

    /// Buffers right-side records.
    pub fn ingest_right(&mut self, records: impl IntoIterator<Item = Stamped<J::Right>>) {
        self.right.ingest(records.into_iter().map(|s| {
            let rec = IndexRecord::new(s.time, s.seq, s.record);
            Stamped::new(rec.time, rec.seq, rec)
        }));
    }

    /// Advances both sides up to the joint watermark and applies the
    /// resulting window deltas to the view.
    ///
    /// If either side has seen no records yet its watermark is undefined
    /// and the joint watermark is held at 0 — no epochs close anywhere
    /// until both sides report progress, exactly like a stalled upstream
    /// in an event-time pipeline. Late splices still apply immediately.
    pub fn poll(&mut self) -> Result<JoinRunOf<J>, JoinError> {
        let cap = self.joint_watermark().unwrap_or(0);
        let mut run = JoinRunOf::<J>::empty();
        let left_runs = self.left.flush_bounded(cap)?;
        let events = self.left.take_events();
        self.apply_left_events(events, &mut run);
        let right_runs = self.right.flush_bounded(cap)?;
        let events = self.right.take_events();
        self.apply_right_events(events, &mut run);
        self.finish_run(left_runs, right_runs, run)
    }

    /// Drains all buffered records and closes every remaining epoch on
    /// both sides, ignoring the joint watermark (end-of-stream).
    pub fn close_all(&mut self) -> Result<JoinRunOf<J>, JoinError> {
        let mut run = JoinRunOf::<J>::empty();
        let left_runs = self.left.close_all()?;
        let events = self.left.take_events();
        self.apply_left_events(events, &mut run);
        let right_runs = self.right.close_all()?;
        let events = self.right.take_events();
        self.apply_right_events(events, &mut run);
        self.finish_run(left_runs, right_runs, run)
    }

    /// Retracts a closed epoch from the left window (upstream correction),
    /// removing its records' pairs from the view.
    pub fn retract_left(&mut self, epoch: u64) -> Result<JoinRunOf<J>, JoinError> {
        let side = self.left.retract_epoch(epoch)?;
        let events = self.left.take_events();
        let mut run = JoinRunOf::<J>::empty();
        self.apply_left_events(events, &mut run);
        self.finish_run(side.into_iter().collect(), Vec::new(), run)
    }

    /// Retracts a closed epoch from the right window.
    pub fn retract_right(&mut self, epoch: u64) -> Result<JoinRunOf<J>, JoinError> {
        let side = self.right.retract_epoch(epoch)?;
        let events = self.right.take_events();
        let mut run = JoinRunOf::<J>::empty();
        self.apply_right_events(events, &mut run);
        self.finish_run(Vec::new(), side.into_iter().collect(), run)
    }

    /// The joint watermark: `min` of the two sides' watermarks, `None`
    /// until both sides have one.
    pub fn joint_watermark(&self) -> Option<u64> {
        Some(self.left.watermark()?.min(self.right.watermark()?))
    }

    /// The materialized join view: per-key pair counts, weights, and
    /// checksums.
    pub fn view(&self) -> &BTreeMap<J::Key, JoinCell> {
        &self.view
    }

    /// Cumulative join-layer stats.
    pub fn stats(&self) -> JoinStats {
        self.stats
    }

    /// The left side's key → sorted in-window record list index.
    pub fn left_index(&self) -> &BTreeMap<J::Key, Vec<IndexRecord<J::Left>>> {
        self.left.output()
    }

    /// The right side's index.
    pub fn right_index(&self) -> &BTreeMap<J::Key, Vec<IndexRecord<J::Right>>> {
        self.right.output()
    }

    /// Event-time stats of the left feeder.
    pub fn left_event_stats(&self) -> EventTimeStats {
        self.left.stats()
    }

    /// Event-time stats of the right feeder.
    pub fn right_event_stats(&self) -> EventTimeStats {
        self.right.stats()
    }

    /// The left side's underlying windowed job (cache/fault inspection).
    pub fn left_job(&self) -> &WindowedJob<IndexApp<J::Left, J::Key>> {
        self.left.job()
    }

    /// The right side's underlying windowed job.
    pub fn right_job(&self) -> &WindowedJob<IndexApp<J::Right, J::Key>> {
        self.right.job()
    }

    /// All left records currently in-window, oldest first (from the
    /// feeder's journal retention).
    pub fn left_window(&self) -> Vec<IndexRecord<J::Left>> {
        self.left
            .retained_records()
            .map(|rs| rs.into_iter().map(|s| s.record.clone()).collect())
            .unwrap_or_default()
    }

    /// All right records currently in-window, oldest first.
    pub fn right_window(&self) -> Vec<IndexRecord<J::Right>> {
        self.right
            .retained_records()
            .map(|rs| rs.into_iter().map(|s| s.record.clone()).collect())
            .unwrap_or_default()
    }

    /// Computes the brute-force cross-product view of the *current*
    /// windows — the ground truth the incremental view must equal.
    pub fn reference_view(&self) -> BTreeMap<J::Key, JoinCell> {
        reference_view(&*self.app, &self.left_window(), &self.right_window())
    }

    // ---- internals ------------------------------------------------------

    fn apply_left_events(
        &mut self,
        events: Vec<FeedEvent<IndexRecord<J::Left>>>,
        run: &mut JoinRunOf<J>,
    ) {
        if events.is_empty() {
            return;
        }
        let app = Arc::clone(&self.app);
        let deltas = collect_deltas(events, |v| app.left_key(v), &mut run.stats);
        if deltas.is_empty() || self.config.mode == JoinMode::Recompute {
            return;
        }
        let shard_results = probe_deltas(
            &self.runtime,
            self.config.partitions,
            &deltas,
            self.right.output(),
        );
        self.apply_matches(shard_results, "left", run, |m| PairDelta {
            key: m.0,
            left: m.1,
            right: m.2,
            added: m.3,
        });
        run.stats.probes += deltas.len() as u64;
    }

    fn apply_right_events(
        &mut self,
        events: Vec<FeedEvent<IndexRecord<J::Right>>>,
        run: &mut JoinRunOf<J>,
    ) {
        if events.is_empty() {
            return;
        }
        let app = Arc::clone(&self.app);
        let deltas = collect_deltas(events, |v| app.right_key(v), &mut run.stats);
        if deltas.is_empty() || self.config.mode == JoinMode::Recompute {
            return;
        }
        let shard_results = probe_deltas(
            &self.runtime,
            self.config.partitions,
            &deltas,
            self.left.output(),
        );
        self.apply_matches(shard_results, "right", run, |m| PairDelta {
            key: m.0,
            left: m.2,
            right: m.1,
            added: m.3,
        });
        run.stats.probes += deltas.len() as u64;
    }

    /// Folds shard probe results into the view in shard order, emitting
    /// pair deltas and trace spans. `orient` maps a match back to
    /// (left, right) orientation.
    fn apply_matches<VD, VO>(
        &mut self,
        shard_results: ShardMatches<J::Key, VD, VO>,
        side: &str,
        run: &mut JoinRunOf<J>,
        orient: impl Fn(Match<J::Key, VD, VO>) -> PairDelta<J::Key, J::Left, J::Right>,
    ) {
        let mut shard_works = Vec::with_capacity(shard_results.len());
        let mut batch_work = 0u64;
        let (mut added_n, mut removed_n) = (0u64, 0u64);
        for (matches, work) in shard_results {
            shard_works.push(work);
            batch_work += work;
            for m in matches {
                let delta = orient(m);
                let weight =
                    self.app
                        .pair_weight(&delta.key, &delta.left.value, &delta.right.value);
                let hash = pair_hash(
                    &delta.key,
                    (delta.left.time, delta.left.seq),
                    (delta.right.time, delta.right.seq),
                );
                let mut emptied = false;
                {
                    let cell = self.view.entry(delta.key.clone()).or_default();
                    if delta.added {
                        cell.add(weight, hash);
                        added_n += 1;
                    } else {
                        cell.remove(weight, hash);
                        removed_n += 1;
                        emptied = cell.pairs == 0;
                    }
                }
                if emptied {
                    self.view.remove(&delta.key);
                }
                run.deltas.push(delta);
            }
        }
        run.stats.probe_work += batch_work;
        run.stats.pairs_added += added_n;
        run.stats.pairs_removed += removed_n;
        let advance = self.advance_seq;
        self.trace.with(|t| {
            let tr = t.track("join");
            let span = t.begin(tr, SpanKind::Join, format!("probe {side} #{advance}"));
            for (p, w) in shard_works.iter().enumerate() {
                if *w > 0 {
                    t.leaf(tr, SpanKind::Join, format!("probe shard {p}"), *w);
                }
            }
            t.arg(span, "work", batch_work);
            t.arg(span, "pairs_added", added_n);
            t.arg(span, "pairs_removed", removed_n);
            t.end(span);
            t.add("join.probe_work", batch_work);
            t.add("join.pairs_added", added_n);
            t.add("join.pairs_removed", removed_n);
        });
    }

    /// Recompute-mode view rebuild: shard the left index's keys, cross
    /// each key's record lists, and meter one work unit per indexed key
    /// plus one per pair enumerated.
    fn recompute_view(&mut self, run: &mut JoinRunOf<J>) {
        let (view, shard_works, total_work) = {
            let left_idx = self.left.output();
            let right_idx = self.right.output();
            let app = Arc::clone(&self.app);
            type KeyShard<'a, K, V> = Vec<(&'a K, &'a Vec<IndexRecord<V>>)>;
            let mut shards: Vec<KeyShard<'_, J::Key, J::Left>> =
                (0..self.config.partitions).map(|_| Vec::new()).collect();
            for (key, recs) in left_idx {
                shards[partition_of(key, self.config.partitions)].push((key, recs));
            }
            let results = self.runtime.map(&shards, |_, shard| {
                let mut cells = Vec::new();
                let mut work = 0u64;
                for &(key, lrecs) in shard {
                    work += 1;
                    let Some(rrecs) = right_idx.get(key) else {
                        continue;
                    };
                    let mut cell = JoinCell::default();
                    for l in lrecs.iter() {
                        for r in rrecs {
                            work += 1;
                            cell.add(
                                app.pair_weight(key, &l.value, &r.value),
                                pair_hash(key, (l.time, l.seq), (r.time, r.seq)),
                            );
                        }
                    }
                    if cell.pairs > 0 {
                        cells.push((key.clone(), cell));
                    }
                }
                (cells, work)
            });
            // One scan unit per right-side key (the recompute strawman
            // still has to look at every indexed key).
            let mut total = right_idx.len() as u64;
            let mut shard_works = Vec::with_capacity(results.len());
            let mut view = BTreeMap::new();
            for (cells, work) in results {
                shard_works.push(work);
                total += work;
                for (k, c) in cells {
                    view.insert(k, c);
                }
            }
            (view, shard_works, total)
        };
        self.view = view;
        run.stats.recompute_work += total_work;
        let advance = self.advance_seq;
        self.trace.with(|t| {
            let tr = t.track("join");
            let span = t.begin(tr, SpanKind::Join, format!("recompute #{advance}"));
            for (p, w) in shard_works.iter().enumerate() {
                if *w > 0 {
                    t.leaf(tr, SpanKind::Join, format!("recompute shard {p}"), *w);
                }
            }
            t.arg(span, "work", total_work);
            t.end(span);
            t.add("join.recompute_work", total_work);
        });
    }

    fn finish_run(
        &mut self,
        left_runs: Vec<RunStats>,
        right_runs: Vec<RunStats>,
        mut run: JoinRunOf<J>,
    ) -> Result<JoinRunOf<J>, JoinError> {
        run.side_runs = left_runs;
        run.side_runs.extend(right_runs);
        if self.config.mode == JoinMode::Recompute
            && (run.stats.steps > 0 || !run.side_runs.is_empty())
        {
            self.recompute_view(&mut run);
        }
        run.stats.side_work = run
            .side_runs
            .iter()
            .map(|r| r.work.foreground_total())
            .sum();
        let did_something = run.stats.steps > 0 || !run.side_runs.is_empty();
        if did_something {
            run.stats.advances = 1;
            self.advance_seq += 1;
            let (steps, probes) = (run.stats.steps, run.stats.probes);
            self.trace.with(|t| {
                t.add("join.advances", 1);
                t.add("join.steps", steps);
                t.add("join.probes", probes);
            });
        }
        self.stats.absorb(&run.stats);
        Ok(run)
    }
}

/// Turns feeder events into window deltas, preserving event order (and,
/// within an [`FeedEvent::EpochClosed`], evictions before insertions so a
/// record never double-counts against a pair that is leaving). Records
/// whose key extractor returns `None` are dropped here.
fn collect_deltas<K, V>(
    events: Vec<FeedEvent<IndexRecord<V>>>,
    key_of: impl Fn(&V) -> Option<K>,
    stats: &mut JoinStats,
) -> Vec<Delta<K, V>> {
    let mut deltas = Vec::new();
    let push = |deltas: &mut Vec<Delta<K, V>>, records: Vec<Stamped<IndexRecord<V>>>, added| {
        for s in records {
            if let Some(key) = key_of(&s.record.value) {
                deltas.push((key, s.record, added));
            }
        }
    };
    for event in events {
        stats.steps += 1;
        match event {
            FeedEvent::LateSplice { records, .. } => push(&mut deltas, records, true),
            FeedEvent::EpochClosed {
                inserted, evicted, ..
            } => {
                push(&mut deltas, evicted, false);
                push(&mut deltas, inserted, true);
            }
            FeedEvent::Retracted { records, .. } => push(&mut deltas, records, false),
        }
    }
    deltas
}

/// Probes `deltas` against the opposite side's index, sharded by
/// `partition_of(key)`. Each probe costs one index lookup plus one unit
/// per pair touched. Returns per-shard `(matches, work)` in shard order;
/// matches preserve delta order within a shard.
fn probe_deltas<K, VD, VO>(
    runtime: &Runtime,
    partitions: usize,
    deltas: &[Delta<K, VD>],
    opposite: &BTreeMap<K, Vec<IndexRecord<VO>>>,
) -> ShardMatches<K, VD, VO>
where
    K: Clone + Ord + Hash + Send + Sync,
    VD: Clone + Send + Sync,
    VO: Clone + Send + Sync,
{
    let mut shards: Vec<Vec<&Delta<K, VD>>> = (0..partitions).map(|_| Vec::new()).collect();
    for delta in deltas {
        shards[partition_of(&delta.0, partitions)].push(delta);
    }
    runtime.map(&shards, |_, shard| {
        let mut matches = Vec::new();
        let mut work = 0u64;
        for delta in shard {
            let (key, rec, added) = (&delta.0, &delta.1, delta.2);
            let entry = opposite.get(key).map(Vec::as_slice).unwrap_or(&[]);
            work += 1 + entry.len() as u64;
            for other in entry {
                matches.push((key.clone(), rec.clone(), other.clone(), added));
            }
        }
        (matches, work)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slider_mapreduce::TraceSnapshot;

    /// u32 ⋈ u32 on key = value % 4, weight = left + right.
    struct ModJoin;
    impl JoinApp for ModJoin {
        type Key = u32;
        type Left = u32;
        type Right = u32;
        fn left_key(&self, l: &u32) -> Option<u32> {
            Some(*l % 4)
        }
        fn right_key(&self, r: &u32) -> Option<u32> {
            Some(*r % 4)
        }
        fn pair_weight(&self, _key: &u32, l: &u32, r: &u32) -> u64 {
            u64::from(*l) + u64::from(*r)
        }
    }

    fn config() -> JoinConfig {
        JoinConfig::new(EventTimeConfig {
            epoch_len: 10,
            records_per_split: 4,
            window_epochs: Some(3),
            lateness: 5,
        })
        .with_partitions(3)
    }

    fn job(shared: &EngineShared) -> JoinedJob<ModJoin> {
        JoinedJob::new(ModJoin, config(), shared).expect("join builds")
    }

    fn feed(job: &mut JoinedJob<ModJoin>, upto: u64) -> Vec<JoinRunOf<ModJoin>> {
        // Left stream: value = time; right stream: value = 2 * time.
        let mut runs = Vec::new();
        for t in 0..upto {
            job.ingest_left([Stamped::new(t, t, u32::try_from(t).unwrap())]);
            job.ingest_right([Stamped::new(t, t, u32::try_from(2 * t).unwrap())]);
            if t % 7 == 0 {
                runs.push(job.poll().expect("poll"));
                // Every slide the incremental view must equal brute force.
                assert_eq!(job.view(), &job.reference_view());
            }
        }
        runs.push(job.poll().expect("poll"));
        assert_eq!(job.view(), &job.reference_view());
        runs
    }

    #[test]
    fn incremental_view_tracks_the_reference_on_every_slide() {
        let shared = EngineShared::builder().threads(2).build();
        let mut job = job(&shared);
        let runs = feed(&mut job, 70);
        assert!(!job.view().is_empty());
        let stats = job.stats();
        assert!(stats.pairs_added > 0, "pairs were added");
        assert!(stats.pairs_removed > 0, "evictions retracted pairs");
        assert!(stats.probe_work > 0);
        assert_eq!(stats.recompute_work, 0);
        assert!(stats.side_work > 0, "side index jobs did work");
        let delta_count: usize = runs.iter().map(|r| r.deltas.len()).sum();
        assert_eq!(
            delta_count as u64,
            stats.pairs_added + stats.pairs_removed,
            "every pair mutation was emitted as a delta"
        );
    }

    #[test]
    fn recompute_mode_reaches_the_same_view_with_more_work() {
        // Small slide fraction (1 epoch of a 10-epoch window): the regime
        // where delta probing must beat cross-product recomputation.
        let small_slide = JoinConfig::new(EventTimeConfig {
            epoch_len: 4,
            records_per_split: 4,
            window_epochs: Some(10),
            lateness: 2,
        })
        .with_partitions(3);
        let shared = EngineShared::builder().threads(2).build();
        let mut inc = JoinedJob::new(ModJoin, small_slide.clone(), &shared).expect("join builds");
        let mut rec = JoinedJob::new(ModJoin, small_slide.with_mode(JoinMode::Recompute), &shared)
            .expect("join builds");
        let mut rec_runs = Vec::new();
        for t in 0..200u64 {
            for job in [&mut inc, &mut rec] {
                job.ingest_left([Stamped::new(t, t, u32::try_from(t).unwrap())]);
                job.ingest_right([Stamped::new(t, t, u32::try_from(2 * t).unwrap())]);
            }
            if t % 4 == 3 {
                inc.poll().expect("poll");
                rec_runs.push(rec.poll().expect("poll"));
                assert_eq!(inc.view(), &inc.reference_view());
                assert_eq!(inc.view(), rec.view());
            }
        }
        assert!(rec_runs.iter().all(|r| r.deltas.is_empty()));
        assert!(rec.stats().recompute_work > inc.stats().probe_work);
        assert_eq!(rec.stats().probe_work, 0);
        assert_eq!(inc.stats().recompute_work, 0);
    }

    #[test]
    fn outputs_and_stats_are_bit_identical_across_thread_counts() {
        let mut snapshots = Vec::new();
        for threads in [1, 2, 4] {
            let shared = EngineShared::builder().threads(threads).build();
            let mut job = job(&shared);
            let runs = feed(&mut job, 50);
            let deltas: Vec<_> = runs.into_iter().flat_map(|r| r.deltas).collect();
            snapshots.push((
                format!("{:?}", job.view()),
                format!("{deltas:?}"),
                job.stats(),
            ));
        }
        assert_eq!(snapshots[0], snapshots[1]);
        assert_eq!(snapshots[1], snapshots[2]);
    }

    #[test]
    fn an_idle_side_holds_the_joint_watermark_back() {
        let shared = EngineShared::builder().build();
        let mut job = job(&shared);
        job.ingest_left((0..40).map(|t| Stamped::new(t, t, u32::try_from(t).unwrap())));
        assert_eq!(job.joint_watermark(), None);
        let run = job.poll().expect("poll");
        assert!(run.is_empty(), "no epochs close while one side is idle");
        assert!(job.view().is_empty());
        // The idle side wakes up: both sides now advance together.
        job.ingest_right((0..40).map(|t| Stamped::new(t, t, u32::try_from(t).unwrap())));
        assert_eq!(job.joint_watermark(), Some(34));
        let run = job.poll().expect("poll");
        assert!(!run.is_empty());
        assert_eq!(job.view(), &job.reference_view());
    }

    #[test]
    fn close_all_drains_both_sides() {
        let shared = EngineShared::builder().build();
        let mut job = job(&shared);
        job.ingest_left([Stamped::new(3, 0, 5u32)]);
        job.ingest_right([Stamped::new(4, 0, 9u32)]);
        let run = job.close_all().expect("close_all");
        assert_eq!(run.stats.pairs_added, 1, "5 % 4 == 9 % 4 == 1 matches");
        assert_eq!(job.view()[&1].pairs, 1);
        assert_eq!(job.view()[&1].weight, 14);
        assert_eq!(job.view(), &job.reference_view());
    }

    #[test]
    fn retraction_removes_an_epochs_pairs() {
        let shared = EngineShared::builder().build();
        let mut job = job(&shared);
        job.ingest_left([Stamped::new(1, 0, 1u32), Stamped::new(11, 1, 5u32)]);
        job.ingest_right([Stamped::new(2, 0, 9u32), Stamped::new(12, 1, 13u32)]);
        job.close_all().expect("close_all");
        assert_eq!(job.view()[&1].pairs, 4);
        let run = job.retract_left(1).expect("retract");
        assert_eq!(
            run.stats.pairs_removed, 2,
            "epoch 1's left record left 2 pairs"
        );
        assert_eq!(job.view()[&1].pairs, 2);
        assert_eq!(job.view(), &job.reference_view());
    }

    #[test]
    fn join_trace_reconciles_with_join_stats() {
        let trace = TraceSink::enabled();
        let shared = EngineShared::builder()
            .threads(2)
            .trace(trace.clone())
            .build();
        let mut job = job(&shared);
        feed(&mut job, 60);
        let stats = job.stats();
        let snap: TraceSnapshot = trace.snapshot().expect("trace enabled");
        assert_eq!(
            snap.counter("join.probe_work"),
            stats.probe_work,
            "probe_work counter reconciles"
        );
        assert_eq!(snap.counter("join.pairs_added"), stats.pairs_added);
        assert_eq!(snap.counter("join.pairs_removed"), stats.pairs_removed);
        assert_eq!(snap.counter("join.advances"), stats.advances);
        assert_eq!(snap.counter("join.steps"), stats.steps);
        assert_eq!(snap.counter("join.probes"), stats.probes);
        assert_eq!(
            snap.work_total("join", SpanKind::Join, None),
            stats.probe_work,
            "span leaves reconcile with modeled probe work"
        );
    }

    #[test]
    fn sides_get_distinct_cache_namespaces() {
        let shared = EngineShared::builder()
            .cache(slider_dcache::CacheConfig::paper_defaults(2))
            .build();
        let job = job(&shared);
        assert_ne!(
            job.left_job().cache_namespace(),
            job.right_job().cache_namespace()
        );
    }

    #[test]
    fn zero_partitions_is_rejected() {
        let shared = EngineShared::builder().build();
        let bad = config().with_partitions(0);
        let err = JoinedJob::new(ModJoin, bad, &shared)
            .err()
            .expect("rejected");
        assert!(matches!(err, JoinError::BadConfig(_)));
        assert!(err.to_string().contains("partitions"));
    }
}
