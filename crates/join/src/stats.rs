//! Join-layer statistics and the materialized per-key join view.
//!
//! Everything here is integer arithmetic folded in deterministic order,
//! so — like [`RunStats`](slider_mapreduce::RunStats) — every field is
//! bit-identical across thread counts and reruns, and reconciles exactly
//! with the counters/spans the operator emits on the `join` trace track.

use std::hash::Hash;

use slider_mapreduce::stable_hash;

/// Modeled-work and pair-flow counters for the join layer (the probes and
/// recomputes *above* the two side jobs; side-job work is metered by their
/// own [`RunStats`](slider_mapreduce::RunStats) and folded into
/// [`JoinStats::side_work`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// Joint advances that did something (closed epochs, spliced,
    /// retracted, or probed).
    pub advances: u64,
    /// Feeder events (closes, splices, retractions) applied to the view.
    pub steps: u64,
    /// Delta records probed against the opposite side's index.
    pub probes: u64,
    /// Join pairs materialized (delta `+`).
    pub pairs_added: u64,
    /// Join pairs retracted (delta `-`).
    pub pairs_removed: u64,
    /// Modeled probe work: one unit per index lookup plus one per pair
    /// touched.
    pub probe_work: u64,
    /// Modeled cross-product work in recompute mode: one unit per indexed
    /// key plus one per pair enumerated.
    pub recompute_work: u64,
    /// Foreground work of the side-index runs this operator drove
    /// (sum of their `RunStats.work.foreground_total()`).
    pub side_work: u64,
}

impl JoinStats {
    /// Folds `other` into `self`.
    pub fn absorb(&mut self, other: &JoinStats) {
        self.advances += other.advances;
        self.steps += other.steps;
        self.probes += other.probes;
        self.pairs_added += other.pairs_added;
        self.pairs_removed += other.pairs_removed;
        self.probe_work += other.probe_work;
        self.recompute_work += other.recompute_work;
        self.side_work += other.side_work;
    }

    /// Total modeled work of the join layer plus its side runs.
    pub fn total_work(&self) -> u64 {
        self.probe_work + self.recompute_work + self.side_work
    }

    /// True when nothing has been recorded.
    pub fn is_zero(&self) -> bool {
        *self == JoinStats::default()
    }
}

/// The materialized join result for one key: how many (left, right) pairs
/// currently match, their summed [`pair_weight`](crate::JoinApp::pair_weight),
/// and an order-insensitive checksum over the pairs' identities. The
/// checksum makes view equality a strong statement: two views agree only
/// if they hold the *same multiset of pairs*, not merely the same counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinCell {
    /// Matched (left, right) pairs in the current windows.
    pub pairs: u64,
    /// Sum of pair weights.
    pub weight: u64,
    /// Wrapping sum of each pair's stable identity hash.
    pub check: u64,
}

impl JoinCell {
    /// Adds one pair.
    pub fn add(&mut self, weight: u64, hash: u64) {
        self.pairs += 1;
        self.weight += weight;
        self.check = self.check.wrapping_add(hash);
    }

    /// Retracts one pair.
    ///
    /// # Panics
    ///
    /// Panics if the cell holds no pairs — a retraction for a pair that
    /// was never added is an operator bug, not a data condition.
    pub fn remove(&mut self, weight: u64, hash: u64) {
        self.pairs = self
            .pairs
            .checked_sub(1)
            .expect("retracted a join pair that was never added");
        self.weight -= weight;
        self.check = self.check.wrapping_sub(hash);
    }
}

/// Stable identity hash of one join pair: the key plus both records'
/// `(time, seq)` stamps. Record *values* are deliberately excluded — the
/// stamp is the record's identity, and values may not be hashable.
pub fn pair_hash<K: Hash>(key: &K, left: (u64, u64), right: (u64, u64)) -> u64 {
    stable_hash(&(key, left.0, left.1, right.0, right.1))
}

/// One emitted join-result delta: `(left, right)` matched under `key` and
/// was either materialized (`added`) or retracted (`!added`) by a slide.
#[derive(Debug, Clone, PartialEq)]
pub struct PairDelta<K, L, R> {
    /// The join key.
    pub key: K,
    /// The left record (stamped).
    pub left: crate::IndexRecord<L>,
    /// The right record (stamped).
    pub right: crate::IndexRecord<R>,
    /// `true` = pair entered the join result, `false` = pair left it.
    pub added: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_add_remove_round_trips_to_zero() {
        let mut cell = JoinCell::default();
        let h1 = pair_hash(&7u32, (1, 0), (2, 0));
        let h2 = pair_hash(&7u32, (1, 0), (3, 1));
        assert_ne!(h1, h2);
        cell.add(2, h1);
        cell.add(5, h2);
        assert_eq!(cell.pairs, 2);
        assert_eq!(cell.weight, 7);
        cell.remove(2, h1);
        cell.remove(5, h2);
        assert_eq!(cell, JoinCell::default());
    }

    #[test]
    #[should_panic(expected = "never added")]
    fn removing_from_an_empty_cell_panics() {
        JoinCell::default().remove(1, 3);
    }

    #[test]
    fn stats_absorb_and_total() {
        let mut a = JoinStats {
            probes: 2,
            probe_work: 10,
            side_work: 5,
            ..JoinStats::default()
        };
        assert!(!a.is_zero());
        let b = JoinStats {
            recompute_work: 3,
            pairs_added: 1,
            ..JoinStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.total_work(), 18);
        assert_eq!(a.pairs_added, 1);
        assert!(JoinStats::default().is_zero());
    }

    #[test]
    fn pair_hash_is_order_sensitive_on_sides() {
        // Swapping which stamp is "left" must change the identity.
        assert_ne!(
            pair_hash(&1u8, (5, 0), (9, 1)),
            pair_hash(&1u8, (9, 1), (5, 0))
        );
    }
}
