//! slider-join: incremental windowed stream joins over the sharded
//! Slider runtime.
//!
//! A [`JoinedJob`] joins two event-time record streams over aligned
//! sliding windows. Each side's window is indexed by join key through an
//! [`IndexApp`] — an ordinary `MapReduceApp` run as a `WindowedJob` on the
//! shared engine — so the indexes inherit the engine's contraction trees,
//! dcache memoization (one namespace per side), and fault recovery with
//! no join-specific plumbing. Above the indexes, the operator maintains a
//! materialized per-key view ([`JoinCell`]) and updates it on each joint
//! advance by probing only the records that *entered or left* a window
//! against the opposite index — never by recomputing the cross product.
//!
//! The two sides advance under a **joint watermark** (the minimum of
//! their per-side event-time watermarks), so one stalled input holds both
//! windows back instead of producing join results against data the other
//! side may still deliver or reorder.
//!
//! Everything is deterministic: probe results are sharded by key hash,
//! computed via `Runtime::map` (input-order results), and folded in shard
//! order, so the view, the emitted [`PairDelta`] stream, and all
//! [`JoinStats`] are bit-identical at any thread count. The brute-force
//! [`reference_view`] ground truth and per-cell pair checksums make that
//! claim checkable on every slide.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::cast_possible_truncation)]

mod app;
mod job;
mod reference;
mod stats;

pub use app::{IndexApp, IndexRecord, JoinApp};
pub use job::{JoinConfig, JoinError, JoinMode, JoinRun, JoinRunOf, JoinedJob};
pub use reference::reference_view;
pub use stats::{pair_hash, JoinCell, JoinStats, PairDelta};
