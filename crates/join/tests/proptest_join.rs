//! Property tests: on arbitrary two-sided streams — arbitrary gaps, keys,
//! values, window widths, slide cadences, partition counts — the
//! incrementally maintained join view equals the brute-force cross
//! product after every poll, and its recompute twin lands on the same
//! final view.

use proptest::collection::vec;
use proptest::prelude::*;

use slider_join::{JoinApp, JoinConfig, JoinMode, JoinedJob};
use slider_mapreduce::{EngineShared, EventTimeConfig, Stamped};

/// Left records are `(key, payload)`, right records are bare u32s keyed
/// by modulus; a sentinel payload on either side is unjoinable, so `None`
/// keys are exercised too.
#[derive(Debug, Clone, Copy, Default)]
struct PropJoin {
    keys: u32,
}

const UNJOINABLE: u32 = u32::MAX;

impl JoinApp for PropJoin {
    type Key = u32;
    type Left = (u32, u32);
    type Right = u32;

    fn left_key(&self, left: &Self::Left) -> Option<u32> {
        (left.1 != UNJOINABLE).then_some(left.0 % self.keys)
    }

    fn right_key(&self, right: &Self::Right) -> Option<u32> {
        (*right != UNJOINABLE).then_some(*right % self.keys)
    }

    fn pair_weight(&self, key: &u32, left: &Self::Left, right: &Self::Right) -> u64 {
        u64::from(key + left.1 % 7 + right % 5 + 1)
    }
}

#[derive(Debug, Clone)]
struct Plan {
    keys: u32,
    epoch_len: u64,
    window_epochs: usize,
    lateness: u64,
    partitions: usize,
    poll_every: usize,
    /// (time-gap, key-ish, payload) triples; payload 3 ⇒ unjoinable.
    left: Vec<(u64, u32, u8)>,
    right: Vec<(u64, u32, u8)>,
}

fn plan() -> impl Strategy<Value = Plan> {
    (
        1u32..5,
        1u64..8,
        1usize..5,
        0u64..6,
        1usize..5,
        1usize..6,
        vec((0u64..4, 0u32..40, 0u8..8), 0..60),
        vec((0u64..4, 0u32..40, 0u8..8), 0..60),
    )
        .prop_map(
            |(keys, epoch_len, window_epochs, lateness, partitions, poll_every, left, right)| {
                Plan {
                    keys,
                    epoch_len,
                    window_epochs,
                    lateness,
                    partitions,
                    poll_every,
                    left,
                    right,
                }
            },
        )
}

fn stamp<R>(gaps: &[(u64, u32, u8)], make: impl Fn(u32, u8) -> R) -> Vec<Stamped<R>> {
    let mut time = 0u64;
    gaps.iter()
        .enumerate()
        .map(|(i, &(gap, k, p))| {
            time += gap;
            Stamped::new(time, i as u64, make(k, p))
        })
        .collect()
}

fn run(plan: &Plan, mode: JoinMode) -> (String, String) {
    let app = PropJoin { keys: plan.keys };
    let event = EventTimeConfig {
        epoch_len: plan.epoch_len,
        records_per_split: 4,
        window_epochs: Some(plan.window_epochs),
        lateness: plan.lateness,
    };
    let shared = EngineShared::builder().threads(2).build();
    let config = JoinConfig::new(event)
        .with_partitions(plan.partitions)
        .with_mode(mode);
    let mut job = JoinedJob::new(app, config, &shared).expect("job builds");

    let left = stamp(&plan.left, |k, p| {
        (k, if p == 3 { UNJOINABLE } else { u32::from(p) })
    });
    let right = stamp(&plan.right, |k, p| if p == 3 { UNJOINABLE } else { k });

    let (mut li, mut ri) = (0usize, 0usize);
    while li < left.len() || ri < right.len() {
        let lend = (li + plan.poll_every).min(left.len());
        job.ingest_left(left[li..lend].iter().cloned());
        li = lend;
        let rend = (ri + plan.poll_every).min(right.len());
        job.ingest_right(right[ri..rend].iter().cloned());
        ri = rend;
        job.poll().expect("poll");
        prop_assert_eq_views(&job);
    }
    job.close_all().expect("close_all");
    prop_assert_eq_views(&job);
    (format!("{:?}", job.view()), format!("{:?}", job.stats()))
}

/// Plain assert so failures shrink through proptest's panic hook.
fn prop_assert_eq_views(job: &JoinedJob<PropJoin>) {
    assert_eq!(
        job.view(),
        &job.reference_view(),
        "incremental view diverged from the brute-force cross product"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn incremental_join_equals_brute_force(plan in plan()) {
        let (inc_view, _) = run(&plan, JoinMode::Incremental);
        let (rec_view, _) = run(&plan, JoinMode::Recompute);
        prop_assert_eq!(inc_view, rec_view, "recompute twin disagreed");
    }

    #[test]
    fn join_runs_are_deterministic(plan in plan()) {
        let a = run(&plan, JoinMode::Incremental);
        let b = run(&plan, JoinMode::Incremental);
        prop_assert_eq!(a, b, "identical drives must be bit-identical");
    }
}
