//! Synthetic Twitter stand-in: a preferential-attachment follower graph
//! plus a timed stream of URL posts with cascading reposts (§8.1).
//!
//! The paper uses the full 2006–2009 Twitter crawl (54M users, 1.9B
//! follow edges, 1.7B tweets) to build Krackhardt information-propagation
//! trees. The propagation-tree job only needs (a) a skewed follower graph
//! and (b) tweets where some URLs are reposted by followers of earlier
//! posters — both properties this generator reproduces at laptop scale.

use std::collections::BTreeMap;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A user id.
pub type UserId = u32;

/// One tweet: `user` posted `url` at `time` (abstract ticks).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tweet {
    /// Posting user.
    pub user: UserId,
    /// Posted URL id.
    pub url: u32,
    /// Post time in abstract ticks (monotone over the stream).
    pub time: u64,
}

/// The follower graph: `follows[u]` = accounts `u` follows.
#[derive(Debug, Clone, Default)]
pub struct FollowGraph {
    follows: BTreeMap<UserId, Vec<UserId>>,
}

impl FollowGraph {
    /// Builds a graph from `(follower, followee)` edges.
    ///
    /// ```
    /// use slider_workloads::twitter::FollowGraph;
    /// let g = FollowGraph::from_edges([(1, 0), (2, 1)]);
    /// assert_eq!(g.followees(1), &[0]);
    /// assert_eq!(g.edges(), 2);
    /// ```
    pub fn from_edges(edges: impl IntoIterator<Item = (UserId, UserId)>) -> Self {
        let mut follows: BTreeMap<UserId, Vec<UserId>> = BTreeMap::new();
        for (follower, followee) in edges {
            follows.entry(follower).or_default().push(followee);
        }
        FollowGraph { follows }
    }

    /// Accounts `user` follows (empty slice if none).
    pub fn followees(&self, user: UserId) -> &[UserId] {
        self.follows.get(&user).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of users with at least one followee.
    pub fn len(&self) -> usize {
        self.follows.len()
    }

    /// True when no edges exist.
    pub fn is_empty(&self) -> bool {
        self.follows.is_empty()
    }

    /// Total number of follow edges.
    pub fn edges(&self) -> usize {
        self.follows.values().map(Vec::len).sum()
    }

    /// Every `(follower, followee)` edge, in deterministic
    /// (follower-sorted) order.
    pub fn edge_pairs(&self) -> Vec<(UserId, UserId)> {
        self.follows
            .iter()
            .flat_map(|(&u, fs)| fs.iter().map(move |&v| (u, v)))
            .collect()
    }
}

/// Generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TwitterConfig {
    /// Number of users.
    pub users: u32,
    /// Average follow edges per user.
    pub avg_follows: usize,
    /// Number of distinct URLs circulating.
    pub urls: u32,
    /// Probability that a user reposts a URL posted by someone they follow.
    pub repost_probability: f64,
}

impl Default for TwitterConfig {
    fn default() -> Self {
        TwitterConfig {
            users: 2_000,
            avg_follows: 8,
            urls: 200,
            repost_probability: 0.3,
        }
    }
}

/// The generated dataset: a follower graph and a time-ordered tweet
/// stream, sliceable into intervals for append-only windowing.
#[derive(Debug, Clone)]
pub struct TwitterDataset {
    /// The (static) follower graph.
    pub graph: Arc<FollowGraph>,
    /// Tweets ordered by time.
    pub tweets: Vec<Tweet>,
}

impl TwitterDataset {
    /// Slices the stream into `intervals` consecutive chunks with the given
    /// relative sizes (e.g. `[70, 5, 5, 5, 5]` mimics Table 4's initial
    /// interval plus four ~5% weekly appends).
    ///
    /// # Panics
    ///
    /// Panics if `relative_sizes` is empty or sums to zero.
    pub fn intervals(&self, relative_sizes: &[u64]) -> Vec<Vec<Tweet>> {
        let total: u64 = relative_sizes.iter().sum();
        assert!(total > 0, "interval sizes must sum to a positive value");
        let n = self.tweets.len() as u64;
        let mut out = Vec::with_capacity(relative_sizes.len());
        let mut start = 0usize;
        let mut acc = 0u64;
        for (i, &size) in relative_sizes.iter().enumerate() {
            acc += size;
            let end = if i + 1 == relative_sizes.len() {
                self.tweets.len()
            } else {
                usize::try_from((acc * n) / total).expect("slice bound fits")
            };
            out.push(self.tweets[start..end].to_vec());
            start = end;
        }
        out
    }
}

/// Generates the dataset: a preferential-attachment follower graph and
/// `tweet_count` tweets where URLs cascade through follow edges.
pub fn generate(seed: u64, config: &TwitterConfig, tweet_count: usize) -> TwitterDataset {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x0701_77e4);
    assert!(config.users >= 2, "need at least two users");

    // Preferential attachment: user u follows earlier users weighted by
    // their current in-degree (plus one, so user 0 is reachable).
    let mut follows: BTreeMap<UserId, Vec<UserId>> = BTreeMap::new();
    let mut popularity: Vec<u64> = vec![1; config.users as usize];
    let mut total_pop: u64 = config.users as u64;
    for u in 1..config.users {
        let k = rng.gen_range(1..=config.avg_follows.max(1) * 2);
        let mut mine = Vec::with_capacity(k);
        for _ in 0..k {
            // Weighted pick over 0..u.
            let prefix: u64 = popularity[..u as usize].iter().sum();
            let mut ticket = rng.gen_range(0..prefix.max(1));
            let mut target = 0u32;
            for (v, &w) in popularity[..u as usize].iter().enumerate() {
                if ticket < w {
                    target = u32::try_from(v).expect("user ids fit in u32");
                    break;
                }
                ticket -= w;
            }
            if !mine.contains(&target) {
                mine.push(target);
                popularity[target as usize] += 1;
                total_pop += 1;
            }
        }
        follows.insert(u, mine);
    }
    let _ = total_pop;
    // Reverse index: followers of each user, for cascade generation.
    let mut followers: BTreeMap<UserId, Vec<UserId>> = BTreeMap::new();
    for (&u, fs) in &follows {
        for &v in fs {
            followers.entry(v).or_default().push(u);
        }
    }

    // Tweet stream: fresh posts seed URLs; followers repost with the
    // configured probability, producing propagation cascades.
    let mut tweets: Vec<Tweet> = Vec::with_capacity(tweet_count);
    let mut pending: Vec<(UserId, u32)> = Vec::new(); // (reposter, url)
    let mut time = 0u64;
    while tweets.len() < tweet_count {
        time += 1;
        let tweet = if let Some((user, url)) = pending.pop() {
            Tweet { user, url, time }
        } else {
            let user = rng.gen_range(0..config.users);
            let url = rng.gen_range(0..config.urls);
            Tweet { user, url, time }
        };
        // Each follower of the poster may repost later.
        if let Some(fs) = followers.get(&tweet.user) {
            for &f in fs {
                if rng.gen_bool(config.repost_probability) && pending.len() < 64 {
                    pending.push((f, tweet.url));
                }
            }
        }
        tweets.push(tweet);
    }

    TwitterDataset {
        graph: Arc::new(FollowGraph { follows }),
        tweets,
    }
}

/// One follower-edge event: `follower` started following `followee` at
/// `time` — the second input stream of the windowed-join workload
/// (follower-edge events ⋈ URL posts on the followee/poster user).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FollowEvent {
    /// The user gaining a followee.
    pub follower: UserId,
    /// The user being followed (the join key against [`Tweet::user`]).
    pub followee: UserId,
    /// Event time in the same abstract ticks as [`Tweet::time`].
    pub time: u64,
}

/// Generates a timed follower-edge stream over `graph`: `events` edge
/// creations sampled from the graph's edges (so the join against the
/// poster side actually matches), with event times spread over
/// `[0, time_span)` and sorted ascending. Deterministic per seed.
///
/// # Panics
///
/// Panics if the graph has no edges.
pub fn follow_stream(
    seed: u64,
    graph: &FollowGraph,
    events: usize,
    time_span: u64,
) -> Vec<FollowEvent> {
    let edges = graph.edge_pairs();
    assert!(!edges.is_empty(), "follow stream needs a non-empty graph");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x0f01_10e5);
    let mut out: Vec<FollowEvent> = (0..events)
        .map(|_| {
            let (follower, followee) = edges[rng.gen_range(0..edges.len())];
            FollowEvent {
                follower,
                followee,
                time: rng.gen_range(0..time_span.max(1)),
            }
        })
        .collect();
    out.sort_by_key(|e| (e.time, e.follower, e.followee));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TwitterDataset {
        generate(
            11,
            &TwitterConfig {
                users: 100,
                avg_follows: 4,
                urls: 20,
                repost_probability: 0.4,
            },
            500,
        )
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.tweets, b.tweets);
        assert_eq!(a.graph.edges(), b.graph.edges());
    }

    #[test]
    fn stream_is_time_ordered() {
        let data = small();
        assert!(data.tweets.windows(2).all(|w| w[0].time <= w[1].time));
        assert_eq!(data.tweets.len(), 500);
    }

    #[test]
    fn cascades_exist() {
        let data = small();
        // Some URL should be posted by more than one user (a repost).
        let mut by_url: BTreeMap<u32, std::collections::HashSet<UserId>> = BTreeMap::new();
        for t in &data.tweets {
            by_url.entry(t.url).or_default().insert(t.user);
        }
        assert!(
            by_url.values().any(|users| users.len() > 1),
            "no URL cascaded to a second user"
        );
    }

    #[test]
    fn intervals_partition_the_stream() {
        let data = small();
        let parts = data.intervals(&[70, 10, 10, 10]);
        assert_eq!(parts.len(), 4);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, data.tweets.len());
        // First interval is by far the largest.
        assert!(parts[0].len() > parts[1].len() * 3);
    }

    #[test]
    fn follow_stream_is_deterministic_sorted_and_on_graph() {
        let data = small();
        let a = follow_stream(7, &data.graph, 300, 500);
        let b = follow_stream(7, &data.graph, 300, 500);
        assert_eq!(a, b);
        assert_eq!(a.len(), 300);
        assert!(a.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(a.iter().all(|e| e.time < 500));
        // Every event is a real graph edge.
        assert!(a
            .iter()
            .all(|e| data.graph.followees(e.follower).contains(&e.followee)));
        // A different seed yields a different stream.
        assert_ne!(a, follow_stream(8, &data.graph, 300, 500));
    }

    #[test]
    fn graph_is_connected_enough() {
        let data = small();
        assert!(data.graph.edges() >= 100, "edges = {}", data.graph.edges());
        assert!(!data.graph.is_empty());
        assert!(data.graph.len() <= 100);
    }
}
