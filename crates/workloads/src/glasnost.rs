//! Synthetic Glasnost measurement traces (§8.2).
//!
//! Glasnost servers record a packet trace per test run; the monitoring job
//! computes each run's minimum RTT and then the median per server. This
//! generator produces per-month batches of test traces whose counts follow
//! the paper's Table 3, with per-client base latencies so the derived
//! medians are stable but month-dependent.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One Glasnost test run: RTT samples between a client and a measurement
/// server.
#[derive(Debug, Clone, PartialEq)]
pub struct TestTrace {
    /// Measurement server id.
    pub server: u32,
    /// Client host id.
    pub client: u32,
    /// Month index (0-based) the test ran in.
    pub month: u32,
    /// Round-trip-time samples in milliseconds.
    pub rtts_ms: Vec<f64>,
}

impl TestTrace {
    /// Minimum RTT of the run — the paper's distance estimate.
    pub fn min_rtt(&self) -> f64 {
        self.rtts_ms.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

/// Per-month test-run counts of the measurement server analyzed in
/// Table 3 (Jan–Nov 2011), reverse-engineered from the paper's 3-month
/// window sizes (4033, 4862, 5627, 5358, 4715, 4325, 4384, 4777, 6536) and
/// window-change sizes (1976, 1941, 1441, 1333, 1551, 1500, 1726, 3310) —
/// the two series are mutually consistent and pin the monthly counts.
pub const TABLE3_MONTHLY_TESTS: [usize; 11] = [
    1147, 1176, 1710, 1976, 1941, 1441, 1333, 1551, 1500, 1726, 3310,
];

/// Generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GlasnostConfig {
    /// Number of measurement servers.
    pub servers: u32,
    /// Client population.
    pub clients: u32,
    /// RTT samples per test run.
    pub samples_per_test: usize,
}

impl Default for GlasnostConfig {
    fn default() -> Self {
        GlasnostConfig {
            servers: 4,
            clients: 800,
            samples_per_test: 20,
        }
    }
}

/// Generates `counts[m]` test traces for each month `m`.
///
/// ```
/// use slider_workloads::glasnost::{generate_months, GlasnostConfig};
/// let months = generate_months(3, &GlasnostConfig::default(), &[10, 20]);
/// assert_eq!(months[0].len(), 10);
/// assert_eq!(months[1].len(), 20);
/// ```
pub fn generate_months(
    seed: u64,
    config: &GlasnostConfig,
    counts: &[usize],
) -> Vec<Vec<TestTrace>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x91a5);
    // Stable per-client base latency: distance to the server.
    let base_rtt: Vec<f64> = (0..config.clients)
        .map(|_| 5.0 + rng.gen::<f64>() * 120.0)
        .collect();
    counts
        .iter()
        .enumerate()
        .map(|(month, &count)| {
            (0..count)
                .map(|_| {
                    let client = rng.gen_range(0..config.clients);
                    let server = rng.gen_range(0..config.servers);
                    let base = base_rtt[client as usize];
                    let rtts_ms = (0..config.samples_per_test)
                        .map(|_| base + rng.gen::<f64>() * 40.0)
                        .collect();
                    TestTrace {
                        server,
                        client,
                        month: u32::try_from(month).expect("month index fits"),
                        rtts_ms,
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_request() {
        let months = generate_months(1, &GlasnostConfig::default(), &[5, 7, 0]);
        assert_eq!(
            months.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![5, 7, 0]
        );
    }

    #[test]
    fn min_rtt_is_at_least_base() {
        let months = generate_months(2, &GlasnostConfig::default(), &[50]);
        for t in &months[0] {
            assert!(t.min_rtt() >= 5.0);
            assert!(t.min_rtt() < 165.0 + 40.0);
            assert_eq!(t.rtts_ms.len(), 20);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = GlasnostConfig::default();
        assert_eq!(
            generate_months(9, &cfg, &[8]),
            generate_months(9, &cfg, &[8])
        );
    }

    #[test]
    fn table3_counts_are_plausible() {
        // The paper's window sizes: 3-month windows of 4033..6536 runs.
        let windows: Vec<usize> = TABLE3_MONTHLY_TESTS
            .windows(3)
            .map(|w| w.iter().sum())
            .collect();
        assert_eq!(
            windows,
            vec![4033, 4862, 5627, 5358, 4715, 4325, 4384, 4777, 6536],
            "must reproduce the paper's Table 3 window sizes"
        );
    }
}
