//! Synthetic Akamai NetSession accountability logs (§8.3).
//!
//! The case study audits tamper-evident client logs uploaded weekly to the
//! hybrid CDN's infrastructure. The window holds one month of logs and
//! slides by one week; the amount of data per week *varies* with the
//! fraction of clients that were online to upload — the paper's driver for
//! variable-width windows. Following the paper's own methodology, the logs
//! are synthetic, scaled to 100,000 clients.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One client's uploaded log for one week.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ClientLog {
    /// Client id.
    pub client: u32,
    /// Week index the log covers.
    pub week: u32,
    /// Number of log entries (downloads/uploads served).
    pub entries: u32,
    /// Hash-chain digest of the log (tamper evidence).
    pub digest: u64,
    /// Whether the tamper-evident chain verifies.
    pub chain_ok: bool,
}

/// Generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct NetSessionConfig {
    /// Client population (paper: scaled down to 100,000).
    pub clients: u32,
    /// Mean log entries per client per week.
    pub mean_entries: u32,
    /// Fraction of clients whose log chain is broken (misbehaving peers).
    pub tamper_rate: f64,
}

impl Default for NetSessionConfig {
    fn default() -> Self {
        NetSessionConfig {
            clients: 2_000,
            mean_entries: 40,
            tamper_rate: 0.01,
        }
    }
}

/// Generates one week of uploads: each client is online (and uploads its
/// log) with probability `upload_fraction`.
///
/// ```
/// use slider_workloads::netsession::{generate_week, NetSessionConfig};
/// let cfg = NetSessionConfig { clients: 100, ..Default::default() };
/// let logs = generate_week(1, &cfg, 0, 1.0);
/// assert_eq!(logs.len(), 100);
/// let some = generate_week(1, &cfg, 0, 0.5);
/// assert!(some.len() < 100 && !some.is_empty());
/// ```
pub fn generate_week(
    seed: u64,
    config: &NetSessionConfig,
    week: u32,
    upload_fraction: f64,
) -> Vec<ClientLog> {
    let mut rng = SmallRng::seed_from_u64(seed ^ (week as u64) << 17 ^ 0xaca3);
    (0..config.clients)
        .filter_map(|client| {
            if !rng.gen_bool(upload_fraction.clamp(0.0, 1.0)) {
                return None;
            }
            let entries = rng.gen_range(1..=config.mean_entries * 2);
            let digest = rng.gen::<u64>();
            let chain_ok = !rng.gen_bool(config.tamper_rate);
            Some(ClientLog {
                client,
                week,
                entries,
                digest,
                chain_ok,
            })
        })
        .collect()
}

/// The paper's Table 5 upload fractions for the audited final week.
pub const TABLE5_UPLOAD_FRACTIONS: [f64; 6] = [1.0, 0.95, 0.90, 0.85, 0.80, 0.75];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upload_fraction_thins_the_week() {
        let cfg = NetSessionConfig {
            clients: 4_000,
            ..Default::default()
        };
        let full = generate_week(7, &cfg, 0, 1.0).len();
        let three_quarters = generate_week(7, &cfg, 0, 0.75).len();
        assert_eq!(full, 4_000);
        let ratio = three_quarters as f64 / full as f64;
        assert!((0.70..=0.80).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn deterministic_per_seed_and_week() {
        let cfg = NetSessionConfig::default();
        assert_eq!(
            generate_week(1, &cfg, 3, 0.9),
            generate_week(1, &cfg, 3, 0.9)
        );
        assert_ne!(
            generate_week(1, &cfg, 3, 0.9),
            generate_week(1, &cfg, 4, 0.9)
        );
    }

    #[test]
    fn tampered_logs_appear_at_the_configured_rate() {
        let cfg = NetSessionConfig {
            clients: 20_000,
            tamper_rate: 0.05,
            ..Default::default()
        };
        let logs = generate_week(3, &cfg, 0, 1.0);
        let bad = logs.iter().filter(|l| !l.chain_ok).count() as f64 / logs.len() as f64;
        assert!((0.03..=0.07).contains(&bad), "tamper rate {bad}");
    }
}
