//! Multi-tenant traffic: interleaved request streams for a shared
//! service.
//!
//! The service layer (`slider-serve`) multiplexes many tenants' windowed
//! jobs over one engine. Exercising it needs traffic that looks like a
//! front door, not a batch file: per-tenant event-time streams (each with
//! its own disorder, reusing [`disorder`](crate::disorder)), chopped into
//! requests, interleaved by arrival time, with an optional *hot tenant*
//! sending a multiple of everyone else's traffic.
//!
//! Determinism contract: same `(seed, config)` ⇒ the same requests in the
//! same order, every run, every platform. The per-tenant record streams
//! are seeded independently (`seed ^ tenant`), so adding a tenant to the
//! mix never perturbs another tenant's records.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::disorder::{disordered_stream, DisorderConfig, TimedLine};

/// Shape of a multi-tenant traffic mix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiTenantConfig {
    /// Number of tenants (ids `0..tenants`).
    pub tenants: usize,
    /// Requests each ordinary tenant sends.
    pub requests_per_tenant: usize,
    /// Mean records per request (actual sizes are uniform in
    /// `1..=2 * mean - 1`, so the mean holds and no request is empty).
    pub records_per_request: usize,
    /// Per-tenant event-time stream shape (`records` is ignored — the
    /// request count and sizes determine how many records each tenant
    /// needs).
    pub stream: DisorderConfig,
    /// Hot-tenant skew: this tenant sends `hot_factor ×` the requests.
    pub hot_tenant: Option<usize>,
    /// Multiplier for the hot tenant's request count (≥ 1).
    pub hot_factor: usize,
    /// Mean gap between one tenant's consecutive requests, in arrival
    /// ticks. Tenants' clocks run independently; interleaving falls out
    /// of sorting all requests by arrival.
    pub mean_arrival_gap: u64,
}

impl Default for MultiTenantConfig {
    fn default() -> Self {
        MultiTenantConfig {
            tenants: 3,
            requests_per_tenant: 8,
            records_per_request: 8,
            stream: DisorderConfig::default(),
            hot_tenant: None,
            hot_factor: 3,
            mean_arrival_gap: 5,
        }
    }
}

/// One front-door request: a batch of `records` from `tenant` arriving at
/// `arrival` (service-clock ticks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantRequest {
    /// Sending tenant, `0..config.tenants`.
    pub tenant: usize,
    /// Arrival tick; the stream is sorted by `(arrival, tenant, index)`.
    pub arrival: u64,
    /// Position of this request within its tenant's own sequence.
    pub index: usize,
    /// The records, in the tenant's (possibly disordered) arrival order.
    pub records: Vec<TimedLine>,
}

/// Generates the interleaved request stream for `config` (see the module
/// docs for the determinism contract).
///
/// # Panics
///
/// Panics when `tenants`, `requests_per_tenant`, `records_per_request`
/// or `hot_factor` is zero, or `hot_tenant` is out of range.
pub fn multitenant_stream(seed: u64, config: &MultiTenantConfig) -> Vec<TenantRequest> {
    assert!(config.tenants > 0, "need at least one tenant");
    assert!(config.requests_per_tenant > 0, "need at least one request");
    assert!(config.records_per_request > 0, "requests cannot be empty");
    assert!(config.hot_factor > 0, "hot factor must be positive");
    if let Some(hot) = config.hot_tenant {
        assert!(hot < config.tenants, "hot tenant {hot} out of range");
    }
    let mut requests: Vec<TenantRequest> = Vec::new();
    for tenant in 0..config.tenants {
        let hot = config.hot_tenant == Some(tenant);
        let count = config.requests_per_tenant * if hot { config.hot_factor } else { 1 };
        // Request sizes and arrival pacing come from a per-tenant RNG;
        // the records themselves from the disorder generators, so each
        // tenant is a bona fide bounded-disorder event-time stream.
        let mut rng = SmallRng::seed_from_u64(seed ^ (tenant as u64) ^ 0x7e4a);
        let sizes: Vec<usize> = (0..count)
            .map(|_| rng.gen_range(1..=config.records_per_request * 2 - 1))
            .collect();
        let stream_cfg = DisorderConfig {
            records: sizes.iter().sum(),
            ..config.stream.clone()
        };
        let stream = disordered_stream(seed ^ (tenant as u64), &stream_cfg);
        let mut offset = 0usize;
        let mut arrival = 0u64;
        for (index, &size) in sizes.iter().enumerate() {
            arrival += rng.gen_range(0..=config.mean_arrival_gap * 2);
            requests.push(TenantRequest {
                tenant,
                arrival,
                index,
                records: stream[offset..offset + size].to_vec(),
            });
            offset += size;
        }
    }
    // Arrival interleaving: a stable, fully deterministic total order.
    requests.sort_by_key(|r| (r.arrival, r.tenant, r.index));
    requests
}

/// The records one tenant's requests deliver, concatenated in arrival
/// order — exactly the stream a standalone single-job twin of that tenant
/// must ingest to reproduce its served outputs.
pub fn tenant_records(stream: &[TenantRequest], tenant: usize) -> Vec<TimedLine> {
    stream
        .iter()
        .filter(|r| r.tenant == tenant)
        .flat_map(|r| r.records.iter().cloned())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let cfg = MultiTenantConfig::default();
        assert_eq!(multitenant_stream(9, &cfg), multitenant_stream(9, &cfg));
        assert_ne!(multitenant_stream(9, &cfg), multitenant_stream(10, &cfg));
    }

    #[test]
    fn arrivals_are_sorted_and_indices_per_tenant_monotone() {
        let stream = multitenant_stream(4, &MultiTenantConfig::default());
        for w in stream.windows(2) {
            assert!(
                (w[0].arrival, w[0].tenant, w[0].index) < (w[1].arrival, w[1].tenant, w[1].index)
            );
        }
        for tenant in 0..3 {
            let indices: Vec<usize> = stream
                .iter()
                .filter(|r| r.tenant == tenant)
                .map(|r| r.index)
                .collect();
            assert_eq!(indices, (0..indices.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn hot_tenant_sends_a_multiple() {
        let cfg = MultiTenantConfig {
            hot_tenant: Some(1),
            hot_factor: 4,
            ..MultiTenantConfig::default()
        };
        let stream = multitenant_stream(7, &cfg);
        let count = |t| stream.iter().filter(|r| r.tenant == t).count();
        assert_eq!(count(0), cfg.requests_per_tenant);
        assert_eq!(count(1), cfg.requests_per_tenant * 4);
        assert_eq!(count(2), cfg.requests_per_tenant);
    }

    #[test]
    fn adding_a_tenant_never_perturbs_existing_streams() {
        let small = MultiTenantConfig {
            tenants: 2,
            ..MultiTenantConfig::default()
        };
        let large = MultiTenantConfig {
            tenants: 4,
            ..MultiTenantConfig::default()
        };
        let a = multitenant_stream(11, &small);
        let b = multitenant_stream(11, &large);
        for tenant in 0..2 {
            assert_eq!(tenant_records(&a, tenant), tenant_records(&b, tenant));
        }
    }

    #[test]
    fn tenant_records_concatenate_in_arrival_order() {
        let cfg = MultiTenantConfig::default();
        let stream = multitenant_stream(3, &cfg);
        for tenant in 0..cfg.tenants {
            let records = tenant_records(&stream, tenant);
            assert!(!records.is_empty());
            // Sequence numbers within one tenant's stream are unique.
            let mut seqs: Vec<u64> = records.iter().map(|r| r.1).collect();
            seqs.sort_unstable();
            seqs.dedup();
            assert_eq!(seqs.len(), records.len());
            // Disorder stays within the configured lateness bound.
            assert!(crate::disorder::max_displacement(&records) <= cfg.stream.lateness);
        }
    }

    #[test]
    fn no_request_is_empty() {
        let stream = multitenant_stream(2, &MultiTenantConfig::default());
        assert!(stream.iter().all(|r| !r.records.is_empty()));
    }
}
