//! Zipf-distributed synthetic documents (Wikipedia stand-in).
//!
//! The data-intensive micro-benchmarks (HCT, Matrix, subStr) consume token
//! streams whose only relevant property is natural-language-like frequency
//! skew; a Zipf(s) rank-frequency distribution reproduces that shape.

use rand::distributions::Distribution;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Configuration of the document generator.
#[derive(Debug, Clone, PartialEq)]
pub struct TextConfig {
    /// Vocabulary size (distinct words).
    pub vocabulary: usize,
    /// Zipf exponent; ~1.0 matches natural language.
    pub zipf_exponent: f64,
    /// Words per generated document (line).
    pub words_per_doc: usize,
}

impl Default for TextConfig {
    fn default() -> Self {
        TextConfig {
            vocabulary: 5_000,
            zipf_exponent: 1.05,
            words_per_doc: 40,
        }
    }
}

/// Pre-computed Zipf sampler over ranks `0..n`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler for `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "vocabulary must be non-empty");
        assert!(s.is_finite(), "exponent must be finite");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        ZipfSampler { cumulative }
    }

    /// Samples a rank in `0..n`.
    pub fn sample(&self, rng: &mut impl rand::Rng) -> usize {
        let u: f64 = rng.gen();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

impl Distribution<usize> for ZipfSampler {
    fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

/// Generates `count` documents (one whitespace-joined line each).
///
/// ```
/// use slider_workloads::text::{generate_documents, TextConfig};
/// let docs = generate_documents(42, 3, &TextConfig::default());
/// assert_eq!(docs.len(), 3);
/// assert_eq!(docs, generate_documents(42, 3, &TextConfig::default()));
/// ```
pub fn generate_documents(seed: u64, count: usize, config: &TextConfig) -> Vec<String> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x7e87);
    let sampler = ZipfSampler::new(config.vocabulary, config.zipf_exponent);
    (0..count)
        .map(|_| {
            let words: Vec<String> = (0..config.words_per_doc)
                .map(|_| format!("w{}", sampler.sample(&mut rng)))
                .collect();
            words.join(" ")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let config = TextConfig::default();
        assert_eq!(
            generate_documents(1, 5, &config),
            generate_documents(1, 5, &config)
        );
        assert_ne!(
            generate_documents(1, 5, &config),
            generate_documents(2, 5, &config)
        );
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let sampler = ZipfSampler::new(1000, 1.1);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut head = 0usize;
        let n = 20_000;
        for _ in 0..n {
            if sampler.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // The top-10 ranks should dominate far beyond the uniform 1%.
        assert!(
            head as f64 / n as f64 > 0.3,
            "head fraction {}",
            head as f64 / n as f64
        );
    }

    #[test]
    fn documents_have_requested_length() {
        let config = TextConfig {
            vocabulary: 10,
            zipf_exponent: 1.0,
            words_per_doc: 7,
        };
        let docs = generate_documents(3, 2, &config);
        for doc in docs {
            assert_eq!(doc.split_whitespace().count(), 7);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_vocabulary_panics() {
        let _ = ZipfSampler::new(0, 1.0);
    }
}
