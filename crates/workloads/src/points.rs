//! Random points from a unit cube (K-means / KNN input, §7.1).
//!
//! Matches the paper's own methodology: "synthetically generated data by
//! randomly selecting points from a 50-dimensional unit cube".

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A point in `[0,1)^d`.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// Coordinates, length = dimensionality.
    pub coords: Vec<f64>,
}

impl Point {
    /// Squared Euclidean distance to `other`.
    ///
    /// # Panics
    ///
    /// Panics if dimensionalities differ.
    pub fn distance2(&self, other: &Point) -> f64 {
        assert_eq!(self.coords.len(), other.coords.len(), "dimension mismatch");
        self.coords
            .iter()
            .zip(&other.coords)
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.coords.len()
    }
}

/// Generates `count` points uniformly from the `dims`-dimensional unit
/// cube.
///
/// ```
/// let pts = slider_workloads::points::generate_points(7, 10, 50);
/// assert_eq!(pts.len(), 10);
/// assert_eq!(pts[0].dims(), 50);
/// ```
pub fn generate_points(seed: u64, count: usize, dims: usize) -> Vec<Point> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x90_17);
    (0..count)
        .map(|_| Point {
            coords: (0..dims).map(|_| rng.gen::<f64>()).collect(),
        })
        .collect()
}

/// Picks `k` well-spread initial centroids deterministically (every
/// `count/k`-th generated point of an independent stream).
///
/// # Panics
///
/// Panics if `k` is zero.
pub fn initial_centroids(seed: u64, k: usize, dims: usize) -> Vec<Point> {
    assert!(k > 0, "need at least one centroid");
    generate_points(seed ^ 0xce_47_01, k, dims)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_are_in_unit_cube() {
        for p in generate_points(1, 100, 8) {
            assert!(p.coords.iter().all(|c| (0.0..1.0).contains(c)));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate_points(5, 4, 3), generate_points(5, 4, 3));
        assert_ne!(generate_points(5, 4, 3), generate_points(6, 4, 3));
    }

    #[test]
    fn distance_is_zero_to_self_and_positive_otherwise() {
        let pts = generate_points(2, 2, 10);
        assert_eq!(pts[0].distance2(&pts[0]), 0.0);
        assert!(pts[0].distance2(&pts[1]) > 0.0);
    }

    #[test]
    fn centroids_differ_from_data_stream() {
        let data = generate_points(9, 3, 4);
        let centroids = initial_centroids(9, 3, 4);
        assert_ne!(data, centroids);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mixed_dims_panic() {
        let a = Point {
            coords: vec![0.0; 2],
        };
        let b = Point {
            coords: vec![0.0; 3],
        };
        let _ = a.distance2(&b);
    }
}
