//! Synthetic page-view events and a user table: the input of the
//! PigMix-like query suite (Figure 10).
//!
//! PigMix's generated data is a wide page-view relation joined against a
//! user relation; the query pipeline groups, filters, joins and ranks it.
//! This generator reproduces those relational shapes with Zipf-skewed
//! users and URLs.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::text::ZipfSampler;

/// One page-view event.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PageView {
    /// Viewing user.
    pub user: u32,
    /// Viewed page.
    pub page: u32,
    /// Event time in abstract ticks.
    pub time: u64,
    /// Bytes served.
    pub bytes: u32,
    /// Estimated revenue in micro-dollars.
    pub revenue_micros: u32,
}

/// One row of the user relation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct UserRow {
    /// User id (join key with [`PageView::user`]).
    pub user: u32,
    /// Age bucket (18–80).
    pub age: u8,
    /// Region code.
    pub region: u8,
}

/// Generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PageViewConfig {
    /// Distinct users.
    pub users: u32,
    /// Distinct pages.
    pub pages: u32,
    /// Zipf exponent for user and page popularity.
    pub skew: f64,
}

impl Default for PageViewConfig {
    fn default() -> Self {
        PageViewConfig {
            users: 1_000,
            pages: 500,
            skew: 1.02,
        }
    }
}

/// Generates `count` page views starting at `first_time`.
pub fn generate_views(
    seed: u64,
    config: &PageViewConfig,
    first_time: u64,
    count: usize,
) -> Vec<PageView> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9a9e);
    let user_sampler = ZipfSampler::new(config.users as usize, config.skew);
    let page_sampler = ZipfSampler::new(config.pages as usize, config.skew);
    (0..count)
        .map(|i| {
            let user = u32::try_from(user_sampler.sample(&mut rng)).expect("user fits");
            let page = u32::try_from(page_sampler.sample(&mut rng)).expect("page fits");
            PageView {
                user,
                page,
                time: first_time + i as u64,
                bytes: 500 + (user.wrapping_mul(2_654_435_761) % 20_000),
                revenue_micros: 10 + (page.wrapping_mul(40_503) % 5_000),
            }
        })
        .collect()
}

/// Generates the (static) user relation.
pub fn generate_users(seed: u64, config: &PageViewConfig) -> Vec<UserRow> {
    let _ = seed;
    (0..config.users)
        .map(|user| UserRow {
            user,
            age: 18 + (user.wrapping_mul(977) % 63) as u8,
            region: (user.wrapping_mul(31) % 16) as u8,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn views_are_deterministic_and_timed() {
        let cfg = PageViewConfig::default();
        let a = generate_views(5, &cfg, 100, 50);
        assert_eq!(a, generate_views(5, &cfg, 100, 50));
        assert_eq!(a[0].time, 100);
        assert_eq!(a[49].time, 149);
    }

    #[test]
    fn users_cover_the_population_once() {
        let cfg = PageViewConfig {
            users: 64,
            ..Default::default()
        };
        let users = generate_users(0, &cfg);
        assert_eq!(users.len(), 64);
        let distinct: std::collections::HashSet<u32> = users.iter().map(|u| u.user).collect();
        assert_eq!(distinct.len(), 64);
        assert!(users.iter().all(|u| (18..=80).contains(&u.age)));
    }

    #[test]
    fn popularity_is_skewed() {
        let cfg = PageViewConfig::default();
        let views = generate_views(9, &cfg, 0, 10_000);
        let head = views.iter().filter(|v| v.user < 10).count();
        assert!(head > 1_000, "top-10 users got only {head} of 10000 views");
    }
}
