//! Seeded chaos plans: crash points, tenant churn, overload bursts and
//! scripted dispatch faults woven into a multi-tenant request stream.
//!
//! The resilience tests (`tests/integration_resilience.rs`) and the
//! `chaos_restore` example need adversarial schedules that are still
//! *fully deterministic*: the same `(seed, config)` must produce the same
//! crashes at the same boundaries on every run, or the bit-identical-twin
//! comparisons they exist to make would be meaningless.
//!
//! A [`ChaosPlan`] is pure data — this crate knows nothing about the
//! engine. It decorates a [`multitenant_stream`] with:
//!
//! * **Crash markers** ([`ChaosEvent::Crash`]) — the driver snapshots the
//!   service, drops it, and restores from the snapshot onto a fresh
//!   engine before continuing.
//! * **Tenant churn** ([`ChaosEvent::Deregister`] / [`ChaosEvent::Register`])
//!   — the named tenant leaves and later rejoins with a fresh window.
//! * **Overload bursts** — spans of consecutive requests whose arrival
//!   ticks are collapsed to one instant, spiking any service-wide
//!   admitted-record gauge.
//! * **Scripted dispatch faults** ([`FaultScript`]) — per-tenant
//!   `(request, attempts)` pairs the driver feeds into the service
//!   layer's fault plan, exercising retry/breaker paths.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::multitenant::{multitenant_stream, MultiTenantConfig, TenantRequest};

/// Shape of a chaos schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosConfig {
    /// The underlying multi-tenant traffic mix.
    pub traffic: MultiTenantConfig,
    /// Crash/restore points injected between requests.
    pub crashes: usize,
    /// Deregister→re-register cycles injected between requests.
    pub churn_cycles: usize,
    /// Overload bursts: spans of requests collapsed to one arrival tick.
    pub bursts: usize,
    /// Consecutive requests per burst.
    pub burst_len: usize,
    /// Tenant whose dispatches get scripted faults (`None` = no faults).
    pub faulty_tenant: Option<usize>,
    /// Scripted faults for the faulty tenant.
    pub faults: usize,
    /// Maximum failing attempts per scripted fault (drawn in `1..=max`).
    pub max_fault_attempts: u32,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            traffic: MultiTenantConfig::default(),
            crashes: 2,
            churn_cycles: 1,
            bursts: 1,
            burst_len: 4,
            faulty_tenant: None,
            faults: 3,
            max_fault_attempts: 4,
        }
    }
}

/// One step of a chaos schedule, in execution order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosEvent {
    /// Serve this front-door request.
    Request(TenantRequest),
    /// Crash here: snapshot, drop the service, restore, continue.
    Crash,
    /// Deregister this tenant (drains its window).
    Deregister(usize),
    /// Re-register this tenant with a fresh window.
    Register(usize),
}

/// One scripted dispatch fault: the first `attempts` tries of `tenant`'s
/// admitted dispatch number `request` fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultScript {
    /// Target tenant (index into the traffic mix).
    pub tenant: usize,
    /// 0-based admitted-dispatch sequence number.
    pub request: u64,
    /// Attempts that fail (initial try + retries).
    pub attempts: u32,
}

/// A fully deterministic chaos schedule (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosPlan {
    /// The schedule, in execution order.
    pub events: Vec<ChaosEvent>,
    /// Scripted dispatch faults for the faulty tenant.
    pub faults: Vec<FaultScript>,
}

impl ChaosPlan {
    /// The requests of the schedule, in order (markers skipped).
    pub fn requests(&self) -> impl Iterator<Item = &TenantRequest> {
        self.events.iter().filter_map(|e| match e {
            ChaosEvent::Request(r) => Some(r),
            _ => None,
        })
    }
}

/// Builds the chaos schedule for `(seed, config)`.
///
/// Determinism contract: same inputs ⇒ the same events in the same order,
/// every run, every platform. The underlying traffic is exactly
/// `multitenant_stream(seed, &config.traffic)` — chaos decorates the
/// stream, it never changes which records a tenant's requests carry.
///
/// # Panics
///
/// Panics when the traffic config is invalid (see [`multitenant_stream`]),
/// when a burst is shorter than two requests while `bursts > 0`, or when
/// `faulty_tenant` is out of range.
pub fn chaos_plan(seed: u64, config: &ChaosConfig) -> ChaosPlan {
    if config.bursts > 0 {
        assert!(
            config.burst_len >= 2,
            "a burst collapses at least 2 requests"
        );
    }
    if let Some(faulty) = config.faulty_tenant {
        assert!(
            faulty < config.traffic.tenants,
            "faulty tenant out of range"
        );
        assert!(
            config.max_fault_attempts > 0,
            "faults must fail >= 1 attempt"
        );
    }
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x000c_4a05);
    let mut requests = multitenant_stream(seed, &config.traffic);

    // Overload bursts: collapse each chosen span's arrivals to the span's
    // last tick. Execution order is the event list, not the tick — the
    // service clamps per-counter time regressions — so this is safe and
    // keeps the list sorted-enough for human reading.
    for _ in 0..config.bursts {
        if requests.len() < config.burst_len {
            break;
        }
        let start = rng.gen_range(0..=requests.len() - config.burst_len);
        let tick = requests[start + config.burst_len - 1].arrival;
        for request in &mut requests[start..start + config.burst_len] {
            request.arrival = tick;
        }
    }

    let mut events: Vec<ChaosEvent> = requests.into_iter().map(ChaosEvent::Request).collect();

    // Churn: deregister a tenant at one boundary, re-register it at a
    // later one. Cycles are inserted back-to-front so earlier insertions
    // never shift later ones.
    let mut cycles: Vec<(usize, usize, usize)> = (0..config.churn_cycles)
        .map(|_| {
            let tenant = rng.gen_range(0..config.traffic.tenants);
            let a = rng.gen_range(0..=events.len());
            let b = rng.gen_range(0..=events.len());
            (a.min(b), a.max(b), tenant)
        })
        .collect();
    cycles.sort_unstable();
    for &(leave, rejoin, tenant) in cycles.iter().rev() {
        // Later index first, so `leave` stays valid.
        events.insert(rejoin, ChaosEvent::Register(tenant));
        events.insert(leave, ChaosEvent::Deregister(tenant));
    }

    // Crashes: anywhere between events, including before the first and
    // after the last request.
    let mut crash_points: Vec<usize> = (0..config.crashes)
        .map(|_| rng.gen_range(0..=events.len()))
        .collect();
    crash_points.sort_unstable();
    for &at in crash_points.iter().rev() {
        events.insert(at, ChaosEvent::Crash);
    }

    // Scripted dispatch faults target the faulty tenant's earliest
    // admitted dispatches — small sequence numbers, so they fire even when
    // admission control rejects part of the stream.
    let faults = config
        .faulty_tenant
        .map(|tenant| {
            (0..config.faults)
                .map(|i| FaultScript {
                    tenant,
                    request: i as u64,
                    attempts: rng.gen_range(1..=config.max_fault_attempts),
                })
                .collect()
        })
        .unwrap_or_default();

    ChaosPlan { events, faults }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic() {
        let cfg = ChaosConfig {
            faulty_tenant: Some(1),
            ..ChaosConfig::default()
        };
        assert_eq!(chaos_plan(5, &cfg), chaos_plan(5, &cfg));
        assert_ne!(chaos_plan(5, &cfg), chaos_plan(6, &cfg));
    }

    #[test]
    fn chaos_decorates_without_changing_the_traffic() {
        let cfg = ChaosConfig::default();
        let plan = chaos_plan(9, &cfg);
        let plain = multitenant_stream(9, &cfg.traffic);
        let requests: Vec<_> = plan.requests().collect();
        assert_eq!(requests.len(), plain.len());
        for (chaotic, plain) in requests.iter().zip(&plain) {
            assert_eq!(chaotic.tenant, plain.tenant);
            assert_eq!(chaotic.index, plain.index);
            assert_eq!(chaotic.records, plain.records, "records never change");
        }
    }

    #[test]
    fn marker_counts_match_the_config() {
        let cfg = ChaosConfig {
            crashes: 3,
            churn_cycles: 2,
            faulty_tenant: Some(0),
            faults: 4,
            ..ChaosConfig::default()
        };
        let plan = chaos_plan(11, &cfg);
        let count = |f: fn(&ChaosEvent) -> bool| plan.events.iter().filter(|e| f(e)).count();
        assert_eq!(count(|e| matches!(e, ChaosEvent::Crash)), 3);
        assert_eq!(count(|e| matches!(e, ChaosEvent::Deregister(_))), 2);
        assert_eq!(count(|e| matches!(e, ChaosEvent::Register(_))), 2);
        assert_eq!(plan.faults.len(), 4);
        assert!(plan.faults.iter().all(|f| f.tenant == 0 && f.attempts >= 1));
    }

    #[test]
    fn every_deregister_precedes_its_register() {
        let cfg = ChaosConfig {
            churn_cycles: 3,
            crashes: 0,
            ..ChaosConfig::default()
        };
        let plan = chaos_plan(21, &cfg);
        let mut open: Vec<usize> = Vec::new();
        for event in &plan.events {
            match event {
                ChaosEvent::Deregister(t) => open.push(*t),
                ChaosEvent::Register(t) => {
                    let at = open.iter().rposition(|x| x == t);
                    assert!(at.is_some(), "register without a prior deregister");
                    open.remove(at.unwrap());
                }
                _ => {}
            }
        }
        assert!(open.is_empty(), "every departed tenant rejoins");
    }

    #[test]
    fn bursts_collapse_arrival_spans() {
        let cfg = ChaosConfig {
            bursts: 2,
            burst_len: 5,
            crashes: 0,
            churn_cycles: 0,
            ..ChaosConfig::default()
        };
        let plan = chaos_plan(31, &cfg);
        let arrivals: Vec<u64> = plan.requests().map(|r| r.arrival).collect();
        let longest_run = arrivals
            .chunk_by(|a, b| a == b)
            .map(<[u64]>::len)
            .max()
            .unwrap_or(0);
        assert!(
            longest_run >= cfg.burst_len,
            "at least one span of {} equal arrivals, got {longest_run}",
            cfg.burst_len
        );
    }

    #[test]
    fn zero_chaos_is_the_plain_stream() {
        let cfg = ChaosConfig {
            crashes: 0,
            churn_cycles: 0,
            bursts: 0,
            faulty_tenant: None,
            ..ChaosConfig::default()
        };
        let plan = chaos_plan(2, &cfg);
        let plain = multitenant_stream(2, &cfg.traffic);
        assert!(plan.faults.is_empty());
        assert_eq!(
            plan.events,
            plain
                .into_iter()
                .map(ChaosEvent::Request)
                .collect::<Vec<_>>()
        );
    }
}
