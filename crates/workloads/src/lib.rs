//! # slider-workloads — synthetic dataset generators
//!
//! The Slider paper evaluates on datasets this reproduction cannot ship
//! (a Wikipedia dump, the full 2006–2009 Twitter crawl, Glasnost pcap
//! traces, Akamai NetSession logs). This crate provides deterministic
//! synthetic stand-ins whose *shape* matches what each experiment needs —
//! see DESIGN.md §2 for the substitution rationale per dataset.
//!
//! All generators are seeded and fully deterministic: the same seed yields
//! the same dataset on every run and platform.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::cast_possible_truncation)]

pub mod chaos;
pub mod disorder;
pub mod glasnost;
pub mod multitenant;
pub mod netsession;
pub mod pageviews;
pub mod points;
pub mod text;
pub mod twitter;
