//! Disordered event-time streams: bounded shuffles, late stragglers, and
//! bursty time gaps.
//!
//! The paper's evaluation (like the original Hadoop fork) assumes records
//! arrive in window order. These generators produce the streams that break
//! that assumption, for exercising the event-time path end to end:
//!
//! * [`disordered_stream`] — arrival order shuffled, but every record's
//!   *time displacement* stays within a bound, so a watermark with that
//!   lateness absorbs the disorder entirely;
//! * [`straggler_stream`] — a few records additionally arrive far beyond
//!   the bound (the late-splice / drop path);
//! * [`bursty_stream`] — dense bursts separated by large event-time gaps
//!   (multi-epoch closes and whole-window evictions).
//!
//! Every generator is seeded and fully deterministic, and each stream's
//! in-order reference is recovered with [`sorted_twin`]: a disordered
//! stream fed through an event-time window must produce output
//! bit-identical to its sorted twin.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One stream record: `(event_time, sequence_number, line)`. The sequence
/// number is unique per stream and breaks ties between equal times, so a
/// stream and its [`sorted_twin`] are permutations of the same records.
pub type TimedLine = (u64, u64, String);

/// Configuration shared by the disorder generators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisorderConfig {
    /// Records to generate.
    pub records: usize,
    /// Mean event-time gap between consecutive records (actual gaps are
    /// uniform in `0..=2 * mean_step`).
    pub mean_step: u64,
    /// Arrival-jitter bound: no record's event time trails the maximum
    /// event time seen at its arrival by more than this (the stream is
    /// "in order up to `lateness`").
    pub lateness: u64,
    /// Distinct words to draw lines from.
    pub vocabulary: usize,
}

impl Default for DisorderConfig {
    fn default() -> Self {
        DisorderConfig {
            records: 256,
            mean_step: 2,
            lateness: 16,
            vocabulary: 24,
        }
    }
}

/// Generates the in-order base stream: strictly ordered times, short lines
/// over a small vocabulary.
fn base_stream(seed: u64, config: &DisorderConfig) -> Vec<TimedLine> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xd15c);
    let mut time = 0u64;
    (0..config.records as u64)
        .map(|seq| {
            time += rng.gen_range(0..=config.mean_step * 2);
            let words = rng.gen_range(1..=3);
            let line = (0..words)
                .map(|_| format!("w{}", rng.gen_range(0..config.vocabulary.max(1))))
                .collect::<Vec<_>>()
                .join(" ");
            (time, seq, line)
        })
        .collect()
}

/// Shuffles `stream`'s arrival order so that every record's displacement
/// stays within `bound`: each record arrives by the time the maximum event
/// time seen exceeds its own by `bound`. Records are reordered by a
/// jittered sort key `time + jitter(0..=bound)`, which guarantees the
/// property (any earlier arrival's event time is at most the record's own
/// time plus `bound`).
fn jitter_arrivals(stream: &mut [TimedLine], seed: u64, bound: u64) {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x1a7e);
    let mut keyed: Vec<(u64, TimedLine)> = stream
        .iter()
        .cloned()
        .map(|r| (r.0 + rng.gen_range(0..=bound), r))
        .collect();
    keyed.sort_by_key(|a| (a.0, a.1 .1));
    for (slot, (_, record)) in stream.iter_mut().zip(keyed) {
        *slot = record;
    }
}

/// A stream whose arrival order is shuffled within `config.lateness`: fed
/// to an event-time window with that lateness bound, no record is ever
/// late, and the output is bit-identical to the [`sorted_twin`].
pub fn disordered_stream(seed: u64, config: &DisorderConfig) -> Vec<TimedLine> {
    let mut stream = base_stream(seed, config);
    jitter_arrivals(&mut stream, seed, config.lateness);
    stream
}

/// A disordered stream where `stragglers` early records additionally
/// arrive at the very end — displaced far beyond the lateness bound, so
/// they exercise the late-admission (or drop) path. The stragglers are
/// drawn from the first half of the stream and keep their event times.
pub fn straggler_stream(seed: u64, config: &DisorderConfig, stragglers: usize) -> Vec<TimedLine> {
    let mut stream = disordered_stream(seed, config);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x57a6);
    let half = (stream.len() / 2).max(1);
    let stragglers = stragglers.min(half);
    for _ in 0..stragglers {
        let pick = rng.gen_range(0..half.min(stream.len()));
        let record = stream.remove(pick);
        stream.push(record);
    }
    stream
}

/// A disordered stream of dense bursts separated by `gap` event-time
/// units: every `burst_len` records the clock jumps, so windows sized in
/// epochs age out wholesale between bursts. Arrival order is shuffled
/// within `config.lateness`, like [`disordered_stream`].
pub fn bursty_stream(
    seed: u64,
    config: &DisorderConfig,
    burst_len: usize,
    gap: u64,
) -> Vec<TimedLine> {
    let mut stream = base_stream(seed, config);
    let burst_len = burst_len.max(1);
    let mut shift = 0u64;
    for (i, record) in stream.iter_mut().enumerate() {
        if i > 0 && i % burst_len == 0 {
            shift += gap;
        }
        record.0 += shift;
    }
    jitter_arrivals(&mut stream, seed, config.lateness);
    stream
}

/// The in-order reference of a stream: the same records sorted by
/// `(time, seq)`.
pub fn sorted_twin(stream: &[TimedLine]) -> Vec<TimedLine> {
    let mut twin = stream.to_vec();
    twin.sort_by_key(|a| (a.0, a.1));
    twin
}

/// The largest time displacement in `stream`: the maximum, over all
/// records, of (highest event time seen at arrival − own event time).
/// A stream is "in order up to `b`" exactly when this is at most `b`.
pub fn max_displacement(stream: &[TimedLine]) -> u64 {
    let mut max_time = 0u64;
    let mut worst = 0u64;
    for &(time, _, _) in stream {
        max_time = max_time.max(time);
        worst = worst.max(max_time - time);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let cfg = DisorderConfig::default();
        assert_eq!(disordered_stream(7, &cfg), disordered_stream(7, &cfg));
        assert_eq!(straggler_stream(7, &cfg, 3), straggler_stream(7, &cfg, 3));
        assert_eq!(
            bursty_stream(7, &cfg, 32, 1_000),
            bursty_stream(7, &cfg, 32, 1_000)
        );
        assert_ne!(disordered_stream(7, &cfg), disordered_stream(8, &cfg));
    }

    #[test]
    fn disorder_is_real_but_bounded() {
        let cfg = DisorderConfig::default();
        let stream = disordered_stream(3, &cfg);
        let twin = sorted_twin(&stream);
        assert_ne!(stream, twin, "the shuffle must actually disorder");
        assert!(max_displacement(&stream) <= cfg.lateness);
        assert_eq!(max_displacement(&twin), 0);
        // Same records, different arrival order.
        let mut a = stream.clone();
        a.sort_by_key(|x| (x.0, x.1));
        assert_eq!(a, twin);
    }

    #[test]
    fn stragglers_exceed_the_bound() {
        let cfg = DisorderConfig::default();
        let stream = straggler_stream(11, &cfg, 4);
        assert!(max_displacement(&stream) > cfg.lateness);
        assert_eq!(
            sorted_twin(&stream),
            sorted_twin(&disordered_stream(11, &cfg))
        );
    }

    #[test]
    fn bursts_are_separated_by_the_gap() {
        let cfg = DisorderConfig::default();
        let gap = 50_000;
        let stream = bursty_stream(5, &cfg, 64, gap);
        let twin = sorted_twin(&stream);
        let jumps = twin.windows(2).filter(|w| w[1].0 - w[0].0 >= gap).count();
        assert_eq!(jumps, (cfg.records - 1) / 64, "one jump per burst break");
        assert!(max_displacement(&stream) <= cfg.lateness);
    }
}
