//! Head-to-head aggregation-structure shootout (companion analysis to the
//! paper's §7 figures): per-leaf modeled work and simulated seconds for
//! every window-capable structure across window size × slide fraction.
//!
//! Run with `cargo bench -p slider-bench --bench shootout`; set
//! `BENCH_JSON_DIR` to also write `BENCH_shootout.json` (the file CI
//! diffs against the checked-in baseline via `shootout_viewer --check`).

use slider_bench::{banner, run_shootout, shootout_report, shootout_table};

fn main() {
    banner("Aggregation-structure shootout: per-leaf cost (kind x window x slide)");
    let points = run_shootout();
    print!("{}", shootout_table(&points).render());
    println!(
        "expected: strawman grows linearly with the window, the contraction\n\
         trees logarithmically, and the twin-stack family (twostack, daba,\n\
         daba-lite) stays flat — the O(1) vs O(log n) crossover."
    );
    if let Some(path) = shootout_report(&points).write_if_configured() {
        println!("wrote {}", path.display());
    }
}
