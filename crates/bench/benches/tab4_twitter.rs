//! Table 4: the Twitter information-propagation case study (§8.1) —
//! append-only windowing over the tweet stream: a large initial interval
//! followed by four weekly appends of ~5% each, reporting per-append work
//! and time speedups plus the initial-run overhead.

use std::sync::Arc;

use slider_apps::TwitterPropagation;
use slider_bench::{banner, fmt_f64, Table};
use slider_mapreduce::{make_splits, ExecMode, JobConfig, SimulationConfig, WindowedJob};
use slider_workloads::twitter::{generate, TwitterConfig, TwitterDataset};

/// Table 4's interval proportions, in millions of tweets.
const INTERVALS: [u64; 5] = [14_643, 742, 815, 794, 856];
const INTERVAL_LABELS: [&str; 4] = ["Jul 1-7", "Jul 8-14", "Jul 15-21", "Jul 22-28"];
const TWEETS: usize = 40_000;
const TWEETS_PER_SPLIT: usize = 250;

fn run(data: &TwitterDataset, mode: ExecMode) -> (u64, f64, Vec<(u64, f64)>) {
    let mut job = WindowedJob::new(
        TwitterPropagation::new(Arc::clone(&data.graph)),
        JobConfig::new(mode)
            .with_partitions(8)
            .with_simulation(SimulationConfig::paper_defaults()),
    )
    .expect("valid config");

    let intervals = data.intervals(&INTERVALS);
    let mut next_id = 0u64;
    let mut mk = |tweets: Vec<slider_workloads::twitter::Tweet>| {
        let splits = make_splits(next_id, tweets, TWEETS_PER_SPLIT);
        next_id += splits.len() as u64;
        splits
    };

    let mut iter = intervals.into_iter();
    let initial = job
        .initial_run(mk(iter.next().expect("5 intervals")))
        .expect("initial");
    let initial_work = initial.work.grand_total();
    let initial_time = initial.time_seconds().expect("simulation configured");

    let mut appends = Vec::new();
    for interval in iter {
        let stats = job.advance(0, mk(interval)).expect("weekly append");
        appends.push((
            stats.work.foreground_total(),
            stats.time_seconds().expect("simulation configured"),
        ));
    }
    (initial_work, initial_time, appends)
}

fn main() {
    banner("Table 4: Twitter information-propagation trees (append-only)");
    let data = generate(
        0x7017,
        &TwitterConfig {
            users: 3_000,
            avg_follows: 8,
            urls: 400,
            repost_probability: 0.3,
        },
        TWEETS,
    );

    let (van_init_work, van_init_time, vanilla) = run(&data, ExecMode::Recompute);
    let (sl_init_work, sl_init_time, slider) = run(&data, ExecMode::slider_coalescing(true));

    let mut table = Table::new(&["interval", "change %", "time speedup", "work speedup"]);
    let total_initial: u64 = INTERVALS[0];
    let mut cumulative = total_initial;
    for ((label, v), s) in INTERVAL_LABELS.iter().zip(&vanilla).zip(&slider) {
        let idx = table_index(label);
        let change = 100.0 * INTERVALS[idx + 1] as f64 / cumulative as f64;
        cumulative += INTERVALS[idx + 1];
        table.row(vec![
            label.to_string(),
            fmt_f64(change),
            fmt_f64(v.1 / s.1.max(1e-9)),
            fmt_f64(v.0 as f64 / s.0.max(1) as f64),
        ]);
    }
    print!("{}", table.render());
    println!(
        "initial-run overhead: work {}%, time {}%",
        fmt_f64(100.0 * (sl_init_work as f64 / van_init_work.max(1) as f64 - 1.0)),
        fmt_f64(100.0 * (sl_init_time / van_init_time.max(1e-9) - 1.0)),
    );
    println!(
        "\npaper shape: ~5% weekly appends give nearly constant speedups of\n\
         about 9x (time) and 14x (work) across the four weeks, with a ~22%\n\
         one-time overhead on the initial interval."
    );
}

fn table_index(label: &str) -> usize {
    INTERVAL_LABELS
        .iter()
        .position(|l| *l == label)
        .expect("known label")
}
