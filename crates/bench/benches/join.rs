//! Incremental-vs-recompute windowed-join sweep (slider-join), plus the
//! approximate-windows error-vs-space rows.
//!
//! Run with `cargo bench -p slider-bench --bench join`; set
//! `BENCH_JSON_DIR` to also write `BENCH_join.json` (the file CI diffs
//! against the checked-in baseline via `join_viewer --check`).

use slider_bench::{
    approx_table, banner, join_report, join_table, run_approx_rows, run_join_bench,
};

fn main() {
    banner("Windowed join: incremental delta probing vs cross-product recompute");
    let points = run_join_bench();
    print!("{}", join_table(&points).render());
    println!(
        "expected: the incremental operator's advantage widens as the slide\n\
         fraction shrinks — delta probes scale with churn, recompute with\n\
         the whole window."
    );
    banner("Approximate windows: per-key DGIM counters vs exact retention");
    let approx = run_approx_rows();
    print!("{}", approx_table(&approx).render());
    if let Some(path) = join_report(&points, &approx).write_if_configured() {
        println!("wrote {}", path.display());
    }
}
