//! Ablation study (beyond the paper's figures): how Slider's design knobs
//! affect incremental update cost.
//!
//! 1. **Bucket width** (`w` in §4.1): a fixed 200-split window divided into
//!    windows/w buckets. Narrow buckets mean more rotations per slide;
//!    wide buckets mean a shallower tree but more bucket-formation merges.
//! 2. **Folding rebuild factor** (§3.2's simple rebalancing strategy):
//!    after a drastic shrink, how aggressively should the folding tree be
//!    rebuilt from scratch?

use std::sync::Arc;

use slider_bench::{banner, hct_spec, run_slide_with, Table, WindowKind};
use slider_core::{
    ContractionTree, FnCombiner, FoldingTree, TreeCx, UpdateStats, WindowAggregator,
};
use slider_mapreduce::ExecMode;

fn main() {
    banner("Ablation 1: rotating-tree bucket width (200-split window, 10% slide)");
    let spec = hct_spec();
    let mut table = Table::new(&[
        "bucket width (splits)",
        "buckets",
        "update work",
        "contraction merges",
    ]);
    for width in [1usize, 2, 5, 10, 20] {
        let n = spec.initial.len();
        let m = run_slide_with(
            &spec,
            ExecMode::slider_rotating(false),
            WindowKind::Fixed,
            10,
            |c| {
                // Override the driver's default geometry.
                c.with_buckets(n / width, width)
            },
        );
        table.row(vec![
            width.to_string(),
            (n / width).to_string(),
            m.work.to_string(),
            m.stats.work.contraction_fg.merges.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!(
        "expected: very narrow buckets pay log-depth path updates per split;\n\
         very wide buckets pay large bucket-formation folds; the sweet spot\n\
         sits in between (the paper slides by whole buckets, w = slide size)."
    );

    banner("Ablation 2: folding-tree rebuild factor under a drastic shrink");
    let combiner = FnCombiner::new(|_: &u8, a: &u64, b: &u64| a.wrapping_add(*b));
    let key = 0u8;
    let mut table = Table::new(&[
        "rebuild factor",
        "height after shrink",
        "shrink-run merges",
        "10 follow-up merges",
    ]);
    for factor in [None, Some(16u32), Some(8), Some(4)] {
        let mut tree = match factor {
            None => FoldingTree::new(),
            Some(f) => FoldingTree::with_rebuild_factor(f),
        };
        let n = 4096u64;
        let mk = |r: std::ops::Range<u64>| -> Vec<Option<Arc<u64>>> {
            r.map(|v| Some(Arc::new(v))).collect()
        };
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        WindowAggregator::<u8, u64>::rebuild(&mut tree, &mut cx, mk(0..n));
        let mut next = n;
        // Steady slide, then shrink to 2% of the window.
        tree.advance(&mut cx, (n / 10) as usize, mk(next..next + n / 10))
            .unwrap();
        next += n / 10;
        let mut shrink_stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut shrink_stats);
        let live = WindowAggregator::<u8, u64>::len(&tree);
        tree.advance(&mut cx, live - 80, mk(next..next + 2))
            .unwrap();
        next += 2;

        let mut follow = 0u64;
        for _ in 0..10 {
            let mut stats = UpdateStats::default();
            let mut cx = TreeCx::new(&combiner, &key, &mut stats);
            tree.advance(&mut cx, 2, mk(next..next + 2)).unwrap();
            next += 2;
            follow += stats.foreground.merges;
        }
        table.row(vec![
            factor.map_or("none".to_string(), |f| f.to_string()),
            ContractionTree::<u8, u64>::height(&tree).to_string(),
            shrink_stats.foreground.merges.to_string(),
            follow.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!(
        "expected: without a rebuild factor the tree stays tall after the\n\
         shrink and follow-up updates pay for it; aggressive factors pay a\n\
         one-time rebuild (shrink-run merges ≈ live window) to restore the\n\
         optimal height — §3.2's trade-off."
    );

    banner("Ablation 3: strawman memo-cache hit behaviour by slide parity");
    // Slides of even length preserve pairing parity only under
    // content-keyed memoization; Slider's task-granularity strawman misses
    // either way. This quantifies the §2.1 claim directly.
    let mut table = Table::new(&["slide", "fresh merges", "reused nodes"]);
    for remove in [1usize, 2, 3] {
        let mut tree = slider_core::StrawmanTree::new();
        let mk = |r: std::ops::Range<u64>| -> Vec<Option<Arc<u64>>> {
            r.map(|v| Some(Arc::new(v))).collect()
        };
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        WindowAggregator::<u8, u64>::rebuild(&mut tree, &mut cx, mk(0..512));
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        tree.advance(&mut cx, remove, mk(1000..1000 + remove as u64))
            .unwrap();
        table.row(vec![
            format!("-{remove}/+{remove}"),
            stats.foreground.merges.to_string(),
            stats.reused.to_string(),
        ]);
    }
    print!("{}", table.render());
}
