//! Ablation: worker-thread count vs wall-clock time of the shared
//! partition-sharded runtime.
//!
//! Every executor phase that runs on the runtime — map, contraction,
//! reduce, background pre-processing — is metered in *modeled* work units
//! that are bitwise-independent of the thread count (the determinism suite
//! proves it). This target measures the one thing that *should* change
//! with threads: real elapsed time. It sweeps worker counts from 1 up to
//! the machine's available parallelism on the two most data-intensive
//! micro-benchmarks and reports wall-clock speedup next to the (unchanged)
//! modeled work.
//!
//! On a single-core container the sweep degenerates to one row; run on a
//! multi-core machine to see the scaling.

use std::time::{Duration, Instant};

use slider_bench::datasets::MicrobenchSpec;
use slider_bench::hct_spec;
use slider_bench::{banner, fmt_f64, fmt_speedup, substr_spec, Table};
use slider_mapreduce::{ExecMode, JobConfig, MapReduceApp, WindowedJob};

/// Thread counts to sweep: 1, powers of two, and the machine maximum.
fn sweep() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![1];
    let mut t = 2;
    while t < max {
        counts.push(t);
        t *= 2;
    }
    if max > 1 {
        counts.push(max);
    }
    counts
}

/// Times one full job at a given thread count: an initial 200-split window,
/// then a 25% slide. Returns (initial wall time, update wall time, update
/// modeled foreground work).
fn run_at<A: MapReduceApp + Clone>(
    spec: &MicrobenchSpec<A>,
    mode: ExecMode,
    threads: usize,
) -> (Duration, Duration, u64) {
    let delta = (spec.initial.len() * 25).div_ceil(100);
    let config = JobConfig::new(mode)
        .with_partitions(8)
        .with_threads(threads);
    let mut job = WindowedJob::new(spec.app.clone(), config).expect("valid config");

    let t0 = Instant::now();
    job.initial_run(spec.initial.clone()).expect("initial run");
    let initial = t0.elapsed();

    let t1 = Instant::now();
    let stats = job
        .advance(delta, spec.extra[..delta].to_vec())
        .expect("slide");
    let update = t1.elapsed();

    (initial, update, stats.work.foreground_total())
}

fn sweep_app<A: MapReduceApp + Clone>(title: &str, spec: &MicrobenchSpec<A>, mode: ExecMode) {
    banner(title);
    let mut table = Table::new(&[
        "threads",
        "initial (ms)",
        "update (ms)",
        "initial speedup",
        "update speedup",
        "update work",
    ]);
    let mut baseline: Option<(f64, f64, u64)> = None;
    for threads in sweep() {
        let (initial, update, work) = run_at(spec, mode, threads);
        let (init_s, upd_s) = (initial.as_secs_f64(), update.as_secs_f64());
        let (base_init, base_upd, base_work) = *baseline.get_or_insert((init_s, upd_s, work));
        assert_eq!(
            work, base_work,
            "modeled work must not depend on the thread count"
        );
        table.row(vec![
            threads.to_string(),
            fmt_f64(init_s * 1e3),
            fmt_f64(upd_s * 1e3),
            fmt_speedup(base_init, init_s),
            fmt_speedup(base_upd, upd_s),
            work.to_string(),
        ]);
    }
    print!("{}", table.render());
}

fn main() {
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("available parallelism: {max} (sweep: {:?})", sweep());
    if std::env::var(slider_mapreduce::THREADS_ENV).is_ok() {
        println!(
            "warning: {} is set and overrides every row's thread count — \
             unset it for a meaningful sweep",
            slider_mapreduce::THREADS_ENV
        );
    }

    sweep_app(
        "subStr, vanilla recompute (map+contraction+reduce of the full window)",
        &substr_spec(),
        ExecMode::Recompute,
    );
    sweep_app(
        "HCT, Slider folding tree (incremental contraction across 8 shards)",
        &hct_spec(),
        ExecMode::slider_folding(),
    );
    println!(
        "\nexpected: modeled work identical in every row; wall-clock speedup\n\
         grows with threads until the 8 partition shards are saturated."
    );
}
