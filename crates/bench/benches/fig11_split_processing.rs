//! Figure 11: effectiveness of split processing — the cost of an update
//! with background pre-processing + foreground processing, normalized to
//! the same update without split processing (= 1.0), for the append-only
//! and fixed-width cases at a 5% input change.
//!
//! Calibration note: split processing saves *latency on the critical
//! path*; at our laptop scale the simulated per-task startup would mask
//! millisecond-level contraction savings, so this figure runs with a
//! latency-scale cost model (low startup, paper-ratio compute rates) —
//! see EXPERIMENTS.md.

use slider_bench::{banner, fmt_f64, for_each_app_with_cluster, Table, WindowKind};
use slider_cluster::{ClusterSpec, CostModel, MachineSpec};

/// Cost model making contraction-phase latency visible at our data scale.
fn latency_cluster() -> ClusterSpec {
    ClusterSpec {
        machines: vec![MachineSpec::healthy(); 24],
        cost: CostModel {
            work_per_second: 2_000.0,
            local_bytes_per_second: 4.0e6,
            remote_bytes_per_second: 1.0e6,
            task_startup_seconds: 0.02,
        },
    }
}

fn main() {
    banner("Figure 11: effectiveness of split processing (5% change; unsplit update = 1.0)");

    for kind in [WindowKind::Append, WindowKind::Fixed] {
        banner(&format!(
            "Fig 11 — {} case",
            if kind == WindowKind::Append {
                "Append-only"
            } else {
                "Fixed-width"
            }
        ));
        let mut table = Table::new(&[
            "app",
            "foreground",
            "background",
            "fg latency saving %",
            "offloaded %",
            "extra merges %",
        ]);
        for_each_app_with_cluster(latency_cluster(), |name, run| {
            let plain = run(kind.slider_mode(false), kind, 5);
            let split = run(kind.slider_mode(true), kind, 5);

            // Normalize times to the unsplit update (total update time = 1).
            let fg = split.time / plain.time.max(1e-9);
            let bg = split.background_time / plain.time.max(1e-9);
            let saving = 100.0 * (1.0 - fg);
            // Contraction work offloaded off the critical path.
            let fg_contraction = split.stats.work.contraction_fg.work;
            let bg_contraction = split.stats.work.contraction_bg.work;
            let offloaded =
                100.0 * bg_contraction as f64 / (fg_contraction + bg_contraction).max(1) as f64;
            let extra = 100.0
                * ((fg_contraction + bg_contraction) as f64
                    / plain.stats.work.contraction_fg.work.max(1) as f64
                    - 1.0);
            table.row(vec![
                name.to_string(),
                fmt_f64(fg),
                fmt_f64(bg),
                fmt_f64(saving),
                fmt_f64(offloaded),
                fmt_f64(extra),
            ]);
        });
        print!("{}", table.render());
    }
    println!(
        "\npaper shape: foreground updates are 25-40% faster with split\n\
         processing, with 36-60% of the contraction work offloaded to the\n\
         background; foreground + background exceeds 1.0 (extra merge work:\n\
         1-23% for append-only, 6-36% for fixed-width). Compute-intensive\n\
         apps have little contraction work to offload at this scale."
    );
}
