//! Figure 7: work and time speedups of Slider versus recomputing the
//! window from scratch with vanilla Hadoop, for the five micro-benchmarks,
//! the three windowing modes (Append-only / Fixed-width / Variable-width),
//! and input changes of 5–25%.

use slider_bench::{banner, fmt_f64, for_each_app, Table, WindowKind, PCTS};
use slider_mapreduce::ExecMode;

fn main() {
    banner("Figure 7: Slider speedup vs. recomputing from scratch");
    println!("(rows: application; columns: incremental change of input)");

    // Collect all runs first so the six sub-figures print grouped.
    let mut work: Vec<(WindowKind, &'static str, Vec<f64>)> = Vec::new();
    let mut time: Vec<(WindowKind, &'static str, Vec<f64>)> = Vec::new();

    for_each_app(|name, run| {
        for kind in WindowKind::ALL {
            let mut work_row = Vec::new();
            let mut time_row = Vec::new();
            for pct in PCTS {
                let vanilla = run(ExecMode::Recompute, kind, pct);
                let slider = run(kind.slider_mode(false), kind, pct);
                work_row.push(vanilla.work as f64 / slider.work.max(1) as f64);
                time_row.push(vanilla.time / slider.time.max(1e-9));
            }
            work.push((kind, name, work_row));
            time.push((kind, name, time_row));
        }
    });

    let header: Vec<String> = std::iter::once("app".to_string())
        .chain(PCTS.iter().map(|p| format!("{p}%")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

    for (metric, data) in [("Work", &work), ("Time", &time)] {
        for kind in WindowKind::ALL {
            banner(&format!(
                "Fig 7 ({metric}) — {} ({})",
                match kind {
                    WindowKind::Append => "Append-only",
                    WindowKind::Fixed => "Fixed-width",
                    WindowKind::Variable => "Variable-width",
                },
                kind.letter()
            ));
            let mut table = Table::new(&header_refs);
            for (k, name, row) in data {
                if *k == kind {
                    let mut cells = vec![name.to_string()];
                    cells.extend(row.iter().map(|v| fmt_f64(*v)));
                    table.row(cells);
                }
            }
            print!("{}", table.render());
        }
    }
    println!(
        "\npaper shape: speedups decrease with change size; compute-intensive\n\
         (K-Means, KNN) highest (up to ~35x at 5% in the paper); data-intensive\n\
         lower; variable-width <= fixed/append due to rebalancing overhead."
    );
}
