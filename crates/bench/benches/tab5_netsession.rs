//! Table 5: the Akamai NetSession accountability case study (§8.3) —
//! variable-width windowing: a one-month window of weekly client-log
//! uploads slides by one week, with the fraction of clients uploading in
//! the final week varying from 100% down to 75%.

use slider_apps::NetSessionAudit;
use slider_bench::{banner, fmt_f64, Table};
use slider_mapreduce::{make_splits, ExecMode, JobConfig, SimulationConfig, WindowedJob};
use slider_workloads::netsession::{generate_week, NetSessionConfig, TABLE5_UPLOAD_FRACTIONS};

const LOGS_PER_SPLIT: usize = 100;

/// Runs one scenario: four full weeks in the window, then the 5th week
/// arrives with `upload_fraction` of clients online; the window slides by
/// one week. Returns (work, time) of the sliding run.
fn run(mode: ExecMode, upload_fraction: f64) -> (u64, f64) {
    let config = NetSessionConfig {
        clients: 4_000,
        mean_entries: 30,
        tamper_rate: 0.01,
    };
    let mut job = WindowedJob::new(
        NetSessionAudit::new(),
        JobConfig::new(mode)
            .with_partitions(8)
            .with_simulation(SimulationConfig::paper_defaults()),
    )
    .expect("valid config");

    let mut next_id = 0u64;
    let mut week_splits = Vec::new();
    let mut initial = Vec::new();
    for week in 0..4u32 {
        let logs = generate_week(0xaca3, &config, week, 0.93);
        let splits = make_splits(next_id, logs, LOGS_PER_SPLIT);
        next_id += splits.len() as u64;
        week_splits.push(splits.len());
        initial.extend(splits);
    }
    job.initial_run(initial).expect("initial month");

    let fifth = generate_week(0xaca3, &config, 4, upload_fraction);
    let added = make_splits(next_id, fifth, LOGS_PER_SPLIT);
    let stats = job.advance(week_splits[0], added).expect("weekly slide");
    (
        stats.work.foreground_total(),
        stats.time_seconds().expect("simulation configured"),
    )
}

fn main() {
    banner("Table 5: NetSession log audits (variable-width window, week 5 upload fraction)");

    let mut table = Table::new(&["% clients uploading", "time speedup", "work speedup"]);
    for fraction in TABLE5_UPLOAD_FRACTIONS {
        let vanilla = run(ExecMode::Recompute, fraction);
        let slider = run(ExecMode::slider_folding(), fraction);
        table.row(vec![
            format!("{:.0}%", fraction * 100.0),
            fmt_f64(vanilla.1 / slider.1.max(1e-9)),
            fmt_f64(vanilla.0 as f64 / slider.0.max(1) as f64),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\npaper shape: speedups of ~1.7-2.2x (time) and ~2.1-2.7x (work),\n\
         growing as fewer clients upload — a smaller final week means a\n\
         smaller delta for the incremental run."
    );
}
