//! Table 1: normalized run-time of Slider's memoization-aware hybrid
//! scheduler relative to Hadoop's stock scheduler (= 1.0), both running
//! the same Slider incremental computation.
//!
//! Calibration note: the benefit of memoization-aware placement scales
//! with the ratio of memoized-state size to compute. Our datasets are
//! ~1000× smaller than the paper's 20 GB runs, so this table runs with the
//! byte-to-second rates scaled up accordingly (documented in
//! EXPERIMENTS.md); the *ratios* are the reproduced quantity.

use slider_bench::{
    banner, fmt_f64, hct_spec, kmeans_spec, knn_spec, matrix_spec, run_slide_with, substr_spec,
    MicrobenchSpec, Table, WindowKind,
};
use slider_cluster::{ClusterSpec, CostModel, MachineSpec, SchedulerPolicy};
use slider_mapreduce::{MapReduceApp, SimulationConfig};

/// A cluster whose data-movement rates are scaled to our dataset size so
/// that reading memoized state remotely costs the same *fraction* of a run
/// as in the paper's testbed.
fn measurement_cluster() -> ClusterSpec {
    ClusterSpec {
        machines: vec![MachineSpec::healthy(); 24],
        cost: CostModel {
            work_per_second: 50_000.0,
            local_bytes_per_second: 4.0e6,
            remote_bytes_per_second: 2.5e5,
            task_startup_seconds: 0.05,
        },
    }
}

fn ratio<A: MapReduceApp + Clone>(spec: &MicrobenchSpec<A>) -> f64 {
    let kind = WindowKind::Fixed;
    let mode = kind.slider_mode(false);
    let run = |policy: SchedulerPolicy| {
        run_slide_with(spec, mode, kind, 5, |config| {
            config.with_simulation(SimulationConfig {
                cluster: measurement_cluster(),
                policy,
            })
        })
        .time
    };
    let hadoop = run(SchedulerPolicy::Vanilla);
    let slider = run(SchedulerPolicy::hybrid_default());
    slider / hadoop.max(1e-9)
}

fn main() {
    banner("Table 1: normalized run-time with the Slider scheduler (Hadoop scheduler = 1.0)");
    let mut table = Table::new(&["K-Means", "HCT", "KNN", "Matrix", "subStr"]);
    table.row(vec![
        fmt_f64(ratio(&kmeans_spec())),
        fmt_f64(ratio(&hct_spec())),
        fmt_f64(ratio(&knn_spec())),
        fmt_f64(ratio(&matrix_spec())),
        fmt_f64(ratio(&substr_spec())),
    ]);
    print!("{}", table.render());
    println!(
        "\npaper values: 0.94  0.72  0.82  0.83  0.76 — data-intensive apps\n\
         (bigger memoized state) save more from memoization-aware placement;\n\
         compute-intensive apps save the least."
    );
}
