//! Figure 8: work and time speedups of Slider versus the memoization-based
//! strawman (§2) — both systems reuse map outputs, so the difference is
//! purely the self-adjusting contraction trees versus task-granularity
//! memoization.

use slider_bench::{banner, fmt_f64, for_each_app, Table, WindowKind, PCTS};
use slider_mapreduce::ExecMode;

fn main() {
    banner("Figure 8: Slider speedup vs. the strawman (memoization-only) design");

    let mut work: Vec<(WindowKind, &'static str, Vec<f64>)> = Vec::new();
    let mut time: Vec<(WindowKind, &'static str, Vec<f64>)> = Vec::new();

    for_each_app(|name, run| {
        for kind in WindowKind::ALL {
            let mut work_row = Vec::new();
            let mut time_row = Vec::new();
            for pct in PCTS {
                let strawman = run(ExecMode::Strawman, kind, pct);
                let slider = run(kind.slider_mode(false), kind, pct);
                work_row.push(strawman.work as f64 / slider.work.max(1) as f64);
                time_row.push(strawman.time / slider.time.max(1e-9));
            }
            work.push((kind, name, work_row));
            time.push((kind, name, time_row));
        }
    });

    let header: Vec<String> = std::iter::once("app".to_string())
        .chain(PCTS.iter().map(|p| format!("{p}%")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

    for (metric, data) in [("Work", &work), ("Time", &time)] {
        for kind in WindowKind::ALL {
            banner(&format!(
                "Fig 8 ({metric}) — {} ({})",
                kind_name(kind),
                kind.letter()
            ));
            let mut table = Table::new(&header_refs);
            for (k, name, row) in data {
                if *k == kind {
                    let mut cells = vec![name.to_string()];
                    cells.extend(row.iter().map(|v| fmt_f64(*v)));
                    table.row(cells);
                }
            }
            print!("{}", table.render());
        }
    }
    println!(
        "\npaper shape: Slider >= strawman, with the largest gains on slides\n\
         that shift task alignment (fixed/variable windows) and at small\n\
         change sizes. Append-only gains are small here because position-\n\
         stable appends let the strawman reuse almost everything; see\n\
         EXPERIMENTS.md for the deviation discussion."
    );
}

fn kind_name(kind: WindowKind) -> &'static str {
    match kind {
        WindowKind::Append => "Append-only",
        WindowKind::Fixed => "Fixed-width",
        WindowKind::Variable => "Variable-width",
    }
}
