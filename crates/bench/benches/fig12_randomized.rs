//! Figure 12: randomized folding tree versus the plain folding tree under
//! drastic window shrinks — the window is reduced by 25% or 50% while a
//! small update (1% additions) arrives, and the *next* small updates' work
//! measures how well each tree re-balanced.
//!
//! Reproduction note (see EXPERIMENTS.md): our folding tree batches change
//! propagation, so contiguous updates share upper tree paths; the
//! randomized tree's height advantage after a 50% shrink therefore does
//! not cross break-even at this scale, though the *trend* — randomized
//! gaining as the imbalance grows — reproduces. The tree heights below
//! show the §3.2 mechanism directly.

use std::sync::Arc;

use slider_bench::{banner, fmt_f64, kmeans_spec, matrix_spec, MicrobenchSpec, Table};
use slider_core::{build_contraction_tree, FnCombiner, TreeCx, TreeKind, UpdateStats};
use slider_mapreduce::{ExecMode, JobConfig, MapReduceApp, WindowedJob};

/// Engine-level scenario: initial window → steady slide → shrink with 1%
/// additions → the next 1%-sized update's contraction work.
fn scenario<A: MapReduceApp + Clone>(
    spec: &MicrobenchSpec<A>,
    mode: ExecMode,
    shrink_pct: usize,
) -> u64 {
    let n = spec.initial.len();
    let mut job = WindowedJob::new(spec.app.clone(), JobConfig::new(mode).with_partitions(8))
        .expect("valid config");
    job.initial_run(spec.initial.clone()).expect("initial");

    let steady = n / 10;
    let mut cursor = 0usize;
    let mut take = |k: usize| {
        let s = spec.extra[cursor..cursor + k].to_vec();
        cursor += k;
        s
    };
    job.advance(steady, take(steady)).expect("steady slide");
    let shrink = n * shrink_pct / 100;
    let add = (n / 100).max(1);
    job.advance(shrink, take(add)).expect("shrink");
    let update = job.advance(add, take(add)).expect("follow-up update");
    update.work.contraction_fg.work
}

/// Core-level trend: merges of ten 1% append updates after a `shrink_pct`
/// shrink, plus the resulting tree heights, over a 4096-leaf window.
fn core_trend(kind: TreeKind, shrink_pct: u64) -> (usize, u64) {
    let n: u64 = 4096;
    let combiner = FnCombiner::new(|_: &u8, a: &u64, b: &u64| a.wrapping_add(*b));
    let key = 0u8;
    let mut tree = build_contraction_tree::<u8, u64>(kind, 0);
    let mk = |range: std::ops::Range<u64>| -> Vec<Option<Arc<u64>>> {
        range.map(|v| Some(Arc::new(v))).collect()
    };
    let mut stats = UpdateStats::default();
    let mut cx = TreeCx::new(&combiner, &key, &mut stats);
    tree.rebuild(&mut cx, mk(0..n));
    let mut next = n;
    tree.advance(&mut cx, (n / 10) as usize, mk(next..next + n / 10))
        .unwrap();
    next += n / 10;
    let shrink = n * shrink_pct / 100;
    tree.advance(&mut cx, shrink as usize, mk(next..next + n / 100))
        .unwrap();
    next += n / 100;

    let mut merges = 0;
    for _ in 0..10 {
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        tree.advance(&mut cx, 0, mk(next..next + n / 100)).unwrap();
        next += n / 100;
        merges += stats.foreground.merges;
    }
    (tree.height(), merges)
}

fn main() {
    banner("Figure 12: randomized folding tree vs. plain folding tree");

    banner("Fig 12 — per-application work on the small update after a shrink");
    let mut table = Table::new(&[
        "app",
        "scenario",
        "folding work",
        "randomized work",
        "speedup",
    ]);
    let kmeans = kmeans_spec();
    let matrix = matrix_spec();
    for shrink in [25usize, 50] {
        let label = format!("{shrink}% remove, 1% add");
        for (name, fold, rand) in [
            (
                "K-Means",
                scenario(&kmeans, ExecMode::slider_folding(), shrink),
                scenario(&kmeans, ExecMode::slider_randomized(), shrink),
            ),
            (
                "Matrix",
                scenario(&matrix, ExecMode::slider_folding(), shrink),
                scenario(&matrix, ExecMode::slider_randomized(), shrink),
            ),
        ] {
            table.row(vec![
                name.to_string(),
                label.clone(),
                fold.to_string(),
                rand.to_string(),
                fmt_f64(fold as f64 / rand.max(1) as f64),
            ]);
        }
    }
    print!("{}", table.render());

    banner("Fig 12 — §3.2 mechanism: tree height and update merges vs. shrink (4096 leaves)");
    let mut trend = Table::new(&[
        "shrink %",
        "folding height",
        "randomized height",
        "folding merges",
        "randomized merges",
        "speedup",
    ]);
    for shrink in [25u64, 50, 75, 90] {
        let (fh, fm) = core_trend(TreeKind::Folding, shrink);
        let (rh, rm) = core_trend(TreeKind::RandomizedFolding, shrink);
        trend.row(vec![
            shrink.to_string(),
            fh.to_string(),
            rh.to_string(),
            fm.to_string(),
            rm.to_string(),
            fmt_f64(fm as f64 / rm.max(1) as f64),
        ]);
    }
    print!("{}", trend.render());

    println!(
        "\npaper shape: a large imbalance is required for the randomized tree\n\
         to pay off (15-22% gains at 50% removals; slightly behind at 25%).\n\
         Reproduced: the plain tree stays tall after big shrinks (heights\n\
         above) and the randomized tree's relative cost improves\n\
         monotonically with the imbalance; at this scale our batched path\n\
         propagation keeps the plain tree ahead of break-even — see\n\
         EXPERIMENTS.md for the deviation discussion."
    );
}
