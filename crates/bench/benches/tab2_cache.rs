//! Table 2: reduction in the time spent reading memoized state when the
//! in-memory distributed cache is enabled, versus serving every read from
//! the fault-tolerant persistent tier (fixed-width windowing).

use slider_bench::{
    banner, fmt_f64, hct_spec, kmeans_spec, knn_spec, matrix_spec, run_slide_with, substr_spec,
    MicrobenchSpec, Table, WindowKind,
};
use slider_dcache::CacheConfig;
use slider_mapreduce::MapReduceApp;

fn read_seconds<A: MapReduceApp + Clone>(spec: &MicrobenchSpec<A>, memory: bool) -> f64 {
    let kind = WindowKind::Fixed;
    let measurement = run_slide_with(spec, kind.slider_mode(false), kind, 5, |config| {
        let mut cache = CacheConfig::paper_defaults(24);
        cache.memory_enabled = memory;
        config.with_cache(cache)
    });
    measurement
        .stats
        .cache
        .expect("cache configured")
        .read_seconds
}

fn reduction<A: MapReduceApp + Clone>(spec: &MicrobenchSpec<A>) -> f64 {
    let with_memory = read_seconds(spec, true);
    let disk_only = read_seconds(spec, false);
    100.0 * (1.0 - with_memory / disk_only.max(1e-12))
}

fn main() {
    banner("Table 2: reduction in memoized-state read time from in-memory caching (%)");
    let mut table = Table::new(&["K-Means", "HCT", "KNN", "Matrix", "subStr"]);
    table.row(vec![
        fmt_f64(reduction(&kmeans_spec())),
        fmt_f64(reduction(&hct_spec())),
        fmt_f64(reduction(&knn_spec())),
        fmt_f64(reduction(&matrix_spec())),
        fmt_f64(reduction(&substr_spec())),
    ]);
    print!("{}", table.render());
    println!(
        "\npaper values: 48.68%  56.87%  53.19%  67.56%  66.2% — the memory\n\
         tier saves roughly half to two-thirds of the read time, more for\n\
         the apps with larger memoized state."
    );
}
