//! Criterion micro-benchmarks of the self-adjusting contraction trees: the
//! cost of a single-leaf slide at various window sizes, per tree kind, and
//! the initial-construction cost.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slider_core::{build_tree, FnCombiner, TreeCx, TreeKind, UpdateStats};

fn leaves(n: u64) -> Vec<Option<Arc<u64>>> {
    (0..n).map(|v| Some(Arc::new(v))).collect()
}

fn bench_slides(c: &mut Criterion) {
    let combiner = FnCombiner::new(|_: &u8, a: &u64, b: &u64| a.wrapping_add(*b));
    let key = 0u8;
    let mut group = c.benchmark_group("single_leaf_slide");
    for &n in &[256u64, 1024, 4096] {
        for kind in [
            TreeKind::Strawman,
            TreeKind::Folding,
            TreeKind::RandomizedFolding,
            TreeKind::Rotating,
        ] {
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &n, |b, &n| {
                let mut tree = build_tree::<u8, u64>(kind, n as usize);
                let mut stats = UpdateStats::default();
                let mut cx = TreeCx::new(&combiner, &key, &mut stats);
                tree.rebuild(&mut cx, leaves(n));
                let mut next = n;
                b.iter(|| {
                    let mut stats = UpdateStats::default();
                    let mut cx = TreeCx::new(&combiner, &key, &mut stats);
                    next += 1;
                    tree.advance(&mut cx, 1, vec![Some(Arc::new(next))])
                        .unwrap();
                    stats.foreground.merges
                });
            });
        }
        // Coalescing appends only.
        group.bench_with_input(BenchmarkId::new("coalescing-append", n), &n, |b, &n| {
            let mut tree = build_tree::<u8, u64>(TreeKind::Coalescing, 0);
            let mut stats = UpdateStats::default();
            let mut cx = TreeCx::new(&combiner, &key, &mut stats);
            tree.rebuild(&mut cx, leaves(n));
            let mut next = n;
            b.iter(|| {
                let mut stats = UpdateStats::default();
                let mut cx = TreeCx::new(&combiner, &key, &mut stats);
                next += 1;
                tree.advance(&mut cx, 0, vec![Some(Arc::new(next))])
                    .unwrap();
            });
        });
    }
    group.finish();
}

fn bench_initial_construction(c: &mut Criterion) {
    let combiner = FnCombiner::new(|_: &u8, a: &u64, b: &u64| a.wrapping_add(*b));
    let key = 0u8;
    let mut group = c.benchmark_group("initial_construction_4096");
    for kind in TreeKind::ALL {
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let mut tree = build_tree::<u8, u64>(kind, 4096);
                let mut stats = UpdateStats::default();
                let mut cx = TreeCx::new(&combiner, &key, &mut stats);
                tree.rebuild(&mut cx, leaves(4096));
                stats.foreground.merges
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_slides, bench_initial_construction
}
criterion_main!(benches);
