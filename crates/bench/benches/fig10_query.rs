//! Figure 10: incremental data-flow query processing — the PigMix-like
//! suite compiled to multi-job MapReduce pipelines, run under the three
//! window modes with a 5% input change, reporting work and time speedups
//! of Slider over the recompute-from-scratch pipeline.

use slider_bench::{banner, fmt_f64, Table, WindowKind};
use slider_mapreduce::{make_splits, ExecMode, JobConfig, SimulationConfig};
use slider_query::{pageview_row, pigmix_queries, PigMixQuery, QueryRunStats, Row};
use slider_workloads::pageviews::{generate_users, generate_views, PageViewConfig};

const WINDOW_SPLITS: usize = 200;
const ROWS_PER_SPLIT: usize = 30;
const INNER_BUCKETS: usize = 16;

/// End-to-end simulated pipeline time: every job (first and inner) is
/// scheduled on the simulated cluster; jobs run back-to-back.
fn pipeline_time(result: &QueryRunStats) -> f64 {
    result.total_time().expect("simulation configured")
}

fn run_query(pq: &PigMixQuery, mode: ExecMode, kind: WindowKind, views: &[Row]) -> QueryRunStats {
    let mut config = JobConfig::new(mode)
        .with_partitions(8)
        .with_simulation(SimulationConfig::paper_defaults());
    if kind == WindowKind::Fixed {
        config = config.with_buckets(WINDOW_SPLITS / 10, 10);
    }
    let mut exec = pq.query.compile(config, INNER_BUCKETS).expect("compiles");

    let initial = WINDOW_SPLITS * ROWS_PER_SPLIT;
    exec.initial_run(make_splits(0, views[..initial].to_vec(), ROWS_PER_SPLIT))
        .expect("initial run");

    // 5% change: 2 splits.
    let delta = WINDOW_SPLITS / 20;
    let added = make_splits(
        1_000_000,
        views[initial..initial + delta * ROWS_PER_SPLIT].to_vec(),
        ROWS_PER_SPLIT,
    );
    let remove = if kind == WindowKind::Append { 0 } else { delta };
    exec.advance(remove, added).expect("slide")
}

fn main() {
    banner("Figure 10: query processing (PigMix-like suite, 5% input change)");
    let cfg = PageViewConfig {
        users: 400,
        pages: 200,
        skew: 1.02,
    };
    let users = generate_users(0, &cfg);
    let views: Vec<Row> = generate_views(7, &cfg, 0, (WINDOW_SPLITS + 10) * ROWS_PER_SPLIT)
        .iter()
        .map(pageview_row)
        .collect();

    let mut table = Table::new(&["query", "jobs", "mode", "work speedup", "time speedup"]);
    let mut work_speedups = Vec::new();
    let mut time_speedups = Vec::new();

    for pq in pigmix_queries(&users) {
        let mut first = true;
        for kind in WindowKind::ALL {
            let vanilla = run_query(&pq, ExecMode::Recompute, kind, &views);
            let slider = run_query(&pq, kind.slider_mode(false), kind, &views);
            let jobs = pq.query.job_count();

            let work_x = vanilla.total_work() as f64 / slider.total_work().max(1) as f64;
            let time_x = pipeline_time(&vanilla) / pipeline_time(&slider).max(1e-9);
            work_speedups.push(work_x);
            time_speedups.push(time_x);
            table.row(vec![
                if first {
                    pq.name.to_string()
                } else {
                    String::new()
                },
                if first {
                    jobs.to_string()
                } else {
                    String::new()
                },
                kind.letter().to_string(),
                fmt_f64(work_x),
                fmt_f64(time_x),
            ]);
            first = false;
        }
    }
    print!("{}", table.render());
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "average: work {}x, time {}x",
        fmt_f64(avg(&work_speedups)),
        fmt_f64(avg(&time_speedups))
    );
    println!(
        "\npaper shape: queries compile to 2-3 job pipelines; average speedups\n\
         of ~11x (work) and ~2.5x (time) at 5% change, consistent with the\n\
         micro-benchmarks since queries reduce to MapReduce analyses."
    );
}
