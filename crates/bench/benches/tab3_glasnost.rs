//! Table 3: the Glasnost network-monitoring case study (§8.2) —
//! fixed-width windows of 3 months sliding by 1 month over the Jan–Nov
//! 2011 test traces, reporting per-window change size and Slider's work
//! and time speedups over recomputation.

use slider_apps::GlasnostMonitor;
use slider_bench::{banner, fmt_f64, Table};
use slider_mapreduce::{make_splits, ExecMode, JobConfig, SimulationConfig, Split, WindowedJob};
use slider_workloads::glasnost::{generate_months, GlasnostConfig, TABLE3_MONTHLY_TESTS};

const MONTH_LABELS: [&str; 9] = [
    "Jan-Mar", "Feb-Apr", "Mar-May", "Apr-Jun", "May-Jul", "Jun-Aug", "Jul-Sep", "Aug-Oct",
    "Sep-Nov",
];

/// Splits per month-bucket. The months differ in *size*, so each month is
/// chopped into the same *number* of splits with varying record counts —
/// this keeps the fixed-width bucket discipline while giving the map phase
/// cluster-wide parallelism.
const SPLITS_PER_MONTH: usize = 48;

fn run(mode: ExecMode) -> Vec<(usize, u64, f64)> {
    // 400 RTT samples per pcap trace: parsing the trace dominates the
    // Map task, as with the paper's real packet captures.
    let config = GlasnostConfig {
        servers: 4,
        clients: 600,
        samples_per_test: 400,
    };
    let months = generate_months(0x91a5, &config, &TABLE3_MONTHLY_TESTS);
    let mut job = WindowedJob::new(
        GlasnostMonitor::new(),
        JobConfig::new(mode)
            .with_partitions(4)
            .with_buckets(3, SPLITS_PER_MONTH)
            .with_simulation(SimulationConfig::paper_defaults()),
    )
    .expect("valid config");

    let mut next_id = 0u64;
    let month_splits: Vec<Vec<Split<_>>> = months
        .iter()
        .map(|traces| {
            let per_split = traces.len().div_ceil(SPLITS_PER_MONTH);
            let mut splits = make_splits(next_id, traces.clone(), per_split);
            // Pad with empty splits so every month is exactly one bucket.
            while splits.len() < SPLITS_PER_MONTH {
                splits.push(Split::from_records(
                    next_id + splits.len() as u64,
                    Vec::new(),
                ));
            }
            assert_eq!(splits.len(), SPLITS_PER_MONTH);
            next_id += SPLITS_PER_MONTH as u64;
            splits
        })
        .collect();

    let initial: Vec<Split<_>> = month_splits[0..3].iter().flatten().cloned().collect();
    job.initial_run(initial).expect("initial window Jan-Mar");

    let mut out = Vec::new();
    for (month, splits) in month_splits.iter().enumerate().skip(3) {
        let change: usize = splits.iter().map(Split::len).sum();
        let stats = job
            .advance(SPLITS_PER_MONTH, splits.clone())
            .expect("monthly slide");
        out.push((
            change,
            stats.work.foreground_total(),
            stats.time_seconds().expect("simulation configured"),
        ));
        let _ = month;
    }
    out
}

fn main() {
    banner("Table 3: Glasnost monitoring (3-month window, 1-month slides)");
    let vanilla = run(ExecMode::Recompute);
    let slider = run(ExecMode::slider_rotating(true));

    let mut table = Table::new(&[
        "window",
        "tests",
        "change",
        "change %",
        "work speedup",
        "time speedup",
    ]);
    let windows: Vec<usize> = TABLE3_MONTHLY_TESTS
        .windows(3)
        .map(|w| w.iter().sum())
        .collect();
    for (i, ((v, s), label)) in vanilla
        .iter()
        .zip(&slider)
        .zip(MONTH_LABELS.iter().skip(1))
        .enumerate()
    {
        let window_tests = windows[i + 1];
        table.row(vec![
            label.to_string(),
            window_tests.to_string(),
            v.0.to_string(),
            fmt_f64(100.0 * v.0 as f64 / window_tests as f64),
            fmt_f64(v.1 as f64 / s.1.max(1) as f64),
            fmt_f64(v.2 / s.2.max(1e-9)),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\npaper shape: change sizes of ~27-51% per month give speedups of\n\
         roughly 1.9-4.1x (work) and 1.9-3.8x (time), largest where the\n\
         monthly change is smallest (Apr-Jun) and smallest for the biggest\n\
         final month (Sep-Nov)."
    );
}
