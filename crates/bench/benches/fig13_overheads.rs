//! Figure 13: Slider's overheads for the initial run (a one-time cost) —
//! work overhead, time overhead, and the space overhead of memoizing
//! intermediate contraction-tree state, per application and window mode.

use slider_bench::{banner, fmt_f64, for_each_app, Table, WindowKind};
use slider_mapreduce::ExecMode;

fn main() {
    banner("Figure 13: overheads of the initial (first) run");

    let mut work = Table::new(&["app", "A %", "F %", "V %"]);
    let mut time = Table::new(&["app", "A %", "F %", "V %"]);
    let mut space = Table::new(&["app", "A x", "F x", "V x"]);

    for_each_app(|name, run| {
        let mut work_row = vec![name.to_string()];
        let mut time_row = vec![name.to_string()];
        let mut space_row = vec![name.to_string()];
        for kind in WindowKind::ALL {
            // The 5% slide is irrelevant here; we only read the *initial*
            // run statistics captured by the driver.
            let vanilla = run(ExecMode::Recompute, kind, 5);
            let slider = run(kind.slider_mode(false), kind, 5);

            let base_work = vanilla.initial.work.foreground_total().max(1) as f64;
            let s_work = slider.initial.work.grand_total() as f64;
            work_row.push(fmt_f64(100.0 * (s_work / base_work - 1.0).max(0.0)));

            let base_time = vanilla
                .initial
                .time_seconds()
                .expect("simulation configured")
                .max(1e-9);
            let s_time = slider
                .initial
                .time_seconds()
                .expect("simulation configured");
            time_row.push(fmt_f64(100.0 * (s_time / base_time - 1.0).max(0.0)));

            let input = slider.initial.window_input_bytes.max(1) as f64;
            let memo = slider.initial.memo_footprint_bytes as f64;
            space_row.push(fmt_f64(memo / input));
        }
        work.row(work_row);
        time.row(time_row);
        space.row(space_row);
    });

    banner("Fig 13(a) — work overhead of the initial run (%)");
    print!("{}", work.render());
    banner("Fig 13(b) — time overhead of the initial run (%)");
    print!("{}", time.render());
    banner("Fig 13(c) — space overhead (memoized bytes / input bytes)");
    print!("{}", space.render());

    println!(
        "\npaper shape: compute-intensive apps (K-Means, KNN) show low work/\n\
         time overheads and near-zero space overhead; data-intensive apps\n\
         pay more (I/O for memoizing intermediate state), Matrix the most\n\
         (~12x space in the paper); variable-width > fixed-width > append\n\
         because deeper/wider trees memoize more levels."
    );
}
