//! Figure 9: normalized execution breakdown of the incremental run —
//! Slider's Map work as a percentage of the Hadoop baseline's Map work,
//! and Slider's Contraction+Reduce work as a percentage of the baseline's
//! Reduce work, for 5% and 25% input changes.

use slider_bench::{banner, fmt_f64, for_each_app, BenchJson, Table, WindowKind};
use slider_mapreduce::{ExecMode, TraceSink};

fn main() {
    banner("Figure 9: performance breakdown for work (normalized to vanilla Hadoop)");

    let mut json = BenchJson::new("fig9_breakdown");
    for pct in [5usize, 25] {
        banner(&format!("Fig 9 — {pct}% change in the input"));
        let mut table = Table::new(&["app", "mode", "map %", "contraction+reduce %"]);
        let mut cr_percents: Vec<f64> = Vec::new();
        for_each_app(|name, run| {
            let mut first = true;
            for kind in WindowKind::ALL {
                let vanilla = run(ExecMode::Recompute, kind, pct);
                let slider = run(kind.slider_mode(false), kind, pct);

                let base_map = vanilla.stats.work.map.max(1) as f64;
                let base_reduce =
                    (vanilla.stats.work.reduce + vanilla.stats.work.movement).max(1) as f64;
                let s_map = slider.stats.work.map as f64;
                let s_cr = (slider.stats.work.contraction_fg.work
                    + slider.stats.work.reduce
                    + slider.stats.work.movement) as f64;

                let map_pct = 100.0 * s_map / base_map;
                let cr_pct = 100.0 * s_cr / base_reduce;
                cr_percents.push(cr_pct);
                table.row(vec![
                    if first {
                        name.to_string()
                    } else {
                        String::new()
                    },
                    kind.letter().to_string(),
                    fmt_f64(map_pct),
                    fmt_f64(cr_pct),
                ]);
                first = false;
            }
        });
        print!("{}", table.render());
        let avg = cr_percents.iter().sum::<f64>() / cr_percents.len() as f64;
        let min = cr_percents.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = cr_percents.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "contraction+reduce averages {}% of the baseline reduce (min {}, max {})",
            fmt_f64(avg),
            fmt_f64(min),
            fmt_f64(max)
        );
        json.metric(format!("cr_pct_avg_{pct}"), avg);
        json.metric(format!("cr_pct_min_{pct}"), min);
        json.metric(format!("cr_pct_max_{pct}"), max);
    }

    // Machine-readable report: the headline percentages plus the full
    // per-phase breakdown of a traced representative run (HCT, 25%
    // variable-width slide). Written only when BENCH_JSON_DIR is set.
    if slider_bench::bench_json_dir().is_some() {
        let sink = TraceSink::enabled();
        slider_bench::run_slide_with(
            &slider_bench::hct_spec(),
            ExecMode::slider_folding(),
            WindowKind::Variable,
            25,
            |config| config.with_trace(sink.clone()),
        );
        json.breakdown(sink.metrics_json().expect("sink is enabled"));
        if let Some(path) = json.write_if_configured() {
            println!("wrote {}", path.display());
        }
    }

    println!(
        "\npaper shape: Slider's Map percentage tracks the input change\n\
         (≈5% and ≈25%); contraction+reduce averages ~31% at 5% and ~43% at\n\
         25% of the baseline reduce, much less sensitive to the change size."
    );
}
