//! Ablation: the self-healing memoization layer under cache faults.
//!
//! Replays the staggered-failure scenario from the integration suite at
//! benchmark scale (200-split window, 20 buckets, 5% slides) on a disk-only
//! cache: node 1 dies before run 1, a replica of partition 1's object is
//! corrupted before run 2, and node 2 dies before run 3.
//!
//! * repair **off**: the second failure takes out the last replica of the
//!   objects homed between the failed nodes — reads degrade to
//!   recomputation (`recomputed` > 0). Corrupt copies are still detected
//!   and never served (checksums are a safety property, not a knob), but
//!   no background healing happens.
//! * repair **+ scrub**: failures enqueue the under-replicated objects,
//!   placement re-homes every rewrite onto live nodes, and a periodic
//!   scrub walks the copies — so the second failure finds healed replicas
//!   and recomputation stays at zero. All healing cost lands in the
//!   background columns, off the foreground read path.
//! * fault-free, repair on: every self-healing column is zero — with no
//!   faults and no scrub cadence configured, the layer is free.
//!
//! Outputs are compared against a fault-free twin in every row; faults are
//! never allowed to change answers, only costs.

use slider_bench::datasets::{MicrobenchSpec, FIXED_BUCKETS, WINDOW_SPLITS};
use slider_bench::{banner, fmt_f64, hct_spec, substr_spec, Table};
use slider_dcache::CacheConfig;
use slider_mapreduce::{ExecMode, JobConfig, JobFaultPlan, MapReduceApp, RunStats, WindowedJob};

/// Cache-cluster size. Matching the partition count gives every partition's
/// object a distinct home, so the plan below can take out both persistent
/// replicas of one home's object across two runs.
const NODES: usize = 4;
/// Slides driven after the initial window (5% of the buckets each).
const SLIDES: usize = 4;
/// Scrub cadence for the self-healing configuration (every other run).
const SCRUB_INTERVAL: u64 = 2;

/// Node 1 dies before run 1, one replica of partition 1's object is
/// flipped before run 2, node 2 dies before run 3. With 4 nodes and 2
/// replicas, objects homed on node 0 replicate to exactly {1, 2}: without
/// repair the second failure orphans them; with repair every rewrite after
/// run 1 has already re-homed the lost copies.
fn fault_plan() -> JobFaultPlan {
    JobFaultPlan::none()
        .fail_cache_node(1, 1)
        .corrupt_object(2, 1, 2)
        .fail_cache_node(3, 2)
}

/// Disk-only cache (Table-2 style) so persistent-tier loss is visible:
/// with the memory tier on, the home node would mask replica failures.
fn cache_config(repair: bool) -> CacheConfig {
    let mut cache = CacheConfig::paper_defaults(NODES);
    cache.memory_enabled = false;
    if repair {
        cache = cache.with_repair();
    }
    cache
}

/// Runs the initial window plus `SLIDES` single-bucket slides and returns
/// the finished job with its per-run stats.
fn drive<A: MapReduceApp + Clone>(
    spec: &MicrobenchSpec<A>,
    cache: CacheConfig,
    plan: Option<JobFaultPlan>,
) -> (WindowedJob<A>, Vec<RunStats>) {
    let per_bucket = WINDOW_SPLITS / FIXED_BUCKETS;
    let mut config = JobConfig::new(ExecMode::slider_rotating(false))
        .with_partitions(NODES)
        .with_buckets(FIXED_BUCKETS, per_bucket)
        .with_cache(cache);
    if let Some(plan) = plan {
        config = config.with_faults(plan);
    }
    let mut job = WindowedJob::new(spec.app.clone(), config).expect("valid config");
    let mut stats = vec![job.initial_run(spec.initial.clone()).expect("initial run")];
    for i in 0..SLIDES {
        let fresh = spec.extra[i * per_bucket..(i + 1) * per_bucket].to_vec();
        stats.push(job.advance(per_bucket, fresh).expect("slide"));
    }
    (job, stats)
}

fn row(table: &mut Table, app: &str, config: &str, stats: &[RunStats], matches: bool) {
    let sum = |f: fn(&RunStats) -> u64| stats.iter().map(f).sum::<u64>();
    let recomputed = sum(|s| s.recovery.cache_misses_recovered);
    let unavailable = sum(|s| s.recovery.cache_unavailable);
    let retries = sum(|s| s.recovery.read_retries);
    let enqueued = sum(|s| s.repair.enqueued);
    let corrupt = sum(|s| s.repair.corruptions_detected);
    let scrubbed = sum(|s| s.repair.scrubbed_copies);
    let bg_seconds: f64 = stats
        .iter()
        .map(|s| s.repair.repair_seconds + s.repair.scrub_seconds)
        .sum();
    table.row(vec![
        app.to_string(),
        config.to_string(),
        recomputed.to_string(),
        unavailable.to_string(),
        retries.to_string(),
        enqueued.to_string(),
        corrupt.to_string(),
        scrubbed.to_string(),
        fmt_f64(bg_seconds * 1e3),
        if matches { "yes" } else { "NO" }.to_string(),
    ]);
}

fn sweep<A>(table: &mut Table, spec: &MicrobenchSpec<A>)
where
    A: MapReduceApp + Clone,
    A::Output: PartialEq,
{
    let (twin, _) = drive(spec, cache_config(false), None);

    let (clean, clean_stats) = drive(spec, cache_config(true), None);
    row(
        table,
        spec.name,
        "fault-free, repair on",
        &clean_stats,
        clean.output() == twin.output(),
    );

    let (degraded, degraded_stats) = drive(spec, cache_config(false), Some(fault_plan()));
    row(
        table,
        spec.name,
        "faults, repair off",
        &degraded_stats,
        degraded.output() == twin.output(),
    );

    let healed_cache = cache_config(true).with_scrub_interval(SCRUB_INTERVAL);
    let (healed, healed_stats) = drive(spec, healed_cache, Some(fault_plan()));
    row(
        table,
        spec.name,
        "faults, repair+scrub",
        &healed_stats,
        healed.output() == twin.output(),
    );
}

fn main() {
    banner("Ablation: self-healing repair under staggered cache faults");
    println!(
        "Disk-only cache, {NODES} nodes: node 1 fails before run 1, one replica \
         is corrupted before run 2, node 2 fails before run 3. 'recomputed' \
         counts fault-induced recomputation; enqueued/corrupt/scrubbed/bg meter \
         the self-healing layer's background work."
    );
    let mut table = Table::new(&[
        "app",
        "config",
        "recomputed",
        "unavailable",
        "retries",
        "enqueued",
        "corrupt",
        "scrubbed",
        "bg ms",
        "output ok",
    ]);
    sweep(&mut table, &hct_spec());
    sweep(&mut table, &substr_spec());
    println!("{}", table.render());
}
