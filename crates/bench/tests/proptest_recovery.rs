//! Property test for the recovery invariant: for ANY workload and ANY
//! fault plan, a windowed job's outputs are bit-identical to its
//! fault-free twin after every slide — faults may only cost extra
//! work/time, never correctness.

use std::collections::{BTreeMap, VecDeque};

use proptest::prelude::*;
use slider_dcache::CacheConfig;
use slider_mapreduce::{ExecMode, JobConfig, JobFaultPlan, MapReduceApp, Split, WindowedJob};

#[derive(Clone)]
struct WordCount;
impl MapReduceApp for WordCount {
    type Input = String;
    type Key = String;
    type Value = u64;
    type Output = u64;
    fn map(&self, line: &String, emit: &mut dyn FnMut(String, u64)) {
        for word in line.split_whitespace() {
            emit(word.to_string(), 1);
        }
    }
    fn combine(&self, _k: &String, a: &u64, b: &u64) -> u64 {
        a + b
    }
    fn reduce(&self, _k: &String, parts: &[&u64]) -> u64 {
        parts.iter().copied().sum()
    }
}

fn reference(window: &VecDeque<Vec<String>>) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for split in window {
        for line in split {
            for word in line.split_whitespace() {
                *out.entry(word.to_string()).or_insert(0) += 1;
            }
        }
    }
    out
}

/// A split is 1–3 lines of 0–4 words over a 6-word vocabulary.
fn split_strategy() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(
        proptest::collection::vec(0u8..6, 0..4).prop_map(|ws| {
            ws.iter()
                .map(|w| format!("w{w}"))
                .collect::<Vec<_>>()
                .join(" ")
        }),
        1..3,
    )
}

/// Every mode with memoized state to lose, plus the vanilla baseline.
fn all_modes() -> Vec<ExecMode> {
    vec![
        ExecMode::Recompute,
        ExecMode::Strawman,
        ExecMode::slider_folding(),
        ExecMode::slider_randomized(),
        ExecMode::slider_rotating(false),
        ExecMode::slider_rotating(true),
    ]
}

const WINDOW: usize = 6;
const PARTITIONS: usize = 3;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fixed-width discipline (so rotating trees join in): the window
    /// always holds `WINDOW` splits, every slide replaces `k` of them.
    /// A seeded random fault plan plus explicitly scripted memo losses
    /// run against a fault-free twin in lockstep.
    #[test]
    fn any_fault_plan_preserves_outputs(
        initial in proptest::collection::vec(split_strategy(), WINDOW..=WINDOW),
        slides in proptest::collection::vec(
            (1usize..=2, split_strategy(), split_strategy()), 1..5),
        seed in 0u64..1u64 << 48,
        extra_loss_run in 1u64..5,
        extra_loss_part in 0usize..PARTITIONS,
    ) {
        let runs = slides.len() as u64 + 1;
        let plan = JobFaultPlan::seeded(seed, runs, 8, PARTITIONS)
            .lose_memo(extra_loss_run, vec![extra_loss_part]);
        for mode in all_modes() {
            let base = || {
                JobConfig::new(mode)
                    .with_partitions(PARTITIONS)
                    .with_buckets(WINDOW, 1)
                    .with_cache(CacheConfig::paper_defaults(PARTITIONS))
            };
            let mut faulty = WindowedJob::new(WordCount, base().with_faults(plan.clone()))
                .unwrap();
            let mut twin = WindowedJob::new(WordCount, base()).unwrap();

            let mut window: VecDeque<Vec<String>> = initial.iter().cloned().collect();
            let mut next_id = 0u64;
            let mut mk = |splits: &[Vec<String>]| {
                let out: Vec<_> = splits
                    .iter()
                    .enumerate()
                    .map(|(i, lines)| Split::from_records(next_id + i as u64, lines.clone()))
                    .collect();
                next_id += splits.len() as u64;
                out
            };

            faulty.initial_run(mk(&initial)).unwrap();
            twin.initial_run(mk(&initial)).unwrap();
            prop_assert_eq!(faulty.output(), twin.output(), "{}: initial", mode);
            prop_assert_eq!(faulty.output(), &reference(&window), "{}: initial ref", mode);

            for (k, a, b) in &slides {
                let added: Vec<Vec<String>> =
                    [a.clone(), b.clone()][..*k].to_vec();
                for _ in 0..*k {
                    window.pop_front();
                }
                window.extend(added.iter().cloned());
                let stats = faulty.advance(*k, mk(&added)).unwrap();
                twin.advance(*k, mk(&added)).unwrap();
                prop_assert_eq!(
                    faulty.output(), twin.output(),
                    "{}: outputs diverged under plan {:?}", mode, plan
                );
                prop_assert_eq!(faulty.output(), &reference(&window), "{}: ref", mode);
                if mode.tree_kind().is_none() {
                    prop_assert!(
                        stats.recovery.is_zero(),
                        "{}: vanilla has no state, got {:?} under plan {:?}",
                        mode, stats.recovery, plan
                    );
                }
            }
        }
    }
}
