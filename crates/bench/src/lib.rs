//! # slider-bench — the experiment harness
//!
//! One `harness = false` bench target per table and figure of the paper's
//! evaluation (§7–§8); `cargo bench` regenerates all of them, printing the
//! same rows/series the paper reports. Shared drivers, dataset builders
//! and formatting live here; see DESIGN.md §4 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::cast_possible_truncation)]

pub mod datasets;
pub mod driver;
pub mod joinbench;
pub mod report;
pub mod shootout;

pub use datasets::{
    hct_spec, kmeans_spec, knn_spec, matrix_spec, substr_spec, MicrobenchSpec, APP_NAMES,
};
pub use driver::{
    for_each_app, for_each_app_with_cluster, policy_for, run_slide, run_slide_with,
    AppMeasurements, ChangeMeasurement, WindowKind, PCTS,
};
pub use joinbench::{
    approx_table, join_point_key, join_report, join_table, measure_join, run_approx_rows,
    run_join_bench, ApproxPoint, JoinPoint, APPROX_EPS_PCTS, JOIN_MEASURED_SLIDES, JOIN_SLIDE_PCTS,
    JOIN_WINDOWS,
};
pub use report::{
    banner, bench_json_dir, fmt_f64, fmt_speedup, BenchJson, Table, BENCH_JSON_DIR_ENV,
};
pub use shootout::{
    measure, point_key, run_shootout, shootout_report, shootout_table, ShootoutPoint,
    SHOOTOUT_KINDS, SLIDE_PCTS, WINDOWS, WORK_UNITS_PER_SECOND,
};
