//! Generic experiment drivers shared by the bench targets.

use slider_cluster::SchedulerPolicy;
use slider_mapreduce::{
    ExecMode, JobConfig, MapReduceApp, RunStats, SimulationConfig, WindowedJob,
};

use crate::datasets::{self, MicrobenchSpec};

/// Input-change percentages swept by Figures 7–9.
pub const PCTS: [usize; 5] = [5, 10, 15, 20, 25];

/// The three windowing variants of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowKind {
    /// Append-only (A): `p%` more data is appended.
    Append,
    /// Fixed-width (F): `p%` of the buckets rotate.
    Fixed,
    /// Variable-width (V): same slide, processed by variable-width trees.
    Variable,
}

impl WindowKind {
    /// All kinds in plotting order.
    pub const ALL: [WindowKind; 3] = [WindowKind::Append, WindowKind::Fixed, WindowKind::Variable];

    /// One-letter label used in the paper's figures.
    pub fn letter(self) -> &'static str {
        match self {
            WindowKind::Append => "A",
            WindowKind::Fixed => "F",
            WindowKind::Variable => "V",
        }
    }

    /// The Slider execution mode matching this window kind.
    pub fn slider_mode(self, split_processing: bool) -> ExecMode {
        match self {
            WindowKind::Append => ExecMode::slider_coalescing(split_processing),
            WindowKind::Fixed => ExecMode::slider_rotating(split_processing),
            WindowKind::Variable => ExecMode::slider_folding(),
        }
    }
}

/// Work and simulated time of one incremental run.
#[derive(Debug, Clone)]
pub struct ChangeMeasurement {
    /// Foreground work of the update, in work units.
    pub work: u64,
    /// Background (pre-processing) work, if any.
    pub background_work: u64,
    /// Simulated end-to-end time of the update, seconds.
    pub time: f64,
    /// Simulated background-processing time, seconds.
    pub background_time: f64,
    /// Full run statistics.
    pub stats: RunStats,
    /// Statistics of the initial run that preceded the update.
    pub initial: RunStats,
}

/// Results for one app across the three window kinds.
pub struct AppMeasurements {
    /// App name.
    pub name: &'static str,
    /// `(kind, pct) -> measurement` in sweep order.
    pub runs: Vec<(WindowKind, usize, ChangeMeasurement)>,
}

/// Runs one micro-benchmark: initial window, then a single `pct`% slide,
/// returning the slide's measurement.
///
/// # Panics
///
/// Panics if the spec lacks enough spare splits for the requested slide —
/// a harness bug.
pub fn run_slide<A: MapReduceApp + Clone>(
    spec: &MicrobenchSpec<A>,
    mode: ExecMode,
    kind: WindowKind,
    pct: usize,
    policy: SchedulerPolicy,
) -> ChangeMeasurement {
    run_slide_with(spec, mode, kind, pct, |config| {
        config.with_simulation(SimulationConfig {
            cluster: slider_cluster::ClusterSpec::paper_cluster(),
            policy,
        })
    })
}

/// Like [`run_slide`], but lets the caller finish the [`JobConfig`] —
/// used by the scheduler/cache table harnesses that need custom clusters
/// or a memoization-cache model.
pub fn run_slide_with<A: MapReduceApp + Clone>(
    spec: &MicrobenchSpec<A>,
    mode: ExecMode,
    kind: WindowKind,
    pct: usize,
    finish: impl FnOnce(JobConfig) -> JobConfig,
) -> ChangeMeasurement {
    let n = spec.initial.len();
    let delta = (n * pct).div_ceil(100).max(1);
    assert!(
        delta <= spec.extra.len(),
        "not enough spare splits for a {pct}% slide"
    );

    let mut config = JobConfig::new(mode).with_partitions(8);
    if kind == WindowKind::Fixed {
        let buckets = crate::datasets::FIXED_BUCKETS;
        assert_eq!(n % buckets, 0, "window must be whole buckets");
        assert_eq!(delta % (n / buckets), 0, "slides must rotate whole buckets");
        config = config.with_buckets(buckets, n / buckets);
    }
    let config = finish(config);
    let mut job = WindowedJob::new(spec.app.clone(), config).expect("valid config");
    let initial = job.initial_run(spec.initial.clone()).expect("initial run");

    let added: Vec<_> = spec.extra[..delta].to_vec();
    let remove = match kind {
        WindowKind::Append => 0,
        WindowKind::Fixed | WindowKind::Variable => delta,
    };
    let stats = job.advance(remove, added).expect("slide");

    ChangeMeasurement {
        work: stats.work.foreground_total(),
        background_work: stats.work.contraction_bg.work,
        time: stats.time_seconds().unwrap_or(0.0),
        background_time: stats.background_seconds(),
        stats,
        initial,
    }
}

/// The execution mode the *baseline* system uses for `kind`.
///
/// Vanilla Hadoop recomputes regardless of kind; the strawman baseline is
/// memoization-only.
pub fn baseline_mode(strawman: bool) -> ExecMode {
    if strawman {
        ExecMode::Strawman
    } else {
        ExecMode::Recompute
    }
}

/// Scheduler used by each system: stock Hadoop scheduling for the vanilla
/// baseline, Slider's hybrid scheduler otherwise.
pub fn policy_for(mode: ExecMode) -> SchedulerPolicy {
    if mode == ExecMode::Recompute {
        SchedulerPolicy::Vanilla
    } else {
        SchedulerPolicy::hybrid_default()
    }
}

/// Runs `f` over all five micro-benchmarks, collecting the per-app results.
/// The closure receives the app name and a runner that executes one slide
/// for a `(mode, kind, pct)` combination.
pub fn for_each_app(
    f: impl FnMut(&'static str, &dyn Fn(ExecMode, WindowKind, usize) -> ChangeMeasurement),
) {
    for_each_app_with_cluster(slider_cluster::ClusterSpec::paper_cluster(), f)
}

/// [`for_each_app`] with a custom simulated cluster (used by the harnesses
/// that need recalibrated cost models).
pub fn for_each_app_with_cluster(
    cluster: slider_cluster::ClusterSpec,
    mut f: impl FnMut(&'static str, &dyn Fn(ExecMode, WindowKind, usize) -> ChangeMeasurement),
) {
    fn go<A: MapReduceApp + Clone>(
        cluster: &slider_cluster::ClusterSpec,
        spec: MicrobenchSpec<A>,
    ) -> impl Fn(ExecMode, WindowKind, usize) -> ChangeMeasurement + '_ {
        move |mode, kind, pct| {
            run_slide_with(&spec, mode, kind, pct, |config| {
                config.with_simulation(SimulationConfig {
                    cluster: cluster.clone(),
                    policy: policy_for(mode),
                })
            })
        }
    }
    f("HCT", &go(&cluster, datasets::hct_spec()));
    f("subStr", &go(&cluster, datasets::substr_spec()));
    f("Matrix", &go(&cluster, datasets::matrix_spec()));
    f("K-Means", &go(&cluster, datasets::kmeans_spec()));
    f("KNN", &go(&cluster, datasets::knn_spec()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slider_beats_recompute_on_work() {
        let spec = datasets::hct_spec();
        let vanilla = run_slide(
            &spec,
            ExecMode::Recompute,
            WindowKind::Variable,
            5,
            SchedulerPolicy::Vanilla,
        );
        let slider = run_slide(
            &spec,
            ExecMode::slider_folding(),
            WindowKind::Variable,
            5,
            SchedulerPolicy::hybrid_default(),
        );
        assert!(
            slider.work < vanilla.work,
            "slider {} vs vanilla {}",
            slider.work,
            vanilla.work
        );
        assert!(slider.time < vanilla.time);
    }

    #[test]
    fn window_kinds_map_to_modes() {
        assert_eq!(
            WindowKind::Append.slider_mode(true),
            ExecMode::slider_coalescing(true)
        );
        assert_eq!(
            WindowKind::Fixed.slider_mode(false),
            ExecMode::slider_rotating(false)
        );
        assert_eq!(
            WindowKind::Variable.slider_mode(false),
            ExecMode::slider_folding()
        );
        assert_eq!(WindowKind::Append.letter(), "A");
    }

    #[test]
    fn fixed_width_slide_keeps_window_size() {
        let spec = datasets::substr_spec();
        let m = run_slide(
            &spec,
            ExecMode::slider_rotating(false),
            WindowKind::Fixed,
            10,
            SchedulerPolicy::hybrid_default(),
        );
        assert_eq!(
            m.stats.keys_reduced + m.stats.keys_reused,
            m.stats.keys_reduced + m.stats.keys_reused
        );
        assert!(m.work > 0);
    }
}
