//! Plain-text table formatting for the bench targets' output.

use std::fmt::Write as _;

/// Formats a float with sensible precision for reports.
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        "-".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Formats a wall-clock speedup relative to a baseline duration, e.g.
/// `"2.1x"`. Returns `"-"` when the measurement is unusable.
pub fn fmt_speedup(baseline_secs: f64, secs: f64) -> String {
    if !(baseline_secs.is_finite() && secs.is_finite()) || secs <= 0.0 {
        "-".to_string()
    } else {
        format!("{}x", fmt_f64(baseline_secs / secs))
    }
}

/// A fixed-width text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["app", "speedup"]);
        t.row(vec!["HCT".into(), "2.5".into()]);
        t.row(vec!["K-Means".into(), "25".into()]);
        let s = t.render();
        assert!(s.contains("app"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn fmt_picks_precision() {
        assert_eq!(fmt_f64(123.456), "123");
        assert_eq!(fmt_f64(12.34), "12.3");
        assert_eq!(fmt_f64(1.234), "1.23");
        assert_eq!(fmt_f64(f64::NAN), "-");
    }

    #[test]
    fn fmt_speedup_is_a_ratio() {
        assert_eq!(fmt_speedup(4.0, 2.0), "2.00x");
        assert_eq!(fmt_speedup(1.0, 0.0), "-");
        assert_eq!(fmt_speedup(f64::NAN, 1.0), "-");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["x".into(), "y".into()]);
    }
}
