//! Plain-text table formatting and machine-readable JSON reports for the
//! bench targets' output.
//!
//! ## `BENCH_<name>.json`
//!
//! When the `BENCH_JSON_DIR` environment variable names a directory, bench
//! targets additionally write a machine-readable `BENCH_<name>.json` next
//! to their text tables (see [`BenchJson`]), with this schema:
//!
//! ```text
//! {
//!   "schema": "slider-bench-v1",
//!   "name": "<bench target name>",
//!   "summary": { "<metric>": <number>, ... },
//!   "breakdown": { ... the "slider-trace-metrics-v1" blob ... }
//! }
//! ```
//!
//! `summary` holds the scalar headline numbers the text report prints, in
//! insertion order. `breakdown` embeds the metrics export of a traced
//! representative run ([`slider_trace::TraceSnapshot::metrics_json`])
//! verbatim — per-track/per-phase span counts, work-unit and simulated-
//! second totals, plus every counter and gauge — so downstream tooling
//! reads the full per-phase breakdown without scraping table text. The
//! section is omitted when the target ran untraced. Both the blob and the
//! wrapper are deterministic: same seed, same bytes, at any thread count.

use std::fmt::Write as _;
use std::path::PathBuf;

use slider_trace::json::escape_string;
use slider_trace::parse_json;

/// Environment variable naming the directory `BENCH_<name>.json` reports
/// are written to. Unset (or empty) disables JSON output entirely.
pub const BENCH_JSON_DIR_ENV: &str = "BENCH_JSON_DIR";

/// The directory JSON reports go to, when configured.
pub fn bench_json_dir() -> Option<PathBuf> {
    match std::env::var(BENCH_JSON_DIR_ENV) {
        Ok(dir) if !dir.is_empty() => Some(PathBuf::from(dir)),
        _ => None,
    }
}

/// Builder for one bench target's `BENCH_<name>.json` report (schema in
/// the module docs).
#[derive(Debug, Clone)]
pub struct BenchJson {
    name: String,
    summary: Vec<(String, f64)>,
    breakdown: Option<String>,
}

impl BenchJson {
    /// A report for the bench target `name` (used in the file name).
    pub fn new(name: impl Into<String>) -> Self {
        BenchJson {
            name: name.into(),
            summary: Vec::new(),
            breakdown: None,
        }
    }

    /// Appends one scalar headline metric. Insertion order is preserved.
    pub fn metric(&mut self, key: impl Into<String>, value: f64) -> &mut Self {
        self.summary.push((key.into(), value));
        self
    }

    /// Attaches a traced run's metrics blob (the exact string returned by
    /// [`slider_trace::TraceSnapshot::metrics_json`]) as the `breakdown`
    /// section.
    ///
    /// # Panics
    ///
    /// Panics if `metrics_json` is not valid JSON — that would corrupt the
    /// whole report file, and only this crate's own exporter feeds it.
    pub fn breakdown(&mut self, metrics_json: String) -> &mut Self {
        parse_json(&metrics_json).expect("breakdown must be the slider-trace metrics blob");
        self.breakdown = Some(metrics_json);
        self
    }

    /// Renders the report (deterministic bytes).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"slider-bench-v1\",\n");
        let _ = writeln!(out, "  \"name\": \"{}\",", escape_string(&self.name));
        out.push_str("  \"summary\": {");
        for (i, (key, value)) in self.summary.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    \"{}\": {}",
                escape_string(key),
                slider_trace::json::format_f64(*value)
            );
        }
        if self.summary.is_empty() {
            out.push('}');
        } else {
            out.push_str("\n  }");
        }
        if let Some(breakdown) = &self.breakdown {
            out.push_str(",\n  \"breakdown\": ");
            out.push_str(breakdown.trim_end());
        }
        out.push_str("\n}\n");
        out
    }

    /// Writes `BENCH_<name>.json` into [`bench_json_dir`], creating the
    /// directory if needed. Returns the path written, or `None` when
    /// `BENCH_JSON_DIR` is unset (the common `cargo bench` case).
    pub fn write_if_configured(&self) -> Option<PathBuf> {
        let dir = bench_json_dir()?;
        std::fs::create_dir_all(&dir).ok()?;
        let path = dir.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.render()).ok()?;
        Some(path)
    }
}

/// Formats a float with sensible precision for reports.
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        "-".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Formats a wall-clock speedup relative to a baseline duration, e.g.
/// `"2.1x"`. Returns `"-"` when the measurement is unusable.
pub fn fmt_speedup(baseline_secs: f64, secs: f64) -> String {
    if !(baseline_secs.is_finite() && secs.is_finite()) || secs <= 0.0 {
        "-".to_string()
    } else {
        format!("{}x", fmt_f64(baseline_secs / secs))
    }
}

/// A fixed-width text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["app", "speedup"]);
        t.row(vec!["HCT".into(), "2.5".into()]);
        t.row(vec!["K-Means".into(), "25".into()]);
        let s = t.render();
        assert!(s.contains("app"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn fmt_picks_precision() {
        assert_eq!(fmt_f64(123.456), "123");
        assert_eq!(fmt_f64(12.34), "12.3");
        assert_eq!(fmt_f64(1.234), "1.23");
        assert_eq!(fmt_f64(f64::NAN), "-");
    }

    #[test]
    fn fmt_speedup_is_a_ratio() {
        assert_eq!(fmt_speedup(4.0, 2.0), "2.00x");
        assert_eq!(fmt_speedup(1.0, 0.0), "-");
        assert_eq!(fmt_speedup(f64::NAN, 1.0), "-");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn bench_json_renders_schema_and_breakdown() {
        use slider_mapreduce::{ExecMode, JobConfig, TraceSink, WindowedJob};

        let sink = TraceSink::enabled();
        let mut job = WindowedJob::new(
            crate::datasets::hct_spec().app.clone(),
            JobConfig::new(ExecMode::slider_folding())
                .with_partitions(2)
                .with_trace(sink.clone()),
        )
        .unwrap();
        let spec = crate::datasets::hct_spec();
        job.initial_run(spec.initial[0..4].to_vec()).unwrap();

        let mut report = BenchJson::new("unit");
        report.metric("runs", 1.0);
        report.breakdown(sink.metrics_json().unwrap());
        let rendered = report.render();
        let parsed = parse_json(&rendered).expect("report is valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(|v| v.as_str()),
            Some("slider-bench-v1")
        );
        assert_eq!(parsed.get("name").and_then(|v| v.as_str()), Some("unit"));
        assert_eq!(
            parsed
                .get("summary")
                .and_then(|s| s.get("runs"))
                .and_then(|v| v.as_f64()),
            Some(1.0)
        );
        assert_eq!(
            parsed
                .get("breakdown")
                .and_then(|b| b.get("schema"))
                .and_then(|v| v.as_str()),
            Some("slider-trace-metrics-v1")
        );
    }

    #[test]
    fn bench_json_without_breakdown_is_valid() {
        let report = BenchJson::new("empty");
        let parsed = parse_json(&report.render()).expect("valid JSON");
        assert!(parsed.get("breakdown").is_none());
    }
}
