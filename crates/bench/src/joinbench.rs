//! Incremental-vs-recompute sweep for the windowed join (slider-join),
//! plus the approximate-windows error-vs-space rows.
//!
//! Drives the §8.1 companion join — follow edges ⋈ URL posts
//! ([`FollowPostJoin`]) — through the *same* synthetic Twitter streams in
//! both [`JoinMode::Incremental`] and [`JoinMode::Recompute`], over a
//! grid of window sizes × slide fractions, and reports modeled work and
//! simulated seconds per grid point. The incremental operator probes only
//! the records that entered or left a window each slide; the recompute
//! strawman re-crosses both indexes. The sweep shows the slider claim in
//! join form: the smaller the slide fraction, the wider the gap.
//!
//! All numbers are integer work accounting folded deterministically, so
//! `BENCH_join.json` is byte-identical across reruns and thread counts
//! and a checked-in baseline gates regressions in CI
//! (`join_viewer --check`).

use slider_apps::FollowPostJoin;
use slider_core::KeyedDistinctCounter;
use slider_join::{JoinConfig, JoinMode, JoinedJob};
use slider_mapreduce::{EngineShared, EventTimeConfig, Stamped};
use slider_workloads::twitter::{follow_stream, generate, TwitterConfig};

use crate::report::{fmt_f64, BenchJson, Table};
use crate::shootout::WORK_UNITS_PER_SECOND;

/// Window sizes swept, in records per side (1 record ≈ 1 time unit).
pub const JOIN_WINDOWS: [u64; 3] = [256, 1024, 4096];

/// Slide sizes as a percentage of the window.
pub const JOIN_SLIDE_PCTS: [u64; 3] = [1, 10, 25];

/// Slides measured per grid point, after the untimed window fill.
pub const JOIN_MEASURED_SLIDES: u64 = 8;

/// Epsilons (as percentages) swept by the approximate-windows rows.
pub const APPROX_EPS_PCTS: [u32; 4] = [50, 25, 10, 5];

/// One grid point: modeled join-layer work for both maintenance modes
/// over [`JOIN_MEASURED_SLIDES`] slides, plus the shared side-index work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinPoint {
    /// Window size in records per side.
    pub window: u64,
    /// Slide size as a percentage of the window.
    pub slide_pct: u64,
    /// Incremental-mode work: delta probes plus side-index maintenance.
    pub inc_work: u64,
    /// Recompute-mode work: cross products plus side-index maintenance.
    pub rec_work: u64,
    /// Join pairs added across the measured slides (incremental mode).
    pub pairs_added: u64,
    /// Join pairs retracted across the measured slides.
    pub pairs_removed: u64,
}

impl JoinPoint {
    /// Simulated seconds for the incremental mode.
    #[must_use]
    pub fn inc_seconds(&self) -> f64 {
        to_f64(self.inc_work) / WORK_UNITS_PER_SECOND
    }

    /// Simulated seconds for the recompute mode.
    #[must_use]
    pub fn rec_seconds(&self) -> f64 {
        to_f64(self.rec_work) / WORK_UNITS_PER_SECOND
    }
}

/// One approximate-windows row: per-key DGIM counters vs exact retention
/// at one ε, over the same post stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxPoint {
    /// ε as a percentage (50 = 0.5).
    pub eps_pct: u32,
    /// Largest relative estimate error observed across keys and probes,
    /// in percent.
    pub max_err_pct: f64,
    /// DGIM buckets retained (the approximate structure's space).
    pub buckets: u64,
    /// Events an exact per-key window would have retained at the end.
    pub exact_events: u64,
}

/// Measures one (window, slide%) grid point. Both modes consume identical
/// streams and follow identical slide schedules; only view maintenance
/// differs.
pub fn measure_join(window: u64, slide_pct: u64) -> JoinPoint {
    let slide = (window * slide_pct / 100).max(1);
    let window_epochs = usize::try_from((window / slide).max(1)).expect("epoch count fits");
    let total_time = window + JOIN_MEASURED_SLIDES * slide;
    let event = EventTimeConfig {
        epoch_len: slide,
        records_per_split: 64,
        window_epochs: Some(window_epochs),
        lateness: 0,
    };
    // Dense key overlap: few users, so most followees also post in-window.
    let config = TwitterConfig {
        users: 64,
        avg_follows: 6,
        urls: 32,
        repost_probability: 0.3,
    };
    let dataset = generate(0x1011, &config, usize::try_from(total_time).expect("fits"));
    let follows = follow_stream(0xfeed, &dataset.graph, dataset.tweets.len(), total_time);

    let shared = EngineShared::builder().build();
    let mut jobs = [JoinMode::Incremental, JoinMode::Recompute].map(|mode| {
        JoinedJob::new(
            FollowPostJoin,
            JoinConfig::new(event).with_mode(mode),
            &shared,
        )
        .expect("join job builds")
    });

    let mut fill_marks = [None, None];
    let mut next_poll = slide;
    // Ingest in slide-sized batches, polling after each; snapshot stats
    // when the fill phase (first `window` time units) completes.
    let mut fi = 0usize;
    let mut ti = 0usize;
    while next_poll <= total_time {
        for (j, job) in jobs.iter_mut().enumerate() {
            let mut f = fi;
            while f < follows.len() && follows[f].time < next_poll {
                let ev = follows[f].clone();
                job.ingest_left([Stamped::new(ev.time, u64::try_from(f).expect("fits"), ev)]);
                f += 1;
            }
            let mut t = ti;
            while t < dataset.tweets.len() && dataset.tweets[t].time < next_poll {
                let tw = dataset.tweets[t].clone();
                job.ingest_right([Stamped::new(tw.time, u64::try_from(t).expect("fits"), tw)]);
                t += 1;
            }
            job.poll().expect("poll");
            if next_poll >= window && fill_marks[j].is_none() {
                fill_marks[j] = Some(job.stats());
            }
        }
        fi = follows.partition_point(|e| e.time < next_poll);
        ti = dataset.tweets.partition_point(|t| t.time < next_poll);
        next_poll += slide;
    }

    let [inc, rec] = jobs;
    let [inc_mark, rec_mark] = fill_marks.map(|m| m.expect("fill completed"));
    let inc_stats = inc.stats();
    let rec_stats = rec.stats();
    JoinPoint {
        window,
        slide_pct,
        inc_work: inc_stats.total_work() - inc_mark.total_work(),
        rec_work: rec_stats.total_work() - rec_mark.total_work(),
        pairs_added: inc_stats.pairs_added - inc_mark.pairs_added,
        pairs_removed: inc_stats.pairs_removed - inc_mark.pairs_removed,
    }
}

/// Runs the full window × slide grid.
pub fn run_join_bench() -> Vec<JoinPoint> {
    let mut points = Vec::new();
    for &window in &JOIN_WINDOWS {
        for &pct in &JOIN_SLIDE_PCTS {
            points.push(measure_join(window, pct));
        }
    }
    points
}

/// Sweeps the approximate-windows trade-off: per-key DGIM distinct/count
/// estimates vs exact retention over a 4096-tick post stream.
pub fn run_approx_rows() -> Vec<ApproxPoint> {
    let window = 4096u64;
    let config = TwitterConfig {
        users: 64,
        avg_follows: 6,
        urls: 32,
        repost_probability: 0.3,
    };
    let dataset = generate(0xd15717c7, &config, 8192);
    APPROX_EPS_PCTS
        .iter()
        .map(|&eps_pct| {
            let eps = f64::from(eps_pct) / 100.0;
            let mut keyed = KeyedDistinctCounter::new(window, eps);
            let mut exact: std::collections::BTreeMap<u32, Vec<u64>> =
                std::collections::BTreeMap::new();
            let mut max_err = 0.0f64;
            let mut now = 0u64;
            for (i, tweet) in dataset.tweets.iter().enumerate() {
                now = tweet.time;
                keyed.record(tweet.user, now);
                exact.entry(tweet.user).or_default().push(now);
                if i % 512 == 511 {
                    for (&key, times) in &exact {
                        let truth = times.iter().filter(|&&t| t + window > now).count() as u64;
                        if truth == 0 {
                            continue;
                        }
                        let est = keyed.estimate(&key, now);
                        let err = to_f64(est.abs_diff(truth)) / to_f64(truth);
                        max_err = max_err.max(err);
                    }
                }
            }
            let exact_events: u64 = exact
                .values()
                .map(|ts| ts.iter().filter(|&&t| t + window > now).count() as u64)
                .sum();
            ApproxPoint {
                eps_pct,
                max_err_pct: max_err * 100.0,
                buckets: keyed.total_buckets() as u64,
                exact_events,
            }
        })
        .collect()
}

/// Flat metric key for one grid point, e.g. `join.w1024.p10.inc_work`.
#[must_use]
pub fn join_point_key(window: u64, slide_pct: u64, metric: &str) -> String {
    format!("join.w{window}.p{slide_pct}.{metric}")
}

/// Builds the `BENCH_join.json` report from the grid and approx rows.
pub fn join_report(points: &[JoinPoint], approx: &[ApproxPoint]) -> BenchJson {
    let mut report = BenchJson::new("join");
    for p in points {
        report.metric(
            join_point_key(p.window, p.slide_pct, "inc_work"),
            to_f64(p.inc_work),
        );
        report.metric(
            join_point_key(p.window, p.slide_pct, "rec_work"),
            to_f64(p.rec_work),
        );
        report.metric(
            join_point_key(p.window, p.slide_pct, "inc_seconds"),
            p.inc_seconds(),
        );
        report.metric(
            join_point_key(p.window, p.slide_pct, "rec_seconds"),
            p.rec_seconds(),
        );
        report.metric(
            join_point_key(p.window, p.slide_pct, "pairs_touched"),
            to_f64(p.pairs_added + p.pairs_removed),
        );
    }
    for a in approx {
        let prefix = format!("approx.eps{}", a.eps_pct);
        report.metric(format!("{prefix}.max_err_pct"), a.max_err_pct);
        report.metric(format!("{prefix}.buckets"), to_f64(a.buckets));
        report.metric(format!("{prefix}.exact_events"), to_f64(a.exact_events));
    }
    report
}

/// Renders the join grid as a text table.
#[must_use]
pub fn join_table(points: &[JoinPoint]) -> Table {
    let mut table = Table::new(&[
        "window",
        "slide%",
        "inc work",
        "rec work",
        "speedup",
        "pairs +/-",
    ]);
    for p in points {
        let speedup = if p.inc_work > 0 {
            to_f64(p.rec_work) / to_f64(p.inc_work)
        } else {
            f64::INFINITY
        };
        table.row(vec![
            p.window.to_string(),
            p.slide_pct.to_string(),
            p.inc_work.to_string(),
            p.rec_work.to_string(),
            format!("{speedup:.2}x"),
            format!("{}/{}", p.pairs_added, p.pairs_removed),
        ]);
    }
    table
}

/// Renders the approximate-windows rows as a text table.
#[must_use]
pub fn approx_table(rows: &[ApproxPoint]) -> Table {
    let mut table = Table::new(&["epsilon", "max err %", "buckets", "exact events"]);
    for a in rows {
        table.row(vec![
            format!("{:.2}", f64::from(a.eps_pct) / 100.0),
            fmt_f64(a.max_err_pct),
            a.buckets.to_string(),
            a.exact_events.to_string(),
        ]);
    }
    table
}

/// Exact `u64 → f64` for bench-scale values.
fn to_f64(x: u64) -> f64 {
    assert!(x < (1u64 << 53), "work counts stay far below 2^53");
    let lo = u32::try_from(x & 0xffff_ffff).expect("masked");
    let hi = u32::try_from(x >> 32).expect("shifted");
    f64::from(hi) * 4_294_967_296.0 + f64::from(lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_beats_recompute_at_small_slides() {
        // The acceptance claim: for slide <= 10% at windows >= 1024 the
        // incremental join does strictly less modeled work.
        for &window in &[1024u64, 4096] {
            for &pct in &[1u64, 10] {
                let p = measure_join(window, pct);
                assert!(
                    p.inc_work < p.rec_work,
                    "w{window} p{pct}: inc {} !< rec {}",
                    p.inc_work,
                    p.rec_work
                );
                assert!(p.pairs_added > 0, "w{window} p{pct}: join produced pairs");
            }
        }
    }

    #[test]
    fn grid_points_are_deterministic() {
        assert_eq!(measure_join(256, 10), measure_join(256, 10));
    }

    #[test]
    fn approx_rows_trade_error_for_space() {
        let rows = run_approx_rows();
        assert_eq!(rows.len(), APPROX_EPS_PCTS.len());
        for w in rows.windows(2) {
            // Tighter epsilon => at least as many buckets.
            assert!(w[1].buckets >= w[0].buckets, "space grows as eps shrinks");
        }
        for a in &rows {
            assert!(
                a.max_err_pct <= f64::from(a.eps_pct) + 1.0,
                "eps {}%: observed error {}% above guarantee",
                a.eps_pct,
                a.max_err_pct
            );
            assert!(
                a.buckets < a.exact_events,
                "approx must be smaller than exact"
            );
        }
    }

    #[test]
    fn report_renders_all_grid_metrics() {
        let points = vec![JoinPoint {
            window: 256,
            slide_pct: 10,
            inc_work: 100,
            rec_work: 400,
            pairs_added: 7,
            pairs_removed: 3,
        }];
        let rendered = join_report(&points, &[]).render();
        assert!(rendered.contains("\"join.w256.p10.inc_work\": 100"));
        assert!(rendered.contains("\"join.w256.p10.rec_work\": 400"));
        assert!(rendered.contains("pairs_touched\": 10"));
    }
}
