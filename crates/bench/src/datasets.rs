//! Dataset builders for the five micro-benchmarks (§7.1).
//!
//! The paper uses a Wikipedia dump for the data-intensive apps and random
//! 50-dimensional unit-cube points for the compute-intensive ones; here
//! the text comes from the Zipf generator (see DESIGN.md §2). Scales are
//! chosen so the full sweep finishes in seconds while keeping windows
//! large enough (40 splits) that 5%-granularity slides are meaningful.

use slider_apps::{Hct, KMeans, Knn, Matrix, SubStr};
use slider_mapreduce::{make_splits, MapReduceApp, Split};
use slider_workloads::points::{generate_points, initial_centroids};
use slider_workloads::text::{generate_documents, TextConfig};

/// Names of the five micro-benchmarks, in the paper's plotting order.
pub const APP_NAMES: [&str; 5] = ["HCT", "subStr", "Matrix", "K-Means", "KNN"];

/// One micro-benchmark: the application plus its initial window and spare
/// splits for slides.
pub struct MicrobenchSpec<A: MapReduceApp> {
    /// Human-readable name.
    pub name: &'static str,
    /// The application (plain batch code).
    pub app: A,
    /// Initial window, `WINDOW_SPLITS` splits.
    pub initial: Vec<Split<A::Input>>,
    /// Fresh splits consumed by subsequent slides.
    pub extra: Vec<Split<A::Input>>,
}

/// Splits per initial window. 200 splits give (a) whole-split slides at 5%
/// granularity and (b) multiple map waves on the 24-worker × 2-slot
/// simulated cluster, which is where the paper's *time* savings come from.
pub const WINDOW_SPLITS: usize = 200;
/// Spare splits generated for slides (enough for one 25% slide).
pub const EXTRA_SPLITS: usize = 60;
/// Records per split.
pub const RECORDS_PER_SPLIT: usize = 12;
/// Buckets per fixed-width window (paper §4.1: `p%` of the *buckets*
/// rotate, so 20 buckets give 5% granularity with `w = 10` splits each).
pub const FIXED_BUCKETS: usize = 20;

fn text_docs(seed: u64) -> (Vec<String>, Vec<String>) {
    let config = TextConfig {
        vocabulary: 1_500,
        zipf_exponent: 1.05,
        words_per_doc: 30,
    };
    let total = (WINDOW_SPLITS + EXTRA_SPLITS) * RECORDS_PER_SPLIT;
    let mut docs = generate_documents(seed, total, &config);
    let extra = docs.split_off(WINDOW_SPLITS * RECORDS_PER_SPLIT);
    (docs, extra)
}

fn split_pair<R>(initial: Vec<R>, extra: Vec<R>) -> (Vec<Split<R>>, Vec<Split<R>>) {
    let first = make_splits(0, initial, RECORDS_PER_SPLIT);
    let second = make_splits(1_000_000, extra, RECORDS_PER_SPLIT);
    (first, second)
}

/// Histogram computation over Zipf text.
pub fn hct_spec() -> MicrobenchSpec<Hct> {
    let (initial, extra) = text_docs(0x11c7);
    let (initial, extra) = split_pair(initial, extra);
    MicrobenchSpec {
        name: "HCT",
        app: Hct::new(),
        initial,
        extra,
    }
}

/// Co-occurrence matrix over Zipf text.
pub fn matrix_spec() -> MicrobenchSpec<Matrix> {
    let (initial, extra) = text_docs(0x3a7);
    let (initial, extra) = split_pair(initial, extra);
    MicrobenchSpec {
        name: "Matrix",
        app: Matrix::new(2),
        initial,
        extra,
    }
}

/// Frequent sub-strings over Zipf text.
pub fn substr_spec() -> MicrobenchSpec<SubStr> {
    let (initial, extra) = text_docs(0x5ab);
    let (initial, extra) = split_pair(initial, extra);
    MicrobenchSpec {
        name: "subStr",
        app: SubStr::new(4),
        initial,
        extra,
    }
}

/// K-means over 50-dimensional unit-cube points (paper's setup).
pub fn kmeans_spec() -> MicrobenchSpec<KMeans> {
    let dims = 50;
    let total = (WINDOW_SPLITS + EXTRA_SPLITS) * RECORDS_PER_SPLIT;
    let mut points = generate_points(0x4ea5, total, dims);
    let extra = points.split_off(WINDOW_SPLITS * RECORDS_PER_SPLIT);
    let (initial, extra) = split_pair(points, extra);
    MicrobenchSpec {
        name: "K-Means",
        app: KMeans::new(initial_centroids(0x4ea5, 16, dims)),
        initial,
        extra,
    }
}

/// KNN classification of fixed queries against windowed training points.
pub fn knn_spec() -> MicrobenchSpec<Knn> {
    let dims = 50;
    let total = (WINDOW_SPLITS + EXTRA_SPLITS) * RECORDS_PER_SPLIT;
    let labelled: Vec<(slider_workloads::points::Point, u32)> = generate_points(0x59, total, dims)
        .into_iter()
        .enumerate()
        .map(|(i, p)| (p, u32::try_from(i % 4).expect("label fits")))
        .collect();
    let mut points = labelled;
    let extra = points.split_off(WINDOW_SPLITS * RECORDS_PER_SPLIT);
    let (initial, extra) = split_pair(points, extra);
    MicrobenchSpec {
        name: "KNN",
        app: Knn::new(generate_points(0xabcd, 24, dims), 8),
        initial,
        extra,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_have_expected_geometry() {
        let spec = hct_spec();
        assert_eq!(spec.initial.len(), WINDOW_SPLITS);
        assert_eq!(spec.extra.len(), EXTRA_SPLITS);
        assert_eq!(spec.initial[0].len(), RECORDS_PER_SPLIT);
        let spec = kmeans_spec();
        assert_eq!(spec.initial.len(), WINDOW_SPLITS);
        let spec = knn_spec();
        assert_eq!(spec.extra.len(), EXTRA_SPLITS);
    }

    #[test]
    fn split_ids_never_collide() {
        let spec = substr_spec();
        let mut ids: Vec<u64> = spec
            .initial
            .iter()
            .chain(spec.extra.iter())
            .map(|s| s.id().0)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), WINDOW_SPLITS + EXTRA_SPLITS);
    }
}
