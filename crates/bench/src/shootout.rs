//! Per-operation aggregation-structure shootout.
//!
//! Drives every window-capable [`TreeKind`] through the *same* slide
//! schedule at the core [`slider_core::WindowAggregator`] layer — no cluster, no
//! shuffle, just the aggregation structure — and reports modeled work,
//! merges and simulated seconds *per leaf replaced*, over a grid of
//! window sizes × slide fractions. This is the head-to-head the companion
//! analyses predict (cf. arXiv 1604.00794 §6, arXiv 2009.13768 §7): the
//! O(log n) contraction trees' per-update cost grows with the window
//! while the twin-stack family stays flat, with the strawman's linear
//! rescan as the ceiling.
//!
//! The measurement is pure integer work accounting ([`UpdateStats`]), so
//! the numbers are bit-identical across reruns, machines and thread
//! counts; `BENCH_shootout.json` can therefore be diffed byte-for-byte
//! and a checked-in baseline gates regressions in CI.

#![deny(clippy::cast_possible_truncation)]

use std::sync::Arc;

use slider_core::{build_tree, FnCombiner, TreeCx, TreeKind, UpdateStats};

use crate::report::{fmt_f64, BenchJson, Table};

/// Structures raced by the shootout: every [`TreeKind`] that supports a
/// genuine sliding window (front eviction + back insertion). The
/// append-only coalescing tree is excluded — it rejects evictions by
/// design, so it has no point on these curves.
pub const SHOOTOUT_KINDS: [TreeKind; 7] = [
    TreeKind::Strawman,
    TreeKind::Folding,
    TreeKind::RandomizedFolding,
    TreeKind::Rotating,
    TreeKind::TwoStack,
    TreeKind::Daba,
    TreeKind::DabaLite,
];

/// Window sizes (leaves) swept by the shootout.
pub const WINDOWS: [u64; 4] = [64, 256, 1024, 4096];

/// Slide sizes as a percentage of the window (≥ 1 leaf per slide).
/// `0` denotes a single-leaf slide — the pure per-update asymptotic,
/// where the O(1)-vs-O(log n) separation shows undiluted (batch slides
/// amortize a tree's root path over the whole batch).
pub const SLIDE_PCTS: [u64; 3] = [0, 1, 10];

/// Work units per simulated second — the same constant the cluster
/// simulation uses to turn modeled work into modeled time.
pub const WORK_UNITS_PER_SECOND: f64 = 1e6;

/// Slides measured per grid point (after the untimed initial fill).
const ROUNDS: u64 = 24;

/// One structure's cost at one (window, slide) grid point. All `per_leaf`
/// figures are normalized by the number of leaves replaced, so points
/// with different slide sizes are directly comparable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShootoutPoint {
    /// The structure measured.
    pub kind: TreeKind,
    /// Window size in leaves.
    pub window: u64,
    /// Slide size as a percentage of the window.
    pub slide_pct: u64,
    /// Leaves evicted+appended per slide (`max(1, window·pct/100)`).
    pub slide_leaves: u64,
    /// Combiner invocations per leaf replaced.
    pub merges_per_leaf: f64,
    /// Modeled work units per leaf replaced.
    pub work_per_leaf: f64,
    /// Simulated seconds per leaf replaced (`work / 1e6`).
    pub seconds_per_leaf: f64,
}

/// Measures one structure at one grid point: fills a `window`-leaf
/// window, then drives [`ROUNDS`] steady slides of `max(1, window·pct/100)`
/// leaves, metering foreground work only (the initial fill is untimed —
/// every structure pays the same n−1 merges there).
pub fn measure(kind: TreeKind, window: u64, slide_pct: u64) -> ShootoutPoint {
    let combiner = FnCombiner::new(|_: &u8, a: &u64, b: &u64| a.wrapping_add(*b));
    let key = 0u8;
    let leaves = |r: std::ops::Range<u64>| -> Vec<Option<Arc<u64>>> {
        r.map(|v| Some(Arc::new(v))).collect()
    };
    let slide_leaves = (window * slide_pct / 100).max(1);

    let mut tree = build_tree::<u8, u64>(kind, usize::try_from(window).unwrap());
    let mut fill = UpdateStats::default();
    let mut cx = TreeCx::new(&combiner, &key, &mut fill);
    tree.rebuild(&mut cx, leaves(0..window));

    let mut total = UpdateStats::default();
    let mut next = window;
    for _ in 0..ROUNDS {
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        tree.advance(
            &mut cx,
            usize::try_from(slide_leaves).unwrap(),
            leaves(next..next + slide_leaves),
        )
        .expect("steady slide stays within the window");
        next += slide_leaves;
        total.merge_from(&stats);
    }

    let denom = (ROUNDS * slide_leaves) as f64;
    let work_per_leaf = total.foreground.work as f64 / denom;
    ShootoutPoint {
        kind,
        window,
        slide_pct,
        slide_leaves,
        merges_per_leaf: total.foreground.merges as f64 / denom,
        work_per_leaf,
        seconds_per_leaf: work_per_leaf / WORK_UNITS_PER_SECOND,
    }
}

/// Runs the full grid: every kind × window × slide fraction, in a fixed
/// deterministic order (kind-major, then window, then slide).
pub fn run_shootout() -> Vec<ShootoutPoint> {
    let mut points = Vec::new();
    for kind in SHOOTOUT_KINDS {
        for window in WINDOWS {
            for pct in SLIDE_PCTS {
                points.push(measure(kind, window, pct));
            }
        }
    }
    points
}

/// The flat metric key prefix for one grid point, e.g. `daba.w4096.p10`.
pub fn point_key(kind: TreeKind, window: u64, slide_pct: u64) -> String {
    format!("{kind}.w{window}.p{slide_pct}")
}

/// Builds the `BENCH_shootout.json` report: three metrics per grid point
/// (`<key>.merges_per_leaf`, `<key>.work_per_leaf`, `<key>.seconds_per_leaf`)
/// in deterministic grid order.
pub fn shootout_report(points: &[ShootoutPoint]) -> BenchJson {
    let mut report = BenchJson::new("shootout");
    for p in points {
        let key = point_key(p.kind, p.window, p.slide_pct);
        report.metric(format!("{key}.merges_per_leaf"), p.merges_per_leaf);
        report.metric(format!("{key}.work_per_leaf"), p.work_per_leaf);
        report.metric(format!("{key}.seconds_per_leaf"), p.seconds_per_leaf);
    }
    report
}

/// Renders the per-structure cost table the bench target and the
/// `shootout_viewer` example print.
pub fn shootout_table(points: &[ShootoutPoint]) -> Table {
    let mut table = Table::new(&[
        "structure",
        "window",
        "slide%",
        "leaves/slide",
        "merges/leaf",
        "work/leaf",
        "sim s/leaf",
    ]);
    for p in points {
        table.row(vec![
            p.kind.to_string(),
            p.window.to_string(),
            p.slide_pct.to_string(),
            p.slide_leaves.to_string(),
            fmt_f64(p.merges_per_leaf),
            fmt_f64(p.work_per_leaf),
            format!("{:.3e}", p.seconds_per_leaf),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_complete_and_ordered() {
        let points = run_shootout();
        assert_eq!(
            points.len(),
            SHOOTOUT_KINDS.len() * WINDOWS.len() * SLIDE_PCTS.len()
        );
        // Deterministic: a second sweep reproduces every number exactly.
        assert_eq!(points, run_shootout());
    }

    #[test]
    fn crossover_shows_in_the_grid() {
        // The headline claim: DABA's per-leaf cost is flat across a 64x
        // window growth while the folding tree's grows, and at the largest
        // window the constant-time structures undercut every O(log n) tree.
        let at = |kind, window| measure(kind, window, 0).merges_per_leaf;
        let daba_small = at(TreeKind::Daba, WINDOWS[0]);
        let daba_large = at(TreeKind::Daba, WINDOWS[3]);
        assert!(
            (daba_large - daba_small).abs() <= 1.0,
            "daba must stay flat: {daba_small} vs {daba_large}"
        );
        let folding_small = at(TreeKind::Folding, WINDOWS[0]);
        let folding_large = at(TreeKind::Folding, WINDOWS[3]);
        assert!(
            folding_large > folding_small,
            "folding's root path must deepen with the window"
        );
        assert!(
            daba_large < folding_large,
            "daba ({daba_large}) must undercut folding ({folding_large}) at w=4096"
        );
        let strawman_large = at(TreeKind::Strawman, WINDOWS[3]);
        assert!(
            folding_large < strawman_large / 8.0,
            "folding must sit far below the strawman's linear rescan"
        );
    }

    #[test]
    fn report_and_table_cover_every_point() {
        let points: Vec<ShootoutPoint> =
            SHOOTOUT_KINDS.iter().map(|&k| measure(k, 64, 10)).collect();
        let rendered = shootout_report(&points).render();
        for p in &points {
            assert!(rendered.contains(&point_key(p.kind, p.window, p.slide_pct)));
        }
        assert_eq!(
            shootout_table(&points).render().lines().count(),
            points.len() + 2
        );
    }
}
