//! §8.1 companion join: new follow edges ⋈ URL posts.
//!
//! The propagation-tree case study ([`TwitterPropagation`](crate::TwitterPropagation))
//! asks "who saw this URL"; this join asks the sliding-window converse:
//! for every follow edge created recently, which URLs did the newly
//! followed account post in the same window? Each match is a *propagation
//! candidate* — a (follower, post) pair where the follower's timeline
//! gained the post — and the per-key weight counts candidates per
//! followee, so the join view is a live "who is gaining reach" board.
//!
//! The app itself is two key extractors and a weight — all windowing,
//! index maintenance, and delta probing live in
//! [`JoinedJob`](slider_join::JoinedJob).

use slider_join::JoinApp;
use slider_workloads::twitter::{FollowEvent, Tweet, UserId};

/// Joins the follow-edge stream (left) with the URL-post stream (right)
/// on the followed/posting user.
#[derive(Debug, Clone, Copy, Default)]
pub struct FollowPostJoin;

impl JoinApp for FollowPostJoin {
    type Key = UserId;
    type Left = FollowEvent;
    type Right = Tweet;

    /// A follow edge indexes under the account being followed.
    fn left_key(&self, follow: &FollowEvent) -> Option<UserId> {
        Some(follow.followee)
    }

    /// A tweet indexes under its author.
    fn right_key(&self, tweet: &Tweet) -> Option<UserId> {
        Some(tweet.user)
    }

    /// Weight a candidate by URL "stickiness" (a deterministic 1..=8
    /// proxy for how sharable the URL is), so per-followee weights are
    /// not just pair counts.
    fn pair_weight(&self, _key: &UserId, _follow: &FollowEvent, tweet: &Tweet) -> u64 {
        u64::from(tweet.url % 8) + 1
    }

    /// A follow edge models as two user ids plus a timestamp.
    fn left_record_bytes(&self) -> u64 {
        16
    }

    /// A tweet models as user, url, and timestamp.
    fn right_record_bytes(&self) -> u64 {
        16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_meet_on_the_followed_account() {
        let app = FollowPostJoin;
        let follow = FollowEvent {
            follower: 3,
            followee: 17,
            time: 5,
        };
        let tweet = Tweet {
            user: 17,
            url: 9,
            time: 6,
        };
        assert_eq!(app.left_key(&follow), Some(17));
        assert_eq!(app.right_key(&tweet), Some(17));
        assert_eq!(app.pair_weight(&17, &follow, &tweet), 2);
    }
}
