//! Matrix: word co-occurrence matrix (data-intensive, large values).
//!
//! For every token, counts how often each other token appears within a
//! fixed distance in the same document. Each key's partial aggregate is a
//! whole matrix *row*, which makes this the most memoization-heavy
//! micro-benchmark (the paper measures ~12× space overhead, Figure 13(c)).

use std::collections::BTreeMap;

use slider_mapreduce::MapReduceApp;

/// One row of the co-occurrence matrix: neighbour token -> count.
pub type CooccurrenceRow = BTreeMap<String, u64>;

/// Word co-occurrence matrix computation.
#[derive(Debug, Clone)]
pub struct Matrix {
    /// Tokens within this distance co-occur.
    window: usize,
}

impl Matrix {
    /// Creates the app with co-occurrence distance `window`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "co-occurrence window must be positive");
        Matrix { window }
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::new(2)
    }
}

impl MapReduceApp for Matrix {
    type Input = String;
    type Key = String;
    type Value = CooccurrenceRow;
    type Output = CooccurrenceRow;

    fn map(&self, line: &String, emit: &mut dyn FnMut(String, CooccurrenceRow)) {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        for (i, &token) in tokens.iter().enumerate() {
            let mut row = CooccurrenceRow::new();
            let lo = i.saturating_sub(self.window);
            let hi = (i + self.window + 1).min(tokens.len());
            for (j, &other) in tokens[lo..hi].iter().enumerate() {
                if lo + j != i {
                    *row.entry(other.to_string()).or_insert(0) += 1;
                }
            }
            if !row.is_empty() {
                emit(token.to_string(), row);
            }
        }
    }

    fn combine(&self, _key: &String, a: &CooccurrenceRow, b: &CooccurrenceRow) -> CooccurrenceRow {
        let mut out = a.clone();
        for (token, count) in b {
            *out.entry(token.clone()).or_insert(0) += count;
        }
        out
    }

    fn reduce(&self, _key: &String, parts: &[&CooccurrenceRow]) -> CooccurrenceRow {
        let mut out = CooccurrenceRow::new();
        for part in parts {
            for (token, count) in *part {
                *out.entry(token.clone()).or_insert(0) += count;
            }
        }
        out
    }

    fn map_cost(&self, line: &String) -> u64 {
        // Tokenising the raw document and materialising one row per token
        // (2·window entries each) dominates the Map task.
        (line.split_whitespace().count() * self.window * 8) as u64
    }

    fn combine_cost(&self, _key: &String, a: &CooccurrenceRow, b: &CooccurrenceRow) -> u64 {
        (a.len() + b.len()).max(1) as u64
    }

    fn reduce_cost(&self, _key: &String, parts: &[&CooccurrenceRow]) -> u64 {
        parts.iter().map(|p| p.len() as u64).sum::<u64>().max(1)
    }

    fn record_bytes(&self, line: &String) -> u64 {
        // Raw documents carry markup several times the visible text.
        line.len() as u64 * 4
    }

    fn value_bytes(&self, key: &String, v: &CooccurrenceRow) -> u64 {
        // Each entry stores a token and a count; rows dominate the
        // memoization footprint.
        key.len() as u64 + v.keys().map(|t| t.len() as u64 + 8).sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slider_mapreduce::{make_splits, ExecMode, JobConfig, WindowedJob};

    #[test]
    fn cooccurrence_within_window() {
        let app = Matrix::new(1);
        let mut pairs: Vec<(String, CooccurrenceRow)> = Vec::new();
        app.map(&"a b c".to_string(), &mut |k, v| pairs.push((k, v)));
        let merged: CooccurrenceRow = pairs
            .iter()
            .filter(|(k, _)| k == "b")
            .flat_map(|(_, row)| row.clone())
            .collect();
        assert_eq!(merged.get("a"), Some(&1));
        assert_eq!(merged.get("c"), Some(&1));
    }

    #[test]
    fn incremental_equals_recompute_across_modes() {
        let docs = slider_workloads::text::generate_documents(
            5,
            8,
            &slider_workloads::text::TextConfig {
                vocabulary: 20,
                zipf_exponent: 1.0,
                words_per_doc: 8,
            },
        );
        for mode in [
            ExecMode::Strawman,
            ExecMode::slider_folding(),
            ExecMode::slider_rotating(true),
        ] {
            let config = JobConfig::new(mode).with_buckets(6, 1).with_partitions(2);
            let mut inc = WindowedJob::new(Matrix::default(), config).unwrap();
            let mut van = WindowedJob::new(
                Matrix::default(),
                JobConfig::new(ExecMode::Recompute).with_partitions(2),
            )
            .unwrap();
            inc.initial_run(make_splits(0, docs[0..6].to_vec(), 1))
                .unwrap();
            van.initial_run(make_splits(0, docs[0..6].to_vec(), 1))
                .unwrap();
            inc.advance(1, make_splits(100, docs[6..7].to_vec(), 1))
                .unwrap();
            van.advance(1, make_splits(100, docs[6..7].to_vec(), 1))
                .unwrap();
            assert_eq!(inc.output(), van.output(), "{mode}");
        }
    }

    #[test]
    fn value_bytes_scale_with_row_size() {
        let app = Matrix::default();
        let small: CooccurrenceRow = [("x".to_string(), 1)].into_iter().collect();
        let big: CooccurrenceRow = (0..50).map(|i| (format!("tok{i}"), 1)).collect();
        let key = "k".to_string();
        assert!(app.value_bytes(&key, &big) > 10 * app.value_bytes(&key, &small));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_panics() {
        let _ = Matrix::new(0);
    }
}
