//! K-Means: one Lloyd's-algorithm step as MapReduce (compute-intensive).
//!
//! Each Map task assigns its points to the nearest of `k` fixed centroids
//! — `O(k·d)` floating-point work per record, which is what makes this
//! benchmark compute-bound in the paper. Partial aggregates are
//! (coordinate sum, count) pairs; Reduce emits the updated centroid.

use std::sync::Arc;

use slider_mapreduce::MapReduceApp;
use slider_workloads::points::Point;

/// Partial aggregate for one cluster: coordinate sums plus point count.
#[derive(Debug, Clone, PartialEq)]
pub struct CentroidUpdate {
    /// Per-dimension coordinate sums.
    pub sums: Vec<f64>,
    /// Number of points aggregated.
    pub count: u64,
}

impl CentroidUpdate {
    /// The mean point, i.e. the updated centroid.
    pub fn mean(&self) -> Point {
        let n = self.count.max(1) as f64;
        Point {
            coords: self.sums.iter().map(|s| s / n).collect(),
        }
    }
}

/// One K-means clustering step.
#[derive(Debug, Clone)]
pub struct KMeans {
    centroids: Arc<Vec<Point>>,
}

impl KMeans {
    /// Creates the app with the current `centroids`.
    ///
    /// # Panics
    ///
    /// Panics if `centroids` is empty.
    pub fn new(centroids: Vec<Point>) -> Self {
        assert!(!centroids.is_empty(), "k-means needs at least one centroid");
        KMeans {
            centroids: Arc::new(centroids),
        }
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    fn nearest(&self, point: &Point) -> u32 {
        let mut best = 0u32;
        let mut best_d = f64::INFINITY;
        for (i, c) in self.centroids.iter().enumerate() {
            let d = c.distance2(point);
            if d < best_d {
                best_d = d;
                best = u32::try_from(i).expect("centroid count fits in u32");
            }
        }
        best
    }
}

impl MapReduceApp for KMeans {
    type Input = Point;
    type Key = u32;
    type Value = CentroidUpdate;
    type Output = Point;

    fn map(&self, point: &Point, emit: &mut dyn FnMut(u32, CentroidUpdate)) {
        let cluster = self.nearest(point);
        emit(
            cluster,
            CentroidUpdate {
                sums: point.coords.clone(),
                count: 1,
            },
        );
    }

    fn combine(&self, _key: &u32, a: &CentroidUpdate, b: &CentroidUpdate) -> CentroidUpdate {
        CentroidUpdate {
            sums: a.sums.iter().zip(&b.sums).map(|(x, y)| x + y).collect(),
            count: a.count + b.count,
        }
    }

    fn reduce(&self, _key: &u32, parts: &[&CentroidUpdate]) -> Point {
        let mut acc = parts[0].clone();
        for part in &parts[1..] {
            acc = self.combine(&0, &acc, part);
        }
        acc.mean()
    }

    // Compute-intensive profile: the k·d distance computations dominate.
    fn map_cost(&self, point: &Point) -> u64 {
        (self.centroids.len() * point.dims() * 4) as u64
    }

    fn combine_cost(&self, _key: &u32, a: &CentroidUpdate, _b: &CentroidUpdate) -> u64 {
        a.sums.len() as u64
    }

    fn reduce_cost(&self, _key: &u32, parts: &[&CentroidUpdate]) -> u64 {
        parts.iter().map(|p| p.sums.len() as u64).sum()
    }

    fn record_bytes(&self, point: &Point) -> u64 {
        (point.dims() * 8) as u64
    }

    fn value_bytes(&self, _key: &u32, v: &CentroidUpdate) -> u64 {
        (v.sums.len() * 8 + 8) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slider_mapreduce::{make_splits, ExecMode, JobConfig, WindowedJob};
    use slider_workloads::points::{generate_points, initial_centroids};

    #[test]
    fn nearest_centroid_assignment() {
        let app = KMeans::new(vec![
            Point {
                coords: vec![0.0, 0.0],
            },
            Point {
                coords: vec![1.0, 1.0],
            },
        ]);
        assert_eq!(
            app.nearest(&Point {
                coords: vec![0.1, 0.2]
            }),
            0
        );
        assert_eq!(
            app.nearest(&Point {
                coords: vec![0.9, 0.8]
            }),
            1
        );
    }

    #[test]
    fn centroid_update_mean() {
        let update = CentroidUpdate {
            sums: vec![3.0, 6.0],
            count: 3,
        };
        assert_eq!(update.mean().coords, vec![1.0, 2.0]);
    }

    #[test]
    fn incremental_matches_recompute() {
        let points = generate_points(1, 60, 8);
        let centroids = initial_centroids(1, 3, 8);
        let run = |mode| {
            let mut job = WindowedJob::new(
                KMeans::new(centroids.clone()),
                JobConfig::new(mode).with_partitions(2).with_buckets(10, 1),
            )
            .unwrap();
            job.initial_run(make_splits(0, points[0..40].to_vec(), 4))
                .unwrap();
            // One bucket (= one split of 4 points) rotates out, one in.
            job.advance(1, make_splits(100, points[40..44].to_vec(), 4))
                .unwrap();
            job.output().clone()
        };
        let vanilla = run(ExecMode::Recompute);
        let rotating = run(ExecMode::slider_rotating(false));
        // Floating-point sums may associate differently; compare loosely.
        assert_eq!(
            vanilla.keys().collect::<Vec<_>>(),
            rotating.keys().collect::<Vec<_>>()
        );
        for (k, v) in &vanilla {
            let r = &rotating[k];
            for (a, b) in v.coords.iter().zip(&r.coords) {
                assert!((a - b).abs() < 1e-9, "cluster {k}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn cost_model_is_compute_intensive() {
        let centroids = initial_centroids(2, 10, 50);
        let app = KMeans::new(centroids);
        let p = Point {
            coords: vec![0.5; 50],
        };
        assert_eq!(app.map_cost(&p), 10 * 50 * 4);
        assert_eq!(app.record_bytes(&p), 400);
    }

    #[test]
    #[should_panic(expected = "at least one centroid")]
    fn empty_centroids_panic() {
        let _ = KMeans::new(vec![]);
    }
}
