//! subStr: frequently occurring sub-string extraction (data-intensive,
//! very large key space).
//!
//! Extracts every `k`-gram of every token and counts occurrences; the
//! output keeps only sub-strings above a frequency threshold (reported as
//! their count, with rare ones reduced to zero and filtered by the
//! consumer).

use slider_mapreduce::MapReduceApp;

/// Frequent sub-string extraction over `k`-grams.
#[derive(Debug, Clone)]
pub struct SubStr {
    /// Sub-string length.
    k: usize,
}

impl SubStr {
    /// Creates the app extracting sub-strings of length `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "sub-string length must be positive");
        SubStr { k }
    }

    /// The configured sub-string length.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Default for SubStr {
    fn default() -> Self {
        SubStr::new(4)
    }
}

impl MapReduceApp for SubStr {
    type Input = String;
    type Key = String;
    type Value = u64;
    type Output = u64;

    fn map(&self, line: &String, emit: &mut dyn FnMut(String, u64)) {
        for token in line.split_whitespace() {
            let chars: Vec<char> = token.chars().collect();
            if chars.len() < self.k {
                continue;
            }
            for gram in chars.windows(self.k) {
                emit(gram.iter().collect(), 1);
            }
        }
    }

    fn combine(&self, _key: &String, a: &u64, b: &u64) -> u64 {
        a + b
    }

    fn reduce(&self, _key: &String, parts: &[&u64]) -> u64 {
        parts.iter().copied().sum()
    }

    fn map_cost(&self, line: &String) -> u64 {
        line.chars().count().max(1) as u64
    }

    fn record_bytes(&self, line: &String) -> u64 {
        line.len() as u64
    }

    fn value_bytes(&self, key: &String, _v: &u64) -> u64 {
        (key.len() + 8) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slider_mapreduce::{make_splits, ExecMode, JobConfig, WindowedJob};

    #[test]
    fn extracts_kgrams() {
        let app = SubStr::new(3);
        let mut grams = Vec::new();
        app.map(&"abcd".to_string(), &mut |k, _| grams.push(k));
        assert_eq!(grams, vec!["abc".to_string(), "bcd".to_string()]);
    }

    #[test]
    fn short_tokens_are_skipped() {
        let app = SubStr::new(4);
        let mut grams = Vec::new();
        app.map(&"ab cde".to_string(), &mut |k, _| grams.push(k));
        assert!(grams.is_empty());
    }

    #[test]
    fn windowed_counts_match_reference() {
        let lines = vec!["abcde abcd".to_string(), "bcdef".to_string()];
        let mut job =
            WindowedJob::new(SubStr::new(4), JobConfig::new(ExecMode::slider_folding())).unwrap();
        job.initial_run(make_splits(0, lines, 1)).unwrap();
        assert_eq!(job.output().get("abcd"), Some(&2));
        assert_eq!(job.output().get("bcde"), Some(&2));
        assert_eq!(job.output().get("cdef"), Some(&1));

        // Slide out the first split.
        job.advance(1, vec![]).unwrap();
        assert_eq!(job.output().get("abcd"), None);
        assert_eq!(job.output().get("bcde"), Some(&1));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_k_panics() {
        let _ = SubStr::new(0);
    }
}
