//! §8.3 case study: client accountability in a hybrid CDN.
//!
//! Audits the tamper-evident logs NetSession clients upload: per client,
//! the job aggregates entry counts and chain verification across the
//! window (one month of weekly uploads) and emits a verdict. The amount
//! of data per week varies with client availability, which makes this the
//! paper's variable-width (folding tree) case study.

use slider_mapreduce::MapReduceApp;
use slider_workloads::netsession::ClientLog;

/// Per-client audit verdict over the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditVerdict {
    /// All uploaded logs verified.
    Clean {
        /// Total log entries audited.
        entries: u64,
        /// Weeks with an upload in the window.
        weeks: u32,
    },
    /// At least one log failed tamper-evidence verification.
    Flagged {
        /// Number of failed chain verifications.
        violations: u32,
    },
}

/// Partial audit state for one client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AuditState {
    entries: u64,
    weeks: u32,
    violations: u32,
    /// Combined digest of all audited logs (order-insensitive).
    digest: u64,
}

/// The log-audit MapReduce job.
#[derive(Debug, Clone, Default)]
pub struct NetSessionAudit;

impl NetSessionAudit {
    /// Creates the app.
    pub fn new() -> Self {
        NetSessionAudit
    }
}

impl MapReduceApp for NetSessionAudit {
    type Input = ClientLog;
    /// Client id.
    type Key = u32;
    type Value = AuditState;
    type Output = AuditVerdict;

    fn map(&self, log: &ClientLog, emit: &mut dyn FnMut(u32, AuditState)) {
        emit(
            log.client,
            AuditState {
                entries: log.entries as u64,
                weeks: 1,
                violations: u32::from(!log.chain_ok),
                digest: log.digest,
            },
        );
    }

    fn combine(&self, _key: &u32, a: &AuditState, b: &AuditState) -> AuditState {
        AuditState {
            entries: a.entries + b.entries,
            weeks: a.weeks + b.weeks,
            violations: a.violations + b.violations,
            digest: a.digest ^ b.digest,
        }
    }

    fn reduce(&self, _key: &u32, parts: &[&AuditState]) -> AuditVerdict {
        let mut acc = AuditState::default();
        for part in parts {
            acc = self.combine(&0, &acc, part);
        }
        if acc.violations > 0 {
            AuditVerdict::Flagged {
                violations: acc.violations,
            }
        } else {
            AuditVerdict::Clean {
                entries: acc.entries,
                weeks: acc.weeks,
            }
        }
    }

    fn map_cost(&self, log: &ClientLog) -> u64 {
        // Verifying the hash chain scans every entry.
        (log.entries as u64).max(1)
    }

    fn record_bytes(&self, log: &ClientLog) -> u64 {
        (log.entries as u64) * 48 + 64
    }

    fn value_bytes(&self, _key: &u32, _v: &AuditState) -> u64 {
        24
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slider_mapreduce::{make_splits, ExecMode, JobConfig, WindowedJob};
    use slider_workloads::netsession::{generate_week, NetSessionConfig};

    #[test]
    fn tampered_logs_flag_the_client() {
        let app = NetSessionAudit;
        let good = AuditState {
            entries: 10,
            weeks: 1,
            violations: 0,
            digest: 1,
        };
        let bad = AuditState {
            entries: 5,
            weeks: 1,
            violations: 1,
            digest: 2,
        };
        assert_eq!(
            app.reduce(&0, &[&good, &bad]),
            AuditVerdict::Flagged { violations: 1 }
        );
        assert_eq!(
            app.reduce(&0, &[&good]),
            AuditVerdict::Clean {
                entries: 10,
                weeks: 1
            }
        );
    }

    #[test]
    fn combine_is_commutative() {
        let app = NetSessionAudit;
        let a = AuditState {
            entries: 1,
            weeks: 1,
            violations: 0,
            digest: 7,
        };
        let b = AuditState {
            entries: 2,
            weeks: 1,
            violations: 1,
            digest: 9,
        };
        assert_eq!(app.combine(&0, &a, &b), app.combine(&0, &b, &a));
    }

    #[test]
    fn variable_width_audit_matches_recompute() {
        let cfg = NetSessionConfig {
            clients: 120,
            mean_entries: 10,
            tamper_rate: 0.05,
        };
        // 4-week window sliding by 1 week; weekly sizes vary with upload
        // fraction, so per-slide split counts differ (variable width).
        let fractions = [1.0, 0.9, 0.8, 1.0, 0.75, 0.95];
        let weeks: Vec<Vec<ClientLog>> = fractions
            .iter()
            .enumerate()
            .map(|(w, &f)| generate_week(3, &cfg, u32::try_from(w).expect("week fits"), f))
            .collect();
        let per_split = 25;
        let run = |mode| {
            let mut job =
                WindowedJob::new(NetSessionAudit, JobConfig::new(mode).with_partitions(2)).unwrap();
            let mut id = 0u64;
            let mut split_counts: std::collections::VecDeque<usize> =
                std::collections::VecDeque::new();
            let mut mk = |logs: &Vec<ClientLog>, counts: &mut std::collections::VecDeque<usize>| {
                let s = make_splits(id, logs.clone(), per_split);
                id += s.len() as u64;
                counts.push_back(s.len());
                s
            };
            let mut initial = Vec::new();
            for week in &weeks[0..4] {
                initial.extend(mk(week, &mut split_counts));
            }
            job.initial_run(initial).unwrap();
            for week in &weeks[4..] {
                let added = mk(week, &mut split_counts);
                let oldest = split_counts.pop_front().expect("4 weeks in window");
                job.advance(oldest, added).unwrap();
            }
            job.output().clone()
        };
        assert_eq!(run(ExecMode::Recompute), run(ExecMode::slider_folding()));
        assert_eq!(run(ExecMode::Recompute), run(ExecMode::slider_randomized()));
    }
}
