//! KNN: K-nearest-neighbours classification (compute-intensive).
//!
//! A fixed set of labelled query points classifies the streaming training
//! points: each Map task computes the distance of its records to every
//! query (`O(|Q|·d)` per record) and emits per-query bounded top-`k`
//! neighbour lists; merging two top-`k` lists is associative and
//! commutative, so the combiner contract holds.

use std::sync::Arc;

use slider_mapreduce::MapReduceApp;
use slider_workloads::points::Point;

/// A bounded list of the `k` nearest neighbours seen so far:
/// `(squared distance, label)` pairs sorted ascending by distance.
#[derive(Debug, Clone, PartialEq)]
pub struct Neighbors {
    /// Sorted `(distance², label)` pairs, at most `k` of them.
    pub nearest: Vec<(f64, u32)>,
    /// Bound `k`.
    pub k: usize,
}

impl Neighbors {
    /// Creates a list holding a single neighbour.
    pub fn single(distance2: f64, label: u32, k: usize) -> Self {
        Neighbors {
            nearest: vec![(distance2, label)],
            k,
        }
    }

    /// Merges two lists, keeping the `k` nearest.
    pub fn merge(&self, other: &Neighbors) -> Neighbors {
        let mut nearest = Vec::with_capacity(self.k.min(self.nearest.len() + other.nearest.len()));
        let (mut i, mut j) = (0, 0);
        while nearest.len() < self.k && (i < self.nearest.len() || j < other.nearest.len()) {
            let take_left = match (self.nearest.get(i), other.nearest.get(j)) {
                (Some(a), Some(b)) => a.0 <= b.0,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_left {
                nearest.push(self.nearest[i]);
                i += 1;
            } else {
                nearest.push(other.nearest[j]);
                j += 1;
            }
        }
        Neighbors { nearest, k: self.k }
    }

    /// Majority label among the kept neighbours.
    pub fn majority_label(&self) -> u32 {
        let mut counts: std::collections::BTreeMap<u32, usize> = std::collections::BTreeMap::new();
        for (_, label) in &self.nearest {
            *counts.entry(*label).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .max_by_key(|(label, count)| (*count, u32::MAX - *label))
            .map(|(label, _)| label)
            .unwrap_or(0)
    }
}

/// K-nearest-neighbours classification of fixed query points against the
/// windowed training stream.
#[derive(Debug, Clone)]
pub struct Knn {
    queries: Arc<Vec<Point>>,
    k: usize,
}

impl Knn {
    /// Creates the app for `queries` with neighbourhood size `k`.
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty or `k` is zero.
    pub fn new(queries: Vec<Point>, k: usize) -> Self {
        assert!(!queries.is_empty(), "knn needs at least one query point");
        assert!(k > 0, "k must be positive");
        Knn {
            queries: Arc::new(queries),
            k,
        }
    }
}

/// A labelled training point: the label is derived from the point id.
pub type LabelledPoint = (Point, u32);

impl MapReduceApp for Knn {
    type Input = LabelledPoint;
    type Key = u32;
    type Value = Neighbors;
    type Output = u32;

    fn map(&self, (point, label): &LabelledPoint, emit: &mut dyn FnMut(u32, Neighbors)) {
        for (q, query) in self.queries.iter().enumerate() {
            let d = query.distance2(point);
            emit(
                u32::try_from(q).expect("query ids fit in u32"),
                Neighbors::single(d, *label, self.k),
            );
        }
    }

    fn combine(&self, _key: &u32, a: &Neighbors, b: &Neighbors) -> Neighbors {
        a.merge(b)
    }

    fn reduce(&self, _key: &u32, parts: &[&Neighbors]) -> u32 {
        let mut acc = parts[0].clone();
        for part in &parts[1..] {
            acc = acc.merge(part);
        }
        acc.majority_label()
    }

    fn map_cost(&self, (point, _): &LabelledPoint) -> u64 {
        (self.queries.len() * point.dims() * 4) as u64
    }

    fn combine_cost(&self, _key: &u32, a: &Neighbors, b: &Neighbors) -> u64 {
        (a.nearest.len() + b.nearest.len()).max(1) as u64
    }

    fn reduce_cost(&self, _key: &u32, parts: &[&Neighbors]) -> u64 {
        // Reducing merges every partial top-k list.
        parts
            .iter()
            .map(|p| p.nearest.len() as u64)
            .sum::<u64>()
            .max(1)
    }

    fn record_bytes(&self, (point, _): &LabelledPoint) -> u64 {
        (point.dims() * 8 + 4) as u64
    }

    fn value_bytes(&self, _key: &u32, v: &Neighbors) -> u64 {
        (v.nearest.len() * 12 + 8) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slider_mapreduce::{make_splits, ExecMode, JobConfig, WindowedJob};
    use slider_workloads::points::generate_points;

    #[test]
    fn merge_keeps_k_nearest_sorted() {
        let a = Neighbors {
            nearest: vec![(0.1, 1), (0.5, 2)],
            k: 3,
        };
        let b = Neighbors {
            nearest: vec![(0.2, 3), (0.9, 4)],
            k: 3,
        };
        let m = a.merge(&b);
        assert_eq!(m.nearest, vec![(0.1, 1), (0.2, 3), (0.5, 2)]);
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        let a = Neighbors {
            nearest: vec![(0.1, 1)],
            k: 2,
        };
        let b = Neighbors {
            nearest: vec![(0.2, 2)],
            k: 2,
        };
        let c = Neighbors {
            nearest: vec![(0.3, 3)],
            k: 2,
        };
        assert_eq!(a.merge(&b), b.merge(&a));
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
    }

    #[test]
    fn majority_label_breaks_ties_deterministically() {
        let n = Neighbors {
            nearest: vec![(0.1, 2), (0.2, 1)],
            k: 2,
        };
        // Tie between labels 1 and 2 → prefer the smaller label.
        assert_eq!(n.majority_label(), 1);
    }

    #[test]
    fn windowed_classification_matches_recompute() {
        let train: Vec<LabelledPoint> = generate_points(4, 40, 6)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, u32::try_from(i % 3).expect("label fits")))
            .collect();
        let queries = generate_points(99, 4, 6);
        let run = |mode| {
            let mut job = WindowedJob::new(
                Knn::new(queries.clone(), 5),
                JobConfig::new(mode).with_partitions(2),
            )
            .unwrap();
            job.initial_run(make_splits(0, train[0..30].to_vec(), 3))
                .unwrap();
            job.advance(3, make_splits(100, train[30..36].to_vec(), 3))
                .unwrap();
            job.output().clone()
        };
        assert_eq!(run(ExecMode::Recompute), run(ExecMode::slider_folding()));
    }
}
