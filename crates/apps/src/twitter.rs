//! §8.1 case study: information-propagation trees for Twitter.
//!
//! Tracks how URLs spread: following Krackhardt's hierarchical model, a
//! directed edge connects a *spreader* to a *receiver* that follows the
//! spreader and posted the same URL later. The window is append-only
//! (tweets only accumulate), making this the paper's coalescing-tree case
//! study.

use std::collections::HashMap;
use std::sync::Arc;

use slider_mapreduce::MapReduceApp;
use slider_workloads::twitter::{FollowGraph, Tweet, UserId};

/// Summary of one URL's propagation tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PropagationStats {
    /// Users that posted the URL.
    pub nodes: u32,
    /// Spreader→receiver edges.
    pub edges: u32,
    /// Longest root-to-leaf path (a root has depth 1).
    pub depth: u32,
}

/// Builds per-URL information-propagation trees over the tweet window.
#[derive(Debug, Clone)]
pub struct TwitterPropagation {
    graph: Arc<FollowGraph>,
}

impl TwitterPropagation {
    /// Creates the app over the (static) follower graph.
    pub fn new(graph: Arc<FollowGraph>) -> Self {
        TwitterPropagation { graph }
    }
}

impl MapReduceApp for TwitterPropagation {
    type Input = Tweet;
    /// URL id.
    type Key = u32;
    /// Time-sorted `(time, user)` posts of the URL.
    type Value = Vec<(u64, UserId)>;
    type Output = PropagationStats;

    fn map(&self, tweet: &Tweet, emit: &mut dyn FnMut(u32, Vec<(u64, UserId)>)) {
        emit(tweet.url, vec![(tweet.time, tweet.user)]);
    }

    fn combine(
        &self,
        _key: &u32,
        a: &Vec<(u64, UserId)>,
        b: &Vec<(u64, UserId)>,
    ) -> Vec<(u64, UserId)> {
        // Sorted merge: associative and commutative.
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() || j < b.len() {
            let take_left = match (a.get(i), b.get(j)) {
                (Some(x), Some(y)) => x <= y,
                (Some(_), None) => true,
                _ => false,
            };
            if take_left {
                out.push(a[i]);
                i += 1;
            } else {
                out.push(b[j]);
                j += 1;
            }
        }
        out
    }

    fn reduce(&self, _key: &u32, parts: &[&Vec<(u64, UserId)>]) -> PropagationStats {
        let mut posts: Vec<(u64, UserId)> = Vec::new();
        for part in parts {
            posts = self.combine(&0, &posts, part);
        }
        // Build the tree: each poster attaches to the most recent earlier
        // poster they follow (if any).
        let mut depth_of: HashMap<UserId, u32> = HashMap::new();
        let mut edges = 0u32;
        let mut max_depth = 0u32;
        for (idx, &(_, user)) in posts.iter().enumerate() {
            if depth_of.contains_key(&user) {
                continue; // only the first post per user counts
            }
            let followees = self.graph.followees(user);
            let parent = posts[..idx]
                .iter()
                .rev()
                .map(|&(_, earlier)| earlier)
                .find(|earlier| *earlier != user && followees.contains(earlier));
            let depth = match parent {
                Some(parent) => {
                    edges += 1;
                    depth_of.get(&parent).copied().unwrap_or(1) + 1
                }
                None => 1,
            };
            max_depth = max_depth.max(depth);
            depth_of.insert(user, depth);
        }
        PropagationStats {
            nodes: u32::try_from(depth_of.len()).expect("tree size fits in u32"),
            edges,
            depth: max_depth,
        }
    }

    fn map_cost(&self, _tweet: &Tweet) -> u64 {
        2
    }

    fn combine_cost(&self, _key: &u32, a: &Vec<(u64, UserId)>, b: &Vec<(u64, UserId)>) -> u64 {
        (a.len() + b.len()).max(1) as u64
    }

    fn reduce_cost(&self, _key: &u32, parts: &[&Vec<(u64, UserId)>]) -> u64 {
        let n: u64 = parts.iter().map(|p| p.len() as u64).sum();
        // Tree construction scans earlier posts per poster.
        n * 4
    }

    fn record_bytes(&self, _tweet: &Tweet) -> u64 {
        16
    }

    fn value_bytes(&self, _key: &u32, v: &Vec<(u64, UserId)>) -> u64 {
        (v.len() * 12 + 8) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slider_mapreduce::{make_splits, ExecMode, JobConfig, WindowedJob};
    use slider_workloads::twitter::{generate, TwitterConfig};

    #[test]
    fn chain_cascade_has_exact_depth() {
        // 1 follows 0; 2 follows 1. URL posted by 0, then 1, then 2:
        // the tree is a chain of depth 3 with 2 edges.
        let graph = Arc::new(FollowGraph::from_edges([(1, 0), (2, 1)]));
        let app = TwitterPropagation::new(graph);
        let posts = vec![(1u64, 0u32), (2, 1), (3, 2)];
        let stats = app.reduce(&0, &[&posts]);
        assert_eq!(
            stats,
            PropagationStats {
                nodes: 3,
                edges: 2,
                depth: 3
            }
        );

        // Reversed time order: nobody follows a later poster, so the tree
        // is three roots.
        let posts = vec![(1u64, 2u32), (2, 1), (3, 0)];
        let stats = app.reduce(&0, &[&posts]);
        assert_eq!(
            stats,
            PropagationStats {
                nodes: 3,
                edges: 0,
                depth: 1
            }
        );
    }

    #[test]
    fn generated_cascades_produce_edges() {
        let data = generate(
            42,
            &TwitterConfig {
                users: 60,
                avg_follows: 4,
                urls: 10,
                repost_probability: 0.5,
            },
            400,
        );
        let app = TwitterPropagation::new(Arc::clone(&data.graph));
        let mut job = WindowedJob::new(
            app,
            JobConfig::new(ExecMode::slider_coalescing(false)).with_partitions(2),
        )
        .unwrap();
        job.initial_run(make_splits(0, data.tweets.clone(), 50))
            .unwrap();
        let stats: Vec<&PropagationStats> = job.output().values().collect();
        assert!(!stats.is_empty());
        // Reposts exist, so at least one URL must have an edge.
        assert!(
            stats.iter().any(|s| s.edges > 0),
            "no propagation edges found"
        );
        assert!(stats.iter().all(|s| s.depth >= 1 && s.nodes >= 1));
    }

    #[test]
    fn append_only_incremental_matches_recompute() {
        let data = generate(
            7,
            &TwitterConfig {
                users: 80,
                avg_follows: 5,
                urls: 15,
                repost_probability: 0.4,
            },
            600,
        );
        let intervals = data.intervals(&[70, 10, 10, 10]);
        let run = |mode| {
            let mut job = WindowedJob::new(
                TwitterPropagation::new(Arc::clone(&data.graph)),
                JobConfig::new(mode).with_partitions(2),
            )
            .unwrap();
            let mut next_split = 0u64;
            let mut slices = intervals.iter();
            let first = slices.next().unwrap().clone();
            let splits = make_splits(next_split, first, 20);
            next_split += splits.len() as u64;
            job.initial_run(splits).unwrap();
            for slice in slices {
                let splits = make_splits(next_split, slice.clone(), 20);
                next_split += splits.len() as u64;
                job.advance(0, splits).unwrap();
            }
            job.output().clone()
        };
        assert_eq!(
            run(ExecMode::Recompute),
            run(ExecMode::slider_coalescing(true))
        );
    }

    #[test]
    fn combine_merges_sorted() {
        let data = generate(1, &TwitterConfig::default(), 1);
        let app = TwitterPropagation::new(Arc::clone(&data.graph));
        let a = vec![(1u64, 5u32), (4, 2)];
        let b = vec![(2u64, 3u32)];
        assert_eq!(app.combine(&0, &a, &b), vec![(1, 5), (2, 3), (4, 2)]);
        assert_eq!(app.combine(&0, &b, &a), app.combine(&0, &a, &b));
    }
}
