//! §8.2 case study: monitoring Glasnost measurement servers.
//!
//! For every test run the job computes the minimum RTT between client and
//! measurement server (the distance estimate) and then the *median*
//! minimum-RTT per server across all runs in the window — the paper's
//! measure of how well users are directed to nearby servers. The window is
//! the most recent three months, sliding by one month: the fixed-width
//! (rotating tree) case study.
//!
//! Medians are not decomposable, so the partial aggregate is a sorted
//! multiset of per-run minimum RTTs (merged associatively and
//! commutatively); Reduce extracts the median.

use slider_mapreduce::MapReduceApp;
use slider_workloads::glasnost::TestTrace;

/// Median server distance monitoring over Glasnost traces.
#[derive(Debug, Clone, Default)]
pub struct GlasnostMonitor;

impl GlasnostMonitor {
    /// Creates the app.
    pub fn new() -> Self {
        GlasnostMonitor
    }
}

/// RTTs are finite positive milliseconds; sort by total order.
fn sorted_merge(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let take_left = match (a.get(i), b.get(j)) {
            (Some(x), Some(y)) => x.total_cmp(y).is_le(),
            (Some(_), None) => true,
            _ => false,
        };
        if take_left {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out
}

impl MapReduceApp for GlasnostMonitor {
    type Input = TestTrace;
    /// Measurement-server id.
    type Key = u32;
    /// Sorted multiset of per-run minimum RTTs.
    type Value = Vec<f64>;
    /// Median minimum RTT in milliseconds.
    type Output = f64;

    fn map(&self, trace: &TestTrace, emit: &mut dyn FnMut(u32, Vec<f64>)) {
        if trace.rtts_ms.is_empty() {
            return;
        }
        emit(trace.server, vec![trace.min_rtt()]);
    }

    fn combine(&self, _key: &u32, a: &Vec<f64>, b: &Vec<f64>) -> Vec<f64> {
        sorted_merge(a, b)
    }

    fn reduce(&self, _key: &u32, parts: &[&Vec<f64>]) -> f64 {
        let mut all: Vec<f64> = Vec::new();
        for part in parts {
            all = sorted_merge(&all, part);
        }
        if all.is_empty() {
            return f64::NAN;
        }
        let mid = all.len() / 2;
        if all.len() % 2 == 1 {
            all[mid]
        } else {
            (all[mid - 1] + all[mid]) / 2.0
        }
    }

    fn map_cost(&self, trace: &TestTrace) -> u64 {
        trace.rtts_ms.len().max(1) as u64
    }

    fn combine_cost(&self, _key: &u32, a: &Vec<f64>, b: &Vec<f64>) -> u64 {
        (a.len() + b.len()).max(1) as u64
    }

    fn reduce_cost(&self, _key: &u32, parts: &[&Vec<f64>]) -> u64 {
        parts.iter().map(|p| p.len() as u64).sum::<u64>().max(1)
    }

    fn record_bytes(&self, trace: &TestTrace) -> u64 {
        // A pcap trace is far heavier than the samples it yields.
        (trace.rtts_ms.len() * 64 + 128) as u64
    }

    fn value_bytes(&self, _key: &u32, v: &Vec<f64>) -> u64 {
        (v.len() * 8 + 8) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slider_mapreduce::{make_splits, ExecMode, JobConfig, WindowedJob};
    use slider_workloads::glasnost::{generate_months, GlasnostConfig};

    #[test]
    fn median_of_odd_and_even() {
        let app = GlasnostMonitor;
        let v = vec![1.0, 3.0, 9.0];
        assert_eq!(app.reduce(&0, &[&v]), 3.0);
        let v = vec![1.0, 3.0, 5.0, 9.0];
        assert_eq!(app.reduce(&0, &[&v]), 4.0);
    }

    #[test]
    fn sorted_merge_is_commutative() {
        let a = vec![1.0, 5.0];
        let b = vec![2.0, 3.0];
        assert_eq!(sorted_merge(&a, &b), vec![1.0, 2.0, 3.0, 5.0]);
        assert_eq!(sorted_merge(&a, &b), sorted_merge(&b, &a));
    }

    #[test]
    fn fixed_width_monitoring_matches_recompute() {
        let config = GlasnostConfig {
            servers: 2,
            clients: 60,
            samples_per_test: 5,
        };
        let months = generate_months(5, &config, &[30, 30, 30, 30, 30]);
        let run = |mode| {
            // Window = 3 months, slide = 1 month, 1 split per month bucket.
            let job_config = JobConfig::new(mode).with_partitions(2).with_buckets(3, 1);
            let mut job = WindowedJob::new(GlasnostMonitor, job_config).unwrap();
            let mut id = 0u64;
            let mut mk = |traces: &Vec<TestTrace>| {
                let s = make_splits(id, traces.clone(), traces.len().max(1));
                id += s.len() as u64;
                s
            };
            job.initial_run(months[0..3].iter().flat_map(&mut mk).collect())
                .unwrap();
            for month in &months[3..] {
                job.advance(1, mk(month)).unwrap();
            }
            job.output().clone()
        };
        let vanilla = run(ExecMode::Recompute);
        let rotating = run(ExecMode::slider_rotating(true));
        assert_eq!(vanilla.len(), rotating.len());
        for (k, v) in &vanilla {
            assert!((v - rotating[k]).abs() < 1e-12, "server {k}");
        }
    }
}
