//! # slider-apps — the paper's applications, written as plain MapReduce
//!
//! The five micro-benchmarks of §7.1 and the three real-world case studies
//! of §8, each implemented against [`slider_mapreduce::MapReduceApp`] with
//! **no incremental logic whatsoever** — exercising the paper's
//! transparency claim: the same single-pass code runs from-scratch,
//! memoized, or with any self-adjusting contraction tree.
//!
//! | App | Paper | Character |
//! |-----|-------|-----------|
//! | [`Hct`] | histogram computation | data-intensive |
//! | [`Matrix`] | word co-occurrence matrix | data-intensive, large values |
//! | [`SubStr`] | frequent sub-string extraction | data-intensive, many keys |
//! | [`KMeans`] | K-means clustering step | compute-intensive |
//! | [`Knn`] | K-nearest-neighbours | compute-intensive |
//! | [`TwitterPropagation`] | §8.1 information-propagation trees | append-only case study |
//! | [`GlasnostMonitor`] | §8.2 ISP traffic-differentiation monitoring | fixed-width case study |
//! | [`NetSessionAudit`] | §8.3 hybrid-CDN client accountability | variable-width case study |
//! | [`FollowPostJoin`] | §8.1 companion | two-input windowed join (slider-join) |
//!
//! The `*_cost` hooks encode each app's compute-vs-I/O character; see
//! DESIGN.md §5 for the measurement methodology.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::cast_possible_truncation)]

mod followpost;
mod glasnost;
mod hct;
mod kmeans;
mod knn;
mod matrix;
mod netsession;
mod substr;
mod twitter;

pub use followpost::FollowPostJoin;
pub use glasnost::GlasnostMonitor;
pub use hct::Hct;
pub use kmeans::{CentroidUpdate, KMeans};
pub use knn::{Knn, Neighbors};
pub use matrix::{CooccurrenceRow, Matrix};
pub use netsession::{AuditState, AuditVerdict, NetSessionAudit};
pub use substr::SubStr;
pub use twitter::{PropagationStats, TwitterPropagation};
