//! HCT: histogram computation over a token stream (data-intensive).
//!
//! Computes the frequency histogram of tokens in the window. A classic
//! combiner-friendly aggregation: partial counts merge by addition.

use slider_mapreduce::MapReduceApp;

/// Histogram computation over whitespace-separated tokens.
#[derive(Debug, Clone, Default)]
pub struct Hct;

impl Hct {
    /// Creates the app.
    pub fn new() -> Self {
        Hct
    }
}

impl MapReduceApp for Hct {
    type Input = String;
    type Key = String;
    type Value = u64;
    type Output = u64;

    fn map(&self, line: &String, emit: &mut dyn FnMut(String, u64)) {
        for token in line.split_whitespace() {
            emit(token.to_string(), 1);
        }
    }

    fn combine(&self, _key: &String, a: &u64, b: &u64) -> u64 {
        a + b
    }

    fn reduce(&self, _key: &String, parts: &[&u64]) -> u64 {
        parts.iter().copied().sum()
    }

    // Data-intensive profile: cheap per-record compute, heavy records.
    fn map_cost(&self, line: &String) -> u64 {
        line.split_whitespace().count().max(1) as u64
    }

    fn record_bytes(&self, line: &String) -> u64 {
        line.len() as u64
    }

    fn value_bytes(&self, key: &String, _v: &u64) -> u64 {
        (key.len() + 8) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slider_mapreduce::{make_splits, ExecMode, JobConfig, WindowedJob};

    #[test]
    fn counts_tokens() {
        let mut job = WindowedJob::new(Hct, JobConfig::new(ExecMode::slider_folding())).unwrap();
        job.initial_run(make_splits(0, vec!["a b a".into(), "b c".into()], 1))
            .unwrap();
        assert_eq!(job.output().get("a"), Some(&2));
        assert_eq!(job.output().get("b"), Some(&2));
        assert_eq!(job.output().get("c"), Some(&1));
    }

    #[test]
    fn incremental_equals_recompute() {
        let docs = slider_workloads::text::generate_documents(
            3,
            12,
            &slider_workloads::text::TextConfig {
                vocabulary: 50,
                zipf_exponent: 1.0,
                words_per_doc: 10,
            },
        );
        let mut inc = WindowedJob::new(Hct, JobConfig::new(ExecMode::slider_folding())).unwrap();
        let mut van = WindowedJob::new(Hct, JobConfig::new(ExecMode::Recompute)).unwrap();
        inc.initial_run(make_splits(0, docs[0..8].to_vec(), 2))
            .unwrap();
        van.initial_run(make_splits(0, docs[0..8].to_vec(), 2))
            .unwrap();
        inc.advance(2, make_splits(100, docs[8..12].to_vec(), 2))
            .unwrap();
        van.advance(2, make_splits(100, docs[8..12].to_vec(), 2))
            .unwrap();
        assert_eq!(inc.output(), van.output());
    }

    #[test]
    fn cost_model_is_data_intensive() {
        let app = Hct;
        let line = "one two three".to_string();
        assert_eq!(app.map_cost(&line), 3);
        assert_eq!(app.record_bytes(&line), 13);
        assert_eq!(app.value_bytes(&"one".to_string(), &5), 11);
    }
}
