//! DGIM exponential-histogram sliding-window counter.
//!
//! Counts how many events fell inside the last `window` time units using
//! O((1/ε) · log² N) space instead of remembering every event, at the cost
//! of a bounded relative error ε on the estimate (Datar, Gionis, Indyk,
//! Motwani — "Maintaining stream statistics over sliding windows",
//! SODA 2002).
//!
//! The structure keeps *buckets* of power-of-two event counts, newest
//! first. Each bucket records the timestamp of its most recent event, and
//! bucket sizes are non-decreasing with age. At most `k` buckets of each
//! size are retained: when a `(k + 1)`-th accumulates, the two **oldest**
//! of that size merge into one bucket of twice the size. Buckets whose
//! timestamp has slid out of the window expire wholesale.
//!
//! Only the oldest retained bucket is uncertain — it straddles the window
//! boundary, so anywhere from one to all of its events may still be in
//! range. The estimate counts half of it, which bounds the relative error
//! by `1 / (k - 1)`; [`SlidingWindowCounter::new`] picks
//! `k = ⌈1/ε⌉ + 1` so the estimate is within a `(1 ± ε)` factor of the
//! true count.
//!
//! The counter is fully deterministic — same event sequence, same buckets,
//! same estimates — which is what lets `slider-serve` use it for
//! reproducible per-tenant rate limiting.

use std::collections::VecDeque;

/// One DGIM bucket: `size` events (a power of two), the newest of which
/// happened at `time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Bucket {
    /// Timestamp of the most recent event folded into this bucket.
    time: u64,
    /// Number of events in the bucket; always a power of two.
    size: u64,
}

/// Approximate count of events in a sliding time window, with relative
/// error at most ε (see the module docs for the guarantee).
///
/// Timestamps must be fed in non-decreasing order; [`record`] clamps any
/// regressing timestamp up to the latest one seen, so a slightly jittery
/// clock degrades gracefully instead of corrupting the histogram.
///
/// [`record`]: SlidingWindowCounter::record
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlidingWindowCounter {
    /// Window length in time units; an event at time `t` is in the window
    /// of a query at `now` when `t > now - window`.
    window: u64,
    /// Maximum buckets retained per size class before the two oldest merge.
    per_class: usize,
    /// Buckets, newest first. Sizes are non-decreasing from front to back.
    buckets: VecDeque<Bucket>,
    /// Latest event timestamp seen (the monotonic clamp).
    latest: u64,
}

impl SlidingWindowCounter {
    /// Creates a counter for the trailing `window` time units with
    /// relative-error bound `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics when `window == 0` or `epsilon` is not in `(0, 1]`.
    #[must_use]
    pub fn new(window: u64, epsilon: f64) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(epsilon > 0.0 && epsilon <= 1.0, "epsilon must be in (0, 1]");
        // k = ceil(1/epsilon) + 1 buckets per size class bounds the
        // relative error by 1/(k-1) <= epsilon. Avoid float ceil: for
        // epsilon in (0, 1], 1/epsilon <= 2^53 so the loop terminates
        // immediately in practice; use integer search over the recip.
        let recip = (1.0 / epsilon).ceil();
        assert!(recip.is_finite(), "epsilon too small");
        // recip >= 1 and is an integral float; convert without `as` to
        // honor the crate-wide truncation lint.
        let mut k = 1usize;
        while (k as f64) < recip {
            k += 1;
        }
        SlidingWindowCounter {
            window,
            per_class: k + 1,
            buckets: VecDeque::new(),
            latest: 0,
        }
    }

    /// The window length this counter was built with.
    #[must_use]
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Maximum buckets kept per size class (`⌈1/ε⌉ + 1`).
    #[must_use]
    pub fn buckets_per_class(&self) -> usize {
        self.per_class
    }

    /// Number of live buckets — the space actually used.
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Latest event timestamp recorded.
    #[must_use]
    pub fn latest(&self) -> u64 {
        self.latest
    }

    /// Records one event at `time` (clamped up to the latest timestamp
    /// seen, keeping the histogram monotone).
    pub fn record(&mut self, time: u64) {
        self.record_n(time, 1);
    }

    /// Records `n` simultaneous events at `time`.
    pub fn record_n(&mut self, time: u64, n: u64) {
        let time = time.max(self.latest);
        self.latest = time;
        self.expire(time);
        for _ in 0..n {
            self.buckets.push_front(Bucket { time, size: 1 });
            self.carry();
        }
    }

    /// Drops buckets that ended at or before `now - window`.
    fn expire(&mut self, now: u64) {
        let horizon = now.saturating_sub(self.window);
        while let Some(oldest) = self.buckets.back() {
            if oldest.time <= horizon && now >= self.window {
                self.buckets.pop_back();
            } else {
                break;
            }
        }
    }

    /// Restores the ≤ `per_class` invariant by cascading merges: whenever
    /// a size class overflows, its two oldest buckets combine into one of
    /// the next class (keeping the newer of the two timestamps).
    fn carry(&mut self) {
        let mut size = 1u64;
        loop {
            // Buckets are ordered newest-first with non-decreasing sizes,
            // so each class occupies one contiguous range.
            let start = self.buckets.iter().position(|b| b.size == size);
            let Some(start) = start else { return };
            let count = self
                .buckets
                .iter()
                .skip(start)
                .take_while(|b| b.size == size)
                .count();
            if count <= self.per_class {
                return;
            }
            // Merge the two oldest of this class (largest indices in the
            // range). The merged bucket keeps the newer timestamp — that
            // of the second-oldest — and lands at the front of the next
            // class, which is exactly where index `start + count - 2`
            // already is once the oldest is removed.
            let oldest = start + count - 1;
            let newer = start + count - 2;
            self.buckets[newer].size = size * 2;
            self.buckets.remove(oldest);
            size *= 2;
        }
    }

    /// Estimated number of events with timestamps in `(now - window, now]`:
    /// every full bucket inside the window plus half the one straddling
    /// the boundary. Within a `(1 ± ε)` factor of the true count.
    #[must_use]
    pub fn count(&self, now: u64) -> u64 {
        let (inner, straddling) = self.split(now);
        inner + straddling.div_ceil(2)
    }

    /// Smallest count consistent with the histogram: all full buckets plus
    /// one event from the straddling bucket (its newest event is in range
    /// by construction).
    #[must_use]
    pub fn lower_bound(&self, now: u64) -> u64 {
        let (inner, straddling) = self.split(now);
        inner + u64::from(straddling > 0)
    }

    /// Largest count consistent with the histogram: every retained bucket
    /// in full.
    #[must_use]
    pub fn upper_bound(&self, now: u64) -> u64 {
        let (inner, straddling) = self.split(now);
        inner + straddling
    }

    /// Sums bucket sizes for a query at `now`, splitting off the oldest
    /// in-window bucket (the only one that may straddle the boundary).
    /// Buckets wholly outside the window are skipped, not mutated, so
    /// queries never perturb the structure.
    /// Captures the complete counter state. Restoring via
    /// [`SlidingWindowCounter::restore`] yields a counter that is
    /// bit-identical (`==`) to this one and produces identical estimates,
    /// merges and expirations on any identical future event sequence.
    #[must_use]
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            window: self.window,
            per_class: self.per_class,
            buckets: self.buckets.iter().map(|b| (b.time, b.size)).collect(),
            latest: self.latest,
        }
    }

    /// Rebuilds a counter from a [`CounterSnapshot`], exactly as captured.
    ///
    /// The snapshot is trusted to have come from [`snapshot`]; geometry
    /// fields are reimposed verbatim (no re-derivation from ε), so the
    /// round trip is lossless even for ε values whose `⌈1/ε⌉` is not
    /// recoverable from `per_class` alone.
    ///
    /// [`snapshot`]: SlidingWindowCounter::snapshot
    #[must_use]
    pub fn restore(snapshot: &CounterSnapshot) -> Self {
        SlidingWindowCounter {
            window: snapshot.window,
            per_class: snapshot.per_class,
            buckets: snapshot
                .buckets
                .iter()
                .map(|&(time, size)| Bucket { time, size })
                .collect(),
            latest: snapshot.latest,
        }
    }

    fn split(&self, now: u64) -> (u64, u64) {
        let now = now.max(self.latest);
        let horizon = now.saturating_sub(self.window);
        let mut inner = 0u64;
        let mut straddling = 0u64;
        for bucket in &self.buckets {
            if bucket.time <= horizon && now >= self.window {
                break;
            }
            inner += straddling;
            straddling = bucket.size;
        }
        (inner, straddling)
    }
}

/// Point-in-time image of a [`SlidingWindowCounter`]: the window geometry
/// plus the exact exponential-histogram contents. The field layout is the
/// stable checkpoint wire format consumed by `slider-serve` snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Window length in time units.
    pub window: u64,
    /// Maximum buckets retained per size class.
    pub per_class: usize,
    /// `(newest timestamp, size)` per bucket, newest bucket first.
    pub buckets: Vec<(u64, u64)>,
    /// Latest event timestamp seen (the monotonic clamp).
    pub latest: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Exact reference: remembers every event timestamp.
    struct ExactCounter {
        window: u64,
        events: Vec<u64>,
    }

    impl ExactCounter {
        fn new(window: u64) -> Self {
            ExactCounter {
                window,
                events: Vec::new(),
            }
        }
        fn record_n(&mut self, time: u64, n: u64) {
            let time = time.max(self.events.last().copied().unwrap_or(0));
            for _ in 0..n {
                self.events.push(time);
            }
        }
        fn count(&self, now: u64) -> u64 {
            let now = now.max(self.events.last().copied().unwrap_or(0));
            let horizon = now.saturating_sub(self.window);
            self.events
                .iter()
                .filter(|&&t| t > horizon || now < self.window)
                .count() as u64
        }
    }

    #[test]
    fn empty_counter_is_zero() {
        let c = SlidingWindowCounter::new(16, 0.5);
        assert_eq!(c.count(0), 0);
        assert_eq!(c.count(1_000), 0);
        assert_eq!(c.lower_bound(9), 0);
        assert_eq!(c.upper_bound(9), 0);
        assert_eq!(c.bucket_count(), 0);
    }

    #[test]
    fn small_counts_are_exact() {
        // With fewer events than buckets-per-class, no merge ever
        // happens and every bucket holds one event: counts are exact.
        let mut c = SlidingWindowCounter::new(100, 0.5);
        for t in [1u64, 2, 3] {
            c.record(t);
        }
        assert_eq!(c.count(3), 3);
        assert_eq!(c.lower_bound(3), 3);
        assert_eq!(c.upper_bound(3), 3);
    }

    #[test]
    fn events_expire_with_the_window() {
        let mut c = SlidingWindowCounter::new(10, 0.5);
        c.record(1);
        c.record(2);
        assert_eq!(c.count(2), 2);
        // At now = 12 the horizon is 2: both events (t <= 2) are out.
        assert_eq!(c.count(12), 0);
        c.record(20);
        assert_eq!(c.count(20), 1);
        assert_eq!(c.bucket_count(), 1, "expired buckets are dropped");
    }

    #[test]
    fn early_window_keeps_time_zero_events() {
        // Before `now` reaches the window length the horizon is clamped:
        // an event at t = 0 is still inside the first window.
        let mut c = SlidingWindowCounter::new(10, 0.5);
        c.record(0);
        assert_eq!(c.count(0), 1);
        assert_eq!(c.count(9), 1);
        assert_eq!(c.count(10), 0, "t = 0 leaves at now = window");
    }

    #[test]
    fn regressing_timestamps_clamp_monotone() {
        let mut c = SlidingWindowCounter::new(100, 0.5);
        c.record(50);
        c.record(10); // clamped to 50
        assert_eq!(c.latest(), 50);
        assert_eq!(c.count(50), 2);
    }

    #[test]
    fn merges_keep_per_class_invariant() {
        let mut c = SlidingWindowCounter::new(u64::MAX, 1.0); // k+1 = 2 per class
        for t in 0..64 {
            c.record(t);
            let mut sizes: Vec<u64> = c.buckets.iter().map(|b| b.size).collect();
            for w in sizes.windows(2) {
                assert!(w[0] <= w[1], "sizes non-decreasing with age: {sizes:?}");
            }
            sizes.dedup();
            for &s in &sizes {
                let n = c.buckets.iter().filter(|b| b.size == s).count();
                assert!(n <= c.buckets_per_class(), "class {s} holds {n}");
                assert!(s.is_power_of_two());
            }
        }
        // 64 events in ~log buckets, not 64.
        assert!(c.bucket_count() <= 2 * 7);
    }

    #[test]
    fn space_is_logarithmic() {
        let mut c = SlidingWindowCounter::new(u64::MAX, 0.1);
        for t in 0..100_000u64 {
            c.record(t);
        }
        let classes = 100_000u64.ilog2() + 1;
        let cap = c.buckets_per_class() * usize::try_from(classes).unwrap();
        assert!(
            c.bucket_count() <= cap,
            "{} buckets exceeds {} (k per class × classes)",
            c.bucket_count(),
            cap
        );
    }

    #[test]
    fn deterministic_across_reruns() {
        let build = || {
            let mut c = SlidingWindowCounter::new(1_000, 0.2);
            for t in 0..5_000u64 {
                c.record_n(t / 3, 1 + t % 4);
            }
            c
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
        assert_eq!(a.count(5_000), b.count(5_000));
    }

    /// Checks the (1 ± ε) guarantee of `dgim` against `exact` at `now`.
    fn assert_error_bound(dgim: &SlidingWindowCounter, exact: &ExactCounter, now: u64, eps: f64) {
        let est = dgim.count(now);
        let truth = exact.count(now);
        assert!(
            dgim.lower_bound(now) <= truth && truth <= dgim.upper_bound(now),
            "true count {truth} outside [{}, {}] at now={now}",
            dgim.lower_bound(now),
            dgim.upper_bound(now),
        );
        let err = est.abs_diff(truth);
        // err <= eps * truth, checked in integers scaled by 2^32 to keep
        // the comparison exact-ish; add 1 for the half-bucket rounding.
        let bound = (eps * truth_to_f64(truth)).floor() + 1.0;
        assert!(
            truth_to_f64(err) <= bound,
            "estimate {est} vs true {truth}: error {err} exceeds ε·N + 1 = {bound} at now={now}",
        );
    }

    fn truth_to_f64(x: u64) -> f64 {
        // u64 -> f64 is lossy only above 2^53; test counts stay far below.
        assert!(x < (1u64 << 53));
        let mut acc = 0.0f64;
        let mut rem = x;
        while rem > 0 {
            let chunk = rem.min(1 << 30);
            acc += f64::from(u32::try_from(chunk).unwrap());
            rem -= chunk;
        }
        acc
    }

    proptest! {
        #[test]
        fn estimate_stays_within_epsilon(
            seed_steps in proptest::collection::vec((0u64..8, 1u64..4), 1..400),
            window in 1u64..512,
            eps_tenths in 1u32..10,
        ) {
            let eps = f64::from(eps_tenths) / 10.0;
            let mut dgim = SlidingWindowCounter::new(window, eps);
            let mut exact = ExactCounter::new(window);
            let mut now = 0u64;
            for (gap, n) in seed_steps {
                now += gap;
                dgim.record_n(now, n);
                exact.record_n(now, n);
                assert_error_bound(&dgim, &exact, now, eps);
            }
            // Probe the future too: counts decay identically.
            for probe in [now + window / 2, now + window, now + 2 * window] {
                assert_error_bound(&dgim, &exact, probe, eps);
            }
        }

        #[test]
        fn snapshot_restore_round_trips_mid_stream(
            steps in proptest::collection::vec((0u64..8, 1u64..4), 2..300),
            window in 1u64..512,
            eps_tenths in 1u32..10,
            cut_permille in 0u32..1000,
        ) {
            // Feed a prefix, checkpoint mid-stream, and drive the restored
            // counter through the suffix alongside the original: the clone
            // must be bit-identical at the cut and the pair must stay
            // `==` (same buckets, merges, expirations) ever after, while
            // the restored counter keeps honoring the (1 ± ε) envelope.
            let eps = f64::from(eps_tenths) / 10.0;
            let cut = (steps.len() * cut_permille as usize) / 1000;
            let mut original = SlidingWindowCounter::new(window, eps);
            let mut exact = ExactCounter::new(window);
            let mut now = 0u64;
            for &(gap, n) in &steps[..cut] {
                now += gap;
                original.record_n(now, n);
                exact.record_n(now, n);
            }
            let image = original.snapshot();
            prop_assert_eq!(&image, &image.clone(), "snapshot must be value-stable");
            let mut restored = SlidingWindowCounter::restore(&image);
            prop_assert_eq!(&restored, &original, "restore must be bit-exact");
            for &(gap, n) in &steps[cut..] {
                now += gap;
                original.record_n(now, n);
                restored.record_n(now, n);
                exact.record_n(now, n);
                prop_assert_eq!(&restored, &original, "divergence after restore");
                assert_error_bound(&restored, &exact, now, eps);
            }
            prop_assert_eq!(restored.snapshot(), original.snapshot());
        }

        #[test]
        fn bounds_bracket_the_estimate(
            times in proptest::collection::vec(0u64..2_000, 1..200),
            window in 1u64..256,
        ) {
            let mut dgim = SlidingWindowCounter::new(window, 0.3);
            let mut sorted = times.clone();
            sorted.sort_unstable();
            for &t in &sorted {
                dgim.record(t);
            }
            let now = *sorted.last().unwrap();
            prop_assert!(dgim.lower_bound(now) <= dgim.count(now));
            prop_assert!(dgim.count(now) <= dgim.upper_bound(now));
        }
    }
}
