//! Error type shared by all contraction trees.

use std::error::Error;
use std::fmt;

/// Errors reported by contraction-tree operations.
///
/// All variants indicate a contract violation by the *caller* (the host
/// engine), never data corruption inside a tree: a failed operation leaves
/// the tree unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TreeError {
    /// Asked to remove more leading leaves than the window holds.
    RemoveExceedsWindow {
        /// Number of leaves the caller asked to drop.
        requested: usize,
        /// Number of leaves currently in the window.
        window: usize,
    },
    /// An append-only (coalescing) tree was asked to remove leaves.
    RemoveFromAppendOnly,
    /// A rotating tree operation requires a commutative combiner, but the
    /// combiner declared itself non-commutative.
    CombinerNotCommutative,
    /// A fixed-width (rotating) tree was advanced with a number of added
    /// buckets different from the number of removed buckets once full.
    FixedWidthViolation {
        /// Buckets removed in this slide.
        removed: usize,
        /// Buckets added in this slide.
        added: usize,
    },
    /// A rotating tree was built or advanced beyond its fixed capacity.
    CapacityExceeded {
        /// Configured number of bucket slots.
        capacity: usize,
        /// Occupancy the operation would have produced.
        attempted: usize,
    },
    /// This structure does not implement interior bulk splices
    /// (`insert_at`/`evict_range`); the host engine must fall back to a
    /// targeted rebuild and charge the work to its breakdown.
    SpliceUnsupported {
        /// Short name of the structure that declined the splice.
        kind: &'static str,
    },
    /// An interior splice addressed a leaf range outside the window.
    SpliceOutOfRange {
        /// First present-leaf position the splice addressed (0 = oldest).
        at: usize,
        /// Number of leaves inserted or evicted.
        count: usize,
        /// Number of present leaves currently in the window.
        window: usize,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::RemoveExceedsWindow { requested, window } => write!(
                f,
                "cannot remove {requested} leaves from a window of {window}"
            ),
            TreeError::RemoveFromAppendOnly => {
                write!(f, "append-only coalescing tree cannot remove leaves")
            }
            TreeError::CombinerNotCommutative => {
                write!(
                    f,
                    "rotating contraction tree requires a commutative combiner"
                )
            }
            TreeError::FixedWidthViolation { removed, added } => write!(
                f,
                "fixed-width window must rotate equally: removed {removed}, added {added}"
            ),
            TreeError::CapacityExceeded {
                capacity,
                attempted,
            } => write!(
                f,
                "rotating tree capacity {capacity} exceeded (attempted occupancy {attempted})"
            ),
            TreeError::SpliceUnsupported { kind } => {
                write!(f, "{kind} does not support interior bulk splices")
            }
            TreeError::SpliceOutOfRange { at, count, window } => write!(
                f,
                "splice of {count} leaves at position {at} is outside a window of {window}"
            ),
        }
    }
}

impl Error for TreeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = TreeError::RemoveExceedsWindow {
            requested: 9,
            window: 4,
        };
        let msg = err.to_string();
        assert!(msg.contains('9') && msg.contains('4'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TreeError>();
    }
}
