//! The common [`ContractionTree`] interface shared by every tree in the
//! family, plus the [`TreeKind`] factory used by the host engine.

use std::fmt;
use std::sync::Arc;

use crate::coalescing::CoalescingTree;
use crate::combiner::Combiner;
use crate::error::TreeError;
use crate::folding::FoldingTree;
use crate::randomized::RandomizedFoldingTree;
use crate::rotating::RotatingTree;
use crate::stats::{Phase, UpdateStats};
use crate::strawman::StrawmanTree;

/// Selects a member of the self-adjusting contraction tree family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TreeKind {
    /// §2.2 memoization-only baseline.
    Strawman,
    /// §3.1 folding tree for variable-width windows.
    Folding,
    /// §3.2 randomized (skip-list style) folding tree.
    RandomizedFolding,
    /// §4.1 rotating tree for fixed-width windows.
    Rotating,
    /// §4.2 coalescing tree for append-only windows.
    Coalescing,
}

impl TreeKind {
    /// All kinds, in paper order.
    pub const ALL: [TreeKind; 5] = [
        TreeKind::Strawman,
        TreeKind::Folding,
        TreeKind::RandomizedFolding,
        TreeKind::Rotating,
        TreeKind::Coalescing,
    ];

    /// Short lowercase name used in harness output.
    pub fn name(self) -> &'static str {
        match self {
            TreeKind::Strawman => "strawman",
            TreeKind::Folding => "folding",
            TreeKind::RandomizedFolding => "randomized",
            TreeKind::Rotating => "rotating",
            TreeKind::Coalescing => "coalescing",
        }
    }

    /// Whether this kind supports split (background/foreground) processing.
    pub fn supports_split_processing(self) -> bool {
        matches!(self, TreeKind::Rotating | TreeKind::Coalescing)
    }
}

impl fmt::Display for TreeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-operation context handed to a tree: the application combiner, the key
/// the tree aggregates, and the statistics accumulator.
///
/// All combiner invocations made by a tree flow through [`TreeCx::merge`] so
/// that every unit of work is attributed to the right [`Phase`].
pub struct TreeCx<'a, K, V> {
    combiner: &'a dyn Combiner<K, V>,
    key: &'a K,
    stats: &'a mut UpdateStats,
}

impl<'a, K, V> TreeCx<'a, K, V> {
    /// Bundles a combiner, key and statistics sink.
    pub fn new(combiner: &'a dyn Combiner<K, V>, key: &'a K, stats: &'a mut UpdateStats) -> Self {
        TreeCx {
            combiner,
            key,
            stats,
        }
    }

    /// The key this tree aggregates.
    pub fn key(&self) -> &K {
        self.key
    }

    /// Whether the application combiner is commutative.
    pub fn is_commutative(&self) -> bool {
        self.combiner.is_commutative()
    }

    /// Executes one combiner invocation, charging its cost to `phase` and
    /// recording the memoization bytes the fresh aggregate occupies.
    pub fn merge(&mut self, phase: Phase, a: &Arc<V>, b: &Arc<V>) -> Arc<V> {
        let cost = self.combiner.cost(self.key, a, b);
        self.stats.phase_mut(phase).record(cost);
        let out = Arc::new(self.combiner.combine(self.key, a, b));
        self.stats.bytes_written += self.combiner.value_bytes(self.key, &out);
        out
    }

    /// Left-folds a sequence of aggregates into one, charging to `phase`.
    /// Returns `None` for an empty sequence.
    pub fn fold(
        &mut self,
        phase: Phase,
        parts: impl IntoIterator<Item = Arc<V>>,
    ) -> Option<Arc<V>> {
        let mut iter = parts.into_iter();
        let first = iter.next()?;
        let mut acc = first;
        for part in iter {
            acc = self.merge(phase, &acc, &part);
        }
        Some(acc)
    }

    /// Records reuse of `n` memoized sub-computations.
    pub fn note_reused(&mut self, n: u64) {
        self.stats.reused += n;
    }

    /// Records reuse of one memoized aggregate, including the bytes the
    /// contraction phase reads to consume it.
    pub fn reuse(&mut self, v: &Arc<V>) {
        self.stats.reused += 1;
        self.stats.bytes_read += self.combiner.value_bytes(self.key, v);
    }

    /// Records `n` appended leaves.
    pub fn note_added(&mut self, n: u64) {
        self.stats.leaves_added += n;
    }

    /// Records `n` dropped leaves.
    pub fn note_removed(&mut self, n: u64) {
        self.stats.leaves_removed += n;
    }

    /// Modeled byte size of a partial aggregate (for space accounting).
    pub fn value_bytes(&self, v: &V) -> u64 {
        self.combiner.value_bytes(self.key, v)
    }
}

impl<K, V> fmt::Debug for TreeCx<'_, K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TreeCx")
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

/// Object-safe interface implemented by every self-adjusting contraction
/// tree.
///
/// A tree aggregates the per-split partial values of **one key**. Leaves are
/// ordered oldest-to-newest; the window only ever shrinks at the front and
/// grows at the back (arbitrary amounts for the variable-width trees).
///
/// Leaves are `Option<Arc<V>>`: a `None` leaf is a window slot in which this
/// key did not appear (relevant for the slot-addressed rotating tree; the
/// other trees simply skip absent leaves).
pub trait ContractionTree<K, V>: fmt::Debug + Send {
    /// Discards all state and rebuilds from `leaves` (the paper's *initial
    /// run*). All construction work is charged to the foreground phase.
    fn rebuild(&mut self, cx: &mut TreeCx<'_, K, V>, leaves: Vec<Option<Arc<V>>>);

    /// Slides the window: drops `remove` leaves from the front and appends
    /// `added` at the back, then propagates the change to the root.
    ///
    /// For the rotating tree `remove`/`added` are counted in bucket *slots*;
    /// for all other trees `None` additions are skipped and `remove` counts
    /// present leaves.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError`] if the slide violates the tree's window
    /// discipline (see the error variants); the tree is left unchanged.
    fn advance(
        &mut self,
        cx: &mut TreeCx<'_, K, V>,
        remove: usize,
        added: Vec<Option<Arc<V>>>,
    ) -> Result<(), TreeError>;

    /// Notifies the tree that the window slid by one slot *without touching
    /// this key*: the dropped slot and the added slot are both absent for
    /// it.
    ///
    /// Only the slot-addressed rotating tree has state to update (its victim
    /// pointer rotates); for every other tree this is a no-op because absent
    /// leaves are never stored.
    ///
    /// # Errors
    ///
    /// The rotating tree returns an error if its victim slot actually holds
    /// a leaf for this key — the host engine failed to report a removal.
    fn advance_absent(&mut self, _cx: &mut TreeCx<'_, K, V>) -> Result<(), TreeError> {
        Ok(())
    }

    /// Background pre-processing (§4 split mode): performs deferred and
    /// anticipatory merges off the critical path. A no-op for trees without
    /// split support.
    fn preprocess(&mut self, _cx: &mut TreeCx<'_, K, V>) {}

    /// The single aggregate equivalent to combining the whole window, or
    /// `None` for an empty window.
    ///
    /// In split mode this may force deferred merges conceptually; trees keep
    /// it cheap by returning the most recently produced equivalent root.
    fn root(&self) -> Option<Arc<V>>;

    /// The partial aggregates to hand the Reduce task. Usually one part
    /// (the root); the coalescing tree in split mode returns the previous
    /// root plus the fresh delta (§4.2). Empty if the window is empty.
    fn reduce_parts(&self) -> Vec<Arc<V>> {
        self.root().into_iter().collect()
    }

    /// Number of present leaves in the window.
    fn len(&self) -> usize;

    /// True if the window holds no present leaves.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current tree height in levels (a single leaf has height 1; an empty
    /// tree has height 0).
    fn height(&self) -> usize;

    /// Memoization footprint in bytes, per the combiner's `value_bytes`.
    fn memo_bytes(&self, combiner: &dyn Combiner<K, V>, key: &K) -> u64;

    /// Which family member this is.
    fn kind(&self) -> TreeKind;
}

/// Builds a fresh tree of the requested kind.
///
/// `capacity` is the number of bucket slots for [`TreeKind::Rotating`]
/// (ignored by the other kinds; pass 0).
pub fn build_tree<K, V>(kind: TreeKind, capacity: usize) -> Box<dyn ContractionTree<K, V>>
where
    K: Send + 'static,
    V: Send + Sync + 'static,
{
    match kind {
        TreeKind::Strawman => Box::new(StrawmanTree::new()),
        TreeKind::Folding => Box::new(FoldingTree::new()),
        TreeKind::RandomizedFolding => Box::new(RandomizedFoldingTree::new()),
        TreeKind::Rotating => Box::new(RotatingTree::new(capacity.max(1))),
        TreeKind::Coalescing => Box::new(CoalescingTree::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combiner::FnCombiner;

    #[test]
    fn kind_names_are_unique() {
        let names: std::collections::HashSet<_> = TreeKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), TreeKind::ALL.len());
    }

    #[test]
    fn split_support_matches_paper() {
        assert!(TreeKind::Rotating.supports_split_processing());
        assert!(TreeKind::Coalescing.supports_split_processing());
        assert!(!TreeKind::Folding.supports_split_processing());
        assert!(!TreeKind::RandomizedFolding.supports_split_processing());
        assert!(!TreeKind::Strawman.supports_split_processing());
    }

    #[test]
    fn cx_merge_counts_work() {
        let combiner = FnCombiner::new(|_: &u8, a: &u64, b: &u64| a + b);
        let mut stats = UpdateStats::default();
        let key = 0u8;
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        let out = cx.merge(Phase::Foreground, &Arc::new(1), &Arc::new(2));
        assert_eq!(*out, 3);
        assert_eq!(stats.foreground.merges, 1);
    }

    #[test]
    fn cx_fold_handles_empty_and_single() {
        let combiner = FnCombiner::new(|_: &u8, a: &u64, b: &u64| a + b);
        let mut stats = UpdateStats::default();
        let key = 0u8;
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        assert!(cx.fold(Phase::Foreground, Vec::new()).is_none());
        let one = cx.fold(Phase::Foreground, vec![Arc::new(9)]).unwrap();
        assert_eq!(*one, 9);
        assert_eq!(stats.foreground.merges, 0, "single element folds for free");
    }

    #[test]
    fn factory_builds_every_kind() {
        for kind in TreeKind::ALL {
            let tree = build_tree::<u8, u64>(kind, 4);
            assert_eq!(tree.kind(), kind);
            assert_eq!(tree.len(), 0);
            assert!(tree.is_empty());
            assert!(tree.root().is_none());
        }
    }
}
