//! The layered window-aggregation interface: the structure-agnostic
//! [`WindowAggregator`] contract shared by every sliding-window structure,
//! the [`ContractionTree`] extension for the self-adjusting tree family,
//! and the [`TreeKind`] factory used by the host engine.

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use crate::coalescing::CoalescingTree;
use crate::combiner::Combiner;
use crate::daba::{DabaLiteTree, DabaTree, TwoStackTree};
use crate::error::TreeError;
use crate::folding::FoldingTree;
use crate::randomized::RandomizedFoldingTree;
use crate::rotating::RotatingTree;
use crate::stats::{Phase, UpdateStats};
use crate::strawman::StrawmanTree;

/// Selects a window-aggregation structure: a member of the self-adjusting
/// contraction tree family, or one of the constant-time twin-stack
/// aggregators (DABA line).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TreeKind {
    /// §2.2 memoization-only baseline.
    Strawman,
    /// §3.1 folding tree for variable-width windows.
    Folding,
    /// §3.2 randomized (skip-list style) folding tree.
    RandomizedFolding,
    /// §4.1 rotating tree for fixed-width windows.
    Rotating,
    /// §4.2 coalescing tree for append-only windows.
    Coalescing,
    /// Amortized-O(1) twin-stack aggregator: back stack of raw leaves plus a
    /// running prefix aggregate, front stack of suffix aggregates, whole-back
    /// flip when the front runs dry.
    TwoStack,
    /// De-amortized twin-stack (DABA, arXiv 2009.13768): the flip is repaired
    /// incrementally, a bounded number of merges per operation, for
    /// worst-case O(1) in-order sliding-window aggregation.
    Daba,
    /// Memory-lean DABA: the front keeps only the partial sums (no raw
    /// leaves), halving the memoization footprint.
    DabaLite,
}

impl TreeKind {
    /// All kinds, in paper order; the constant-time aggregators follow the
    /// contraction tree family.
    pub const ALL: [TreeKind; 8] = [
        TreeKind::Strawman,
        TreeKind::Folding,
        TreeKind::RandomizedFolding,
        TreeKind::Rotating,
        TreeKind::Coalescing,
        TreeKind::TwoStack,
        TreeKind::Daba,
        TreeKind::DabaLite,
    ];

    /// Short lowercase name used in harness output.
    pub fn name(self) -> &'static str {
        match self {
            TreeKind::Strawman => "strawman",
            TreeKind::Folding => "folding",
            TreeKind::RandomizedFolding => "randomized",
            TreeKind::Rotating => "rotating",
            TreeKind::Coalescing => "coalescing",
            TreeKind::TwoStack => "twostack",
            TreeKind::Daba => "daba",
            TreeKind::DabaLite => "daba-lite",
        }
    }

    /// Whether this kind supports split (background/foreground) processing.
    pub fn supports_split_processing(self) -> bool {
        matches!(self, TreeKind::Rotating | TreeKind::Coalescing)
    }

    /// Whether this kind is a self-adjusting contraction tree (O(log n) per
    /// update, interior-node memo handles) as opposed to a constant-time
    /// twin-stack aggregator (partial-sum memoization).
    pub fn is_contraction_tree(self) -> bool {
        !self.is_constant_time()
    }

    /// Whether this kind performs O(1) merges per in-order window update
    /// (amortized for [`TreeKind::TwoStack`], worst-case for the DABA pair).
    pub fn is_constant_time(self) -> bool {
        matches!(
            self,
            TreeKind::TwoStack | TreeKind::Daba | TreeKind::DabaLite
        )
    }

    /// Whether this kind implements the interior bulk-splice operations
    /// ([`WindowAggregator::insert_at`]/[`WindowAggregator::evict_range`])
    /// natively. For the other kinds those methods return
    /// [`TreeError::SpliceUnsupported`] and the host engine falls back to a
    /// targeted rebuild.
    pub fn supports_splice(self) -> bool {
        matches!(
            self,
            TreeKind::Strawman | TreeKind::Folding | TreeKind::RandomizedFolding
        )
    }
}

impl fmt::Display for TreeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when a [`TreeKind`] fails to parse from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTreeKindError {
    input: String,
}

impl fmt::Display for ParseTreeKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown tree kind {:?} (expected one of: {})",
            self.input,
            TreeKind::ALL.map(TreeKind::name).join(", ")
        )
    }
}

impl std::error::Error for ParseTreeKindError {}

impl FromStr for TreeKind {
    type Err = ParseTreeKindError;

    /// Parses the `Display`/`name()` form of every kind, plus the spellings
    /// that show up in env vars and config files: case-insensitive, `_`
    /// treated as `-`, and the long aliases `randomized-folding`,
    /// `two-stack` and `dabalite`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.trim().to_ascii_lowercase().replace('_', "-");
        match norm.as_str() {
            "strawman" => Ok(TreeKind::Strawman),
            "folding" => Ok(TreeKind::Folding),
            "randomized" | "randomized-folding" => Ok(TreeKind::RandomizedFolding),
            "rotating" => Ok(TreeKind::Rotating),
            "coalescing" => Ok(TreeKind::Coalescing),
            "twostack" | "two-stack" => Ok(TreeKind::TwoStack),
            "daba" => Ok(TreeKind::Daba),
            "daba-lite" | "dabalite" => Ok(TreeKind::DabaLite),
            _ => Err(ParseTreeKindError {
                input: s.to_string(),
            }),
        }
    }
}

/// Per-operation context handed to a tree: the application combiner, the key
/// the tree aggregates, and the statistics accumulator.
///
/// All combiner invocations made by a tree flow through [`TreeCx::merge`] so
/// that every unit of work is attributed to the right [`Phase`].
pub struct TreeCx<'a, K, V> {
    combiner: &'a dyn Combiner<K, V>,
    key: &'a K,
    stats: &'a mut UpdateStats,
}

impl<'a, K, V> TreeCx<'a, K, V> {
    /// Bundles a combiner, key and statistics sink.
    pub fn new(combiner: &'a dyn Combiner<K, V>, key: &'a K, stats: &'a mut UpdateStats) -> Self {
        TreeCx {
            combiner,
            key,
            stats,
        }
    }

    /// The key this tree aggregates.
    pub fn key(&self) -> &K {
        self.key
    }

    /// Whether the application combiner is commutative.
    pub fn is_commutative(&self) -> bool {
        self.combiner.is_commutative()
    }

    /// Executes one combiner invocation, charging its cost to `phase` and
    /// recording the memoization bytes the fresh aggregate occupies.
    pub fn merge(&mut self, phase: Phase, a: &Arc<V>, b: &Arc<V>) -> Arc<V> {
        let cost = self.combiner.cost(self.key, a, b);
        self.stats.phase_mut(phase).record(cost);
        let out = Arc::new(self.combiner.combine(self.key, a, b));
        self.stats.bytes_written += self.combiner.value_bytes(self.key, &out);
        out
    }

    /// Left-folds a sequence of aggregates into one, charging to `phase`.
    /// Returns `None` for an empty sequence.
    pub fn fold(
        &mut self,
        phase: Phase,
        parts: impl IntoIterator<Item = Arc<V>>,
    ) -> Option<Arc<V>> {
        let mut iter = parts.into_iter();
        let first = iter.next()?;
        let mut acc = first;
        for part in iter {
            acc = self.merge(phase, &acc, &part);
        }
        Some(acc)
    }

    /// Records reuse of `n` memoized sub-computations.
    pub fn note_reused(&mut self, n: u64) {
        self.stats.reused += n;
    }

    /// Records reuse of one memoized aggregate, including the bytes the
    /// contraction phase reads to consume it.
    pub fn reuse(&mut self, v: &Arc<V>) {
        self.stats.reused += 1;
        self.stats.bytes_read += self.combiner.value_bytes(self.key, v);
    }

    /// Records `n` appended leaves.
    pub fn note_added(&mut self, n: u64) {
        self.stats.leaves_added += n;
    }

    /// Records `n` dropped leaves.
    pub fn note_removed(&mut self, n: u64) {
        self.stats.leaves_removed += n;
    }

    /// Modeled byte size of a partial aggregate (for space accounting).
    pub fn value_bytes(&self, v: &V) -> u64 {
        self.combiner.value_bytes(self.key, v)
    }
}

impl<K, V> fmt::Debug for TreeCx<'_, K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TreeCx")
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

/// Object-safe core contract implemented by every sliding-window
/// aggregation structure: insert/evict at the window edges, query an
/// equivalent root, and meter every combiner invocation deterministically
/// through [`TreeCx`] (feeding the engine's `WorkBreakdown`).
///
/// An aggregator holds the per-split partial values of **one key**. Leaves
/// are ordered oldest-to-newest; the window only ever shrinks at the front
/// and grows at the back (arbitrary amounts for the variable-width
/// structures). This layer makes **no** assumption about internal shape:
/// implementors may be contraction trees (interior-node memo handles,
/// O(log n) per update) or flat twin-stack aggregators (partial-sum
/// memoization, O(1) per update). Tree-shaped structure is exposed by the
/// [`ContractionTree`] extension trait.
///
/// Leaves are `Option<Arc<V>>`: a `None` leaf is a window slot in which this
/// key did not appear (relevant for the slot-addressed rotating tree; the
/// other structures simply skip absent leaves).
pub trait WindowAggregator<K, V>: fmt::Debug + Send {
    /// Discards all state and rebuilds from `leaves` (the paper's *initial
    /// run*). All construction work is charged to the foreground phase.
    fn rebuild(&mut self, cx: &mut TreeCx<'_, K, V>, leaves: Vec<Option<Arc<V>>>);

    /// Slides the window: drops `remove` leaves from the front and appends
    /// `added` at the back, then propagates the change to the root.
    ///
    /// For the rotating tree `remove`/`added` are counted in bucket *slots*;
    /// for all other trees `None` additions are skipped and `remove` counts
    /// present leaves.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError`] if the slide violates the tree's window
    /// discipline (see the error variants); the tree is left unchanged.
    fn advance(
        &mut self,
        cx: &mut TreeCx<'_, K, V>,
        remove: usize,
        added: Vec<Option<Arc<V>>>,
    ) -> Result<(), TreeError>;

    /// Notifies the tree that the window slid by one slot *without touching
    /// this key*: the dropped slot and the added slot are both absent for
    /// it.
    ///
    /// Only the slot-addressed rotating tree has state to update (its victim
    /// pointer rotates); for every other tree this is a no-op because absent
    /// leaves are never stored.
    ///
    /// # Errors
    ///
    /// The rotating tree returns an error if its victim slot actually holds
    /// a leaf for this key — the host engine failed to report a removal.
    fn advance_absent(&mut self, _cx: &mut TreeCx<'_, K, V>) -> Result<(), TreeError> {
        Ok(())
    }

    /// Splices `values` into the interior of the window so that the first
    /// inserted leaf becomes present-leaf `at` (0 = oldest; `at == len()`
    /// appends). Used for event-time late records: a straggler that belongs
    /// between leaves already aggregated is folded in at its event-time
    /// position instead of the window edge.
    ///
    /// The default declines with [`TreeError::SpliceUnsupported`]; the host
    /// engine then rebuilds the structure from the authoritative window
    /// contents, charging that work to its breakdown. Structures that can do
    /// better (the folding family, strawman) override it with a real range
    /// splice. A declined or out-of-range splice leaves the tree unchanged.
    ///
    /// # Errors
    ///
    /// [`TreeError::SpliceUnsupported`] if the structure has no native
    /// splice; [`TreeError::SpliceOutOfRange`] if `at > len()`.
    fn insert_at(
        &mut self,
        _cx: &mut TreeCx<'_, K, V>,
        _at: usize,
        _values: Vec<Arc<V>>,
    ) -> Result<(), TreeError> {
        Err(TreeError::SpliceUnsupported {
            kind: self.kind().name(),
        })
    }

    /// Evicts the contiguous range of present leaves `[at, at + count)` from
    /// the interior of the window in one bulk splice (0 = oldest;
    /// `at == 0` degenerates to a front eviction). The event-time engine
    /// uses this for bursty evictions and for retracting late-arrived spans.
    ///
    /// Defaults to [`TreeError::SpliceUnsupported`] exactly like
    /// [`WindowAggregator::insert_at`]; a declined or out-of-range splice
    /// leaves the tree unchanged.
    ///
    /// # Errors
    ///
    /// [`TreeError::SpliceUnsupported`] if the structure has no native
    /// splice; [`TreeError::SpliceOutOfRange`] if `at + count > len()`.
    fn evict_range(
        &mut self,
        _cx: &mut TreeCx<'_, K, V>,
        _at: usize,
        _count: usize,
    ) -> Result<(), TreeError> {
        Err(TreeError::SpliceUnsupported {
            kind: self.kind().name(),
        })
    }

    /// Background pre-processing (§4 split mode): performs deferred and
    /// anticipatory merges off the critical path. A no-op for trees without
    /// split support.
    fn preprocess(&mut self, _cx: &mut TreeCx<'_, K, V>) {}

    /// The single aggregate equivalent to combining the whole window, or
    /// `None` for an empty window.
    ///
    /// In split mode this may force deferred merges conceptually; trees keep
    /// it cheap by returning the most recently produced equivalent root.
    fn root(&self) -> Option<Arc<V>>;

    /// The partial aggregates to hand the Reduce task. Usually one part
    /// (the root); the coalescing tree in split mode returns the previous
    /// root plus the fresh delta (§4.2). Empty if the window is empty.
    fn reduce_parts(&self) -> Vec<Arc<V>> {
        self.root().into_iter().collect()
    }

    /// Number of present leaves in the window.
    fn len(&self) -> usize;

    /// True if the window holds no present leaves.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Memoization footprint in bytes, per the combiner's `value_bytes`.
    fn memo_bytes(&self, combiner: &dyn Combiner<K, V>, key: &K) -> u64;

    /// Which family member this is.
    fn kind(&self) -> TreeKind;

    /// Deep copy behind the object-safe interface.
    ///
    /// The copy shares leaf/aggregate allocations (everything is
    /// `Arc`-backed) but duplicates all structural state — slot layout,
    /// memo caches, generation counters, pending repairs — so that the
    /// clone and the original **meter identical work on identical future
    /// slides**. This is the checkpoint primitive: rebuilding from window
    /// contents via `rebuild` is answer-equivalent but not stats-canonical
    /// (the reconstructed shape reuses different nodes), so restore paths
    /// clone instead.
    fn boxed_clone(&self) -> Box<dyn WindowAggregator<K, V>>;
}

/// Extension contract for aggregators that really are self-adjusting
/// contraction trees: leaf-to-root merge structure with interior nodes that
/// memoize sub-window aggregates.
///
/// Everything the host engine needs lives in [`WindowAggregator`]; this
/// trait carries what only a tree can answer — its current height — and is
/// the hook for future per-level introspection. The constant-time twin-stack
/// aggregators ([`TreeKind::TwoStack`], [`TreeKind::Daba`],
/// [`TreeKind::DabaLite`]) deliberately do **not** implement it.
pub trait ContractionTree<K, V>: WindowAggregator<K, V> {
    /// Current tree height in levels (a single leaf has height 1; an empty
    /// tree has height 0).
    fn height(&self) -> usize;
}

/// Builds a fresh aggregator of the requested kind.
///
/// `capacity` is the number of bucket slots for [`TreeKind::Rotating`]
/// (ignored by the other kinds; pass 0).
pub fn build_tree<K, V>(kind: TreeKind, capacity: usize) -> Box<dyn WindowAggregator<K, V>>
where
    K: Send + 'static,
    V: Send + Sync + 'static,
{
    match kind {
        TreeKind::Strawman => Box::new(StrawmanTree::new()),
        TreeKind::Folding => Box::new(FoldingTree::new()),
        TreeKind::RandomizedFolding => Box::new(RandomizedFoldingTree::new()),
        TreeKind::Rotating => Box::new(RotatingTree::new(capacity.max(1))),
        TreeKind::Coalescing => Box::new(CoalescingTree::new()),
        TreeKind::TwoStack => Box::new(TwoStackTree::new()),
        TreeKind::Daba => Box::new(DabaTree::new()),
        TreeKind::DabaLite => Box::new(DabaLiteTree::new()),
    }
}

/// Like [`build_tree`], but restricted to the contraction-tree family, for
/// callers that need tree-only introspection such as
/// [`ContractionTree::height`].
///
/// # Panics
///
/// Panics if `kind` is a constant-time aggregator
/// (`kind.is_constant_time()`) — those have no tree shape to report.
pub fn build_contraction_tree<K, V>(
    kind: TreeKind,
    capacity: usize,
) -> Box<dyn ContractionTree<K, V>>
where
    K: Send + 'static,
    V: Send + Sync + 'static,
{
    match kind {
        TreeKind::Strawman => Box::new(StrawmanTree::new()),
        TreeKind::Folding => Box::new(FoldingTree::new()),
        TreeKind::RandomizedFolding => Box::new(RandomizedFoldingTree::new()),
        TreeKind::Rotating => Box::new(RotatingTree::new(capacity.max(1))),
        TreeKind::Coalescing => Box::new(CoalescingTree::new()),
        TreeKind::TwoStack | TreeKind::Daba | TreeKind::DabaLite => {
            panic!("{kind} is not a contraction tree; use build_tree")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combiner::FnCombiner;

    #[test]
    fn kind_names_are_unique() {
        let names: std::collections::HashSet<_> = TreeKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), TreeKind::ALL.len());
    }

    #[test]
    fn split_support_matches_paper() {
        assert!(TreeKind::Rotating.supports_split_processing());
        assert!(TreeKind::Coalescing.supports_split_processing());
        assert!(!TreeKind::Folding.supports_split_processing());
        assert!(!TreeKind::RandomizedFolding.supports_split_processing());
        assert!(!TreeKind::Strawman.supports_split_processing());
        assert!(!TreeKind::TwoStack.supports_split_processing());
        assert!(!TreeKind::Daba.supports_split_processing());
        assert!(!TreeKind::DabaLite.supports_split_processing());
    }

    #[test]
    fn layering_split_matches_family() {
        for kind in TreeKind::ALL {
            assert_ne!(
                kind.is_contraction_tree(),
                kind.is_constant_time(),
                "{kind} must be exactly one of the two layers"
            );
        }
        assert!(TreeKind::Folding.is_contraction_tree());
        assert!(TreeKind::Daba.is_constant_time());
    }

    #[test]
    fn every_kind_round_trips_through_display_and_fromstr() {
        for kind in TreeKind::ALL {
            let shown = kind.to_string();
            assert_eq!(shown, kind.name());
            let parsed: TreeKind = shown.parse().expect("Display form must parse");
            assert_eq!(parsed, kind, "round trip failed for {shown}");
            // Env/config spellings: upper case, underscores, whitespace.
            let env = format!("  {}  ", shown.to_ascii_uppercase().replace('-', "_"));
            assert_eq!(env.parse::<TreeKind>(), Ok(kind), "env form {env:?}");
        }
    }

    #[test]
    fn fromstr_accepts_long_aliases_and_rejects_garbage() {
        assert_eq!(
            "randomized-folding".parse::<TreeKind>(),
            Ok(TreeKind::RandomizedFolding)
        );
        assert_eq!("two-stack".parse::<TreeKind>(), Ok(TreeKind::TwoStack));
        assert_eq!("dabalite".parse::<TreeKind>(), Ok(TreeKind::DabaLite));
        let err = "splay".parse::<TreeKind>().unwrap_err();
        assert!(err.to_string().contains("splay"));
        assert!(err.to_string().contains("daba-lite"));
    }

    #[test]
    fn cx_merge_counts_work() {
        let combiner = FnCombiner::new(|_: &u8, a: &u64, b: &u64| a + b);
        let mut stats = UpdateStats::default();
        let key = 0u8;
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        let out = cx.merge(Phase::Foreground, &Arc::new(1), &Arc::new(2));
        assert_eq!(*out, 3);
        assert_eq!(stats.foreground.merges, 1);
    }

    #[test]
    fn cx_fold_handles_empty_and_single() {
        let combiner = FnCombiner::new(|_: &u8, a: &u64, b: &u64| a + b);
        let mut stats = UpdateStats::default();
        let key = 0u8;
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        assert!(cx.fold(Phase::Foreground, Vec::new()).is_none());
        let one = cx.fold(Phase::Foreground, vec![Arc::new(9)]).unwrap();
        assert_eq!(*one, 9);
        assert_eq!(stats.foreground.merges, 0, "single element folds for free");
    }

    #[test]
    fn splice_support_matches_kind_and_default_declines() {
        let combiner = FnCombiner::new(|_: &u8, a: &u64, b: &u64| a + b);
        for kind in TreeKind::ALL {
            let mut tree = build_tree::<u8, u64>(kind, 4);
            let mut stats = UpdateStats::default();
            let key = 0u8;
            let mut cx = TreeCx::new(&combiner, &key, &mut stats);
            let insert = tree.insert_at(&mut cx, 0, vec![Arc::new(1)]);
            let evict = tree.evict_range(&mut cx, 0, 0);
            if kind.supports_splice() {
                assert!(insert.is_ok(), "{kind} insert_at");
                assert!(evict.is_ok(), "{kind} evict_range");
            } else {
                let want = TreeError::SpliceUnsupported { kind: kind.name() };
                assert_eq!(insert, Err(want.clone()), "{kind} insert_at");
                assert_eq!(evict, Err(want), "{kind} evict_range");
                assert!(tree.is_empty(), "{kind} declined splice must not mutate");
            }
        }
    }

    #[test]
    fn factory_builds_every_kind() {
        for kind in TreeKind::ALL {
            let tree = build_tree::<u8, u64>(kind, 4);
            assert_eq!(tree.kind(), kind);
            assert_eq!(tree.len(), 0);
            assert!(tree.is_empty());
            assert!(tree.root().is_none());
        }
    }
}
