//! The rotating contraction tree (paper §4.1) for fixed-width sliding
//! windows, with optional split (background/foreground) processing.
//!
//! The window is divided into `N` *buckets* (each the pre-combined output of
//! `w` input splits). The buckets are the leaves of a balanced binary tree
//! laid out as a segment tree; when the window slides by one bucket the new
//! bucket replaces the oldest one in round-robin fashion and only the
//! `log2(N)` nodes on the leaf-to-root path are recombined.
//!
//! Because rotation reuses memoized aggregates that mix newer and older data
//! out of window order, the combiner must be **commutative** (in addition to
//! associative).
//!
//! Split processing: after a result is returned, [`RotatingTree::preprocess`]
//! (a) applies the deferred leaf insertion and path update in the
//! background, and (b) pre-combines all off-path sibling aggregates of the
//! *next* victim bucket into a single intermediate `I`. The next foreground
//! update is then a single combiner invocation (`new bucket ⊕ I`) — this is
//! the mechanism behind the paper's Figure 11 latency savings.

use std::fmt;
use std::sync::Arc;

use crate::combiner::Combiner;
use crate::error::TreeError;
use crate::stats::Phase;
use crate::tree::{ContractionTree, TreeCx, TreeKind, WindowAggregator};

/// Fixed-width rotating contraction tree. See the module docs.
pub struct RotatingTree<V> {
    /// Number of bucket slots in the window.
    capacity: usize,
    /// `capacity` rounded up to a power of two (segment-tree width).
    width: usize,
    /// Segment tree: `nodes[1]` is the root, leaves at `width..width+capacity`.
    /// `None` marks a slot in which this key is absent.
    nodes: Vec<Option<Arc<V>>>,
    /// Slots filled so far during the initial fill phase.
    filled: usize,
    /// Slot to be replaced by the next rotation once the window is full.
    next_victim: usize,
    /// Number of present (Some) leaves.
    present: usize,
    /// Pre-combined off-path aggregate `I` for the next insertion slot
    /// (outer `None` = not prepared; inner `None` = all siblings absent).
    precombined: Option<Option<Arc<V>>>,
    /// Leaf insertion deferred to the next background step: (slot, value).
    pending: Option<(usize, Option<Arc<V>>)>,
    /// Equivalent root produced by the split-mode shortcut while `pending`
    /// has not yet been applied to the tree.
    root_override: Option<Option<Arc<V>>>,
}

impl<V> RotatingTree<V> {
    /// Creates an empty rotating tree with `capacity` bucket slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "rotating tree needs at least one bucket slot");
        let width = capacity.next_power_of_two();
        RotatingTree {
            capacity,
            width,
            nodes: vec![None; 2 * width],
            filled: 0,
            next_victim: 0,
            present: 0,
            precombined: None,
            pending: None,
            root_override: None,
        }
    }

    /// Number of bucket slots in the window.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True once every slot has been filled at least once.
    pub fn is_full(&self) -> bool {
        self.filled >= self.capacity
    }

    /// The slot the next insertion will target.
    fn next_slot(&self) -> usize {
        if self.is_full() {
            self.next_victim
        } else {
            self.filled
        }
    }

    /// Adjusts the present-leaf count for replacing the current occupant of
    /// `slot` with `value`. Called exactly once per leaf replacement — at
    /// the moment the replacement is *decided* (eagerly in normal mode, at
    /// defer time in split mode) — so `present` is always the exact window
    /// occupancy and [`WindowAggregator::len`] never needs to reconstruct
    /// it from deferred state.
    fn count_replacement(&mut self, slot: usize, value: &Option<Arc<V>>) {
        if self.nodes[self.width + slot].is_some() {
            self.present -= 1;
        }
        if value.is_some() {
            self.present += 1;
        }
    }

    /// Writes `value` into `slot` and recombines the path to the root.
    fn set_leaf<K>(
        &mut self,
        cx: &mut TreeCx<'_, K, V>,
        phase: Phase,
        slot: usize,
        value: Option<Arc<V>>,
    ) where
        V: Send + Sync,
    {
        self.count_replacement(slot, &value);
        self.store_and_recombine(cx, phase, slot, value);
    }

    /// Stores `value` into `slot` and recombines the root path *without*
    /// touching the present count (the caller has already counted the
    /// replacement, possibly at defer time).
    fn store_and_recombine<K>(
        &mut self,
        cx: &mut TreeCx<'_, K, V>,
        phase: Phase,
        slot: usize,
        value: Option<Arc<V>>,
    ) where
        V: Send + Sync,
    {
        let mut node = self.width + slot;
        self.nodes[node] = value;
        while node > 1 {
            let sibling = node ^ 1;
            if let Some(s) = &self.nodes[sibling] {
                cx.reuse(s);
            }
            let parent = node / 2;
            self.nodes[parent] = match (&self.nodes[node], &self.nodes[sibling]) {
                (Some(a), Some(b)) => {
                    // Merge in left-right order for determinism; correctness
                    // relies on commutativity, checked at rotation time.
                    let (l, r) = if node < sibling { (a, b) } else { (b, a) };
                    Some(cx.merge(phase, l, r))
                }
                (Some(a), None) => Some(Arc::clone(a)),
                (None, Some(b)) => Some(Arc::clone(b)),
                (None, None) => None,
            };
            node = parent;
        }
    }

    /// Applies a deferred split-mode insertion, charging `phase`.
    fn flush_pending<K>(&mut self, cx: &mut TreeCx<'_, K, V>, phase: Phase)
    where
        V: Send + Sync,
    {
        if let Some((slot, value)) = self.pending.take() {
            // `present` was already adjusted when the rotation was deferred;
            // only the structural write and path update remain.
            self.store_and_recombine(cx, phase, slot, value);
        }
        self.root_override = None;
    }

    /// Pre-combines the off-path siblings of `slot` bottom-up.
    fn combine_off_path<K>(
        &mut self,
        cx: &mut TreeCx<'_, K, V>,
        phase: Phase,
        slot: usize,
    ) -> Option<Arc<V>>
    where
        V: Send + Sync,
    {
        let mut node = self.width + slot;
        let mut acc: Option<Arc<V>> = None;
        while node > 1 {
            let sibling = node ^ 1;
            if let Some(s) = &self.nodes[sibling] {
                cx.reuse(s);
                acc = Some(match acc {
                    Some(a) => cx.merge(phase, &a, s),
                    None => Arc::clone(s),
                });
            }
            node /= 2;
        }
        acc
    }

    /// Performs one rotation (or fill) with `value` in normal mode.
    fn insert<K>(&mut self, cx: &mut TreeCx<'_, K, V>, value: Option<Arc<V>>)
    where
        V: Send + Sync,
    {
        let slot = self.next_slot();
        let was_full = self.is_full();
        self.set_leaf(cx, Phase::Foreground, slot, value);
        if was_full {
            self.next_victim = (self.next_victim + 1) % self.capacity;
        } else {
            self.filled += 1;
        }
        self.precombined = None;
    }
}

impl<V> fmt::Debug for RotatingTree<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RotatingTree")
            .field("capacity", &self.capacity)
            .field("filled", &self.filled)
            .field("present", &self.present)
            .field("next_victim", &self.next_victim)
            .field("pending", &self.pending.is_some())
            .finish()
    }
}

impl<V> Clone for RotatingTree<V> {
    fn clone(&self) -> Self {
        RotatingTree {
            capacity: self.capacity,
            width: self.width,
            nodes: self.nodes.clone(),
            filled: self.filled,
            next_victim: self.next_victim,
            present: self.present,
            precombined: self.precombined.clone(),
            pending: self.pending.clone(),
            root_override: self.root_override.clone(),
        }
    }
}

impl<K, V> WindowAggregator<K, V> for RotatingTree<V>
where
    K: Send + 'static,
    V: Send + Sync + 'static,
{
    fn boxed_clone(&self) -> Box<dyn WindowAggregator<K, V>> {
        Box::new(self.clone())
    }

    fn rebuild(&mut self, cx: &mut TreeCx<'_, K, V>, leaves: Vec<Option<Arc<V>>>) {
        let capacity = self.capacity.max(leaves.len());
        *self = RotatingTree::new(capacity);
        cx.note_added(leaves.iter().filter(|l| l.is_some()).count() as u64);
        // Bottom-up construction (paper §4.1 initial run: buckets combined
        // "in pairs hierarchically"): exactly one merge per internal node
        // with two present children, instead of one path update per leaf.
        self.filled = leaves.len();
        self.present = leaves.iter().filter(|l| l.is_some()).count();
        for (slot, value) in leaves.into_iter().enumerate() {
            self.nodes[self.width + slot] = value;
        }
        for node in (1..self.width).rev() {
            self.nodes[node] = match (&self.nodes[2 * node], &self.nodes[2 * node + 1]) {
                (Some(a), Some(b)) => Some(cx.merge(Phase::Foreground, a, b)),
                (Some(a), None) => Some(Arc::clone(a)),
                (None, Some(b)) => Some(Arc::clone(b)),
                (None, None) => None,
            };
        }
    }

    fn advance(
        &mut self,
        cx: &mut TreeCx<'_, K, V>,
        remove: usize,
        added: Vec<Option<Arc<V>>>,
    ) -> Result<(), TreeError> {
        if !self.is_full() {
            // Fill phase: nothing may be removed yet.
            if remove != 0 {
                return Err(TreeError::FixedWidthViolation {
                    removed: remove,
                    added: added.len(),
                });
            }
            if self.filled + added.len() > self.capacity {
                return Err(TreeError::CapacityExceeded {
                    capacity: self.capacity,
                    attempted: self.filled + added.len(),
                });
            }
            cx.note_added(added.iter().filter(|l| l.is_some()).count() as u64);
            for value in added {
                self.insert(cx, value);
            }
            return Ok(());
        }

        if remove != added.len() {
            return Err(TreeError::FixedWidthViolation {
                removed: remove,
                added: added.len(),
            });
        }
        if !cx.is_commutative() {
            return Err(TreeError::CombinerNotCommutative);
        }
        cx.note_removed(remove as u64);
        cx.note_added(added.iter().filter(|l| l.is_some()).count() as u64);

        let mut added = added.into_iter();
        // Split-mode shortcut: a single rotation with a prepared off-path
        // aggregate needs one foreground merge; the structural update is
        // deferred to the next background step.
        if remove == 1 && self.pending.is_none() {
            if let Some(off_path) = self.precombined.take() {
                let value = added.next().expect("remove == added.len() == 1");
                let root = match (&value, &off_path) {
                    (Some(v), Some(i)) => Some(cx.merge(Phase::Foreground, v, i)),
                    (Some(v), None) => Some(Arc::clone(v)),
                    (None, Some(i)) => Some(Arc::clone(i)),
                    (None, None) => None,
                };
                self.root_override = Some(root);
                // Count the replacement now, not at flush time: `present` is
                // always the exact occupancy and `len` needs no deferred
                // reconstruction (which could underflow on a pending removal
                // against an absent slot).
                self.count_replacement(self.next_victim, &value);
                self.pending = Some((self.next_victim, value));
                // The victim rotates now so a subsequent advance targets the
                // right slot.
                self.next_victim = (self.next_victim + 1) % self.capacity;
                return Ok(());
            }
        }

        // Normal mode: apply rotations eagerly on the foreground path.
        self.flush_pending(cx, Phase::Foreground);
        for value in added {
            self.insert(cx, value);
        }
        Ok(())
    }

    fn advance_absent(&mut self, cx: &mut TreeCx<'_, K, V>) -> Result<(), TreeError> {
        if !self.is_full() {
            // During fill the slot is simply consumed while staying absent.
            self.insert(cx, None);
            return Ok(());
        }
        // The rotation must not drop a present leaf silently; the pending
        // slot (if any) is a *different*, already-rotated slot and can stay
        // deferred.
        if self.nodes[self.width + self.next_victim].is_some() {
            return Err(TreeError::FixedWidthViolation {
                removed: 1,
                added: 0,
            });
        }
        self.next_victim = (self.next_victim + 1) % self.capacity;
        // The prepared off-path aggregate targeted the old victim slot.
        self.precombined = None;
        Ok(())
    }

    fn preprocess(&mut self, cx: &mut TreeCx<'_, K, V>) {
        // Background step one: apply the deferred insertion.
        self.flush_pending(cx, Phase::Background);
        // Background step two: pre-combine the off-path aggregate for the
        // next insertion slot.
        let slot = self.next_slot();
        let off_path = self.combine_off_path(cx, Phase::Background, slot);
        self.precombined = Some(off_path);
    }

    fn root(&self) -> Option<Arc<V>> {
        if let Some(root) = &self.root_override {
            return root.clone();
        }
        self.nodes[1].clone()
    }

    fn len(&self) -> usize {
        // `present` is adjusted eagerly at the moment each replacement is
        // decided — including split-mode rotations whose structural write is
        // still deferred in `pending` — so it is always the exact occupancy.
        // The old deferred reconstruction here could underflow (and in
        // release builds silently clamp) on a pending removal against an
        // absent slot; that state is now unrepresentable.
        self.present
    }

    fn memo_bytes(&self, combiner: &dyn Combiner<K, V>, key: &K) -> u64 {
        let mut bytes = 0;
        for (i, node) in self.nodes.iter().enumerate().skip(1) {
            let Some(v) = node else { continue };
            let pass_through = i < self.width && {
                [self.nodes.get(2 * i), self.nodes.get(2 * i + 1)]
                    .into_iter()
                    .flatten()
                    .flatten()
                    .any(|c| Arc::ptr_eq(c, v))
            };
            if !pass_through {
                bytes += combiner.value_bytes(key, v);
            }
        }
        if let Some(Some(i)) = &self.precombined {
            bytes += combiner.value_bytes(key, i);
        }
        bytes
    }

    fn kind(&self) -> TreeKind {
        TreeKind::Rotating
    }
}

impl<K, V> ContractionTree<K, V> for RotatingTree<V>
where
    K: Send + 'static,
    V: Send + Sync + 'static,
{
    fn height(&self) -> usize {
        if WindowAggregator::<K, V>::is_empty(self) {
            0
        } else {
            usize::try_from(self.width.trailing_zeros()).unwrap() + 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combiner::FnCombiner;
    use crate::stats::UpdateStats;

    fn sum_combiner() -> FnCombiner<impl Fn(&u8, &u64, &u64) -> u64> {
        FnCombiner::new(|_: &u8, a: &u64, b: &u64| a + b)
    }

    fn leaves(values: &[u64]) -> Vec<Option<Arc<u64>>> {
        values.iter().map(|v| Some(Arc::new(*v))).collect()
    }

    fn root_of(tree: &RotatingTree<u64>) -> Option<u64> {
        WindowAggregator::<u8, u64>::root(tree).map(|v| *v)
    }

    #[test]
    fn fill_then_rotate_matches_reference() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        let mut tree = RotatingTree::new(4);
        tree.rebuild(&mut cx, leaves(&[1, 2, 3, 4]));
        assert_eq!(root_of(&tree), Some(10));
        assert!(tree.is_full());

        // Slide by one bucket: 1 drops out, 5 comes in.
        tree.advance(&mut cx, 1, leaves(&[5])).unwrap();
        assert_eq!(root_of(&tree), Some(2 + 3 + 4 + 5));
        // Slide again: 2 drops out.
        tree.advance(&mut cx, 1, leaves(&[6])).unwrap();
        assert_eq!(root_of(&tree), Some(3 + 4 + 5 + 6));
    }

    #[test]
    fn rotation_is_logarithmic() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        let mut tree = RotatingTree::new(256);
        tree.rebuild(&mut cx, leaves(&(0..256).collect::<Vec<_>>()));

        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        tree.advance(&mut cx, 1, leaves(&[999])).unwrap();
        assert_eq!(root_of(&tree), Some((1..256).sum::<u64>() + 999));
        assert!(
            stats.foreground.merges <= 8,
            "merges = {}",
            stats.foreground.merges
        );
    }

    #[test]
    fn split_mode_foreground_is_one_merge() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        let mut tree = RotatingTree::new(64);
        tree.rebuild(&mut cx, leaves(&(0..64).collect::<Vec<_>>()));

        // Background: prepare I for the next victim (slot 0).
        let mut bg_stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut bg_stats);
        tree.preprocess(&mut cx);
        assert!(bg_stats.background.merges > 0);
        assert_eq!(bg_stats.foreground.merges, 0);

        // Foreground: a single merge produces the new root.
        let mut fg_stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut fg_stats);
        tree.advance(&mut cx, 1, leaves(&[1000])).unwrap();
        assert_eq!(fg_stats.foreground.merges, 1);
        assert_eq!(root_of(&tree), Some((1..64).sum::<u64>() + 1000));

        // The deferred insertion lands in the next background step and the
        // root stays correct.
        let mut bg2 = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut bg2);
        tree.preprocess(&mut cx);
        assert!(bg2.background.merges > 0);
        assert_eq!(root_of(&tree), Some((1..64).sum::<u64>() + 1000));
    }

    #[test]
    fn split_mode_repeated_slides_stay_correct() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut tree = RotatingTree::new(8);
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        tree.rebuild(&mut cx, leaves(&(0..8).collect::<Vec<_>>()));

        let mut reference: std::collections::VecDeque<u64> = (0..8).collect();
        for i in 0..30u64 {
            let mut stats = UpdateStats::default();
            let mut cx = TreeCx::new(&combiner, &key, &mut stats);
            tree.preprocess(&mut cx);

            let value = 100 + i;
            reference.pop_front();
            reference.push_back(value);
            let mut stats = UpdateStats::default();
            let mut cx = TreeCx::new(&combiner, &key, &mut stats);
            tree.advance(&mut cx, 1, leaves(&[value])).unwrap();
            assert_eq!(
                root_of(&tree),
                Some(reference.iter().sum::<u64>()),
                "slide {i}"
            );
        }
    }

    #[test]
    fn absent_buckets_are_handled() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        let mut tree = RotatingTree::new(4);
        tree.rebuild(
            &mut cx,
            vec![Some(Arc::new(1)), None, Some(Arc::new(3)), None],
        );
        assert_eq!(root_of(&tree), Some(4));
        assert_eq!(WindowAggregator::<u8, u64>::len(&tree), 2);

        // Rotate an absent bucket in over a present one (slot 0).
        tree.advance(&mut cx, 1, vec![None]).unwrap();
        assert_eq!(root_of(&tree), Some(3));
        // Rotate a present bucket over an absent one (slot 1).
        tree.advance(&mut cx, 1, leaves(&[7])).unwrap();
        assert_eq!(root_of(&tree), Some(10));
    }

    #[test]
    fn absent_buckets_in_split_mode() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        let mut tree = RotatingTree::new(4);
        tree.rebuild(&mut cx, leaves(&[1, 2, 3, 4]));
        tree.preprocess(&mut cx);
        tree.advance(&mut cx, 1, vec![None]).unwrap();
        assert_eq!(root_of(&tree), Some(2 + 3 + 4));
        tree.preprocess(&mut cx);
        assert_eq!(root_of(&tree), Some(2 + 3 + 4));
        assert_eq!(WindowAggregator::<u8, u64>::len(&tree), 3);
    }

    #[test]
    fn non_commutative_combiner_is_rejected_on_rotation() {
        let combiner = FnCombiner::non_commutative(|_: &u8, a: &u64, b: &u64| a * 10 + b);
        let key = 0u8;
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        let mut tree = RotatingTree::new(2);
        tree.rebuild(&mut cx, leaves(&[1, 2]));
        let err = tree.advance(&mut cx, 1, leaves(&[3])).unwrap_err();
        assert_eq!(err, TreeError::CombinerNotCommutative);
    }

    #[test]
    fn fixed_width_violations_are_rejected() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        let mut tree = RotatingTree::new(4);
        tree.rebuild(&mut cx, leaves(&[1, 2, 3, 4]));
        assert!(matches!(
            tree.advance(&mut cx, 2, leaves(&[9])),
            Err(TreeError::FixedWidthViolation {
                removed: 2,
                added: 1
            })
        ));
        // Overfilling during the fill phase is also rejected.
        let mut tree = RotatingTree::new(2);
        tree.rebuild(&mut cx, leaves(&[1]));
        assert!(matches!(
            tree.advance(&mut cx, 0, leaves(&[2, 3])),
            Err(TreeError::CapacityExceeded {
                capacity: 2,
                attempted: 3
            })
        ));
    }

    #[test]
    fn advance_absent_rotates_the_victim_pointer() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        let mut tree = RotatingTree::new(3);
        // Key present only in bucket 1 of 3.
        tree.rebuild(&mut cx, vec![None, Some(Arc::new(7)), None]);
        assert_eq!(root_of(&tree), Some(7));

        // Window slides past slot 0 (absent for this key): zero merges.
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        WindowAggregator::<u8, u64>::advance_absent(&mut tree, &mut cx).unwrap();
        assert_eq!(stats.total_merges(), 0);
        assert_eq!(root_of(&tree), Some(7));

        // Next slide drops slot 1, where the key IS present: a silent
        // absent-rotation must be rejected...
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        assert!(WindowAggregator::<u8, u64>::advance_absent(&mut tree, &mut cx).is_err());
        // ...and the explicit removal works.
        tree.advance(&mut cx, 1, vec![None]).unwrap();
        assert_eq!(root_of(&tree), None);
    }

    #[test]
    fn pending_removal_of_an_absent_slot_keeps_len_in_range() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        let mut tree = RotatingTree::new(4);
        // Slot 0 — the first rotation victim — is absent for this key.
        tree.rebuild(
            &mut cx,
            vec![
                None,
                Some(Arc::new(2)),
                Some(Arc::new(3)),
                Some(Arc::new(4)),
            ],
        );
        tree.preprocess(&mut cx);
        // The split-mode slide defers a removal (`None`) against the absent
        // slot; the deferred adjustment must not drive `len` below zero (a
        // raw `as usize` cast here used to wrap to ~2^64).
        tree.advance(&mut cx, 1, vec![None]).unwrap();
        let len = WindowAggregator::<u8, u64>::len(&tree);
        assert!(len <= tree.capacity(), "len {len} wrapped past capacity");
        assert_eq!(len, 3);
        assert_eq!(root_of(&tree), Some(9));
        // Flushing the deferred insertion keeps the count stable.
        tree.preprocess(&mut cx);
        assert_eq!(WindowAggregator::<u8, u64>::len(&tree), 3);
        assert_eq!(root_of(&tree), Some(9));
    }

    /// Regression for the old release-mode clamp: `len` used to reconstruct
    /// the occupancy from the deferred `pending` entry with
    /// `checked_add_signed(..).unwrap_or(0)`, which a debug assert guarded
    /// and release builds silently clamped to zero. The count is now
    /// adjusted eagerly at defer time, so this drives split-mode slides
    /// through every present/absent replacement combination — including the
    /// pending-removal-of-an-absent-slot case that used to underflow — and
    /// demands the *exact* occupancy (not just "in range") at every step,
    /// both while a write is deferred and after it flushes. No debug assert
    /// is involved: the assertions here hold in release builds too.
    #[test]
    fn split_mode_len_is_exact_at_every_deferred_step() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        let capacity = 4;
        let mut tree = RotatingTree::new(capacity);
        // Start with a mixed window: slots 0 and 2 absent.
        let initial = [None, Some(1), None, Some(3)];
        let mut reference: std::collections::VecDeque<Option<u64>> =
            initial.iter().copied().collect();
        tree.rebuild(&mut cx, initial.iter().map(|v| v.map(Arc::new)).collect());

        // A fixed pattern that pairs every (old, new) presence combination,
        // in particular (absent, absent): a pending removal against an
        // absent slot.
        let pattern: [Option<u64>; 8] = [
            None,    // replaces absent slot 0: the old underflow case
            Some(5), // replaces present slot 1
            Some(6), // replaces absent slot 2
            None,    // replaces present slot 3
            None,    // replaces None inserted above
            None,    // replaces Some(5)
            Some(7), // replaces Some(6)
            Some(8), // replaces None
        ];
        for (step, value) in pattern.into_iter().enumerate() {
            let mut stats = UpdateStats::default();
            let mut cx = TreeCx::new(&combiner, &key, &mut stats);
            // Prepare the off-path aggregate so the next advance defers.
            tree.preprocess(&mut cx);
            tree.advance(&mut cx, 1, vec![value.map(Arc::new)]).unwrap();
            reference.pop_front();
            reference.push_back(value);
            let expected = reference.iter().flatten().count();
            // While the structural write is still deferred...
            assert_eq!(
                WindowAggregator::<u8, u64>::len(&tree),
                expected,
                "step {step}: deferred len"
            );
            // ...and after it lands.
            tree.preprocess(&mut cx);
            assert_eq!(
                WindowAggregator::<u8, u64>::len(&tree),
                expected,
                "step {step}: flushed len"
            );
            let want: Option<u64> = reference.iter().flatten().copied().reduce(|a, b| a + b);
            assert_eq!(root_of(&tree), want, "step {step}: root");
        }
    }

    #[test]
    fn non_power_of_two_capacity_works() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        let mut tree = RotatingTree::new(5);
        tree.rebuild(&mut cx, leaves(&[1, 2, 3, 4, 5]));
        assert_eq!(root_of(&tree), Some(15));
        for i in 0..12u64 {
            tree.advance(&mut cx, 1, leaves(&[10 + i])).unwrap();
        }
        // Window is now the last 5 inserted: 17..=21.
        assert_eq!(root_of(&tree), Some(17 + 18 + 19 + 20 + 21));
    }
}
