//! Multi-level contraction trees for data-flow query pipelines (paper §5).
//!
//! A declarative query (Pig-style) compiles to a pipeline of MapReduce
//! jobs. Only the *first* stage consumes the sliding window directly, so
//! only it can exploit the window-specific self-adjusting trees; from the
//! second stage onwards, input changes land at arbitrary positions, and
//! Slider falls back to the strawman contraction tree (whose in-place leaf
//! replacement, [`crate::StrawmanTree::replace_leaf`], confines recompute to
//! one root path).
//!
//! This module captures that per-stage policy; the pipeline executor in the
//! `slider-mapreduce` crate consumes it.

use crate::tree::TreeKind;

/// Selects the tree kind for pipeline stage `stage` (0-based) when the
/// window-facing first stage uses `first_stage`.
///
/// ```
/// use slider_core::{stage_tree_kind, TreeKind};
/// assert_eq!(stage_tree_kind(TreeKind::Rotating, 0), TreeKind::Rotating);
/// assert_eq!(stage_tree_kind(TreeKind::Rotating, 3), TreeKind::Strawman);
/// ```
pub fn stage_tree_kind(first_stage: TreeKind, stage: usize) -> TreeKind {
    if stage == 0 {
        first_stage
    } else {
        TreeKind::Strawman
    }
}

/// A per-stage tree plan for a multi-job pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiLevelPlan {
    first_stage: TreeKind,
    stages: usize,
}

impl MultiLevelPlan {
    /// Plans a pipeline of `stages` jobs whose first stage slides with
    /// `first_stage` trees.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is zero — a pipeline has at least one job.
    pub fn new(first_stage: TreeKind, stages: usize) -> Self {
        assert!(stages > 0, "a pipeline needs at least one stage");
        MultiLevelPlan {
            first_stage,
            stages,
        }
    }

    /// Number of jobs in the pipeline.
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// The window-facing tree kind.
    pub fn first_stage(&self) -> TreeKind {
        self.first_stage
    }

    /// Tree kind for the given 0-based stage.
    ///
    /// # Panics
    ///
    /// Panics if `stage >= self.stages()`.
    pub fn kind_for_stage(&self, stage: usize) -> TreeKind {
        assert!(stage < self.stages, "stage {stage} out of range");
        stage_tree_kind(self.first_stage, stage)
    }

    /// Iterates over `(stage, kind)` pairs in pipeline order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, TreeKind)> + '_ {
        (0..self.stages).map(|s| (s, self.kind_for_stage(s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_stage_uses_window_tree() {
        let plan = MultiLevelPlan::new(TreeKind::Folding, 4);
        assert_eq!(plan.kind_for_stage(0), TreeKind::Folding);
        for stage in 1..4 {
            assert_eq!(plan.kind_for_stage(stage), TreeKind::Strawman);
        }
    }

    #[test]
    fn iter_covers_all_stages() {
        let plan = MultiLevelPlan::new(TreeKind::Coalescing, 3);
        let kinds: Vec<_> = plan.iter().collect();
        assert_eq!(
            kinds,
            vec![
                (0, TreeKind::Coalescing),
                (1, TreeKind::Strawman),
                (2, TreeKind::Strawman)
            ]
        );
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stage_pipeline_panics() {
        let _ = MultiLevelPlan::new(TreeKind::Folding, 0);
    }
}
