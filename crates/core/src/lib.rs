//! # slider-core — self-adjusting contraction trees
//!
//! This crate implements the primary contribution of *"Slider: Incremental
//! Sliding Window Analytics"* (Bhatotia, Acar, Junqueira, Rodrigues —
//! Middleware 2014): a family of **self-adjusting contraction trees** that
//! structure the reduce side of a data-parallel computation as a shallow,
//! balanced dependence graph through which sliding-window input changes are
//! propagated in time proportional to the *delta*, not the window.
//!
//! The trees operate on *partial aggregates* produced by an associative
//! [`Combiner`]. A final [`Reducer`] turns the tree root into the job output.
//!
//! ## Tree family
//!
//! | Type | Paper section | Window variant |
//! |------|---------------|----------------|
//! | [`StrawmanTree`] | §2.2 | any — memoization-only baseline |
//! | [`FoldingTree`] | §3.1 | variable-width (arbitrary shrink/grow) |
//! | [`RandomizedFoldingTree`] | §3.2 | variable-width with drastic resizes |
//! | [`RotatingTree`] | §4.1 | fixed-width, with split processing |
//! | [`CoalescingTree`] | §4.2 | append-only, with split processing |
//!
//! ## Constant-time aggregators
//!
//! Alongside the O(log n) contraction trees, the crate provides the
//! twin-stack family for in-order FIFO windows (after Tangwongsan & Hirzel,
//! arXiv 2009.13768), which memoizes running partial sums instead of
//! interior tree nodes:
//!
//! | Type | Per-update merges | Notes |
//! |------|-------------------|-------|
//! | [`TwoStackTree`] | amortized O(1) | whole-back flip when front runs dry |
//! | [`DabaTree`] | worst-case O(1)\* | incrementally repaired flip |
//! | [`DabaLiteTree`] | worst-case O(1)\* | memory-lean: partial sums only |
//!
//! \* worst-case for balanced in-order slides; amortized under adversarial
//! insert floods (see the `daba` module docs).
//!
//! All structures implement the object-safe [`WindowAggregator`] contract
//! so a host engine (see the `slider-mapreduce` crate) can drive them
//! uniformly; tree-shaped structures additionally implement the
//! [`ContractionTree`] extension. The [`TreeKind`] enum plus [`build_tree`]
//! provide a factory, and `TreeKind` parses from its `Display` form for
//! env/config selection.
//!
//! ## Example
//!
//! ```
//! use slider_core::{build_tree, FnCombiner, TreeCx, TreeKind, UpdateStats};
//! use std::sync::Arc;
//!
//! // Word-count style combiner: partial aggregates are u64 counts.
//! let combiner = FnCombiner::new(|_k: &String, a: &u64, b: &u64| a + b);
//! let mut tree = build_tree::<String, u64>(TreeKind::Folding, 0);
//! let mut stats = UpdateStats::default();
//! let key = "the".to_string();
//! let mut cx = TreeCx::new(&combiner, &key, &mut stats);
//!
//! // Initial run: the window holds four splits, each contributing a count.
//! tree.rebuild(&mut cx, vec![Some(Arc::new(1)), Some(Arc::new(2)),
//!                            Some(Arc::new(3)), Some(Arc::new(4))]);
//! assert_eq!(*tree.root().unwrap(), 10);
//!
//! // The window slides: drop the oldest split, append one with count 5.
//! tree.advance(&mut cx, 1, vec![Some(Arc::new(5))])?;
//! assert_eq!(*tree.root().unwrap(), 14);
//! # Ok::<(), slider_core::TreeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Tree arithmetic mixes u64 leaf counts with usize indexing; every
// narrowing must be explicit and checked, never a silent `as` truncation.
#![deny(clippy::cast_possible_truncation)]

mod approx;
mod coalescing;
mod combiner;
mod daba;
mod dgim;
mod error;
mod folding;
mod hash;
mod memo;
mod multilevel;
mod randomized;
mod rotating;
mod stats;
mod strawman;
mod tree;

pub use approx::KeyedDistinctCounter;
pub use coalescing::CoalescingTree;
pub use combiner::{Combiner, FnCombiner, Reducer};
pub use daba::{DabaLiteTree, DabaTree, TwoStackTree};
pub use dgim::{CounterSnapshot, SlidingWindowCounter};
pub use error::TreeError;
pub use folding::FoldingTree;
pub use hash::{hash_one, hash_pair, StableHasher};
pub use memo::MemoCache;
pub use multilevel::{stage_tree_kind, MultiLevelPlan};
pub use randomized::RandomizedFoldingTree;
pub use rotating::RotatingTree;
pub use stats::{Phase, PhaseWork, UpdateStats};
pub use strawman::StrawmanTree;
pub use tree::{
    build_contraction_tree, build_tree, ContractionTree, ParseTreeKindError, TreeCx, TreeKind,
    WindowAggregator,
};
