//! The [`Combiner`] and [`Reducer`] traits: the only application code the
//! contraction trees ever see.
//!
//! Slider's transparency guarantee (§1 of the paper) rests on the fact that
//! MapReduce applications already provide an associative `Combiner` function;
//! the trees reuse that function to break a monolithic Reduce into a balanced
//! graph of small sub-computations. Nothing about *incrementality* leaks into
//! application code.

/// An associative merge of two partial aggregates for a key.
///
/// This corresponds to the MapReduce Combiner function (§2.2). The contract:
///
/// * `combine` must be **associative**: `c(c(a,b),d) == c(a,c(b,d))`.
/// * If [`Combiner::is_commutative`] returns `true` it must also be
///   **commutative**; the rotating contraction tree (§4.1) requires this
///   because bucket rotation merges partial aggregates out of window order.
///
/// The `cost` and `value_bytes` hooks feed the work/space accounting used to
/// reproduce the paper's *work* metric and Figure 13's space overheads; they
/// have sensible defaults for unit-cost combiners.
pub trait Combiner<K, V>: Send + Sync {
    /// Merges two partial aggregates for `key`. Must be associative.
    fn combine(&self, key: &K, a: &V, b: &V) -> V;

    /// Whether [`Combiner::combine`] is commutative. Defaults to `true`,
    /// which held for every combiner the paper's authors encountered.
    fn is_commutative(&self) -> bool {
        true
    }

    /// Modeled cost of `combine(key, a, b)` in abstract work units.
    fn cost(&self, _key: &K, _a: &V, _b: &V) -> u64 {
        1
    }

    /// Modeled memoization footprint of a partial aggregate, in bytes.
    fn value_bytes(&self, _key: &K, _v: &V) -> u64 {
        16
    }
}

/// The final reduction from contraction-tree roots to the job output.
///
/// `parts` usually holds a single tree root; under split processing
/// (§4.2) the coalescing tree hands the Reduce task the *union* of the
/// previous root and the freshly combined delta, so implementations must
/// accept one **or more** parts and treat them as an unordered multiset of
/// partial aggregates.
pub trait Reducer<K, V, O>: Send + Sync {
    /// Produces the final output for `key` from partial aggregates.
    fn reduce(&self, key: &K, parts: &[&V]) -> O;

    /// Modeled cost of the reduction in abstract work units.
    fn cost(&self, _key: &K, parts: &[&V]) -> u64 {
        parts.len() as u64
    }
}

/// Adapts a plain closure into a [`Combiner`] with unit costs.
///
/// Convenient for tests, examples and micro-benchmarks:
///
/// ```
/// use slider_core::{Combiner, FnCombiner};
/// let c = FnCombiner::new(|_k: &u32, a: &i64, b: &i64| a + b);
/// assert_eq!(c.combine(&0, &2, &3), 5);
/// ```
#[derive(Debug, Clone)]
pub struct FnCombiner<F> {
    f: F,
    commutative: bool,
}

impl<F> FnCombiner<F> {
    /// Wraps `f` as a commutative combiner.
    pub fn new(f: F) -> Self {
        FnCombiner {
            f,
            commutative: true,
        }
    }

    /// Wraps `f` as an associative but non-commutative combiner.
    pub fn non_commutative(f: F) -> Self {
        FnCombiner {
            f,
            commutative: false,
        }
    }
}

impl<K, V, F> Combiner<K, V> for FnCombiner<F>
where
    F: Fn(&K, &V, &V) -> V + Send + Sync,
{
    fn combine(&self, key: &K, a: &V, b: &V) -> V {
        (self.f)(key, a, b)
    }

    fn is_commutative(&self) -> bool {
        self.commutative
    }
}

impl<K, V, O, F> Reducer<K, V, O> for F
where
    F: Fn(&K, &[&V]) -> O + Send + Sync,
{
    fn reduce(&self, key: &K, parts: &[&V]) -> O {
        self(key, parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_combiner_combines() {
        let c = FnCombiner::new(|_: &(), a: &u64, b: &u64| (*a).max(*b));
        assert_eq!(c.combine(&(), &4, &9), 9);
        assert!(c.is_commutative());
        assert_eq!(c.cost(&(), &4, &9), 1);
    }

    #[test]
    fn non_commutative_flag() {
        let c = FnCombiner::non_commutative(|_: &(), a: &String, b: &String| format!("{a}{b}"));
        assert!(!c.is_commutative());
        assert_eq!(c.combine(&(), &"a".into(), &"b".into()), "ab");
    }

    #[test]
    fn closures_are_reducers() {
        let r = |_k: &u32, parts: &[&u64]| -> u64 { parts.iter().copied().sum() };
        assert_eq!(Reducer::reduce(&r, &7, &[&1, &2, &3]), 6);
        assert_eq!(Reducer::<u32, u64, u64>::cost(&r, &7, &[&1, &2]), 2);
    }
}
