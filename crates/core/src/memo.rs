//! Generational memoization cache for contraction-tree nodes.
//!
//! The strawman tree (§2.2) and the randomized folding tree (§3.2) both
//! identify sub-computations by a stable 64-bit identity derived from their
//! input lineage; results are cached so a re-encountered identity is reused
//! instead of recomputed. A two-generation sweep keeps the cache bounded:
//! entries not touched by the most recent run belong to sub-computations
//! that fell out of the window (or whose alignment changed) and are
//! collected — this mirrors Slider's garbage collector (§6), which frees
//! memoized items that fall outside the current window.

use std::collections::HashMap;
use std::sync::Arc;

/// A memo table mapping stable node identities to cached aggregates.
#[derive(Debug)]
pub struct MemoCache<V> {
    entries: HashMap<u64, Entry<V>>,
    generation: u64,
    hits: u64,
    misses: u64,
}

#[derive(Debug)]
struct Entry<V> {
    value: Arc<V>,
    last_used: u64,
}

// Manual impls: every cached value sits behind an `Arc`, so a cache clone
// shares allocations and needs no `V: Clone` (which a derive would demand).
impl<V> Clone for MemoCache<V> {
    fn clone(&self) -> Self {
        MemoCache {
            entries: self.entries.clone(),
            generation: self.generation,
            hits: self.hits,
            misses: self.misses,
        }
    }
}

impl<V> Clone for Entry<V> {
    fn clone(&self) -> Self {
        Entry {
            value: Arc::clone(&self.value),
            last_used: self.last_used,
        }
    }
}

impl<V> Default for MemoCache<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> MemoCache<V> {
    /// Creates an empty cache.
    pub fn new() -> Self {
        MemoCache {
            entries: HashMap::new(),
            generation: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `id`, marking the entry as used in the current generation.
    pub fn get(&mut self, id: u64) -> Option<Arc<V>> {
        let generation = self.generation;
        match self.entries.get_mut(&id) {
            Some(entry) => {
                entry.last_used = generation;
                self.hits += 1;
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) a computed aggregate under `id`.
    pub fn put(&mut self, id: u64, value: Arc<V>) {
        let generation = self.generation;
        self.entries.insert(
            id,
            Entry {
                value,
                last_used: generation,
            },
        );
    }

    /// Starts a new generation, evicting every entry not used since the
    /// previous call. Returns the number of evicted entries.
    ///
    /// Call once per incremental run, after change propagation completes.
    pub fn sweep(&mut self) -> usize {
        let current = self.generation;
        let before = self.entries.len();
        self.entries.retain(|_, e| e.last_used == current);
        self.generation += 1;
        before - self.entries.len()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total cache hits since creation.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total cache misses since creation.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Sums `size_of` over all cached values (memoization footprint).
    pub fn footprint(&self, mut size_of: impl FnMut(&V) -> u64) -> u64 {
        self.entries.values().map(|e| size_of(&e.value)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_roundtrip() {
        let mut cache = MemoCache::new();
        assert!(cache.get(1).is_none());
        cache.put(1, Arc::new(10u32));
        assert_eq!(*cache.get(1).unwrap(), 10);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn sweep_evicts_untouched_entries() {
        let mut cache = MemoCache::new();
        cache.put(1, Arc::new(1u8));
        cache.put(2, Arc::new(2u8));
        cache.sweep(); // both were written this generation: both survive
        assert_eq!(cache.len(), 2);

        // Touch only id 1 in the new generation.
        cache.get(1);
        let evicted = cache.sweep();
        assert_eq!(evicted, 1);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_none());
    }

    #[test]
    fn footprint_sums_value_sizes() {
        let mut cache = MemoCache::new();
        cache.put(1, Arc::new(vec![0u8; 3]));
        cache.put(2, Arc::new(vec![0u8; 5]));
        assert_eq!(cache.footprint(|v| v.len() as u64), 8);
    }

    #[test]
    fn put_refreshes_generation() {
        let mut cache = MemoCache::new();
        cache.put(1, Arc::new(1u8));
        cache.sweep();
        cache.put(1, Arc::new(2u8)); // refresh in the new generation
        cache.sweep();
        assert_eq!(*cache.get(1).unwrap(), 2);
    }
}
