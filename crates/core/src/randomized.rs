//! The randomized folding tree (paper §3.2): a skip-list-style contraction
//! tree whose expected height tracks `log2(current window size)` even under
//! drastic window resizes.
//!
//! Instead of folding/unfolding complete binary trees, nodes at each level
//! are grouped probabilistically: every node closes a group boundary with
//! probability ½ (derived deterministically from the node's stable identity,
//! like the tower heights of a skip list [Pugh '90]). Because boundaries
//! depend on identities and not positions, removing leaves at the front or
//! appending at the back only perturbs the boundary groups of each level —
//! all interior groups keep their identity and are reused from the memo
//! cache, giving expected `O(delta + log window)` fresh combiner work.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use crate::combiner::Combiner;
use crate::error::TreeError;
use crate::hash::{hash_one, hash_pair};
use crate::memo::MemoCache;
use crate::stats::Phase;
use crate::tree::{ContractionTree, TreeCx, TreeKind, WindowAggregator};

/// Skip-list-style variable-width contraction tree. See the module docs.
pub struct RandomizedFoldingTree<V> {
    leaves: VecDeque<(u64, Arc<V>)>,
    cache: MemoCache<V>,
    root: Option<Arc<V>>,
    next_id: u64,
    height: usize,
    seed: u64,
}

impl<V> RandomizedFoldingTree<V> {
    /// Creates an empty tree with the default coin-flip seed.
    pub fn new() -> Self {
        Self::with_seed(0x0ddb_a11d_5eed)
    }

    /// Creates an empty tree whose probabilistic grouping is derived from
    /// `seed` (different seeds give different — but equally balanced in
    /// expectation — shapes).
    pub fn with_seed(seed: u64) -> Self {
        RandomizedFoldingTree {
            leaves: VecDeque::new(),
            cache: MemoCache::new(),
            root: None,
            next_id: 0,
            height: 0,
            seed,
        }
    }

    fn fresh_id(&mut self) -> u64 {
        let id = hash_one(self.next_id ^ self.seed);
        self.next_id += 1;
        id
    }

    /// The coin flip: does the node with identity `id` close a group at
    /// `level`? True with probability ½, deterministic per (seed, id, level).
    fn closes_group(&self, id: u64, level: u64) -> bool {
        hash_pair(hash_pair(self.seed, id), level) & 1 == 0
    }

    /// Recomputes all levels bottom-up, reusing memoized groups.
    fn recombine<K>(&mut self, cx: &mut TreeCx<'_, K, V>)
    where
        V: Send + Sync,
    {
        if self.leaves.is_empty() {
            self.root = None;
            self.height = 0;
            self.cache.sweep();
            return;
        }
        let mut level: Vec<(u64, Arc<V>)> = self
            .leaves
            .iter()
            .map(|(id, v)| (*id, Arc::clone(v)))
            .collect();
        let mut level_no = 0u64;
        let mut height = 1usize;
        while level.len() > 1 {
            let next = self.contract_level(cx, &level, level_no);
            // Safety valve: if every node formed a singleton group the level
            // would not shrink; force plain pairing to guarantee progress.
            let next = if next.len() == level.len() {
                self.pair_level(cx, &level)
            } else {
                next
            };
            level = next;
            level_no += 1;
            height += 1;
        }
        self.root = level.pop().map(|(_, v)| v);
        self.height = height;
        self.cache.sweep();
    }

    /// One probabilistic contraction step.
    fn contract_level<K>(
        &mut self,
        cx: &mut TreeCx<'_, K, V>,
        level: &[(u64, Arc<V>)],
        level_no: u64,
    ) -> Vec<(u64, Arc<V>)>
    where
        V: Send + Sync,
    {
        let mut next = Vec::with_capacity(level.len() / 2 + 1);
        let mut group: Vec<&(u64, Arc<V>)> = Vec::new();
        for node in level {
            group.push(node);
            if self.closes_group(node.0, level_no) {
                next.push(self.emit_group(cx, &group));
                group.clear();
            }
        }
        if !group.is_empty() {
            next.push(self.emit_group(cx, &group));
        }
        next
    }

    /// Deterministic pairwise contraction used as the no-progress fallback.
    fn pair_level<K>(
        &mut self,
        cx: &mut TreeCx<'_, K, V>,
        level: &[(u64, Arc<V>)],
    ) -> Vec<(u64, Arc<V>)>
    where
        V: Send + Sync,
    {
        level
            .chunks(2)
            .map(|pair| {
                let refs: Vec<&(u64, Arc<V>)> = pair.iter().collect();
                self.emit_group(cx, &refs)
            })
            .collect()
    }

    /// Produces the parent node of a group, via the memo cache.
    fn emit_group<K>(
        &mut self,
        cx: &mut TreeCx<'_, K, V>,
        group: &[&(u64, Arc<V>)],
    ) -> (u64, Arc<V>)
    where
        V: Send + Sync,
    {
        if let [(id, value)] = group {
            // Singleton groups promote unchanged — identity is preserved so
            // upper levels keep their memoized structure.
            return (*id, Arc::clone(value));
        }
        let id = group
            .iter()
            .fold(0xfeed_5eed, |acc, (mid, _)| hash_pair(acc, *mid));
        if let Some(v) = self.cache.get(id) {
            cx.reuse(&v);
            return (id, v);
        }
        let mut acc = Arc::clone(&group[0].1);
        for (_, v) in &group[1..] {
            acc = cx.merge(Phase::Foreground, &acc, v);
        }
        self.cache.put(id, Arc::clone(&acc));
        (id, acc)
    }
}

impl<V> Default for RandomizedFoldingTree<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> fmt::Debug for RandomizedFoldingTree<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RandomizedFoldingTree")
            .field("leaves", &self.leaves.len())
            .field("height", &self.height)
            .field("cached_nodes", &self.cache.len())
            .finish()
    }
}

impl<V> Clone for RandomizedFoldingTree<V> {
    fn clone(&self) -> Self {
        RandomizedFoldingTree {
            leaves: self.leaves.clone(),
            cache: self.cache.clone(),
            root: self.root.clone(),
            next_id: self.next_id,
            height: self.height,
            seed: self.seed,
        }
    }
}

impl<K, V> WindowAggregator<K, V> for RandomizedFoldingTree<V>
where
    K: Send + 'static,
    V: Send + Sync + 'static,
{
    fn boxed_clone(&self) -> Box<dyn WindowAggregator<K, V>> {
        Box::new(self.clone())
    }

    fn rebuild(&mut self, cx: &mut TreeCx<'_, K, V>, leaves: Vec<Option<Arc<V>>>) {
        self.leaves.clear();
        self.cache = MemoCache::new();
        for value in leaves.into_iter().flatten() {
            let id = self.fresh_id();
            self.leaves.push_back((id, value));
            cx.note_added(1);
        }
        self.recombine(cx);
    }

    fn advance(
        &mut self,
        cx: &mut TreeCx<'_, K, V>,
        remove: usize,
        added: Vec<Option<Arc<V>>>,
    ) -> Result<(), TreeError> {
        if remove > self.leaves.len() {
            return Err(TreeError::RemoveExceedsWindow {
                requested: remove,
                window: self.leaves.len(),
            });
        }
        for _ in 0..remove {
            self.leaves.pop_front();
            cx.note_removed(1);
        }
        for value in added.into_iter().flatten() {
            let id = self.fresh_id();
            self.leaves.push_back((id, value));
            cx.note_added(1);
        }
        self.recombine(cx);
        Ok(())
    }

    fn insert_at(
        &mut self,
        cx: &mut TreeCx<'_, K, V>,
        at: usize,
        values: Vec<Arc<V>>,
    ) -> Result<(), TreeError> {
        if at > self.leaves.len() {
            return Err(TreeError::SpliceOutOfRange {
                at,
                count: values.len(),
                window: self.leaves.len(),
            });
        }
        if values.is_empty() {
            return Ok(());
        }
        cx.note_added(values.len() as u64);
        for (j, value) in values.into_iter().enumerate() {
            let id = self.fresh_id();
            self.leaves.insert(at + j, (id, value));
        }
        // Group boundaries hang off identities, not positions, so the
        // interior splice only perturbs the groups straddling it — all
        // other groups keep their identity and are reused from the cache.
        self.recombine(cx);
        Ok(())
    }

    fn evict_range(
        &mut self,
        cx: &mut TreeCx<'_, K, V>,
        at: usize,
        count: usize,
    ) -> Result<(), TreeError> {
        if at
            .checked_add(count)
            .is_none_or(|end| end > self.leaves.len())
        {
            return Err(TreeError::SpliceOutOfRange {
                at,
                count,
                window: self.leaves.len(),
            });
        }
        if count == 0 {
            return Ok(());
        }
        cx.note_removed(count as u64);
        self.leaves.drain(at..at + count);
        self.recombine(cx);
        Ok(())
    }

    fn root(&self) -> Option<Arc<V>> {
        self.root.clone()
    }

    fn len(&self) -> usize {
        self.leaves.len()
    }

    fn memo_bytes(&self, combiner: &dyn Combiner<K, V>, key: &K) -> u64 {
        let cached = self.cache.footprint(|v| combiner.value_bytes(key, v));
        let leaves: u64 = self
            .leaves
            .iter()
            .map(|(_, v)| combiner.value_bytes(key, v))
            .sum();
        cached + leaves
    }

    fn kind(&self) -> TreeKind {
        TreeKind::RandomizedFolding
    }
}

impl<K, V> ContractionTree<K, V> for RandomizedFoldingTree<V>
where
    K: Send + 'static,
    V: Send + Sync + 'static,
{
    fn height(&self) -> usize {
        self.height
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combiner::FnCombiner;
    use crate::stats::UpdateStats;

    fn sum_combiner() -> FnCombiner<impl Fn(&u8, &u64, &u64) -> u64> {
        FnCombiner::new(|_: &u8, a: &u64, b: &u64| a + b)
    }

    fn leaves(values: &[u64]) -> Vec<Option<Arc<u64>>> {
        values.iter().map(|v| Some(Arc::new(*v))).collect()
    }

    fn root_of(tree: &RandomizedFoldingTree<u64>) -> Option<u64> {
        WindowAggregator::<u8, u64>::root(tree).map(|v| *v)
    }

    #[test]
    fn initial_run_aggregates_everything() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        let mut tree = RandomizedFoldingTree::new();
        let values: Vec<u64> = (1..=100).collect();
        tree.rebuild(&mut cx, leaves(&values));
        assert_eq!(root_of(&tree), Some(5050));
        // n leaves always take exactly n-1 merges on the initial run.
        assert_eq!(stats.foreground.merges, 99);
    }

    #[test]
    fn expected_height_is_logarithmic() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut heights = Vec::new();
        for seed in 0..20 {
            let mut stats = UpdateStats::default();
            let mut cx = TreeCx::new(&combiner, &key, &mut stats);
            let mut tree = RandomizedFoldingTree::with_seed(seed);
            let values: Vec<u64> = (0..1024).collect();
            tree.rebuild(&mut cx, leaves(&values));
            heights.push(ContractionTree::<u8, u64>::height(&tree));
        }
        let avg = heights.iter().sum::<usize>() as f64 / heights.len() as f64;
        // log2(1024) = 10; allow generous slack around the expectation.
        assert!((8.0..=16.0).contains(&avg), "average height {avg}");
    }

    #[test]
    fn incremental_update_does_sublinear_fresh_work() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        let mut tree = RandomizedFoldingTree::new();
        let values: Vec<u64> = (0..4096).collect();
        tree.rebuild(&mut cx, leaves(&values));

        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        tree.advance(&mut cx, 2, leaves(&[9000, 9001])).unwrap();
        let expected: u64 = (2..4096).sum::<u64>() + 9000 + 9001;
        assert_eq!(root_of(&tree), Some(expected));
        // Fresh merges should be far below the window size; groups average
        // two members so a boundary group costs a handful of merges.
        assert!(
            stats.foreground.merges < 256,
            "expected sublinear work, got {} merges for a window of 4096",
            stats.foreground.merges
        );
        assert!(stats.reused > 0);
    }

    #[test]
    fn height_adapts_to_drastic_shrink() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        let mut tree = RandomizedFoldingTree::new();
        let values: Vec<u64> = (0..1024).collect();
        tree.rebuild(&mut cx, leaves(&values));
        let tall = ContractionTree::<u8, u64>::height(&tree);

        // Shrink to 16 leaves: height should drop to ~log2(16).
        tree.advance(&mut cx, 1008, vec![]).unwrap();
        let short = ContractionTree::<u8, u64>::height(&tree);
        assert!(short < tall, "height must shrink: {tall} -> {short}");
        assert!(short <= 10, "expected ~log2(16)+slack, got {short}");
        assert_eq!(root_of(&tree), Some((1008..1024).sum::<u64>()));
    }

    #[test]
    fn matches_reference_under_random_slides() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(21);
        let combiner = sum_combiner();
        let key = 0u8;
        let mut tree = RandomizedFoldingTree::new();
        let mut reference: std::collections::VecDeque<u64> = std::collections::VecDeque::new();

        let mut next = 0u64;
        for _ in 0..150 {
            let remove = rng.gen_range(0..=reference.len());
            let add = rng.gen_range(0..10usize);
            let added: Vec<u64> = (0..add)
                .map(|_| {
                    next += 1;
                    next * 3
                })
                .collect();
            for _ in 0..remove {
                reference.pop_front();
            }
            reference.extend(added.iter().copied());

            let mut stats = UpdateStats::default();
            let mut cx = TreeCx::new(&combiner, &key, &mut stats);
            tree.advance(&mut cx, remove, leaves(&added)).unwrap();
            let expected: u64 = reference.iter().sum();
            match root_of(&tree) {
                Some(root) => assert_eq!(root, expected),
                None => assert_eq!(expected, 0),
            }
        }
    }

    #[test]
    fn remove_beyond_window_is_rejected() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        let mut tree = RandomizedFoldingTree::new();
        tree.rebuild(&mut cx, leaves(&[1, 2]));
        assert!(tree.advance(&mut cx, 3, vec![]).is_err());
        assert_eq!(root_of(&tree), Some(3));
    }

    #[test]
    fn deterministic_across_identical_histories() {
        let combiner = sum_combiner();
        let key = 0u8;
        let run = || {
            let mut stats = UpdateStats::default();
            let mut cx = TreeCx::new(&combiner, &key, &mut stats);
            let mut tree = RandomizedFoldingTree::with_seed(99);
            tree.rebuild(&mut cx, leaves(&(0..64).collect::<Vec<_>>()));
            tree.advance(&mut cx, 5, leaves(&[100, 200])).unwrap();
            (
                root_of(&tree),
                ContractionTree::<u8, u64>::height(&tree),
                stats,
            )
        };
        assert_eq!(run(), run());
    }
}
